"""Ablation: page-size sensitivity of the IWS/IB measurements.

The paper's Itanium II systems use 16 KiB pages.  Smaller pages track
writes more precisely (less false sharing within a page), so the IWS in
*bytes* shrinks; larger pages inflate it.  The effect is modest for the
sweep-dominated workloads (their writes are dense), which supports the
paper's page-granularity choice.
"""

from conftest import cached_config_run, report

from repro.cluster.experiment import paper_config
from repro.units import KiB

PAGE_SIZES = [4 * KiB, 16 * KiB, 64 * KiB]
APP = "sweep3d"


def build_rows():
    rows = {}
    for ps in PAGE_SIZES:
        cfg = paper_config(APP, nranks=2, timeslice=1.0, page_size=ps)
        res = cached_config_run(cfg, tag="pagesize")
        rows[ps] = res.ib()
    return rows


def test_ablation_page_size(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    lines = [f"  {'page size':>10s} {'avg IB':>8s} {'max IB':>8s}"]
    for ps in PAGE_SIZES:
        s = rows[ps]
        lines.append(f"  {ps // KiB:8d}Ki {s.avg_mbps:8.1f} {s.max_mbps:8.1f}")
    report(f"Ablation: page-size sensitivity ({APP})", lines,
           "ablation_page_size.txt")

    avg = [rows[ps].avg_mbps for ps in PAGE_SIZES]
    # coarser pages can only inflate the byte-IWS (monotone)
    assert avg[0] <= avg[1] * 1.02
    assert avg[1] <= avg[2] * 1.02
    # ...but for dense sweeps the inflation is modest (< 35% from 4Ki to
    # 64Ki), supporting page-granularity tracking
    assert avg[2] <= avg[0] * 1.35

"""Extension: from measured bandwidth to machine efficiency at scale.

The paper's introduction motivates the study with BlueGene/L: 65,536
processors failing every few hours need checkpoints "every few minutes".
This bench closes the loop the paper opens: take the *measured*
per-process incremental delta (Sage-1000MB at the optimal placement),
feed it into the Young/Daly availability model, and show that

- the optimal checkpoint interval at BlueGene/L scale is indeed a few
  minutes, and
- incremental checkpointing keeps the machine efficient at scales where
  *full* checkpointing (the whole footprint every interval) visibly
  hurts.
"""

from conftest import cached_run, report

from repro.feasibility import CheckpointCostModel, FailureModel, scale_study
from repro.feasibility.availability import optimal_efficiency
from repro.units import MiB, from_mb

NODE_MTBF_HOURS = 100_000.0      # very reliable nodes
NODE_COUNTS = [512, 4096, 32768, 65536]
APP = "sage-1000MB"


def build_rows():
    # per-process delta for a once-per-iteration checkpoint: the *unique*
    # working set of one iteration, measured by setting the timeslice to
    # the iteration period (revisits within the interval deduplicate)
    from repro.apps import paper_spec
    spec = paper_spec(APP)
    period = spec.iteration_period
    result = cached_run(APP, timeslice=period, nranks=2)
    delta = int(result.log(0).after(result.init_end_time).iws_bytes().mean())
    rows = scale_study(delta_bytes=delta, storage_bandwidth=320 * MiB,
                       node_mtbf=NODE_MTBF_HOURS * 3600,
                       node_counts=NODE_COUNTS)
    # the full-checkpoint comparison at the largest scale
    full_cost = CheckpointCostModel(
        delta_bytes=from_mb(spec.paper_footprint_max_mb),
        storage_bandwidth=320 * MiB).cost
    failures = FailureModel(node_mtbf=NODE_MTBF_HOURS * 3600,
                            nnodes=NODE_COUNTS[-1])
    _, eff_full = optimal_efficiency(full_cost, failures)
    return delta, rows, eff_full


def test_ext_availability(benchmark):
    delta, rows, eff_full = benchmark.pedantic(build_rows, rounds=1,
                                               iterations=1)
    lines = [f"measured per-process delta ({APP}, one iteration): "
             f"{delta / MiB:.0f} MB",
             f"node MTBF {NODE_MTBF_HOURS:.0f} h, restart 300 s, "
             f"storage 320 MB/s",
             "",
             f"  {'nodes':>7s} {'system MTBF':>12s} {'ckpt cost':>10s} "
             f"{'opt interval':>13s} {'efficiency':>11s}"]
    for r in rows:
        lines.append(f"  {r['nnodes']:7d} {r['system_mtbf'] / 3600:10.1f} h "
                     f"{r['checkpoint_cost']:9.1f}s "
                     f"{r['optimal_interval'] / 60:11.1f} m "
                     f"{r['efficiency']:11.1%}")
    lines.append("")
    lines.append(f"at {NODE_COUNTS[-1]} nodes, incremental achieves "
                 f"{rows[-1]['efficiency']:.1%} vs {eff_full:.1%} for "
                 f"full checkpoints")
    report("Extension: cluster efficiency at BlueGene/L scale", lines,
           "ext_availability.txt")

    # failures every few hours at the largest scale (the intro's claim)
    assert rows[-1]["system_mtbf"] < 10 * 3600
    # optimal interval "every few minutes"
    assert 30 <= rows[-1]["optimal_interval"] <= 30 * 60
    # efficiency stays high with incremental checkpointing...
    assert rows[-1]["efficiency"] > 0.80
    # ...and beats full checkpointing at scale
    assert rows[-1]["efficiency"] > eff_full
    # efficiency declines with machine size
    effs = [r["efficiency"] for r in rows]
    assert all(b < a for a, b in zip(effs, effs[1:]))

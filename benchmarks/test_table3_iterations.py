"""Table 3: main-iteration period and fraction of memory overwritten.

The period is *detected* from the IWS series by autocorrelation (the
run-time identification of section 6.2), sampling at a quarter of the
expected period.  The overwrite fraction is measured the natural way:
with the timeslice set to the iteration period, each slice's IWS is one
iteration's working set.

Known deviation: the workload models are calibrated to Table 4's
bandwidths first (see DESIGN.md); the overwrite fractions for the
long-period applications come out higher than the paper's because the
paper's own Tables 3 and 4 over-constrain a single cyclic working set.
The orderings (BT highest, Sage lowest band) still hold.
"""

from conftest import PAPER_ORDER, TABLE3, cached_run, report, within

from repro.apps import paper_spec
from repro.metrics import fraction_overwritten
from repro.metrics.period import estimate_period_from_log


def build_table3():
    rows = {}
    for name in PAPER_ORDER:
        spec = paper_spec(name)
        expected_period = spec.iteration_period
        # detection run: fine timeslices resolve the burst rhythm
        fine = cached_run(name, timeslice=max(expected_period / 4, 0.02),
                          nranks=2)
        detected = estimate_period_from_log(fine.log(0),
                                            skip_until=fine.init_end_time)
        # overwrite run: one slice per iteration
        coarse = cached_run(name, timeslice=expected_period, nranks=2)
        frac = fraction_overwritten(coarse.log(0),
                                    skip_until=coarse.init_end_time)
        rows[name] = (detected, frac)
    return rows


def test_table3_iterations(benchmark):
    rows = benchmark.pedantic(build_table3, rounds=1, iterations=1)
    lines = [f"{'Application':14s} {'Period (sim)':>13s} {'(paper)':>9s} "
             f"{'Overwritten (sim)':>18s} {'(paper)':>9s}"]
    for name in PAPER_ORDER:
        detected, frac = rows[name]
        p_period, p_frac = TABLE3[name]
        lines.append(f"{name:14s} {detected:12.2f}s {p_period:8.2f}s "
                     f"{frac:17.0%} {p_frac:9.0%}")
    report("Table 3: characteristics of the main iteration", lines,
           "table3.txt")

    for name in PAPER_ORDER:
        detected, frac = rows[name]
        p_period, p_frac = TABLE3[name]
        # the period detector must recover the configured rhythm
        assert within(detected, p_period, rel=0.3), (name, detected, p_period)
        # fraction: right magnitude band (see module docstring)
        assert 0.2 <= frac <= 1.0, (name, frac)
    # orderings that must survive: BT overwrites the most among NAS codes
    assert rows["bt"][1] > rows["sp"][1]
    assert rows["bt"][1] > rows["ft"][1]
    # periods ordered: Sage-1000 longest, SP shortest
    assert rows["sage-1000MB"][0] > rows["sweep3d"][0] > rows["sp"][0]

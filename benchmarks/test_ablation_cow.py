"""Ablation: copy-on-write interference versus checkpoint placement,
measured *in the engine* (not just the planner's analytic cost).

Two runs of the same workload and checkpoint frequency; only the phase
of the processing burst relative to the checkpoint boundary differs:

- *collision*: the burst starts right at the checkpoint boundary, so
  the application rewrites captured pages while the stream is in flight;
- *quiet*: the burst sits in the middle of the interval; by the time it
  starts, the stream has finished.

The copy-on-write page copies the engine charges quantify section 6.2's
"it may not be convenient to checkpoint during a processing burst".
"""

from conftest import report

from repro.apps.phases import ComputePhase, IdlePhase
from repro.apps.synthetic import SyntheticApp, small_spec
from repro.checkpoint import CheckpointEngine
from repro.instrument import InstrumentationLibrary, TrackerConfig
from repro.mpi import MPIJob
from repro.sim import Engine
from repro.storage import Disk, IDE_ATA100

# near-instant initialization keeps iteration starts aligned with the
# checkpoint boundaries at t = 4, 8, 12 ...
SPEC = small_spec(name="cow-placement", footprint_mb=48, main_mb=32,
                  period=4.0, passes=1.0, comm_mb=0.0,
                  init_write_rate_mb=1e9)
BURST = 0.25  # seconds: the burst writes faster than the IDE disk drains


def run_with_offset(burst_offset):
    def phases(rc):
        out = []
        if burst_offset > 0:
            out.append(IdlePhase(burst_offset))
        out.append(ComputePhase("main", duration=BURST, passes=1.0))
        out.append(IdlePhase(SPEC.iteration_period - burst_offset - BURST))
        return out

    engine = Engine()
    app = SyntheticApp(SPEC, n_iterations=6, phase_factory=phases)
    job = MPIJob(engine, 2, process_factory=app.process_factory(engine))
    lib = InstrumentationLibrary(TrackerConfig(timeslice=1.0)).install(job)
    ckpt = CheckpointEngine(job, lib, interval_slices=4, full_every=10 ** 6,
                            keep_payloads=False, cow=True,
                            storage_factory=lambda r: Disk(engine, IDE_ATA100))
    job.launch(app.make_body())
    engine.run(detect_deadlock=True)
    copies, cow_time = ckpt.cow_stats()
    return copies, cow_time


def build_rows():
    return {
        "burst at the boundary": run_with_offset(0.0),
        "burst mid-interval": run_with_offset(2.0),
    }


def test_ablation_cow(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    lines = [f"workload: {SPEC.main_region_mb:.0f} MB working set, "
             f"checkpoint every {SPEC.iteration_period:.0f} s, "
             f"{BURST:.2f} s write burst per iteration", ""]
    for name, (copies, cow_time) in rows.items():
        lines.append(f"  {name:24s} {copies:6d} copy-on-write page copies "
                     f"({cow_time * 1e3:.2f} ms charged)")
    collide = rows["burst at the boundary"][0]
    quiet = rows["burst mid-interval"][0]
    if collide:
        lines.append(f"\nplacing the checkpoint in the quiet gap removes "
                     f"{1 - quiet / collide:.0%} of the interference")
    report("Ablation: copy-on-write interference vs checkpoint placement",
           lines, "ablation_cow.txt")

    assert collide > 0, "boundary placement should collide with the burst"
    assert quiet < collide * 0.25, (quiet, collide)

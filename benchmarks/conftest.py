"""Shared infrastructure for the benchmark suite.

Every bench regenerates one table or figure of the paper: it runs the
simulation at the paper's parameters, prints the rows/series next to the
published values, asserts the *shape* (orderings, monotonicity, rough
magnitudes -- the substrate is a simulator, not the authors' testbed),
and saves the rendered table under ``benchmarks/out/``.

Experiments are deterministic, so results are memoized twice: per
session (the figure benches share runs with the table benches where
parameters coincide) and persistently under ``benchmarks/.cache/``
through :class:`repro.exec.ResultCache`, keyed by (config, workload
spec, code version) -- repeat benchmark runs skip the simulation
entirely.  Set ``REPRO_BENCH_CACHE=0`` to disable the disk cache, or
delete ``benchmarks/.cache/`` to drop it; editing any ``repro`` module
invalidates every entry automatically via the code fingerprint.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.cluster.experiment import (
    ExperimentConfig,
    ExperimentResult,
    paper_config,
    run_experiment,
)
from repro.exec import ResultCache, cache_key

OUT_DIR = Path(__file__).parent / "out"
CACHE_DIR = Path(__file__).parent / ".cache"

#: the paper's application order in Tables 2-4
PAPER_ORDER = ["sage-1000MB", "sage-500MB", "sage-100MB", "sage-50MB",
               "sweep3d", "sp", "lu", "bt", "ft"]

#: Table 2 (memory footprint, MB)
TABLE2 = {
    "sage-1000MB": (954.6, 779.5), "sage-500MB": (497.3, 407.3),
    "sage-100MB": (103.7, 86.9), "sage-50MB": (55.0, 45.2),
    "sweep3d": (105.5, 105.5), "sp": (40.1, 40.1), "lu": (16.6, 16.6),
    "bt": (76.5, 76.5), "ft": (118.0, 118.0),
}

#: Table 3 (iteration period s, fraction overwritten)
TABLE3 = {
    "sage-1000MB": (145.0, 0.53), "sage-500MB": (80.0, 0.54),
    "sage-100MB": (38.0, 0.56), "sage-50MB": (20.0, 0.57),
    "sweep3d": (7.0, 0.52), "sp": (0.16, 0.72), "lu": (0.7, 0.72),
    "bt": (0.4, 0.92), "ft": (1.2, 0.57),
}

#: Table 4 (max IB, avg IB at a 1 s timeslice, MB/s)
TABLE4 = {
    "sage-1000MB": (274.9, 78.8), "sage-500MB": (186.9, 49.9),
    "sage-100MB": (42.6, 15.0), "sage-50MB": (24.9, 9.6),
    "sweep3d": (79.1, 49.5), "sp": (32.6, 32.6), "lu": (12.5, 12.5),
    "bt": (72.7, 68.6), "ft": (101.0, 92.1),
}

#: the timeslice sweep of Figs 2-4
FIG2_TIMESLICES = [1.0, 2.0, 5.0, 10.0, 15.0, 20.0]

_memo: dict[str, ExperimentResult] = {}
_disk_cache: ResultCache | None = (
    ResultCache(CACHE_DIR)
    if os.environ.get("REPRO_BENCH_CACHE", "1") != "0" else None)


def _cached(config: ExperimentConfig, live: bool = False) -> ExperimentResult:
    """Session-memoized, disk-cached experiment run.

    With ``live=True`` the result must carry the live simulation objects
    (app/library/job), so the disk cache -- which stores only traces and
    derived metadata -- is bypassed for both read and write of fresh
    runs; the session memo still applies.
    """
    key = cache_key(config)
    result = _memo.get(key)
    if result is not None and not (live and result.job is None):
        return result
    result = None
    if not live and _disk_cache is not None:
        result = _disk_cache.get(config)
    if result is None:
        result = run_experiment(config)
        if _disk_cache is not None:
            _disk_cache.put(config, result)
    _memo[key] = result
    return result


def cached_run(name: str, *, timeslice: float = 1.0, nranks: int = 4,
               live: bool = False, **overrides) -> ExperimentResult:
    """Run (or reuse) one paper experiment."""
    return _cached(paper_config(name, timeslice=timeslice, nranks=nranks,
                                **overrides), live=live)


def cached_config_run(config: ExperimentConfig, tag: str = "",
                      live: bool = False) -> ExperimentResult:
    """Run (or reuse) an arbitrary config.  ``tag`` is kept for call-site
    readability; the cache key covers every config field, so it no
    longer disambiguates anything."""
    del tag
    return _cached(config, live=live)


def report(title: str, lines: list[str], filename: str) -> str:
    """Print a rendered table/figure and save it under benchmarks/out/."""
    text = "\n".join([f"== {title} ==", *lines, ""])
    print("\n" + text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / filename).write_text(text)
    return text


def within(measured: float, expected: float, rel: float) -> bool:
    """Shape check with a generous relative band."""
    if expected == 0:
        return abs(measured) < 1e-9
    return abs(measured - expected) <= rel * abs(expected)

"""Section 6.3's comparison: demand versus the 2004 technology envelope.

The quotable numbers: even at a 1 s timeslice every application's
maximum IB sits below both the QsNet II peak (900 MB/s) and the SCSI
peak (320 MB/s); Sage-1000MB averages ~9 % of the network and ~25 % of
the disk bandwidth.
"""

from conftest import PAPER_ORDER, cached_run, report

from repro.feasibility import FeasibilityAnalyzer


def build_verdicts():
    analyzer = FeasibilityAnalyzer()
    return [analyzer.assess(name, cached_run(name, timeslice=1.0).ib())
            for name in PAPER_ORDER], analyzer


def test_sec63_feasibility(benchmark):
    verdicts, analyzer = benchmark.pedantic(build_verdicts, rounds=1,
                                            iterations=1)
    report("Section 6.3: feasibility against 2004 technology",
           analyzer.report(verdicts).splitlines(), "sec63.txt")

    assert all(v.feasible for v in verdicts), \
        [v.app_name for v in verdicts if not v.feasible]
    sage = next(v for v in verdicts if v.app_name == "sage-1000MB")
    # the paper's quoted fractions: "9% of the available peak network and
    # 25% of the peak disk bandwidth"
    assert abs(sage.avg_fraction_of_network - 0.09) < 0.03
    assert abs(sage.avg_fraction_of_disk - 0.25) < 0.06
    # every max IB below both peaks
    for v in verdicts:
        assert v.max_fraction_of_network < 1.0
        assert v.max_fraction_of_disk < 1.0

"""Fig 3: average IB versus timeslice for the four Sage problem sizes.

Shape requirements: curves ordered by footprint at every timeslice, all
declining; growth with footprint is *sublinear* (doubling the footprint
from 500 MB to 1000 MB raises the 1 s IB to ~80 MB/s, not ~100 MB/s).
"""

from conftest import FIG2_TIMESLICES, cached_run, report

SIZES = ["sage-50MB", "sage-100MB", "sage-500MB", "sage-1000MB"]


def build_fig3():
    return {
        name: {ts: cached_run(name, timeslice=ts, nranks=2).ib().avg_mbps
               for ts in FIG2_TIMESLICES}
        for name in SIZES
    }


def test_fig3_sage_sizes(benchmark):
    curves = benchmark.pedantic(build_fig3, rounds=1, iterations=1)
    header = f"  {'timeslice':>10s} " + " ".join(f"{n:>12s}" for n in SIZES)
    lines = [header]
    for ts in FIG2_TIMESLICES:
        lines.append(f"  {ts:9.0f}s " + " ".join(
            f"{curves[n][ts]:12.1f}" for n in SIZES))
    report("Fig 3: average IB (MB/s) for the Sage problem sizes", lines,
           "fig3.txt")

    # ordering by footprint at every timeslice
    for ts in FIG2_TIMESLICES:
        values = [curves[n][ts] for n in SIZES]
        assert values == sorted(values), (ts, values)
    # decline with timeslice for every size
    for name in SIZES:
        series = [curves[name][ts] for ts in FIG2_TIMESLICES]
        assert series[-1] < series[0] * 0.6, (name, series)
    # sublinearity at 1 s: 1000 MB demands less than 2x the 500 MB run,
    # which demands less than 5x the 100 MB run
    assert curves["sage-1000MB"][1.0] < 2.0 * curves["sage-500MB"][1.0]
    assert curves["sage-500MB"][1.0] < 5.0 * curves["sage-100MB"][1.0]

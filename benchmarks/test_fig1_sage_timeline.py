"""Fig 1: Sage-1000MB timeline at a 1 s timeslice.

(a) IWS size per timeslice: an initialization spike at the start, then
    regular write bursts every ~145 s;
(b) data received per timeslice: communication bursts of a few MB placed
    between the processing bursts.
"""

import numpy as np
from conftest import cached_run, report

from repro.metrics import detect_bursts
from repro.metrics.period import estimate_period


def build_fig1():
    result = cached_run("sage-1000MB", timeslice=1.0, nranks=4,
                        run_duration=500.0)
    return result


def sparkline(values, width=100):
    blocks = " .:-=+*#%@"
    step = max(1, len(values) // width)
    sampled = [max(values[i:i + step]) for i in range(0, len(values), step)]
    top = max(sampled) or 1.0
    return "".join(blocks[min(int(v / top * (len(blocks) - 1)), 9)]
                   for v in sampled)


def test_fig1_sage_timeline(benchmark):
    result = benchmark.pedantic(build_fig1, rounds=1, iterations=1)
    log = result.log(0)
    iws = log.iws_mb()
    rx = log.received_mb()

    lines = [
        f"run: {result.final_time:.0f} s simulated, timeslice 1 s, "
        f"{len(log)} slices",
        "",
        f"(a) IWS size per timeslice, MB  (peak {iws.max():.0f})",
        "    " + sparkline(iws),
        "",
        f"(b) data received per timeslice, MB  (peak {rx.max():.2f})",
        "    " + sparkline(rx),
    ]

    steady = log.after(result.init_end_time)
    period = estimate_period(steady.iws_bytes(), log.timeslice)
    lines.append("")
    lines.append(f"write bursts every {period:.0f} s "
                 f"(paper: every 145 s)")
    report("Fig 1: Sage-1000MB, IWS size and data received (timeslice 1 s)",
           lines, "fig1.txt")

    # -- shape assertions ------------------------------------------------------
    # the initialization spike dominates the first slices (paper: the
    # initial peak is caused by data initialization)
    init_slices = [r.iws_bytes for r in log if r.t_end <= result.init_end_time + 1]
    assert max(init_slices) >= 200 * 2**20
    # periodic bursts at the main iteration rhythm
    assert abs(period - 145.0) / 145.0 < 0.15
    # several distinct processing bursts over the run
    bursts = detect_bursts(steady.iws_mb())
    assert len(bursts) >= 2
    # communication bursts: a few MB per slice, in the right band
    # (paper Fig 1b peaks between 2 and 4 MB)
    steady_rx = steady.received_mb()
    assert 1.0 <= steady_rx.max() <= 8.0
    # communication happens *between* processing bursts: the hottest
    # receive slices are not the hottest write slices
    hot_rx = set(np.argsort(steady_rx)[-5:])
    hot_iws = set(np.argsort(steady.iws_mb())[-5:])
    assert len(hot_rx & hot_iws) <= 2

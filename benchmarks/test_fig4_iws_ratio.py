"""Fig 4: ratio of IWS size to memory-image size versus timeslice, for
the four Sage problem sizes.

Shape requirements: the ratio grows with the timeslice (longer windows
accumulate more of the working set) and *decreases* with the memory
footprint at a fixed timeslice -- the mechanism behind Fig 3's sublinear
bandwidth growth.
"""

from conftest import FIG2_TIMESLICES, cached_run, report

SIZES = ["sage-50MB", "sage-100MB", "sage-500MB", "sage-1000MB"]


def build_fig4():
    return {
        name: {ts: cached_run(name, timeslice=ts, nranks=2).iws_ratio()
               for ts in FIG2_TIMESLICES}
        for name in SIZES
    }


def test_fig4_iws_ratio(benchmark):
    curves = benchmark.pedantic(build_fig4, rounds=1, iterations=1)
    header = f"  {'timeslice':>10s} " + " ".join(f"{n:>12s}" for n in SIZES)
    lines = [header]
    for ts in FIG2_TIMESLICES:
        lines.append(f"  {ts:9.0f}s " + " ".join(
            f"{curves[n][ts]:12.1%}" for n in SIZES))
    report("Fig 4: ratio of IWS size to memory image size per timeslice",
           lines, "fig4.txt")

    for name in SIZES:
        series = [curves[name][ts] for ts in FIG2_TIMESLICES]
        assert all(0 <= v <= 1 for v in series), (name, series)
        # grows with the timeslice overall
        assert series[-1] > series[0], (name, series)
    # decreases with footprint: at every timeslice the biggest Sage has
    # the smallest IWS/footprint ratio
    for ts in FIG2_TIMESLICES:
        assert curves["sage-1000MB"][ts] < curves["sage-50MB"][ts], ts
        assert curves["sage-500MB"][ts] < curves["sage-50MB"][ts], ts

"""Extension: how frequently CAN these applications be checkpointed?

The paper's contribution statement: "Checkpointing intervals of a few
seconds are possible with current technology."  This bench makes the
claim operational: run the coordinated incremental checkpoint engine at
shrinking intervals and check that the global commit latency stays well
inside the interval -- the condition for the checkpoint pipeline to keep
up.  Measured on the heaviest (Sage-like) and the most
communication-bound (FT-like) demand profiles, against a single SCSI
disk per node pair.
"""

from conftest import cached_run, report

from repro.apps.synthetic import SyntheticApp, small_spec
from repro.checkpoint import CheckpointEngine
from repro.instrument import InstrumentationLibrary, TrackerConfig
from repro.mpi import MPIJob
from repro.sim import Engine

# a scaled-down Sage-1000MB-shaped workload (same IB profile; smaller
# footprint so the bench runs in seconds)
SPEC = small_spec(name="freq-probe", footprint_mb=96, main_mb=40,
                  period=8.0, passes=4.0, burst_fraction=0.3,
                  comm_mb=2.0)

INTERVALS = [8.0, 4.0, 2.0, 1.0]


def run_at(interval):
    engine = Engine()
    app = SyntheticApp(SPEC, run_duration=40.0)
    job = MPIJob(engine, 2, process_factory=app.process_factory(engine))
    lib = InstrumentationLibrary(TrackerConfig(timeslice=interval)).install(job)
    ckpt = CheckpointEngine(job, lib, interval_slices=1, full_every=8,
                            gc=True, keep_payloads=False)
    job.launch(app.make_body())
    engine.run(detect_deadlock=True)
    committed = ckpt.committed()
    latencies = [gc.commit_latency for gc in committed]
    return {
        "n": len(committed),
        "mean_latency": sum(latencies) / len(latencies),
        "max_latency": max(latencies),
        "bytes": ckpt.bytes_to_storage(),
    }


def build_rows():
    return {interval: run_at(interval) for interval in INTERVALS}


def test_ext_max_frequency(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    lines = [f"workload: {SPEC.footprint_mb:.0f} MB/process, "
             f"{SPEC.main_region_mb:.0f} MB working set, one SCSI disk "
             f"per rank",
             "",
             f"  {'interval':>9s} {'commits':>8s} {'mean latency':>13s} "
             f"{'max latency':>12s} {'occupancy':>10s}"]
    for interval in INTERVALS:
        r = rows[interval]
        occupancy = r["max_latency"] / interval
        lines.append(f"  {interval:8.1f}s {r['n']:8d} "
                     f"{r['mean_latency'] * 1e3:10.1f} ms "
                     f"{r['max_latency'] * 1e3:9.1f} ms {occupancy:10.1%}")
    lines.append("")
    lines.append("commit latency stays well inside the interval even at "
                 "1 s: 'checkpointing intervals of a few seconds are "
                 "possible with current technology' -- and shorter.")
    report("Extension: maximum sustainable checkpoint frequency", lines,
           "ext_max_frequency.txt")

    for interval in INTERVALS:
        r = rows[interval]
        assert r["n"] >= 3
        # the pipeline keeps up: worst commit uses < 60% of the interval
        assert r["max_latency"] < 0.6 * interval, (interval, r)
    # shorter intervals move less data per checkpoint (incremental!)
    per_ckpt = {i: rows[i]["bytes"] / rows[i]["n"] for i in INTERVALS}
    assert per_ckpt[1.0] < per_ckpt[8.0]

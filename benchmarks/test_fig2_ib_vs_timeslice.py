"""Fig 2: maximum and average IB versus timeslice (1-20 s), six panels:
Sage-1000MB, Sweep3D, BT, SP, FT, LU.

Shape requirements: IB decreases as the timeslice grows (page reuse
collapses into fewer slices); for the sub-second NAS kernels maximum and
average practically coincide; the 1 s point reproduces Table 4.
"""

from conftest import FIG2_TIMESLICES, TABLE4, cached_run, report, within

PANELS = ["sage-1000MB", "sweep3d", "bt", "sp", "ft", "lu"]


def build_fig2():
    curves = {}
    for name in PANELS:
        curves[name] = {
            ts: cached_run(name, timeslice=ts, nranks=2).ib()
            for ts in FIG2_TIMESLICES
        }
    return curves


def test_fig2_ib_vs_timeslice(benchmark):
    curves = benchmark.pedantic(build_fig2, rounds=1, iterations=1)
    lines = []
    for name in PANELS:
        lines.append(f"--- {name} ---")
        lines.append(f"  {'timeslice':>10s} {'avg MB/s':>9s} {'max MB/s':>9s}")
        for ts in FIG2_TIMESLICES:
            s = curves[name][ts]
            lines.append(f"  {ts:9.0f}s {s.avg_mbps:9.1f} {s.max_mbps:9.1f}")
    report("Fig 2: IB required for checkpointing vs timeslice", lines,
           "fig2.txt")

    for name in PANELS:
        series = [curves[name][ts] for ts in FIG2_TIMESLICES]
        avg = [s.avg_mbps for s in series]
        mx = [s.max_mbps for s in series]
        # monotone (within jitter) decline of the average IB
        for a, b in zip(avg, avg[1:]):
            assert b <= a * 1.10 + 0.5, (name, avg)
        # strong overall decline from 1 s to 20 s
        assert avg[-1] < avg[0] * 0.5, (name, avg)
        # max >= avg at every point
        for a, m in zip(avg, mx):
            assert m >= a - 1e-6
        # the 1 s point agrees with Table 4
        pmax, pavg = TABLE4[name]
        assert within(avg[0], pavg, rel=0.15), (name, avg[0], pavg)
        assert within(mx[0], pmax, rel=0.15), (name, mx[0], pmax)
    # the paper's observation: avg ~= max for timeslices longer than the
    # burst (the NAS kernels, whose whole iteration fits in a slice)
    for name in ("sp", "lu", "bt"):
        for ts in FIG2_TIMESLICES:
            s = curves[name][ts]
            assert within(s.max_mbps, s.avg_mbps, rel=0.10), (name, ts)

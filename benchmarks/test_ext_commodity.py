"""Extension: feasibility on commodity hardware of the era.

The paper's verdict holds for a QsNet II + SCSI cluster.  The related
work it compares against (Diskless checkpointing, CoCheck, Starfish) ran
on Ethernet-class clusters -- on those, is frequent incremental
checkpointing feasible too?  This bench re-runs the section 6.3 analysis
against a 100 Mb/s switched-Ethernet + IDE-disk envelope and finds the
timeslice at which each application first fits, quantifying *why* those
systems used checkpoint intervals of minutes, not seconds.
"""

from conftest import PAPER_ORDER, cached_run, report

from repro.feasibility import FeasibilityAnalyzer, TechnologyEnvelope
from repro.net import ETHERNET_100M
from repro.storage import IDE_ATA100
from repro.units import MiB

TIMESLICES = [1.0, 5.0, 20.0]

COMMODITY = TechnologyEnvelope(network=ETHERNET_100M, disk=IDE_ATA100,
                               year=2004)


def build_rows():
    analyzer = FeasibilityAnalyzer(envelope=COMMODITY)
    rows = {}
    for name in PAPER_ORDER:
        feasible_at = None
        verdicts = {}
        for ts in TIMESLICES:
            stats = cached_run(name, timeslice=ts, nranks=2).ib()
            v = analyzer.assess(name, stats)
            verdicts[ts] = v
            if v.feasible and feasible_at is None:
                feasible_at = ts
        rows[name] = (feasible_at, verdicts)
    return rows


def test_ext_commodity(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    lines = [f"envelope: {COMMODITY.network.name} "
             f"({COMMODITY.network_bandwidth / MiB:.0f} MB/s), "
             f"{COMMODITY.disk.name} "
             f"({COMMODITY.disk_bandwidth / MiB:.0f} MB/s)",
             "",
             f"  {'application':14s} " + " ".join(
                 f"{ts:>4.0f}s" for ts in TIMESLICES) + "   first feasible"]
    for name in PAPER_ORDER:
        feasible_at, verdicts = rows[name]
        marks = " ".join("  ok " if verdicts[ts].feasible else " XX  "
                         for ts in TIMESLICES)
        lines.append(f"  {name:14s} {marks}   "
                     f"{'never (<=20s)' if feasible_at is None else f'{feasible_at:.0f} s'}")
    lines.append("")
    lines.append("on Ethernet-class clusters NOTHING fits a 1 s timeslice; "
                 "the light codes need ~5 s, the medium ones ~20 s, and the "
                 "big Sage runs don't fit at all below minutes-scale "
                 "intervals -- matching the 10 s-to-22 min checkpoint "
                 "intervals of the era's run-time-library systems "
                 "(Starfish, Diskless, CoCheck; section 7).")
    report("Extension: feasibility on commodity Ethernet + IDE", lines,
           "ext_commodity.txt")

    # nothing fits at a 1 s timeslice on commodity gear
    for name in PAPER_ORDER:
        assert not rows[name][1][1.0].feasible, name
    # the light codes fit by 5 s, the medium ones by 20 s
    for name in ("sage-50MB", "sp", "lu"):
        assert rows[name][1][5.0].feasible, name
    for name in ("sweep3d", "bt", "ft", "sage-100MB"):
        assert rows[name][1][20.0].feasible, name
    # the big Sage configurations never fit within 20 s
    assert rows["sage-1000MB"][0] is None
    assert rows["sage-500MB"][0] is None
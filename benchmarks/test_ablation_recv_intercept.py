"""Ablation: the bounce-buffer receive interception (section 4.2).

The QsNet NIC deposits received data straight into user memory, taking
no page faults.  Without the paper's receive interception the tracker
undercounts the IWS -- and an incremental checkpoint built on it would
silently lose received data.  The bench quantifies the undercount on
FT, the most communication-intensive workload.
"""

from conftest import cached_config_run, report

from repro.cluster.experiment import paper_config
from repro.units import MiB

APP = "ft"


def build_rows():
    on = cached_config_run(paper_config(APP, nranks=4, timeslice=1.0,
                                        intercept_receives=True),
                           tag="intercept-on")
    off = cached_config_run(paper_config(APP, nranks=4, timeslice=1.0,
                                         intercept_receives=False),
                            tag="intercept-off", live=True)
    missed = sum(nic.dma_missed_pages for nic in off.job.nics)
    return on.ib(), off.ib(), missed


def test_ablation_recv_intercept(benchmark):
    stats_on, stats_off, missed = benchmark.pedantic(build_rows, rounds=1,
                                                     iterations=1)
    lines = [
        f"workload {APP} (all-to-all transposes every iteration)",
        f"interception ON  : avg IB {stats_on.avg_mbps:6.1f} MB/s "
        f"(received data faults through the bounce-buffer copy)",
        f"interception OFF : avg IB {stats_off.avg_mbps:6.1f} MB/s "
        f"(NIC DMA invisible to the tracker)",
        f"undercount       : {1 - stats_off.avg_mbps / stats_on.avg_mbps:.0%}",
        f"pages modified without being recorded: {missed}",
        "",
        "an incremental checkpoint built on the OFF trace would lose every",
        "one of those pages on recovery",
    ]
    report("Ablation: receive interception vs raw QsNet DMA", lines,
           "ablation_recv_intercept.txt")

    # without interception a large share of FT's IWS disappears
    assert stats_off.avg_mbps < stats_on.avg_mbps * 0.85
    assert missed > 0

"""Ablation: page-granularity false sharing versus dcp block size.

Page-granular incremental checkpointing charges a whole page to stable
storage for every dirty byte; the dcp mode (sub-page differential
blocks) recovers that waste.  This ablation measures the gap from real
captures -- the same Sage workload checkpointed page-granular and at
sub-page block sizes across page sizes -- and quantifies how the false
sharing grows with the page and shrinks with the block.
"""

from conftest import report

from repro.cluster.experiment import paper_config
from repro.feasibility import false_sharing_ablation, markdown_table
from repro.units import KiB

APP = "sage-100MB"
PAGE_SIZES = [16 * KiB, 64 * KiB]
BLOCK_SIZES = [256, 4 * KiB]


def build_cells():
    config = paper_config(APP, nranks=8, timeslice=0.5, run_duration=6.0,
                          ckpt_transport="estimate",
                          ckpt_interval_slices=2, ckpt_full_every=4)
    return false_sharing_ablation(config, PAGE_SIZES, BLOCK_SIZES)


def test_ablation_false_sharing(benchmark):
    cells = benchmark.pedantic(build_cells, rounds=1, iterations=1)
    table = markdown_table(cells)
    report(f"Ablation: page-granularity false sharing ({APP}, 8 ranks)",
           table.splitlines(), "ablation_false_sharing.txt")

    by = {(c.page_size, c.block_size): c for c in cells}
    for ps in PAGE_SIZES:
        base = by[(ps, ps)]
        assert base.page_mode_bytes > 0 and base.waste == 0.0
        blocks = sorted(b for b in BLOCK_SIZES if b < ps)
        # sub-page blocks can only shrink the delta, and finer blocks
        # shrink it at least as much as coarser ones
        for fine, coarse in zip(blocks, blocks[1:]):
            assert by[(ps, fine)].dcp_bytes <= by[(ps, coarse)].dcp_bytes
        for bs in blocks:
            assert by[(ps, bs)].dcp_bytes <= base.page_mode_bytes

    # bigger pages charge more to stable storage for the same writes --
    # that growth is pure false sharing, and sub-page blocks recover at
    # least as many bytes there (the dirtied *bytes* don't depend on
    # the page size, only the page-rounding of the charge does)
    assert by[(64 * KiB, 64 * KiB)].page_mode_bytes \
        > by[(16 * KiB, 16 * KiB)].page_mode_bytes
    saved_64 = by[(64 * KiB, 256)].page_mode_bytes - by[(64 * KiB, 256)].dcp_bytes
    saved_16 = by[(16 * KiB, 256)].page_mode_bytes - by[(16 * KiB, 256)].dcp_bytes
    assert saved_64 >= saved_16 > 0
    # and the recovered savings are real at the paper's 16 KiB pages
    assert by[(16 * KiB, 256)].dcp_bytes < by[(16 * KiB, 16 * KiB)].page_mode_bytes

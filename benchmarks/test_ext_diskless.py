"""Extension: checkpoint sink comparison -- SCSI disk, RAID stripe,
diskless (buddy memory over QsNet).

The paper treats the network and the disk as the two candidate
bottlenecks (section 3).  This bench runs the same coordinated
incremental checkpointing workload against three sinks and compares
commit latencies -- the time from a checkpoint boundary until the global
sequence is durable, which bounds how frequently checkpoints can be
taken.
"""

from conftest import report

from repro.apps.synthetic import SyntheticApp, small_spec
from repro.checkpoint import CheckpointEngine
from repro.instrument import InstrumentationLibrary, TrackerConfig
from repro.mpi import MPIJob
from repro.sim import Engine
from repro.storage import Disk, DisklessSink, SCSI_ULTRA320, StorageArray
from repro.units import GiB, fmt_seconds

SPEC = small_spec(name="sink-compare", footprint_mb=64, main_mb=24,
                  period=2.0, passes=1.0, comm_mb=0.5)


def run_with(sink_factory):
    engine = Engine()
    app = SyntheticApp(SPEC, n_iterations=8)
    job = MPIJob(engine, 2, process_factory=app.process_factory(engine))
    lib = InstrumentationLibrary(TrackerConfig(timeslice=1.0)).install(job)
    ckpt = CheckpointEngine(job, lib, interval_slices=2, full_every=10 ** 6,
                            keep_payloads=False,
                            storage_factory=lambda rank: sink_factory(engine, rank))
    job.launch(app.make_body())
    engine.run(detect_deadlock=True)
    latencies = [gc.commit_latency for gc in ckpt.committed()]
    return sum(latencies) / len(latencies)


def build_rows():
    return {
        "SCSI disk (320 MB/s)": run_with(
            lambda eng, rank: Disk(eng, SCSI_ULTRA320)),
        "RAID-0 x4 stripe": run_with(
            lambda eng, rank: StorageArray(eng, 4, SCSI_ULTRA320)),
        "diskless (QsNet buddy)": run_with(
            lambda eng, rank: DisklessSink(eng, capacity=4 * GiB)),
    }


def test_ext_diskless(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    lines = [f"workload: {SPEC.footprint_mb:.0f} MB footprint, incremental "
             f"checkpoint every 2 s",
             ""]
    for name, latency in rows.items():
        lines.append(f"  {name:24s} mean commit latency {fmt_seconds(latency)}")
    report("Extension: checkpoint sink comparison", lines,
           "ext_diskless.txt")

    disk = rows["SCSI disk (320 MB/s)"]
    raid = rows["RAID-0 x4 stripe"]
    diskless = rows["diskless (QsNet buddy)"]
    # striping beats the single disk; the network beats both for these
    # delta sizes (QsNet at 900 MB/s, no seek)
    assert raid < disk
    assert diskless < disk
    # all commit within a fraction of the checkpoint interval
    assert max(rows.values()) < 1.0

"""Table 4: maximum and average incremental bandwidth at a 1 s timeslice.

This is the paper's headline measurement: even the most demanding
application (Sage-1000MB) averages under 100 MB/s per process.
"""

from conftest import PAPER_ORDER, TABLE4, cached_run, report, within


def build_table4():
    return {name: cached_run(name, timeslice=1.0).ib()
            for name in PAPER_ORDER}


def test_table4_bandwidth(benchmark):
    rows = benchmark.pedantic(build_table4, rounds=1, iterations=1)
    lines = [f"{'Application':14s} {'Max (sim)':>10s} {'Max (paper)':>12s} "
             f"{'Avg (sim)':>10s} {'Avg (paper)':>12s}"]
    for name in PAPER_ORDER:
        s = rows[name]
        pmax, pavg = TABLE4[name]
        lines.append(f"{name:14s} {s.max_mbps:10.1f} {pmax:12.1f} "
                     f"{s.avg_mbps:10.1f} {pavg:12.1f}")
    report("Table 4: bandwidth requirements (MB/s), timeslice 1 s", lines,
           "table4.txt")

    for name in PAPER_ORDER:
        s = rows[name]
        pmax, pavg = TABLE4[name]
        assert within(s.avg_mbps, pavg, rel=0.15), (name, s.avg_mbps, pavg)
        assert within(s.max_mbps, pmax, rel=0.15), (name, s.max_mbps, pmax)

    avg = {n: rows[n].avg_mbps for n in PAPER_ORDER}
    # the orderings the paper's narrative relies on
    assert avg["ft"] > avg["sage-1000MB"] > avg["bt"]      # FT heaviest
    assert avg["sage-1000MB"] > avg["sage-500MB"] > avg["sage-100MB"] \
        > avg["sage-50MB"]                                  # size ordering
    assert avg["lu"] < 15                                   # LU lightest NAS
    # everything under 100 MB/s average -- the conclusion's number
    assert all(v < 100 for v in avg.values())
    # max >= avg everywhere; equal for the sub-second NAS kernels
    for name in PAPER_ORDER:
        s = rows[name]
        assert s.max_mbps >= s.avg_mbps - 1e-6
    for name in ("sp", "lu"):
        s = rows[name]
        assert within(s.max_mbps, s.avg_mbps, rel=0.05), name

"""Ablation: closed-form IB model versus simulation.

The workload models are analytic, so the expected IB(timeslice) has a
closed form (see :mod:`repro.analytic.model`).  This bench validates the
theory against the simulated measurements across applications and
timeslices -- the consistency check that the simulator measures what the
models intend.
"""

from conftest import cached_run, report

from repro.analytic import predict_ib
from repro.apps import paper_spec

CASES = [("sweep3d", 1.0), ("sweep3d", 5.0), ("sweep3d", 20.0),
         ("bt", 1.0), ("bt", 10.0),
         ("lu", 1.0), ("lu", 5.0),
         ("sp", 1.0),
         ("sage-1000MB", 1.0), ("sage-1000MB", 20.0),
         ("sage-100MB", 1.0)]


def build_rows():
    rows = []
    for name, ts in CASES:
        pred = predict_ib(paper_spec(name), ts)
        sim = cached_run(name, timeslice=ts, nranks=2).ib()
        rows.append((name, ts, pred, sim))
    return rows


def test_ablation_analytic(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    lines = [f"  {'app':14s} {'ts':>5s} {'avg theory':>11s} {'avg sim':>9s} "
             f"{'max theory':>11s} {'max sim':>9s}"]
    worst = 0.0
    for name, ts, pred, sim in rows:
        lines.append(f"  {name:14s} {ts:4.0f}s {pred.avg_mbps:11.1f} "
                     f"{sim.avg_mbps:9.1f} {pred.max_mbps:11.1f} "
                     f"{sim.max_mbps:9.1f}")
        if sim.avg_mbps > 1:
            worst = max(worst, abs(pred.avg_mbps - sim.avg_mbps) / sim.avg_mbps)
    lines.append(f"worst relative error on the average IB: {worst:.0%}")
    report("Ablation: closed-form model vs simulation", lines,
           "ablation_analytic.txt")

    for name, ts, pred, sim in rows:
        assert abs(pred.avg_mbps - sim.avg_mbps) <= \
            max(0.30 * sim.avg_mbps, 1.5), (name, ts, pred.avg_mbps,
                                            sim.avg_mbps)
        assert abs(pred.max_mbps - sim.max_mbps) <= \
            max(0.35 * sim.max_mbps, 1.5), (name, ts, pred.max_mbps,
                                            sim.max_mbps)

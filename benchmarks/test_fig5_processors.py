"""Fig 5: average IB versus timeslice for 8, 16, 32 and 64 processors
(Sage-1000MB under weak scaling).

Shape requirements: the processor count barely moves the per-process IB,
and what effect exists is a slight *decrease* at larger counts (the
paper's argument that the results generalize to bigger machines).
"""

from conftest import cached_run, report

RANKS = [8, 16, 32, 64]
TIMESLICES = [1.0, 5.0, 20.0]
APP = "sage-1000MB"


def build_fig5():
    return {
        n: {ts: cached_run(APP, timeslice=ts, nranks=n).ib().avg_mbps
            for ts in TIMESLICES}
        for n in RANKS
    }


def test_fig5_processors(benchmark):
    curves = benchmark.pedantic(build_fig5, rounds=1, iterations=1)
    header = f"  {'timeslice':>10s} " + " ".join(f"{n:>4d}p" for n in RANKS)
    lines = [header]
    for ts in TIMESLICES:
        lines.append(f"  {ts:9.0f}s " + " ".join(
            f"{curves[n][ts]:5.1f}" for n in RANKS))
    report(f"Fig 5: average per-process IB (MB/s) for {APP}, weak scaling",
           lines, "fig5.txt")

    for ts in TIMESLICES:
        values = [curves[n][ts] for n in RANKS]
        # no significant influence: within 10% of the 8-processor value
        for v in values:
            assert abs(v - values[0]) <= 0.10 * values[0] + 0.2, (ts, values)
    # slightly lower at 64 than at 8 processors (the paper's contribution
    # claim), asserted at the 1 s timeslice where the effect is not
    # swamped by slice-quantization jitter
    fine = [curves[n][1.0] for n in RANKS]
    assert fine[-1] < fine[0], fine
    for a, b in zip(fine, fine[1:]):
        assert b <= a + 0.02 * fine[0], fine

"""Section 6.2: relevant properties of scientific applications.

Regenerates the qualitative observations of section 6.2 as measurements:

- every application's IWS series is periodic with its main iteration,
  detected automatically by autocorrelation (the run-time identification
  the paper anticipates resource managers doing);
- write activity comes in *bursts* whose duty cycle reflects the burst
  fraction of the period;
- communication bursts sit between processing bursts (measured as
  anti-correlation of the hot receive and hot write slices).
"""

import numpy as np
from conftest import PAPER_ORDER, TABLE3, cached_run, report, within

from repro.apps import paper_spec
from repro.metrics import burst_duty_cycle, detect_bursts
from repro.metrics.period import estimate_period_from_log

#: long-period applications whose burst structure a 1 s timeslice resolves
RESOLVABLE = ["sage-1000MB", "sage-500MB", "sage-100MB", "sage-50MB",
              "sweep3d"]


def build_rows():
    rows = {}
    for name in RESOLVABLE:
        spec = paper_spec(name)
        result = cached_run(name, timeslice=1.0, nranks=2)
        steady = result.log(0).after(result.init_end_time)
        period = estimate_period_from_log(result.log(0),
                                          skip_until=result.init_end_time)
        bursts = detect_bursts(steady.iws_mb())
        duty = burst_duty_cycle(steady.iws_mb())
        # anti-correlation of communication and processing bursts
        rx = steady.received_mb()
        iws = steady.iws_mb()
        k = max(3, len(iws) // 10)
        hot_rx = set(np.argsort(rx)[-k:])
        hot_iws = set(np.argsort(iws)[-k:])
        overlap = len(hot_rx & hot_iws) / k
        rows[name] = (period, len(bursts), duty, overlap, spec)
    return rows


def test_sec62_bursts(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    lines = [f"  {'application':14s} {'period':>8s} {'(paper)':>8s} "
             f"{'bursts':>7s} {'duty':>6s} {'rx/write overlap':>17s}"]
    for name in RESOLVABLE:
        period, nbursts, duty, overlap, spec = rows[name]
        lines.append(f"  {name:14s} {period:7.1f}s {TABLE3[name][0]:7.1f}s "
                     f"{nbursts:7d} {duty:6.0%} {overlap:17.0%}")
    lines.append("")
    lines.append("write bursts recur at the main-iteration period; "
                 "communication bursts fall between them (low overlap of "
                 "the hottest receive and write slices)")
    report("Section 6.2: periodic behaviour and burst placement", lines,
           "sec62.txt")

    for name in RESOLVABLE:
        period, nbursts, duty, overlap, spec = rows[name]
        # automatic period detection recovers Table 3's periods
        assert within(period, TABLE3[name][0], rel=0.2), (name, period)
        # several distinct bursts over the run
        assert nbursts >= 2, name
        # duty cycle in a sane band around the configured burst share
        assert 0.05 <= duty <= 0.9, (name, duty)
        # comm bursts mostly avoid the write bursts
        assert overlap <= 0.5, (name, overlap)

"""Performance micro-harness: engine throughput + the full Fig-2 sweep.

Times the layers this repo's speed depends on and writes the numbers to
``BENCH_sweep.json`` next to this file, so every perf PR has a
trajectory to compare against:

1. **engine** -- raw event throughput of :class:`repro.sim.Engine`
   (bulk schedule+drain, a self-rescheduling churn loop, and
   ``pending_events`` under heavy cancellation);
2. **pagetable** -- the sbrk growth pattern (thousands of small
   resizes, Sage's allocation phase);
3. **sweep** -- the full Fig-2 timeslice sweep (6 panels x 6
   timeslices, 2 ranks) cold-serial, cold-parallel (``--jobs``), and
   warm from the persistent result cache, with a bit-identical
   determinism check across all three;
4. **obs** -- the observability tax: the same experiment bare, with a
   disabled :class:`repro.obs.Observability` attached (must be free;
   gated separately by ``tools/check_obs_overhead.py``), and with a
   live tracer+metrics registry (allowed to cost; tracked here so the
   enabled price has a trajectory too);
5. **fig5** -- the macro benchmark: the full-scale 64-rank row of the
   paper's Fig 5 (sage-1000MB across three timeslices), the workload
   the matching/collective/alarm-path optimizations target.  Compared
   against ``PRE_PR_REFERENCE`` so the speedup is part of the record.
6. **scale** -- the 1024-rank row of the same workload (256 ranks in
   quick mode), with a same-session 64-rank anchor and the per-rank
   throughput comparison against its naive ``x nranks/64``
   extrapolation -- the regime the coalesced alarm path and sharded
   execution target;
7. **ckpt_transport** -- the contention study: the same Sage
   configuration with the flat write-out estimate and with checkpoints
   as real scheduled traffic (``--ckpt-transport network``), reporting
   achieved drain bandwidth, checkpoint-induced message delay,
   backpressure stalls, and run-to-run determinism of the ledger.
8. **dcp** -- sub-page differential checkpointing: the same Sage
   configuration in page-granular incremental mode and in dcp mode at
   256-byte blocks, reporting delta bytes both ways, the false-sharing
   bytes recovered, wall times, and a run-to-run determinism check of
   the dcp piece chain (kind, size, and digest of every stored piece).

``tools/perf_gate.py`` compares a fresh ``--quick`` run against the
committed ``BENCH_quick_reference.json`` and fails CI on regression.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf/bench_sweep.py [--jobs 4] [--quick]

``--quick`` shrinks everything for CI smoke runs.  ``seed_reference``
numbers in the JSON were measured at the growth seed (commit ac3c2e1)
on the same class of machine, for before/after comparison.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.cluster.experiment import paper_config
from repro.exec import ResultCache, SweepExecutor
from repro.mem.pagetable import PageTable
from repro.sim.engine import Engine

HERE = Path(__file__).parent
OUT_PATH = HERE / "BENCH_sweep.json"

FIG2_PANELS = ["sage-1000MB", "sweep3d", "bt", "sp", "ft", "lu"]
FIG2_TIMESLICES = [1.0, 2.0, 5.0, 10.0, 15.0, 20.0]

FIG5_APP = "sage-1000MB"
FIG5_NRANKS = 64
FIG5_TIMESLICES = [1.0, 5.0, 20.0]

FIG5_SCALE_NRANKS = 1024
FIG5_SCALE_QUICK_NRANKS = 256

#: measured at the growth seed (commit ac3c2e1), 1-CPU container --
#: the "before" of this harness's first trajectory point
SEED_REFERENCE = {
    "engine_run_events_per_s": 191_717,
    "engine_schedule_events_per_s": 531_545,
    "engine_churn_events_per_s": 330_963,
    "pending_events_100x_over_50k_s": 0.094,
    "pagetable_4000_small_grows_s": 0.221,
    "fig2_sweep_serial_s": 1.8,
}

#: measured immediately before the full-scale-throughput PR (commit
#: 4570746, same 1-CPU container) -- the "before" of its speedups
PRE_PR_REFERENCE = {
    "fig5_row_64rank_s": 8.257,
    "sage_1000MB_64_ts1_s": 4.723,
    "ft_64_ts1_s": 2.844,
    "fig2_sweep_serial_cold_s": 1.667,
    "fig2_sweep_parallel_cold_s": 2.401,
    "speedup_parallel_vs_serial": 0.69,
    "obs_enabled_overhead_pct": 11.73,
}


def bench_engine(n_events: int) -> dict:
    """Raw event-queue throughput."""
    eng = Engine()
    t0 = time.perf_counter()
    for i in range(n_events):
        eng.schedule(float(i % 1000) * 1e-3, int)
    schedule_rate = n_events / (time.perf_counter() - t0)
    t0 = time.perf_counter()
    eng.run()
    run_rate = n_events / (time.perf_counter() - t0)

    # self-rescheduling churn: small steady-state heap, the shape of
    # simulated processes trading wakeups
    eng = Engine()
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < n_events:
            eng.schedule(0.001, tick)

    for _ in range(100):
        eng.schedule(0.0, tick)
    t0 = time.perf_counter()
    eng.run()
    churn_rate = count[0] / (time.perf_counter() - t0)

    # pending_events under heavy cancellation (the O(1) counter; the
    # seed scanned the whole heap per call)
    eng = Engine()
    events = [eng.schedule(1.0, int) for _ in range(50_000)]
    for ev in events[::2]:
        ev.cancel()
    t0 = time.perf_counter()
    for _ in range(100):
        eng.pending_events()
    pending_time = time.perf_counter() - t0
    assert eng.pending_events() == 25_000

    return {
        "events": n_events,
        "schedule_events_per_s": round(schedule_rate),
        "run_events_per_s": round(run_rate),
        "churn_events_per_s": round(churn_rate),
        "pending_events_100x_over_50k_s": round(pending_time, 6),
    }


def bench_pagetable(n_grows: int) -> dict:
    """The sbrk pattern: many small grows (amortized reallocation)."""
    pt = PageTable(1000)
    t0 = time.perf_counter()
    for _ in range(n_grows):
        pt.resize(pt.npages + 16)
    elapsed = time.perf_counter() - t0
    return {
        "small_grows": n_grows,
        "final_pages": pt.npages,
        "elapsed_s": round(elapsed, 6),
    }


def bench_obs(duration: float, repeats: int) -> dict:
    """Wall-time of one experiment bare / disabled-obs / traced."""
    from repro.cluster.experiment import run_experiment
    from repro.obs import MetricsRegistry, Observability, Tracer

    def best(make_obs):
        best_s, obs = float("inf"), None
        for _ in range(repeats):
            config = paper_config("sweep3d", nranks=2,
                                  run_duration=duration)
            obs = make_obs()
            t0 = time.perf_counter()
            run_experiment(config, obs=obs)
            best_s = min(best_s, time.perf_counter() - t0)
        return best_s, obs

    base_s, _ = best(lambda: None)
    disabled_s, _ = best(lambda: Observability())
    enabled_s, obs = best(lambda: Observability(
        tracer=Tracer(wall_clock=None), metrics=MetricsRegistry()))
    return {
        "sim_duration_s": duration,
        "baseline_s": round(base_s, 4),
        "disabled_obs_s": round(disabled_s, 4),
        "enabled_obs_s": round(enabled_s, 4),
        "disabled_overhead_pct": round((disabled_s / base_s - 1) * 100, 2),
        "enabled_overhead_pct": round((enabled_s / base_s - 1) * 100, 2),
        "trace_events": len(obs.tracer.events),
        "metric_series": len(obs.metrics.names()),
    }


def bench_fig5(timeslices: list[float], repeats: int) -> dict:
    """The paper's Fig-5 64-rank row: one full-scale experiment per
    timeslice, best row time over ``repeats``.  IB values double as a
    cross-run determinism check (they must not vary between repeats)."""
    from repro.cluster.experiment import run_experiment

    best_row = float("inf")
    per_ts: dict[str, float] = {}
    ib: dict[str, float] = {}
    for _ in range(repeats):
        times: dict[str, float] = {}
        for ts in timeslices:
            t0 = time.perf_counter()
            result = run_experiment(paper_config(FIG5_APP, nranks=FIG5_NRANKS,
                                                 timeslice=ts))
            times[str(ts)] = round(time.perf_counter() - t0, 3)
            mbps = result.ib().avg_mbps
            prev = ib.setdefault(str(ts), mbps)
            assert prev == mbps, f"fig5 ts={ts} not deterministic"
        row = sum(times.values())
        if row < best_row:
            best_row = row
            per_ts = times
    out = {
        "app": FIG5_APP,
        "nranks": FIG5_NRANKS,
        "repeats": repeats,
        "row_s": round(best_row, 3),
        "per_timeslice_s": per_ts,
        "ib_avg_mbps": ib,
    }
    if timeslices == FIG5_TIMESLICES:   # full mode: comparable to pre-PR
        ref = PRE_PR_REFERENCE["fig5_row_64rank_s"]
        out["pre_pr_row_s"] = ref
        out["speedup_vs_pre_pr"] = round(ref / best_row, 2)
    return out


def bench_scale(quick: bool) -> dict:
    """The 1024-rank scale row (256 ranks, one timeslice, one app
    iteration in ``--quick`` mode): the fig5 workload at the rank count
    the paper's feasibility argument is actually about.

    A 64-rank anchor row is re-timed in the same session so the
    comparison is immune to machine drift, then scaled by ``nranks/64``
    into the *naive extrapolation*: the wall time the scale row would
    cost if per-rank cost stayed exactly what the 64-rank row implies.
    ``per_rank_throughput_gain`` is that prediction divided by the
    measured row -- above 1.0 means per-rank cost *shrank* with scale
    (the coalesced alarm path amortizing across ranks), below 1.0 means
    super-linear skeleton costs (collective message count grows
    n log n) still dominate.  Either way the recorded number is the
    measured truth, not the target."""
    from repro.cluster.experiment import run_experiment

    nranks = FIG5_SCALE_QUICK_NRANKS if quick else FIG5_SCALE_NRANKS
    timeslices = FIG5_TIMESLICES[-1:] if quick else FIG5_TIMESLICES
    # quick mode stops after the first app iteration (~150 sim-s);
    # full mode runs the fig5 row's default 600 sim-s
    duration = 150.0 if quick else None

    def timed_row(nr: int):
        times: dict[str, float] = {}
        final = 0.0
        for ts in timeslices:
            config = paper_config(FIG5_APP, nranks=nr, timeslice=ts,
                                  run_duration=duration)
            t0 = time.perf_counter()
            result = run_experiment(config)
            times[str(ts)] = round(time.perf_counter() - t0, 3)
            final = result.final_time
        return times, round(sum(times.values()), 3), final

    anchor_ts, anchor_row, final64 = timed_row(FIG5_NRANKS)
    big_ts, big_row, final_big = timed_row(nranks)
    factor = nranks / FIG5_NRANKS
    naive = round(anchor_row * factor, 3)
    sim_s = final_big * len(timeslices)
    return {
        "app": FIG5_APP,
        "nranks": nranks,
        "timeslices": timeslices,
        "sim_duration_s": round(final_big, 2),
        "anchor64_per_timeslice_s": anchor_ts,
        "anchor64_row_s": anchor_row,
        "per_timeslice_s": big_ts,
        "row_s": big_row,
        "naive_extrapolation_s": naive,
        "per_rank_throughput_gain": round(naive / big_row, 3),
        "rank_sim_s_per_wall_s": round(nranks * sim_s / big_row),
    }


def _ib_table(results_by_panel: dict) -> dict:
    """IBStats flattened to comparable plain values."""
    return {
        panel: {str(ts): [r.ib().avg_mbps, r.ib().max_mbps,
                          r.ib().avg_iws_mb, r.ib().max_iws_mb]
                for ts, r in by_ts.items()}
        for panel, by_ts in results_by_panel.items()
    }


def _run_fig2(jobs: int, cache: ResultCache | None,
              panels: list[str], timeslices: list[float]) -> dict:
    """All panels as ONE executor submission: a per-panel loop would put
    a pool barrier between panels (workers idle at each panel's tail);
    flattened, the pool pipelines straight through all 36 points."""
    configs = [paper_config(name, nranks=2).scaled(timeslice=ts)
               for name in panels for ts in timeslices]
    results = SweepExecutor(jobs=jobs, cache=cache).run_many(configs)
    it = iter(results)
    return {name: {ts: next(it) for ts in timeslices} for name in panels}


def bench_sweep(jobs: int, panels: list[str],
                timeslices: list[float]) -> dict:
    """Cold serial vs cold parallel vs warm cache, plus determinism.

    Both cold phases populate a (separate) cold cache, so they do
    identical work -- simulate every point and persist it -- and the
    parallel/serial ratio isolates parallelism against pool overhead
    instead of charging the cache writes to one side only.  Each cold
    phase is best-of-2 with a fresh cache per repeat: the first
    parallel repeat absorbs the one-time fork-pool spawn, the second
    measures the warm-pool steady state every later sweep sees."""
    repeats = 2
    with tempfile.TemporaryDirectory(prefix="bench-sweep-cache-") as tmp:
        serial_s = float("inf")
        for n in range(repeats):
            serial_cache = ResultCache(Path(tmp) / f"serial-cache{n}")
            t0 = time.perf_counter()
            serial = _run_fig2(jobs=1, cache=serial_cache, panels=panels,
                               timeslices=timeslices)
            serial_s = min(serial_s, time.perf_counter() - t0)

        parallel_s = float("inf")
        for n in range(repeats):
            cache = ResultCache(Path(tmp) / f"cache{n}")
            t0 = time.perf_counter()
            parallel = _run_fig2(jobs=jobs, cache=cache, panels=panels,
                                 timeslices=timeslices)
            parallel_s = min(parallel_s, time.perf_counter() - t0)

        t0 = time.perf_counter()
        warm = _run_fig2(jobs=jobs, cache=cache, panels=panels,
                         timeslices=timeslices)
        warm_s = time.perf_counter() - t0

    table = _ib_table(serial)
    deterministic = (table == _ib_table(parallel) == _ib_table(warm))
    if not deterministic:  # pragma: no cover - this is the alarm bell
        print("WARNING: sweep results differ across jobs/cache!",
              file=sys.stderr)
    return {
        "runs": len(panels) * len(timeslices),
        "jobs": jobs,
        "serial_cold_s": round(serial_s, 3),
        "parallel_cold_s": round(parallel_s, 3),
        "warm_cache_s": round(warm_s, 3),
        "speedup_parallel_vs_serial": round(serial_s / parallel_s, 2),
        "speedup_warm_vs_serial": round(serial_s / warm_s, 2),
        "bit_identical_across_modes": deterministic,
    }


def bench_contention(quick: bool) -> dict:
    """The checkpoint-transport contention study: the same configuration
    with the seed's flat write-out estimate and with checkpoints as real
    scheduled traffic sharing the application's injection links.

    Reports the measured drain bandwidth, the checkpoint-induced
    application-message delay, and a determinism check (two network-mode
    runs must produce identical transport ledgers)."""
    from dataclasses import asdict

    from repro.cluster.experiment import run_experiment

    app = "sage-100MB" if quick else "sage-1000MB"
    config = paper_config(app, nranks=4, timeslice=1.0,
                          run_duration=8.0 if quick else 20.0,
                          ckpt_transport="estimate",
                          ckpt_interval_slices=1, ckpt_full_every=4)

    def timed(cfg):
        t0 = time.perf_counter()
        result = run_experiment(cfg)
        return result, time.perf_counter() - t0

    est, est_s = timed(config)
    net_cfg = paper_config(app, nranks=4, timeslice=1.0,
                           run_duration=config.run_duration,
                           ckpt_transport="network",
                           ckpt_interval_slices=1, ckpt_full_every=4)
    net, net_s = timed(net_cfg)
    net2, _ = timed(net_cfg)
    stats = net.transport_stats
    verdict = net.measured_feasibility()
    return {
        "app": app,
        "timeslice": 1.0,
        "nranks": 4,
        "estimate_wall_s": round(est_s, 3),
        "network_wall_s": round(net_s, 3),
        "estimate_drained_mb": round(
            est.transport_stats.bytes_drained / 2**20, 1),
        "network_frames": stats.frames,
        "achieved_bandwidth_mbps": round(stats.achieved_bandwidth / 2**20, 1),
        "fraction_of_sustainable": round(verdict.fraction_of_sustainable, 4),
        "contention_delay_ms": round(stats.contention_delay * 1e3, 3),
        "contended_messages": stats.contended_messages,
        "stalls": stats.stalls,
        "stall_time_s": round(stats.stall_time, 4),
        "peak_queue_mb": round(stats.peak_queue_bytes / 2**20, 1),
        "keeping_up": verdict.keeping_up,
        "bit_identical_across_runs": asdict(stats) == asdict(
            net2.transport_stats),
    }


def bench_dcp(quick: bool) -> dict:
    """The sub-page differential checkpointing (dcp) study: the same
    Sage configuration checkpointed page-granular and at 256-byte dcp
    blocks.

    Reports the delta bytes written in both modes, the false-sharing
    bytes the block granularity recovered, wall times, and a
    determinism check (two dcp runs must store identical piece chains:
    same kind, size, and digest for every piece of every rank)."""
    from repro.cluster.experiment import run_experiment
    from repro.feasibility.falsesharing import delta_bytes

    app = "sage-100MB" if quick else "sage-1000MB"
    config = paper_config(app, nranks=4, timeslice=1.0,
                          run_duration=8.0 if quick else 20.0,
                          ckpt_transport="estimate",
                          ckpt_interval_slices=1, ckpt_full_every=4)
    block_size = 256

    def timed(cfg):
        t0 = time.perf_counter()
        result = run_experiment(cfg)
        return result, time.perf_counter() - t0

    def chain(result):
        store = result.ckpt.store
        return [(o.rank, o.seq, o.kind, o.nbytes, o.digest)
                for rank in range(store.nranks)
                for o in store.pieces(rank)]

    inc, inc_s = timed(config)
    dcp_cfg = config.scaled(ckpt_mode="dcp", dcp_block_size=block_size)
    dcp, dcp_s = timed(dcp_cfg)
    dcp2, _ = timed(dcp_cfg)

    page_bytes, captures = delta_bytes(inc)
    dcp_bytes, dcp_captures = delta_bytes(dcp)
    return {
        "app": app,
        "nranks": 4,
        "block_size": block_size,
        "incremental_wall_s": round(inc_s, 3),
        "row_s": round(dcp_s, 3),
        "delta_captures": dcp_captures,
        "page_mode_delta_mb": round(page_bytes / 2**20, 2),
        "dcp_delta_mb": round(dcp_bytes / 2**20, 2),
        "false_sharing_bytes_recovered": page_bytes - dcp_bytes,
        "dcp_over_page_ratio": round(dcp_bytes / page_bytes, 6)
                               if page_bytes else 1.0,
        "bit_identical_across_runs": chain(dcp) == chain(dcp2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel sweep")
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--out", default=str(OUT_PATH),
                        help="where to write the JSON record")
    args = parser.parse_args(argv)

    n_events = 50_000 if args.quick else 300_000
    n_grows = 500 if args.quick else 4000
    panels = FIG2_PANELS[-2:] if args.quick else FIG2_PANELS
    timeslices = FIG2_TIMESLICES[:2] if args.quick else FIG2_TIMESLICES

    print(f"engine: {n_events} events ...", flush=True)
    engine = bench_engine(n_events)
    print(f"  run {engine['run_events_per_s']:,} ev/s, "
          f"churn {engine['churn_events_per_s']:,} ev/s")
    print(f"pagetable: {n_grows} small grows ...", flush=True)
    pagetable = bench_pagetable(n_grows)
    print(f"  {pagetable['elapsed_s']:.3f}s")
    obs_duration = 30.0 if args.quick else 120.0
    print(f"obs: {obs_duration:.0f}s-sim run x3 variants ...", flush=True)
    obs = bench_obs(obs_duration, repeats=3 if args.quick else 5)
    print(f"  disabled {obs['disabled_overhead_pct']:+.2f}%, "
          f"enabled {obs['enabled_overhead_pct']:+.2f}% "
          f"({obs['trace_events']} events, "
          f"{obs['metric_series']} series)")
    print(f"sweep: {len(panels)}x{len(timeslices)} runs, "
          f"jobs={args.jobs} ...", flush=True)
    sweep = bench_sweep(args.jobs, panels, timeslices)
    print(f"  serial {sweep['serial_cold_s']}s, "
          f"parallel {sweep['parallel_cold_s']}s "
          f"({sweep['speedup_parallel_vs_serial']}x), "
          f"warm cache {sweep['warm_cache_s']}s "
          f"({sweep['speedup_warm_vs_serial']}x), "
          f"deterministic={sweep['bit_identical_across_modes']}")
    fig5_ts = FIG5_TIMESLICES[:1] if args.quick else FIG5_TIMESLICES
    print(f"fig5: {FIG5_APP} x {FIG5_NRANKS} ranks, "
          f"timeslices {fig5_ts} ...", flush=True)
    fig5 = bench_fig5(fig5_ts, repeats=1 if args.quick else 2)
    line = f"  row {fig5['row_s']}s"
    if "speedup_vs_pre_pr" in fig5:
        line += (f" (pre-PR {fig5['pre_pr_row_s']}s, "
                 f"{fig5['speedup_vs_pre_pr']}x)")
    print(line)
    scale_nranks = (FIG5_SCALE_QUICK_NRANKS if args.quick
                    else FIG5_SCALE_NRANKS)
    print(f"scale: {FIG5_APP} x {scale_nranks} ranks ...", flush=True)
    scale = bench_scale(args.quick)
    print(f"  row {scale['row_s']}s (64-rank anchor "
          f"{scale['anchor64_row_s']}s, naive x{scale_nranks // FIG5_NRANKS} "
          f"extrapolation {scale['naive_extrapolation_s']}s, "
          f"per-rank throughput gain {scale['per_rank_throughput_gain']}x)")
    print("ckpt transport: estimate vs network ...", flush=True)
    contention = bench_contention(args.quick)
    print(f"  {contention['app']}: drain "
          f"{contention['achieved_bandwidth_mbps']} MB/s "
          f"({contention['fraction_of_sustainable']:.1%} of sustainable), "
          f"contention {contention['contention_delay_ms']} ms over "
          f"{contention['contended_messages']} msg(s), "
          f"stalls {contention['stalls']}, "
          f"deterministic={contention['bit_identical_across_runs']}")
    print("dcp: incremental vs 256B blocks ...", flush=True)
    dcp = bench_dcp(args.quick)
    print(f"  {dcp['app']}: page-mode {dcp['page_mode_delta_mb']} MB, "
          f"dcp {dcp['dcp_delta_mb']} MB "
          f"({dcp['false_sharing_bytes_recovered']} B recovered, "
          f"ratio {dcp['dcp_over_page_ratio']}), "
          f"row {dcp['row_s']}s, "
          f"deterministic={dcp['bit_identical_across_runs']}")

    record = {
        "quick": args.quick,
        "cpus": os.cpu_count(),
        "python": sys.version.split()[0],
        "engine": engine,
        "pagetable": pagetable,
        "obs": obs,
        "sweep": sweep,
        "fig5": fig5,
        "scale": scale,
        "ckpt_transport": contention,
        "dcp": dcp,
        "seed_reference": SEED_REFERENCE,
        "pre_pr_reference": PRE_PR_REFERENCE,
    }
    out = Path(args.out)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out}")
    deterministic = (sweep["bit_identical_across_modes"]
                     and contention["bit_identical_across_runs"]
                     and dcp["bit_identical_across_runs"])
    return 0 if deterministic else 1


if __name__ == "__main__":
    raise SystemExit(main())

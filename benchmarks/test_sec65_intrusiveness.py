"""Section 6.5: intrusiveness of the instrumentation.

The paper reports a slowdown below 10 % for Sage-1000MB at a 1 s
timeslice, dominated by the page-fault handler and decreasing for longer
timeslices (data reuse means fewer faults per unit time).

The bench runs Sage-1000MB with overhead charging on (fault cost and
re-protect sweep stretch the application's clock) against an
uninstrumented baseline, across timeslices.
"""

from conftest import cached_config_run, report

from repro.cluster.experiment import paper_config, run_uninstrumented

TIMESLICES = [1.0, 2.0, 5.0, 10.0, 20.0]
APP = "sage-1000MB"


def build_slowdowns():
    base_cfg = paper_config(APP, nranks=2, run_duration=300.0)
    baseline = run_uninstrumented(base_cfg)
    rows = {}
    for ts in TIMESLICES:
        cfg = base_cfg.scaled(timeslice=ts, charge_overhead=True)
        res = cached_config_run(cfg, tag="intrusiveness")
        rows[ts] = (res.slowdown_vs(baseline),
                    res.log(0).total_overhead(),
                    res.log(0).faults().sum())
    return rows


def test_sec65_intrusiveness(benchmark):
    rows = benchmark.pedantic(build_slowdowns, rounds=1, iterations=1)
    lines = [f"  {'timeslice':>10s} {'slowdown':>9s} {'overhead':>10s} "
             f"{'faults':>10s}"]
    for ts in TIMESLICES:
        slow, overhead, faults = rows[ts]
        lines.append(f"  {ts:9.0f}s {slow:9.2%} {overhead:9.2f}s "
                     f"{faults:10d}")
    lines.append("")
    lines.append("paper: slowdown lower than 10% at a 1 s timeslice, "
                 "decreasing with the timeslice")
    report(f"Section 6.5: instrumentation slowdown for {APP}", lines,
           "sec65.txt")

    slowdowns = [rows[ts][0] for ts in TIMESLICES]
    # below 10% at 1 s, and measurably above zero
    assert 0.001 < slowdowns[0] < 0.10, slowdowns[0]
    # decreasing with the timeslice (the reuse argument)
    assert slowdowns[-1] < slowdowns[0]
    for a, b in zip(slowdowns, slowdowns[1:]):
        assert b <= a * 1.25 + 1e-4, slowdowns
    # fewer faults per unit time at longer timeslices
    faults = [rows[ts][2] for ts in TIMESLICES]
    assert faults[-1] < faults[0]

"""Section 6.6: technological trends.

Extrapolates the feasibility margin: application write rates are bounded
by the memory system (+7 %/yr against +60 %/yr processors), while
network and storage bandwidth grow faster -- 10 Gb/s InfiniBand by 2005
-- so incremental checkpointing becomes *more* effective over time.
"""

from conftest import cached_run, report

from repro.feasibility import TechnologyEnvelope, TrendModel
from repro.net import INFINIBAND_10G
from repro.units import MiB


def build_trends():
    demand = cached_run("sage-1000MB", timeslice=1.0).ib().avg_mbps * MiB
    trends = TrendModel()
    envelope = TechnologyEnvelope()
    return demand, trends, trends.margin_trajectory(demand, envelope, years=6)


def test_sec66_trends(benchmark):
    demand, trends, trajectory = benchmark.pedantic(build_trends, rounds=1,
                                                    iterations=1)
    lines = [f"most demanding application (Sage-1000MB): "
             f"{demand / MiB:.1f} MB/s at a 1 s timeslice",
             f"growth rates: processor {trends.processor_growth:.0%}/yr, "
             f"memory {trends.memory_growth:.0%}/yr, application writes "
             f"{trends.app_write_growth:.0%}/yr, network "
             f"{trends.network_growth:.0%}/yr, storage "
             f"{trends.storage_growth:.0%}/yr",
             "",
             f"  {'year':>6s} {'demand/bottleneck':>18s}"]
    for year, margin in trajectory:
        lines.append(f"  {year:6d} {margin:18.1%}")
    report("Section 6.6: technological trends", lines, "sec66.txt")

    margins = [m for _, m in trajectory]
    # monotone improvement, starting from the ~25%-of-disk 2004 point
    assert 0.15 < margins[0] < 0.35
    assert all(b < a for a, b in zip(margins, margins[1:]))
    # the paper's 2005 anchor: 10 Gb/s InfiniBand exceeds QsNet II
    env_2005 = trends.project(TechnologyEnvelope(), 1)
    assert INFINIBAND_10G.bandwidth > TechnologyEnvelope().network_bandwidth
    assert env_2005.network_bandwidth > TechnologyEnvelope().network_bandwidth

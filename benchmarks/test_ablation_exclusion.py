"""Ablation: the memory-exclusion optimization (section 4.2).

"The pages belonging to unmapped areas are not taken into account
because they will not be used by the application in the future" -- this
matters exactly for Sage-style codes whose temporaries are mmap'ed
(Fortran90) and freed every iteration.  A Fortran77 build of the same
workload keeps its temporaries on the heap, where their dirty pages stay
mapped and must be saved.
"""

from conftest import report

from repro.apps.synthetic import SyntheticApp, small_spec
from repro.checkpoint import CheckpointEngine
from repro.instrument import InstrumentationLibrary, TrackerConfig
from repro.mpi import MPIJob
from repro.proc.allocator import AllocStyle
from repro.sim import Engine
from repro.units import fmt_bytes


def run_style(style):
    # the F77 leg models a runtime whose arena never trims: freed
    # temporaries stay mapped (and dirty) on the heap
    trim = None if style is AllocStyle.F90 else 1 << 60
    spec = small_spec(name=f"excl-{style.value}", footprint_mb=16, main_mb=4,
                      period=2.0, passes=1.0, comm_mb=0.25,
                      temp_mb=8.0, temp_hold_fraction=0.55,
                      alloc_style=style, heap_trim_threshold=trim)
    engine = Engine()
    app = SyntheticApp(spec, n_iterations=8)
    job = MPIJob(engine, 2, process_factory=app.process_factory(engine))
    lib = InstrumentationLibrary(TrackerConfig(timeslice=2.0)).install(job)
    ckpt = CheckpointEngine(job, lib, interval_slices=1, full_every=10 ** 6,
                            keep_payloads=False)
    job.launch(app.make_body())
    engine.run(detect_deadlock=True)
    return ckpt.bytes_to_storage()


def build_rows():
    return run_style(AllocStyle.F90), run_style(AllocStyle.F77)


def test_ablation_exclusion(benchmark):
    f90_bytes, f77_bytes = benchmark.pedantic(build_rows, rounds=1,
                                              iterations=1)
    lines = [
        "same workload, 8 MB of temporaries allocated+freed per iteration",
        f"F90 allocator (temps mmap'ed, excluded on munmap): "
        f"{fmt_bytes(f90_bytes)} to storage",
        f"F77 allocator (temps on the heap, stay mapped)   : "
        f"{fmt_bytes(f77_bytes)} to storage",
        f"memory exclusion saves {1 - f90_bytes / f77_bytes:.0%} of the "
        f"checkpoint traffic",
    ]
    report("Ablation: memory exclusion of unmapped temporaries", lines,
           "ablation_exclusion.txt")

    # excluding the freed temporaries must save a substantial share
    assert f90_bytes < 0.8 * f77_bytes

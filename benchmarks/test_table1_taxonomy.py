"""Table 1: comparison of the checkpointing abstraction levels.

The table is qualitative; the bench renders it from the structured
taxonomy and checks the orderings the paper's argument rests on.
"""

from conftest import report

from repro.feasibility import ABSTRACTION_LEVELS
from repro.feasibility.taxonomy import render_table1


def build_table1() -> str:
    return render_table1()


def test_table1_taxonomy(benchmark):
    text = benchmark.pedantic(build_table1, rounds=1, iterations=1)
    report("Table 1: checkpointing abstraction levels", text.splitlines(),
           "table1.txt")
    by_name = {l.name: l for l in ABSTRACTION_LEVELS}
    os_level = by_name["Operating system"]
    # the paper's conclusion: the OS level offers the transparency and
    # flexibility of hardware without its (very low) portability
    hw = by_name["Hardware"]
    assert os_level.transparency == hw.transparency
    assert os_level.flexibility == hw.flexibility
    assert os_level.portability > hw.portability

"""Ablation: burst-aware versus fixed checkpoint placement (section 6.2).

The paper suggests checkpointing at iteration boundaries rather than
inside processing bursts.  The cost model: pages the application
rewrites while a checkpoint is still streaming to disk must be copied
first (copy-on-write exposure).  Burst-aware placement cuts that
exposure sharply.
"""

from conftest import cached_run, report

from repro.checkpoint import CheckpointPlanner
from repro.storage import SCSI_ULTRA320
from repro.units import fmt_bytes

APP = "sage-100MB"


def build_rows():
    result = cached_run(APP, timeslice=1.0, nranks=2, run_duration=160.0)
    log = result.log(0)
    planner = CheckpointPlanner(log, skip_until=result.init_end_time)
    steady = log.after(result.init_end_time)
    interval = max(1, round(result.config.spec.iteration_period))
    delta = steady.iws_bytes().mean() * interval
    write_duration = delta / SCSI_ULTRA320.bandwidth
    fixed = planner.fixed_plan(interval)
    aware = planner.burst_aware_plan(interval)
    return {
        "interval": interval,
        "write_duration": write_duration,
        "fixed": (fixed, planner.plan_cost(fixed, write_duration)),
        "aware": (aware, planner.plan_cost(aware, write_duration)),
        "bursts": planner.bursts(),
    }


def test_ablation_planner(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    fixed_plan, fixed_cost = rows["fixed"]
    aware_plan, aware_cost = rows["aware"]
    lines = [
        f"workload {APP}: checkpoint every {rows['interval']} slices, "
        f"stream time {rows['write_duration']:.2f} s, "
        f"{len(rows['bursts'])} bursts detected",
        f"fixed placement      : {len(fixed_plan)} checkpoints, "
        f"copy-on-write exposure {fmt_bytes(fixed_cost)}",
        f"burst-aware placement: {len(aware_plan)} checkpoints, "
        f"copy-on-write exposure {fmt_bytes(aware_cost)}",
    ]
    if fixed_cost:
        lines.append(f"saving: {1 - aware_cost / fixed_cost:.0%}")
    report("Ablation: burst-aware checkpoint placement", lines,
           "ablation_planner.txt")

    assert len(rows["bursts"]) >= 2
    assert len(aware_plan) >= len(fixed_plan) - 1  # frequency preserved
    assert aware_cost <= fixed_cost
    # with one checkpoint per ~iteration, at least a 30% exposure cut
    assert aware_cost < 0.7 * fixed_cost

"""Ablation: incremental versus full checkpointing traffic.

The quantitative core of the paper's case for *incremental*: at a short
checkpoint interval, saving only the IWS moves far less data to stable
storage than re-saving the whole footprint, by roughly
footprint / IWS-per-interval.
"""

from conftest import report

from repro.apps.synthetic import SyntheticApp, small_spec
from repro.checkpoint import CheckpointEngine
from repro.instrument import InstrumentationLibrary, TrackerConfig
from repro.mpi import MPIJob
from repro.sim import Engine
from repro.units import MiB, fmt_bytes

SPEC = small_spec(name="ablation-app", footprint_mb=32, main_mb=8,
                  period=2.0, passes=1.0, comm_mb=0.5)


def run_engine(full_every):
    engine = Engine()
    app = SyntheticApp(SPEC, n_iterations=10)
    job = MPIJob(engine, 2, process_factory=app.process_factory(engine))
    lib = InstrumentationLibrary(TrackerConfig(timeslice=1.0)).install(job)
    ckpt = CheckpointEngine(job, lib, interval_slices=2,
                            full_every=full_every, keep_payloads=False)
    job.launch(app.make_body())
    engine.run(detect_deadlock=True)
    return ckpt


def build_rows():
    incremental = run_engine(full_every=10 ** 6)  # full once, then deltas
    full_only = run_engine(full_every=1)          # every checkpoint full
    return incremental, full_only


def test_ablation_full_vs_incremental(benchmark):
    incremental, full_only = benchmark.pedantic(build_rows, rounds=1,
                                                iterations=1)
    inc_bytes = incremental.bytes_to_storage()
    full_bytes = full_only.bytes_to_storage()
    n_inc = len(incremental.committed())
    n_full = len(full_only.committed())
    lines = [
        f"workload: {SPEC.footprint_mb:.0f} MB footprint, "
        f"{SPEC.main_region_mb:.0f} MB working set, checkpoint every 2 s",
        f"incremental policy : {n_inc} checkpoints, "
        f"{fmt_bytes(inc_bytes)} to storage",
        f"full-only policy   : {n_full} checkpoints, "
        f"{fmt_bytes(full_bytes)} to storage",
        f"traffic ratio      : {full_bytes / inc_bytes:.1f}x",
    ]
    report("Ablation: incremental vs full checkpoint traffic", lines,
           "ablation_full_vs_incremental.txt")

    assert n_inc == n_full > 0
    # incremental saves a lot: at least 2x here (working set is 1/4 of
    # the footprint and only part of it is touched per interval)
    assert full_bytes > 2.0 * inc_bytes
    # the average incremental piece approximates the per-interval IWS
    per_ckpt = inc_bytes / n_inc / 2  # per rank
    assert per_ckpt < SPEC.footprint_bytes * 0.75

"""Table 2: maximum and average memory footprint per application.

Regenerates the footprint measurements from instrumented runs at a 1 s
timeslice.  Sage's footprint oscillates (dynamic allocation of
temporaries); the static Fortran77 codes hold constant.
"""

from conftest import PAPER_ORDER, TABLE2, cached_run, report, within


def build_table2():
    rows = {}
    for name in PAPER_ORDER:
        result = cached_run(name, timeslice=1.0)
        rows[name] = result.footprint()
    return rows


def test_table2_footprint(benchmark):
    rows = benchmark.pedantic(build_table2, rounds=1, iterations=1)
    lines = [f"{'Application':14s} {'Max (sim)':>10s} {'Max (paper)':>12s} "
             f"{'Avg (sim)':>10s} {'Avg (paper)':>12s}"]
    for name in PAPER_ORDER:
        fp = rows[name]
        pmax, pavg = TABLE2[name]
        lines.append(f"{name:14s} {fp.max_mb:10.1f} {pmax:12.1f} "
                     f"{fp.avg_mb:10.1f} {pavg:12.1f}")
    report("Table 2: memory footprint size (MB)", lines, "table2.txt")

    for name in PAPER_ORDER:
        fp = rows[name]
        pmax, pavg = TABLE2[name]
        assert within(fp.max_mb, pmax, rel=0.12), (name, fp.max_mb, pmax)
        assert within(fp.avg_mb, pavg, rel=0.12), (name, fp.avg_mb, pavg)
    # Sage oscillates, the static codes do not
    for name in PAPER_ORDER:
        fp = rows[name]
        if name.startswith("sage"):
            assert fp.max_mb > fp.avg_mb * 1.05, name
        else:
            assert within(fp.max_mb, fp.avg_mb, rel=0.02), name

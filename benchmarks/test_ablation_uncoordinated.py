"""Ablation: coordinated versus uncoordinated checkpoint schedules.

The paper builds on coordinated checkpoints at common timeslice
boundaries, enabled by the applications' bulk synchrony.  This ablation
quantifies the alternative it implicitly rejects: with independent
per-rank checkpoint clocks, orphan messages force cascading rollbacks
(the domino effect), so a failure discards far more than one interval
of work.  Measured on a real message log from a communicating run.
"""

import numpy as np
from conftest import report

from repro.apps.synthetic import SyntheticApp, small_spec
from repro.checkpoint import (
    MessageLogger,
    UncoordinatedSchedule,
    lost_work,
    recovery_line,
)
from repro.mpi import MPIJob
from repro.sim import Engine

NRANKS = 6
INTERVAL = 2.0
# a chatty workload: halo exchanges every iteration keep ranks entangled
SPEC = small_spec(name="domino-probe", footprint_mb=4, main_mb=2,
                  period=0.5, comm_mb=0.5, pattern="grid2d",
                  comm_rounds=2, global_reduction=True)


def build_rows():
    engine = Engine()
    app = SyntheticApp(SPEC, run_duration=30.0)
    job = MPIJob(engine, NRANKS, process_factory=app.process_factory(engine))
    logger = MessageLogger(job)
    job.launch(app.make_body())
    engine.run(detect_deadlock=True)
    horizon = engine.now

    failure_times = np.linspace(8.0, horizon - 2.0, 12)
    rows = {}
    for label, stagger in (("coordinated", 0.0), ("uncoordinated", 1.0)):
        sched = UncoordinatedSchedule(NRANKS, INTERVAL, horizon,
                                      stagger_fraction=stagger)
        losses = []
        depths = []
        for ft in failure_times:
            line = recovery_line(sched, logger.messages, float(ft))
            losses.append(lost_work(line, float(ft)))
            depths.append(float(ft) - min(line))
        rows[label] = (float(np.mean(losses)), float(np.max(depths)))
    rows["messages"] = len(logger.messages)
    return rows


def test_ablation_uncoordinated(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    coord_loss, coord_depth = rows["coordinated"]
    unco_loss, unco_depth = rows["uncoordinated"]
    lines = [
        f"{NRANKS} ranks, checkpoint interval {INTERVAL:.0f} s, "
        f"{rows['messages']} messages logged, failures sampled over the run",
        "",
        f"  coordinated   : mean lost work {coord_loss:6.1f} rank-s, "
        f"worst rollback depth {coord_depth:5.1f} s",
        f"  uncoordinated : mean lost work {unco_loss:6.1f} rank-s, "
        f"worst rollback depth {unco_depth:5.1f} s",
        "",
        f"staggered clocks + constant messaging -> orphan cascades: "
        f"{unco_loss / coord_loss:.1f}x the lost work.",
        "bulk-synchronous coordination (what the paper's timeslice "
        "boundaries give for free) caps the loss at one interval.",
    ]
    report("Ablation: coordinated vs uncoordinated checkpointing", lines,
           "ablation_uncoordinated.txt")

    # coordinated: rollback never deeper than one interval
    assert coord_depth <= INTERVAL + 1e-6
    # uncoordinated: the domino effect makes failures strictly costlier
    assert unco_loss > 1.5 * coord_loss
    assert unco_depth > INTERVAL
#!/usr/bin/env python
"""Scaling study: from 8 processors to BlueGene/L.

Two halves:

1. the paper's Fig 5 measurement -- per-process incremental bandwidth
   under weak scaling barely moves (slightly *down*) as the rank count
   grows, so per-process results generalize to larger machines;
2. the question the paper's introduction opens -- at BlueGene/L scale
   (failures every few hours), what checkpoint interval does the
   measured delta support and how efficient does the machine stay?
   (Young/Daly availability model fed by the simulated measurements,
   including a restore-time estimate read back from the checkpoint
   chains.)

Run:  python examples/scaling_study.py
"""

from repro.apps import paper_spec
from repro.cluster.experiment import paper_config, run_experiment, sweep_processors
from repro.feasibility import CheckpointCostModel, FailureModel, optimal_efficiency
from repro.units import MiB

APP = "sage-100MB"   # a fast-running Sage size for the demo


def main() -> None:
    spec = paper_spec(APP)
    print(f"=== weak scaling of {APP} (Fig 5) ===")
    config = paper_config(APP, timeslice=1.0)
    results = sweep_processors(config, [8, 16, 32, 64])
    for n, res in sorted(results.items()):
        stats = res.ib()
        print(f"  {n:3d} processors: avg {stats.avg_mbps:6.2f} MB/s per "
              f"process (footprint {res.footprint().max_mb:.0f} MB each)")
    print("  -> per-process demand does not grow with the machine\n")

    print("=== projecting to large machines (intro's motivation) ===")
    # per-process delta for a once-per-iteration checkpoint
    coarse = run_experiment(paper_config(
        APP, nranks=2, timeslice=spec.iteration_period))
    delta = int(coarse.log(0).after(coarse.init_end_time).iws_bytes().mean())
    cost = CheckpointCostModel(delta_bytes=delta,
                               storage_bandwidth=320 * MiB).cost
    print(f"measured incremental delta: {delta / MiB:.0f} MB/process "
          f"-> {cost:.2f} s per checkpoint at SCSI speed")

    node_mtbf_hours = 100_000.0
    for nodes in (1024, 8192, 65536):
        failures = FailureModel(node_mtbf=node_mtbf_hours * 3600,
                                nnodes=nodes, restart_time=300.0)
        tau, eff = optimal_efficiency(cost, failures)
        print(f"  {nodes:6d} nodes: system MTBF "
              f"{failures.system_mtbf / 3600:6.1f} h, optimal checkpoint "
              f"interval {tau / 60:5.1f} min, efficiency {eff:6.1%}")
    print("\nAt BlueGene/L scale the optimum lands at 'every few minutes' --")
    print("exactly the checkpoint frequency the paper shows the technology")
    print("of 2004 could already sustain.")


if __name__ == "__main__":
    main()

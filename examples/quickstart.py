#!/usr/bin/env python
"""Quickstart: measure the checkpoint bandwidth of one application.

Runs Sweep3D (one of the paper's workloads) on a simulated 4-rank
cluster with the dirty-page instrumentation attached, then prints the
metrics the paper is built around: the Incremental Working Set per
timeslice, the average/maximum Incremental Bandwidth, and the
feasibility verdict against 2004 technology.

Run:  python examples/quickstart.py
"""

from repro.cluster.experiment import paper_config, run_experiment
from repro.feasibility import FeasibilityAnalyzer
from repro.metrics import estimate_period
from repro.units import MiB


def main() -> None:
    # one call: build the cluster, preload the instrumentation library,
    # launch the calibrated application, run the virtual clock
    config = paper_config("sweep3d", nranks=4, timeslice=1.0,
                          run_duration=40.0)
    result = run_experiment(config)

    log = result.log(rank=0)
    print(f"application      : {config.spec.name}")
    print(f"ranks            : {config.nranks}")
    print(f"timeslice        : {config.timeslice} s")
    print(f"simulated time   : {result.final_time:.1f} s "
          f"({result.iterations} main iterations)")
    print(f"memory footprint : {result.footprint().as_row()}")

    print("\nIWS per timeslice (MB), after initialization:")
    steady = log.after(result.init_end_time)
    series = steady.iws_mb()
    print("  " + " ".join(f"{v:5.1f}" for v in series[:16]) + " ...")

    detected = estimate_period(steady.iws_bytes(), log.timeslice)
    print(f"\ndetected iteration period : {detected:.1f} s "
          f"(configured {config.spec.iteration_period} s)")

    stats = result.ib()
    print(f"incremental bandwidth     : avg {stats.avg_mbps:.1f} MB/s, "
          f"max {stats.max_mbps:.1f} MB/s")
    print(f"paper (Table 4)           : avg {config.spec.paper_avg_ib_1s} "
          f"MB/s, max {config.spec.paper_max_ib_1s} MB/s")

    verdict = FeasibilityAnalyzer().assess(config.spec.name, stats)
    print(f"\nfeasibility vs 2004 technology (QsNet II 900 MB/s, "
          f"SCSI 320 MB/s):")
    print("  " + verdict.as_row())


if __name__ == "__main__":
    main()

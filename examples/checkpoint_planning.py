#!/usr/bin/env python
"""Burst-aware checkpoint placement (section 6.2).

The paper observes that scientific codes alternate processing and
communication bursts, and that "it may not be convenient to checkpoint
during a processing burst, because pages are likely to be re-used in a
short amount of time."  This example quantifies that advice:

1. run Sage-100MB instrumented and detect its bursts automatically from
   the IWS series (the run-time identification the paper anticipates);
2. place checkpoints two ways -- a naive fixed interval, and the same
   frequency snapped to the quiet gaps between bursts;
3. compare the copy-on-write exposure of both plans: the bytes the
   application rewrites while each checkpoint is still streaming to
   disk.

Run:  python examples/checkpoint_planning.py
"""

from repro.checkpoint import CheckpointPlanner
from repro.cluster.experiment import paper_config, run_experiment
from repro.metrics import estimate_period
from repro.storage import SCSI_ULTRA320
from repro.units import MiB, fmt_bytes


def main() -> None:
    config = paper_config("sage-100MB", nranks=4, timeslice=1.0,
                          run_duration=160.0)
    result = run_experiment(config)
    log = result.log(0)
    steady = log.after(result.init_end_time)

    period = estimate_period(steady.iws_bytes(), log.timeslice)
    print(f"detected iteration period: {period:.0f} s "
          f"(configured {config.spec.iteration_period:.0f} s)")

    planner = CheckpointPlanner(log, skip_until=result.init_end_time)
    bursts = planner.bursts()
    print(f"detected {len(bursts)} processing bursts; duty cycle "
          f"{sum(b.length for b in bursts) / len(steady):.0%}")

    # checkpoint once per iteration; the stream must move one iteration's
    # delta through the SCSI disk
    interval = max(1, round(period / log.timeslice))
    delta_bytes = steady.iws_bytes().mean() * interval
    write_duration = delta_bytes / SCSI_ULTRA320.bandwidth
    print(f"\ncheckpoint interval: {interval} slices "
          f"(~{fmt_bytes(delta_bytes)} per checkpoint, "
          f"{write_duration:.1f} s to stream at "
          f"{SCSI_ULTRA320.bandwidth / MiB:.0f} MB/s)")

    fixed = planner.fixed_plan(interval)
    aware = planner.burst_aware_plan(interval)
    cost_fixed = planner.plan_cost(fixed, write_duration)
    cost_aware = planner.plan_cost(aware, write_duration)

    print(f"\nfixed-interval plan   : {len(fixed)} checkpoints, "
          f"copy-on-write exposure {fmt_bytes(cost_fixed)}")
    print(f"burst-aware plan      : {len(aware)} checkpoints, "
          f"copy-on-write exposure {fmt_bytes(cost_aware)}")
    if cost_fixed > 0:
        saving = 1 - cost_aware / cost_fixed
        print(f"burst-aware placement cuts copy-on-write pressure by "
              f"{saving:.0%}")
    print("\n(a production system would get the same boundaries from the "
          "global\n operators of STORM-like resource managers, as the "
          "paper suggests)")


if __name__ == "__main__":
    main()

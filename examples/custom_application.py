#!/usr/bin/env python
"""Instrumenting your own application with the phase DSL.

The calibrated paper workloads are built from the same pieces exposed
here: define a workload spec (footprint, rhythm, communication), or go
lower-level and compose iteration phases by hand, then measure its
incremental-bandwidth profile and ask whether your cluster could
checkpoint it every second.

Run:  python examples/custom_application.py
"""

from repro.apps.phases import (
    AllocPhase,
    ComputePhase,
    FreePhase,
    HaloExchangePhase,
    IdlePhase,
)
from repro.apps.synthetic import SyntheticApp, small_spec
from repro.cluster.experiment import ExperimentConfig
from repro.cluster import run_experiment
from repro.feasibility import FeasibilityAnalyzer
from repro.units import MiB


def custom_phases(rc):
    """One iteration of a made-up 'ocean model': a temporary scratch
    grid, two solver sweeps with a halo exchange between them, and a
    quiet I/O gap."""
    return [
        AllocPhase("scratch", nbytes=2 * MiB, duration=0.1),
        ComputePhase("main", duration=0.6, passes=2.0, label="baroclinic"),
        HaloExchangePhase(nbytes_total=512 * 1024, duration=0.2, rounds=2),
        ComputePhase("main", duration=0.4, passes=1.0, label="barotropic"),
        FreePhase("scratch"),
        IdlePhase(0.7, label="diagnostics"),
    ]


def main() -> None:
    spec = small_spec(
        name="ocean-model",
        footprint_mb=24.0,     # per-process data memory
        main_mb=10.0,          # the solver's working set
        period=2.0,            # one model step every 2 s
        comm_mb=0.5,
        pattern="grid2d",
    )
    app_factory = lambda: SyntheticApp(spec, run_duration=30.0,
                                       phase_factory=custom_phases)

    # the harness accepts any spec; we only need to substitute the app.
    # Build the pieces directly to show what run_experiment does inside.
    from repro.instrument import InstrumentationLibrary, TrackerConfig
    from repro.mpi import MPIJob
    from repro.sim import Engine

    engine = Engine()
    app = app_factory()
    job = MPIJob(engine, 4, process_factory=app.process_factory(engine))
    library = InstrumentationLibrary(TrackerConfig(timeslice=1.0),
                                     app_name=spec.name).install(job)
    job.launch(app.make_body())
    engine.run(detect_deadlock=True)

    log = library.records(0)
    rc = app.contexts[0]
    steady = log.after(rc.init_end_time)

    print(f"custom application {spec.name!r}: "
          f"{rc.iterations} iterations, footprint "
          f"{log.footprint_mb().max():.1f} MB/process")
    print("\nIWS per 1 s timeslice (MB):")
    print("  " + " ".join(f"{v:5.1f}" for v in steady.iws_mb()[:15]) + " ...")

    from repro.metrics import ib_stats
    stats = ib_stats(log, skip_until=rc.init_end_time)
    print(f"\nincremental bandwidth: avg {stats.avg_mbps:.1f} MB/s, "
          f"max {stats.max_mbps:.1f} MB/s")

    verdict = FeasibilityAnalyzer().assess(spec.name, stats)
    print("verdict vs 2004 technology:")
    print("  " + verdict.as_row())
    print("\n(the scratch grid is mmap'ed and freed each iteration, so its"
          "\n pages vanish from the IWS before the alarm -- the paper's"
          "\n memory-exclusion optimization at work)")


if __name__ == "__main__":
    main()

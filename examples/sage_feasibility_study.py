#!/usr/bin/env python
"""The paper's headline study, end to end, on Sage.

Reproduces the analysis pipeline of sections 6.2-6.6 for the Sage
hydrocode (the ASCI flagship workload):

1. the Fig 1 timeline -- IWS size and data received per timeslice,
   showing the initialization spike and the periodic bursts;
2. the Fig 2(a) sweep -- average and maximum IB versus timeslice;
3. the section 6.3 feasibility verdict against 2004 technology;
4. the section 6.6 trend extrapolation.

The default problem size is Sage-100MB so the example runs in seconds;
pass "1000" as the first argument for the full Sage-1000MB study.

Run:  python examples/sage_feasibility_study.py [50|100|500|1000]
"""

import sys

from repro.cluster.experiment import paper_config, run_experiment, sweep_timeslices
from repro.feasibility import FeasibilityAnalyzer, TechnologyEnvelope, TrendModel
from repro.metrics import detect_bursts
from repro.units import MiB


def ascii_plot(values, width=60, height=10, label=""):
    """A tiny ASCII rendition of a series (stands in for the figures)."""
    if len(values) == 0:
        return
    step = max(1, len(values) // width)
    sampled = [max(values[i:i + step]) for i in range(0, len(values), step)]
    top = max(sampled) or 1.0
    print(f"  {label} (peak {top:.1f})")
    for row in range(height, 0, -1):
        line = "".join("#" if v / top >= row / height else " "
                       for v in sampled)
        print("  |" + line)
    print("  +" + "-" * len(sampled))


def main() -> None:
    size = sys.argv[1] if len(sys.argv) > 1 else "100"
    name = f"sage-{size}MB"
    print(f"=== {name}: incremental-checkpointing feasibility study ===\n")

    # -- Fig 1: the timeline at a 1 s timeslice ------------------------------
    config = paper_config(name, nranks=4, timeslice=1.0)
    result = run_experiment(config)
    log = result.log(0)
    print(f"run: {result.final_time:.0f} simulated seconds, "
          f"{result.iterations} iterations, footprint "
          f"{result.footprint().as_row()}")
    ascii_plot(log.iws_mb(), label="Fig 1(a): IWS size per timeslice, MB")
    ascii_plot(log.received_mb(),
               label="Fig 1(b): data received per timeslice, MB")

    steady = log.after(result.init_end_time)
    bursts = detect_bursts(steady.iws_mb())
    print(f"\ndetected {len(bursts)} processing bursts "
          f"(paper: one per {config.spec.iteration_period:.0f} s iteration)")

    # -- Fig 2(a): IB vs timeslice -------------------------------------------
    print("\nFig 2(a): incremental bandwidth vs timeslice")
    results = sweep_timeslices(config, [1.0, 2.0, 5.0, 10.0, 15.0, 20.0])
    for ts in sorted(results):
        print("  " + results[ts].ib().as_row())

    # -- section 6.3: the verdict ---------------------------------------------
    stats = results[1.0].ib()
    analyzer = FeasibilityAnalyzer()
    verdict = analyzer.assess(name, stats)
    print("\nsection 6.3 verdict at the most demanding timeslice (1 s):")
    print("  " + verdict.as_row())
    print(f"  average demand is {verdict.avg_fraction_of_network:.0%} of the "
          f"QsNet II peak and {verdict.avg_fraction_of_disk:.0%} of the "
          f"SCSI peak")

    # -- section 6.6: trends ---------------------------------------------------
    print("\nsection 6.6: demand/bottleneck margin, extrapolated:")
    trends = TrendModel()
    for year, margin in trends.margin_trajectory(
            stats.avg_mbps * MiB, TechnologyEnvelope(), years=6):
        print(f"  {year}: {margin:6.1%}")
    print("\nConclusion: frequent, automatic, user-transparent incremental "
          "checkpointing is feasible -- and the margin widens every year.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Failure injection and rollback recovery.

The paper measures the *feasibility* of incremental checkpointing; this
example runs the checkpointer the measurements argue for:

1. a 4-rank application runs with the instrumentation attached and the
   coordinated checkpoint engine capturing an incremental checkpoint
   every few timeslices (full checkpoints periodically);
2. a node failure kills rank 2 mid-run;
3. recovery rolls every rank back to the last *committed* global
   checkpoint and verifies -- by content signature -- that the restored
   memory is bit-for-bit the state at capture time;
4. the lost work (time between the recovery point and the failure) is
   reported, the quantity the checkpoint interval trades off;
5. the job is **restarted on a fresh cluster** from the store and
   continues computing -- the full self-healing loop the paper's
   autonomic-computing motivation calls for.

Run:  python examples/failure_recovery.py
"""

from repro.apps.synthetic import SyntheticApp, small_spec
from repro.checkpoint import CheckpointEngine, RecoveryManager, RestartCoordinator
from repro.instrument import InstrumentationLibrary, TrackerConfig
from repro.mem import AddressSpace
from repro.mpi import MPIJob
from repro.sim import Engine
from repro.units import fmt_bytes

NRANKS = 4
TIMESLICE = 0.5
CHECKPOINT_EVERY = 4        # timeslices
FAILURE_TIME = 9.3          # seconds into the run


def main() -> None:
    engine = Engine()
    spec = small_spec(name="demo-app", footprint_mb=16, main_mb=8,
                      period=2.0, passes=2.0, comm_mb=1.0)
    app = SyntheticApp(spec, n_iterations=1000)  # would run "forever"
    job = MPIJob(engine, NRANKS, process_factory=app.process_factory(engine))
    library = InstrumentationLibrary(TrackerConfig(timeslice=TIMESLICE),
                                     app_name=spec.name).install(job)
    ckpt = CheckpointEngine(job, library, interval_slices=CHECKPOINT_EVERY,
                            full_every=8)

    # keep reference signatures so recovery can be verified
    reference = {}

    def install_reference_hook(ctx):
        tracker = library.tracker(ctx.rank)

        def snap(record, trk, rank=ctx.rank):
            if (record.index + 1) % CHECKPOINT_EVERY == 0:
                reference[(rank, record.index)] = \
                    trk.process.memory.state_signature()

        tracker.slice_listeners.insert(0, snap)

    job.init_hooks.append(install_reference_hook)
    job.launch(app.make_body())

    print(f"running {spec.name!r} on {NRANKS} ranks, checkpoint every "
          f"{CHECKPOINT_EVERY * TIMESLICE:.0f} s ...")
    engine.schedule(FAILURE_TIME, job.fail_rank, 2)
    engine.run(until=FAILURE_TIME + 0.5)

    print(f"\n*** rank 2 failed at t={FAILURE_TIME} s ***\n")
    committed = ckpt.committed()
    print("global checkpoints committed before the failure:")
    for gc in committed:
        print(f"  seq {gc.seq:3d}  {gc.kind:11s} {fmt_bytes(gc.total_bytes):>10s}"
              f"  committed at t={gc.committed_at:6.2f} s "
              f"(latency {gc.commit_latency * 1e3:.1f} ms)")

    seq = ckpt.store.latest_committed()
    recovery = RecoveryManager(ckpt.store, layout=app.layout)
    restored = recovery.restore_all()

    print(f"\nrolling back ALL ranks to committed sequence {seq}:")
    ok = True
    for rank, asp in sorted(restored.items()):
        want = reference[(rank, seq)]
        match = AddressSpace.signatures_equal(asp.state_signature(), want)
        ok &= match
        print(f"  rank {rank}: restored "
              f"{fmt_bytes(asp.data_footprint()):>9s} of data memory -- "
              f"{'VERIFIED identical to capture-time state' if match else 'MISMATCH'}")
    if not ok:
        raise SystemExit("recovery verification failed")

    recovery_point = ckpt.globals[seq].requested_at
    lost = FAILURE_TIME - recovery_point
    print(f"\nrecovery point t={recovery_point:.2f} s; failure t={FAILURE_TIME} s")
    print(f"work lost to the failure: {lost:.2f} s "
          f"(bounded by the checkpoint interval of "
          f"{CHECKPOINT_EVERY * TIMESLICE:.1f} s)")
    print(f"total checkpoint traffic: {fmt_bytes(ckpt.bytes_to_storage())}")

    # -- restart and continue -------------------------------------------------
    print(f"\nrestarting the job on a fresh cluster from sequence {seq} ...")
    engine2 = Engine()
    app2 = SyntheticApp(spec, n_iterations=3)
    coordinator = RestartCoordinator(ckpt.store, app2)
    job2 = coordinator.restart(engine2)
    InstrumentationLibrary(TrackerConfig(timeslice=TIMESLICE),
                           app_name=spec.name).install(job2)
    verified = []

    def check(ctx):
        want = reference[(ctx.rank, seq)]
        verified.append(AddressSpace.signatures_equal(
            ctx.memory.state_signature(), want))

    procs = coordinator.launch(job2, on_restored=check)
    engine2.run(detect_deadlock=True)
    if not all(verified) or any(p.exception for p in procs):
        raise SystemExit("restart failed")
    print(f"restored state verified on all {NRANKS} ranks; application "
          f"continued for {app2.contexts[0].iterations} more iterations "
          f"({engine2.now:.1f} s of simulated time) and completed cleanly")


if __name__ == "__main__":
    main()

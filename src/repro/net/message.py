"""Network messages."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import NetworkError

_msg_ids = itertools.count(1)


@dataclass
class Message:
    """A point-to-point message between two ranks/nodes.

    Only metadata travels in the simulator: ``size`` drives timing and
    dirty-page effects; ``payload`` is an optional opaque object for
    tests and collectives (reductions carry values around).
    """

    src: int
    dst: int
    size: int
    tag: int = 0
    payload: Any = None
    send_time: float = field(default=0.0, compare=False)
    arrival_time: float = field(default=0.0, compare=False)
    mid: int = field(default_factory=lambda: next(_msg_ids), compare=False)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise NetworkError(f"negative message size {self.size}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Message #{self.mid} {self.src}->{self.dst} tag={self.tag} "
                f"{self.size}B>")

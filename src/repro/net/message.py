"""Network messages."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import NetworkError

_msg_ids = itertools.count(1)


@dataclass
class Message:
    """A point-to-point message between two ranks/nodes.

    Only metadata travels in the simulator: ``size`` drives timing and
    dirty-page effects; ``payload`` is an optional opaque object for
    tests and collectives (reductions carry values around).
    """

    src: int
    dst: int
    size: int
    tag: int = 0
    payload: Any = None
    send_time: float = field(default=0.0, compare=False)
    arrival_time: float = field(default=0.0, compare=False)
    mid: int = field(default_factory=lambda: next(_msg_ids), compare=False)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise NetworkError(f"negative message size {self.size}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Message #{self.mid} {self.src}->{self.dst} tag={self.tag} "
                f"{self.size}B>")


class SkeletonMessage:
    """Flyweight for payload-free skeleton traffic (barriers, halo
    exchanges): duck-type compatible with :class:`Message` everywhere the
    transport and matching layers look (src/dst/size/tag/payload and the
    routing timestamps), but a plain slotted object -- no dataclass
    machinery, no per-message id drawn from the global counter.
    ``payload`` and ``mid`` are class attributes: the payload is by
    definition ``None`` and the id is a shared sentinel (only ``Message``
    reprs and tests consume ids).
    """

    __slots__ = ("src", "dst", "size", "tag", "send_time", "arrival_time")

    payload: Any = None
    mid: int = 0

    def __init__(self, src: int, dst: int, size: int, tag: int = 0):
        if size < 0:
            raise NetworkError(f"negative message size {size}")
        self.src = src
        self.dst = dst
        self.size = size
        self.tag = tag
        self.send_time = 0.0
        self.arrival_time = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SkeletonMessage {self.src}->{self.dst} tag={self.tag} "
                f"{self.size}B>")

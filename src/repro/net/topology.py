"""Cluster topology: hop counts between nodes.

QsNet clusters are wired as quaternary fat trees; for the modest node
counts of the paper (up to 32 nodes / 64 processors) every pair is a few
hops apart.  The topology only influences the per-hop latency component,
but modelling it keeps the network substrate honest and supports the
scalability experiments.
"""

from __future__ import annotations

import math
from typing import Literal

import networkx as nx

from repro.errors import ConfigurationError


class Topology:
    """Hop-count provider over a networkx graph of switches and nodes.

    Supported shapes:

    - ``"fat-tree"`` -- quaternary fat tree (QsNet style): nodes hang off
      leaf switches of radix 4, with enough levels for the node count;
    - ``"star"`` -- one crossbar (every pair 2 hops);
    - ``"ring"`` -- nodes in a cycle (for contrast in ablations).
    """

    def __init__(self, nnodes: int,
                 shape: Literal["fat-tree", "star", "ring"] = "fat-tree",
                 radix: int = 4):
        if nnodes < 1:
            raise ConfigurationError(f"need at least one node, got {nnodes}")
        if radix < 2:
            raise ConfigurationError(f"switch radix must be >= 2, got {radix}")
        self.nnodes = nnodes
        self.shape = shape
        self.radix = radix
        self.graph = self._build(nnodes, shape, radix)
        self._hops: dict[tuple[int, int], int] = {}

    @staticmethod
    def _node(i: int) -> str:
        return f"n{i}"

    def _build(self, n: int, shape: str, radix: int) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(self._node(i) for i in range(n))
        if n == 1:
            return g
        if shape == "star":
            g.add_node("sw0")
            for i in range(n):
                g.add_edge(self._node(i), "sw0")
        elif shape == "ring":
            for i in range(n):
                g.add_edge(self._node(i), self._node((i + 1) % n))
        elif shape == "fat-tree":
            # leaf switches of given radix, then a tree of up-switches
            leaves = [f"L{j}" for j in range(math.ceil(n / radix))]
            for i in range(n):
                g.add_edge(self._node(i), leaves[i // radix])
            level = leaves
            lvl = 0
            while len(level) > 1:
                lvl += 1
                parents = [f"U{lvl}.{j}" for j in range(math.ceil(len(level) / radix))]
                for j, sw in enumerate(level):
                    g.add_edge(sw, parents[j // radix])
                level = parents
        else:
            raise ConfigurationError(f"unknown topology shape {shape!r}")
        return g

    def hops(self, a: int, b: int) -> int:
        """Switch-to-switch hop count between nodes ``a`` and ``b``
        (0 for a == b; memoized shortest path otherwise)."""
        if not (0 <= a < self.nnodes and 0 <= b < self.nnodes):
            raise ConfigurationError(
                f"node pair ({a}, {b}) outside topology of {self.nnodes}")
        if a == b:
            return 0
        key = (a, b) if a < b else (b, a)
        cached = self._hops.get(key)
        if cached is None:
            cached = nx.shortest_path_length(
                self.graph, self._node(key[0]), self._node(key[1]))
            self._hops[key] = cached
        return cached

    def diameter(self) -> int:
        """Largest hop count over all node pairs."""
        return max((self.hops(a, b)
                    for a in range(self.nnodes)
                    for b in range(a + 1, self.nnodes)), default=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Topology {self.shape} nnodes={self.nnodes}>"

"""Interconnect model: links, messages, topology, and the DMA-capable NIC.

The cluster in the paper uses the Quadrics QsNet network, whose NIC
writes received messages *directly into user-space memory*.  That direct
access bypasses page protection, which breaks (and on real hardware,
fights with) ``mprotect``-based dirty-page tracking -- the reason the
instrumentation library intercepts receives through a bounce buffer.
:class:`~repro.net.nic.NIC` reproduces both paths.
"""

from repro.net.models import LinkSpec, ETHERNET_1G, ETHERNET_100M, INFINIBAND_10G, QSNET2
from repro.net.message import Message, SkeletonMessage
from repro.net.network import Network, StoragePort
from repro.net.nic import NIC
from repro.net.topology import Topology

__all__ = [
    "ETHERNET_100M",
    "ETHERNET_1G",
    "INFINIBAND_10G",
    "LinkSpec",
    "Message",
    "Network",
    "SkeletonMessage",
    "NIC",
    "QSNET2",
    "StoragePort",
    "Topology",
]

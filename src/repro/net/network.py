"""Message transport over the simulated interconnect.

Timing model per message (cut-through flavoured):

- the sender's NIC injects serially: a message occupies the *transmit
  link* for ``size / bandwidth`` starting when the link is free;
- the wire adds ``latency + per_hop_latency * (hops - 1)`` to the first
  byte;
- the message then occupies the *receive link* for ``size / bandwidth``
  starting when the first byte arrives **and** the receiver's link is
  free -- so concurrent senders to one destination queue up (incast
  contention, which matters for FT's all-to-all transposes).

An uncontended message completes at ``inject + size/bandwidth + wire``
(transmit and receive occupation overlap); there is no global-fabric
contention model beyond the two endpoints -- adequate for the paper's
bulk-synchronous codes whose communication happens in sparse bursts.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import NetworkError
from repro.net.message import Message
from repro.net.models import LinkSpec, QSNET2
from repro.net.topology import Topology
from repro.sim import Engine


class Network:
    """Delivers :class:`Message`s between nodes with realistic timing."""

    def __init__(self, engine: Engine, nnodes: int,
                 spec: LinkSpec = QSNET2,
                 topology: Optional[Topology] = None):
        if nnodes < 1:
            raise NetworkError(f"need at least one node, got {nnodes}")
        self.engine = engine
        self.nnodes = nnodes
        self.spec = spec
        self.topology = topology or Topology(nnodes)
        #: time each sender's NIC becomes free to inject the next message
        self._tx_free: list[float] = [0.0] * nnodes
        #: time each receiver's link becomes free (incast queueing)
        self._rx_free: list[float] = [0.0] * nnodes
        #: delivery callbacks per destination node
        self._sinks: list[Optional[Callable[[Message], None]]] = [None] * nnodes
        # statistics
        self.messages_delivered = 0
        self.bytes_delivered = 0
        #: cached (obs, counters, tracer-or-None, track names) for sends
        self._obs_cache = None

    def attach(self, node: int, sink: Callable[[Message], None]) -> None:
        """Register the delivery callback (the NIC) for ``node``."""
        self._check_node(node)
        self._sinks[node] = sink

    def _route(self, msg: Message, now: float) -> float:
        """Advance the link-occupation clocks for ``msg`` and stamp its
        send/arrival times; returns the arrival time."""
        msg.send_time = now
        if msg.src == msg.dst:
            # loopback: no wire, just a copy at memory speed (the
            # bandwidth term only); copies still serialize at the node
            start = max(now, self._tx_free[msg.src])
            arrival = start + msg.size / self.spec.bandwidth
            self._tx_free[msg.src] = arrival
        else:
            serialize = msg.size / self.spec.bandwidth
            inject_at = max(now, self._tx_free[msg.src])
            self._tx_free[msg.src] = inject_at + serialize
            hops = self.topology.hops(msg.src, msg.dst)
            first_byte = (inject_at + self.spec.latency
                          + self.spec.per_hop_latency * max(0, hops - 1))
            start_rx = max(first_byte, self._rx_free[msg.dst])
            arrival = start_rx + serialize
            self._rx_free[msg.dst] = arrival
        msg.arrival_time = arrival
        return arrival

    def _send_obs(self, obs):
        """Per-obs cached counters/track names for the send hot path."""
        cache = self._obs_cache
        if cache is None or cache[0] is not obs:
            tracer = obs.tracer
            cache = self._obs_cache = (
                obs,
                obs.metrics.counter("net.messages_sent"),
                obs.metrics.counter("net.bytes_sent"),
                tracer if tracer.enabled and tracer.wants("net") else None,
                [f"net.tx{n}" for n in range(self.nnodes)],
            )
        return cache

    def send(self, msg: Message) -> float:
        """Inject ``msg``; returns its arrival time at the destination."""
        self._check_node(msg.src)
        self._check_node(msg.dst)
        # note: a missing sink at the destination is tolerated -- the
        # message is dropped at delivery time, which is how sends to a
        # failed node behave under failure injection.
        now = self.engine.now
        arrival = self._route(msg, now)
        obs = self.engine.obs
        if obs.enabled:
            _, ctr_msgs, ctr_bytes, tracer, tx_tracks = self._send_obs(obs)
            ctr_msgs.inc()
            ctr_bytes.inc(msg.size)
            if tracer is not None:
                tracer.complete("net.send", "net", now, arrival - now,
                                track=tx_tracks[msg.src], dst=msg.dst,
                                size=msg.size, tag=msg.tag)
        self.engine.schedule_at(arrival, self._deliver, msg)
        return arrival

    def send_many(self, msgs: list[Message]) -> list[float]:
        """Inject a batch (one sender's collective fan-out); returns the
        arrival times.

        Timing, byte accounting, and obs events are exactly what
        :meth:`send` called once per message would produce -- the batch
        shares one pass over the link clocks and one obs lookup, and
        schedules one delivery event per *distinct arrival time* instead
        of one per message, so equal-arrival messages (loopback copies,
        zero-byte control traffic, incast-serialized streams) coalesce.
        Distinct arrival times keep distinct events: delivery must fire
        at each message's own timestamp for the simulated timeline to be
        bit-identical to the unbatched path.
        """
        if not msgs:
            return []
        now = self.engine.now
        obs = self.engine.obs
        if obs.enabled:
            _, ctr_msgs, ctr_bytes, tracer, tx_tracks = self._send_obs(obs)
        arrivals: list[float] = []
        groups: dict[float, Any] = {}
        for msg in msgs:
            self._check_node(msg.src)
            self._check_node(msg.dst)
            arrival = self._route(msg, now)
            if obs.enabled:
                ctr_msgs.inc()
                ctr_bytes.inc(msg.size)
                if tracer is not None:
                    tracer.complete("net.send", "net", now, arrival - now,
                                    track=tx_tracks[msg.src], dst=msg.dst,
                                    size=msg.size, tag=msg.tag)
            arrivals.append(arrival)
            grp = groups.get(arrival)
            if grp is None:
                groups[arrival] = msg
            elif type(grp) is list:
                grp.append(msg)
            else:
                groups[arrival] = [grp, msg]
        schedule_at = self.engine.schedule_at
        # group events are created here, in first-arrival-seen order, so
        # their insertion sequence is a monotone renumbering of the
        # per-message events' -- every same-time tie (inside a group, or
        # against events scheduled before/after this batch) breaks the
        # same way the unbatched path broke it
        for arrival, grp in groups.items():
            if type(grp) is list:
                schedule_at(arrival, self._deliver_batch, grp)
            else:
                schedule_at(arrival, self._deliver, grp)
        return arrivals

    def _deliver(self, msg: Message) -> None:
        sink = self._sinks[msg.dst]
        if sink is None:  # detached mid-flight (node failure)
            return
        self.messages_delivered += 1
        self.bytes_delivered += msg.size
        sink(msg)

    def _deliver_batch(self, msgs: list[Message]) -> None:
        """Deliver same-arrival-time messages in submission order (the
        order their individual events would have fired in)."""
        deliver = self._deliver
        for msg in msgs:
            deliver(msg)

    def detach(self, node: int) -> None:
        """Remove a node's NIC (failure injection): in-flight messages to
        it are dropped on arrival."""
        self._check_node(node)
        self._sinks[node] = None

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.nnodes):
            raise NetworkError(f"node {node} outside network of {self.nnodes}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Network {self.spec.name!r} nnodes={self.nnodes} "
                f"delivered={self.messages_delivered}>")

"""Message transport over the simulated interconnect.

Timing model per message (cut-through flavoured):

- the sender's NIC injects serially: a message occupies the *transmit
  link* for ``size / bandwidth`` starting when the link is free;
- the wire adds ``latency + per_hop_latency * (hops - 1)`` to the first
  byte;
- the message then occupies the *receive link* for ``size / bandwidth``
  starting when the first byte arrives **and** the receiver's link is
  free -- so concurrent senders to one destination queue up (incast
  contention, which matters for FT's all-to-all transposes).

An uncontended message completes at ``inject + size/bandwidth + wire``
(transmit and receive occupation overlap); there is no global-fabric
contention model beyond the two endpoints -- adequate for the paper's
bulk-synchronous codes whose communication happens in sparse bursts.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import NetworkError
from repro.net.message import Message
from repro.net.models import LinkSpec, QSNET2
from repro.net.topology import Topology
from repro.sim import Engine


class StoragePort:
    """A storage target's ingest link on the fabric.

    Checkpoint frames from every sender serialize here before reaching
    the disks behind it -- the aggregate-storage-bandwidth bottleneck of
    cluster-wide coordinated writeback.  ``hops`` is the extra fabric
    distance between a compute node and the storage target.
    """

    __slots__ = ("name", "hops", "rx_free", "bytes_received", "frames",
                 "busy_time")

    def __init__(self, name: str = "storage", hops: int = 1):
        if hops < 0:
            raise NetworkError(f"port hops must be >= 0, got {hops}")
        self.name = name
        self.hops = hops
        self.rx_free = 0.0
        self.bytes_received = 0
        self.frames = 0
        self.busy_time = 0.0

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the ingest link was busy."""
        if elapsed <= 0:
            raise NetworkError(f"non-positive elapsed time {elapsed}")
        return min(1.0, self.busy_time / elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<StoragePort {self.name!r} frames={self.frames} "
                f"bytes={self.bytes_received}>")


class Network:
    """Delivers :class:`Message`s between nodes with realistic timing."""

    def __init__(self, engine: Engine, nnodes: int,
                 spec: LinkSpec = QSNET2,
                 topology: Optional[Topology] = None):
        if nnodes < 1:
            raise NetworkError(f"need at least one node, got {nnodes}")
        self.engine = engine
        self.nnodes = nnodes
        self.spec = spec
        self.topology = topology or Topology(nnodes)
        #: time each sender's NIC becomes free to inject the next message
        self._tx_free: list[float] = [0.0] * nnodes
        #: time each receiver's link becomes free (incast queueing)
        self._rx_free: list[float] = [0.0] * nnodes
        #: delivery callbacks per destination node
        self._sinks: list[Optional[Callable[[Message], None]]] = [None] * nnodes
        #: the one bound-method object every coalesced delivery shares --
        #: Engine.schedule_coalesced compares callables by identity, and
        #: ``self._deliver`` would mint a fresh bound method per access
        self._deliver_one = self._deliver
        # statistics
        self.messages_delivered = 0
        self.bytes_delivered = 0
        #: cached (obs, counters, tracer-or-None, track names) for sends
        self._obs_cache = None
        # -- checkpoint-transport accounting (all dormant until the
        # -- first storage_send keeps the app-message hot path free) --
        self._ckpt_active = False
        #: per-node time up to which checkpoint frames occupy tx/rx
        self._ckpt_tx_until: list[float] = [0.0] * nnodes
        self._ckpt_rx_until: list[float] = [0.0] * nnodes
        self.storage_ports: list[StoragePort] = []
        #: fabric delay charged to application messages by checkpoint
        #: frames ahead of them on a link (a lower bound: waits behind
        #: app messages that are themselves delayed are not attributed)
        self.ckpt_contention_delay = 0.0
        self.ckpt_contended_messages = 0
        self.ckpt_bytes_sent = 0
        self._ckpt_obs_cache = None

    def attach(self, node: int, sink: Callable[[Message], None]) -> None:
        """Register the delivery callback (the NIC) for ``node``."""
        self._check_node(node)
        self._sinks[node] = sink

    def _route(self, msg: Message, now: float) -> float:
        """Advance the link-occupation clocks for ``msg`` and stamp its
        send/arrival times; returns the arrival time.

        This is the plain hot path -- identical cost to a network with
        no checkpoint transport.  The first checkpoint frame on the
        fabric (:meth:`storage_send`) swaps in
        :meth:`_route_contended`, which additionally attributes link
        waits that overlap checkpoint-frame occupancy."""
        msg.send_time = now
        if msg.src == msg.dst:
            # loopback: no wire, just a copy at memory speed (the
            # bandwidth term only); copies still serialize at the node
            start = max(now, self._tx_free[msg.src])
            arrival = start + msg.size / self.spec.bandwidth
            self._tx_free[msg.src] = arrival
        else:
            serialize = msg.size / self.spec.bandwidth
            inject_at = max(now, self._tx_free[msg.src])
            self._tx_free[msg.src] = inject_at + serialize
            hops = self.topology.hops(msg.src, msg.dst)
            first_byte = (inject_at + self.spec.latency
                          + self.spec.per_hop_latency * max(0, hops - 1))
            start_rx = max(first_byte, self._rx_free[msg.dst])
            arrival = start_rx + serialize
            self._rx_free[msg.dst] = arrival
        msg.arrival_time = arrival
        return arrival

    def _route_contended(self, msg: Message, now: float) -> float:
        """:meth:`_route` plus contention attribution: the timing math
        is identical (checkpoint frames already advanced the link
        clocks), only the accounting differs."""
        msg.send_time = now
        if msg.src == msg.dst:
            start = max(now, self._tx_free[msg.src])
            if start > now:
                self._note_contention(msg.src, now, start,
                                      self._ckpt_tx_until)
            arrival = start + msg.size / self.spec.bandwidth
            self._tx_free[msg.src] = arrival
        else:
            serialize = msg.size / self.spec.bandwidth
            inject_at = max(now, self._tx_free[msg.src])
            self._tx_free[msg.src] = inject_at + serialize
            hops = self.topology.hops(msg.src, msg.dst)
            first_byte = (inject_at + self.spec.latency
                          + self.spec.per_hop_latency * max(0, hops - 1))
            start_rx = max(first_byte, self._rx_free[msg.dst])
            arrival = start_rx + serialize
            self._rx_free[msg.dst] = arrival
            if inject_at > now:
                self._note_contention(msg.src, now, inject_at,
                                      self._ckpt_tx_until)
            if start_rx > first_byte:
                self._note_contention(msg.dst, first_byte, start_rx,
                                      self._ckpt_rx_until)
        msg.arrival_time = arrival
        return arrival

    def _note_contention(self, node: int, free_from: float, start: float,
                         busy_until: list[float]) -> None:
        """An application message waited on a link: attribute the part of
        the wait that overlaps checkpoint-frame occupancy."""
        busy = busy_until[node]
        if busy > free_from:
            self.ckpt_contended_messages += 1
            self.ckpt_contention_delay += min(start, busy) - free_from

    def _send_obs(self, obs):
        """Per-obs cached counters/track names for the send hot path."""
        cache = self._obs_cache
        if cache is None or cache[0] is not obs:
            tracer = obs.tracer
            cache = self._obs_cache = (
                obs,
                obs.metrics.counter("net.messages_sent"),
                obs.metrics.counter("net.bytes_sent"),
                tracer if tracer.enabled and tracer.wants("net") else None,
                [f"net.tx{n}" for n in range(self.nnodes)],
            )
        return cache

    def send(self, msg: Message) -> float:
        """Inject ``msg``; returns its arrival time at the destination."""
        self._check_node(msg.src)
        self._check_node(msg.dst)
        # note: a missing sink at the destination is tolerated -- the
        # message is dropped at delivery time, which is how sends to a
        # failed node behave under failure injection.
        now = self.engine.now
        arrival = self._route(msg, now)
        obs = self.engine.obs
        if obs.enabled:
            _, ctr_msgs, ctr_bytes, tracer, tx_tracks = self._send_obs(obs)
            ctr_msgs.inc()
            ctr_bytes.inc(msg.size)
            if tracer is not None:
                tracer.complete("net.send", "net", now, arrival - now,
                                track=tx_tracks[msg.src], dst=msg.dst,
                                size=msg.size, tag=msg.tag)
        if self.engine.coalesce_deliveries:
            # same-arrival deliveries -- across senders, not just within
            # one batch -- share a single engine event, drained in send
            # order (the order separate events would have fired in)
            self.engine.schedule_coalesced(arrival, self._deliver_one, msg)
        else:
            self.engine.schedule_at(arrival, self._deliver, msg)
        return arrival

    def send_many(self, msgs: list[Message]) -> list[float]:
        """Inject a batch (one sender's collective fan-out); returns the
        arrival times.

        Timing, byte accounting, and obs events are exactly what
        :meth:`send` called once per message would produce -- the batch
        shares one pass over the link clocks and one obs lookup, and
        schedules one delivery event per *distinct arrival time* instead
        of one per message, so equal-arrival messages (loopback copies,
        zero-byte control traffic, incast-serialized streams) coalesce.
        Distinct arrival times keep distinct events: delivery must fire
        at each message's own timestamp for the simulated timeline to be
        bit-identical to the unbatched path.
        """
        if not msgs:
            return []
        if len(msgs) == 1:
            # single-message batch: the plain send path, no group
            # structures allocated
            return [self.send(msgs[0])]
        now = self.engine.now
        obs = self.engine.obs
        if obs.enabled:
            _, ctr_msgs, ctr_bytes, tracer, tx_tracks = self._send_obs(obs)
        coalesce = self.engine.coalesce_deliveries
        if coalesce:
            schedule_coalesced = self.engine.schedule_coalesced
            deliver_one = self._deliver_one
        arrivals: list[float] = []
        groups: dict[float, Any] = {}
        for msg in msgs:
            self._check_node(msg.src)
            self._check_node(msg.dst)
            arrival = self._route(msg, now)
            if obs.enabled:
                ctr_msgs.inc()
                ctr_bytes.inc(msg.size)
                if tracer is not None:
                    tracer.complete("net.send", "net", now, arrival - now,
                                    track=tx_tracks[msg.src], dst=msg.dst,
                                    size=msg.size, tag=msg.tag)
            arrivals.append(arrival)
            if coalesce:
                # the engine's open-batch bookkeeping does the distinct-
                # arrival grouping -- and extends it across send_many
                # calls from other ranks at the same instant
                schedule_coalesced(arrival, deliver_one, msg)
                continue
            grp = groups.get(arrival)
            if grp is None:
                groups[arrival] = msg
            elif type(grp) is list:
                grp.append(msg)
            else:
                groups[arrival] = [grp, msg]
        if coalesce:
            return arrivals
        schedule_at = self.engine.schedule_at
        # group events are created here, in first-arrival-seen order, so
        # their insertion sequence is a monotone renumbering of the
        # per-message events' -- every same-time tie (inside a group, or
        # against events scheduled before/after this batch) breaks the
        # same way the unbatched path broke it
        for arrival, grp in groups.items():
            if type(grp) is list:
                schedule_at(arrival, self._deliver_batch, grp)
            else:
                schedule_at(arrival, self._deliver, grp)
        return arrivals

    # -- checkpoint transport ----------------------------------------------------

    def open_storage_port(self, name: str = "storage",
                          hops: int = 1) -> StoragePort:
        """Attach a storage target's ingest link to the fabric."""
        port = StoragePort(name, hops=hops)
        self.storage_ports.append(port)
        return port

    def _ckpt_obs(self, obs):
        cache = self._ckpt_obs_cache
        if cache is None or cache[0] is not obs:
            tracer = obs.tracer
            cache = self._ckpt_obs_cache = (
                obs,
                obs.metrics.counter("net.ckpt_frames"),
                obs.metrics.counter("net.ckpt_bytes"),
                tracer if tracer.enabled and tracer.wants("net") else None,
            )
        return cache

    def storage_send(self, src: int, nbytes: int, *,
                     port: Optional[StoragePort] = None,
                     dst: Optional[int] = None
                     ) -> tuple[float, float, float]:
        """Put one checkpoint frame on the fabric.

        The frame occupies the sender's transmit link exactly like an
        application message (so the two contend), crosses the wire, and
        serializes at either a :class:`StoragePort` (shared storage
        ingest) or a peer node's receive link (``dst``, diskless buddy).
        Returns ``(inject_at, inject_done, arrival)``; the caller
        schedules its own arrival handling -- no :class:`Message` is
        delivered.
        """
        self._check_node(src)
        if (port is None) == (dst is None):
            raise NetworkError(
                "storage_send needs exactly one of port= or dst=")
        if nbytes < 0:
            raise NetworkError(f"negative frame size {nbytes}")
        if not self._ckpt_active:
            # first frame on the fabric: swap in the accounting route so
            # the no-checkpoint hot path stays exactly the seed code
            self._ckpt_active = True
            self._route = self._route_contended
        now = self.engine.now
        serialize = nbytes / self.spec.bandwidth
        inject_at = max(now, self._tx_free[src])
        inject_done = inject_at + serialize
        self._tx_free[src] = inject_done
        if inject_done > self._ckpt_tx_until[src]:
            self._ckpt_tx_until[src] = inject_done
        if port is not None:
            first_byte = (inject_at + self.spec.latency
                          + self.spec.per_hop_latency * max(0, port.hops - 1))
            start_rx = max(first_byte, port.rx_free)
            arrival = start_rx + serialize
            port.rx_free = arrival
            port.bytes_received += nbytes
            port.frames += 1
            port.busy_time += serialize
            target = port.name
        else:
            self._check_node(dst)
            hops = self.topology.hops(src, dst)
            first_byte = (inject_at + self.spec.latency
                          + self.spec.per_hop_latency * max(0, hops - 1))
            start_rx = max(first_byte, self._rx_free[dst])
            arrival = start_rx + serialize
            self._rx_free[dst] = arrival
            if arrival > self._ckpt_rx_until[dst]:
                self._ckpt_rx_until[dst] = arrival
            target = dst
        self.ckpt_bytes_sent += nbytes
        obs = self.engine.obs
        if obs.enabled:
            _, ctr_frames, ctr_bytes, tracer = self._ckpt_obs(obs)
            ctr_frames.inc()
            ctr_bytes.inc(nbytes)
            if tracer is not None:
                tracer.complete("ckpt.frame", "net", inject_at,
                                arrival - inject_at,
                                track=f"net.tx{src}", target=target,
                                size=nbytes)
        return inject_at, inject_done, arrival

    def _deliver(self, msg: Message) -> None:
        sink = self._sinks[msg.dst]
        if sink is None:  # detached mid-flight (node failure)
            return
        self.messages_delivered += 1
        self.bytes_delivered += msg.size
        sink(msg)

    def _deliver_batch(self, msgs: list[Message]) -> None:
        """Deliver same-arrival-time messages in submission order (the
        order their individual events would have fired in)."""
        deliver = self._deliver
        for msg in msgs:
            deliver(msg)

    def detach(self, node: int) -> None:
        """Remove a node's NIC (failure injection): in-flight messages to
        it are dropped on arrival."""
        self._check_node(node)
        self._sinks[node] = None

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.nnodes):
            raise NetworkError(f"node {node} outside network of {self.nnodes}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Network {self.spec.name!r} nnodes={self.nnodes} "
                f"delivered={self.messages_delivered}>")

"""The network interface, including QsNet-style direct user-space access.

The QsNet Elan NIC deposits received data straight into the destination
buffer in user memory.  Against ``mprotect``-based dirty tracking this is
a hazard twice over (paper, section 4.2):

1. the DMA store takes no page fault, so modified pages are *not*
   recorded as dirty -- an incremental checkpoint would silently lose
   received data;
2. the NIC may fail outright writing to a write-protected page.

The paper's workaround, reproduced here, is to intercept receive calls:
the message lands in an unprotected *bounce buffer* and is then copied by
the CPU to its true destination, taking ordinary faults for pages not yet
written in the timeslice (at the cost of an extra memory copy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import NetworkError
from repro.mem import WriteResult
from repro.net.message import Message
from repro.net.network import Network
from repro.proc.process import Process
from repro.units import GiB


@dataclass(frozen=True)
class DepositResult:
    """Outcome of landing a message payload in user memory."""

    write: WriteResult
    copy_time: float      #: CPU time spent on the bounce-buffer copy (s)
    intercepted: bool


class NIC:
    """One node's network interface.

    ``on_message`` is the upcall used by the MPI runtime to match
    receives.  ``deposit`` is called (by the runtime) once a matching
    receive supplies a destination buffer.
    """

    def __init__(self, node: int, network: Network, process: Process, *,
                 memcpy_bandwidth: float = 2.0 * GiB,
                 strict_dma: bool = True):
        self.node = node
        self.network = network
        self.process = process
        self.engine = process.engine
        self.memcpy_bandwidth = memcpy_bandwidth
        #: with strict_dma, direct deposit into a protected page is an
        #: error (the hardware conflict the bounce buffer exists to avoid)
        self.strict_dma = strict_dma
        self.on_message: Optional[Callable[[Message], None]] = None
        self.bytes_received = 0
        self.messages_received = 0
        self.dma_missed_pages = 0
        #: fault-injection state: a failed NIC delivers nothing, and a
        #: positive drop budget silently discards the next messages
        self.failed = False
        self.messages_dropped = 0
        self._drop_budget = 0
        #: per-obs cached counters/track/wants for the receive hot path
        self._track = f"nic{node}"
        self._obs_cache = None
        network.attach(node, self._receive)

    def _recv_obs(self, obs):
        cache = self._obs_cache
        if cache is None or cache[0] is not obs:
            tracer = obs.tracer
            cache = self._obs_cache = (
                obs,
                obs.metrics.counter("net.messages_received"),
                obs.metrics.counter("net.bytes_received"),
                tracer if tracer.enabled and tracer.wants("net") else None,
            )
        return cache

    def _receive(self, msg: Message) -> None:
        obs = self.engine.obs
        if self.failed or self._drop_budget > 0:
            if not self.failed:
                self._drop_budget -= 1
            self.messages_dropped += 1
            if obs.enabled:
                obs.metrics.counter("net.messages_dropped").inc()
            return
        self.bytes_received += msg.size
        self.messages_received += 1
        if obs.enabled:
            _, ctr_msgs, ctr_bytes, tracer = self._recv_obs(obs)
            ctr_msgs.inc()
            ctr_bytes.inc(msg.size)
            if tracer is not None:
                tracer.instant("nic.recv", "net", self.engine.now,
                               track=self._track, src=msg.src,
                               size=msg.size, tag=msg.tag)
        if self.on_message is not None:
            self.on_message(msg)

    # -- deposit paths ------------------------------------------------------------

    def deposit(self, addr: int, size: int, *, intercept: bool) -> DepositResult:
        """Land ``size`` received bytes at ``addr`` in the process's memory.

        ``intercept=True`` takes the bounce-buffer path (CPU copy, normal
        faulting); ``intercept=False`` is the raw QsNet DMA path.
        """
        if size <= 0:
            raise NetworkError(f"non-positive deposit size {size}")
        if intercept:
            write = self.process.memory.cpu_write(addr, size)
            return DepositResult(write=write,
                                 copy_time=size / self.memcpy_bandwidth,
                                 intercepted=True)
        if self.strict_dma and self._target_protected(addr, size):
            raise NetworkError(
                f"NIC DMA into write-protected page(s) at {addr:#x} "
                "(enable receive interception, or disable protection)")
        write = self.process.memory.dma_write(addr, size)
        self.dma_missed_pages += write.missed
        return DepositResult(write=write, copy_time=0.0, intercepted=False)

    def _target_protected(self, addr: int, size: int) -> bool:
        seg = self.process.memory.find_segment(addr)
        if seg is None:
            return False  # dma_write will raise the real segfault
        try:
            lo, hi = seg.page_range(addr, size)
        except Exception:
            return False
        return seg.pages.any_protected(lo, hi)

    def detach(self) -> None:
        """Take this NIC off the network (node failure)."""
        self.network.detach(self.node)

    # -- fault injection ----------------------------------------------------------

    def drop_next(self, count: int = 1) -> None:
        """Discard the next ``count`` incoming messages (transient NIC
        fault).  The sender is not notified -- exactly the silent loss
        that makes an unacknowledged message protocol hang."""
        if count < 1:
            raise NetworkError(f"drop count must be >= 1, got {count}")
        self._drop_budget += count

    def fail(self) -> None:
        """Permanent NIC failure: detach from the fabric and discard any
        message already queued toward this node.  Idempotent."""
        if self.failed:
            return
        self.failed = True
        self.detach()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NIC node={self.node} rx={self.messages_received}msgs>"

"""Link performance specifications.

Bandwidths are the figures the paper quotes (section 3 and 6.6): the
Elan4 QsNet II delivers a peak of 900 MB/s, and 10 Gb/s InfiniBand was
the anticipated next step.  Latencies are representative of the era.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import MiB


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point link model: ``latency + size / bandwidth``."""

    name: str
    bandwidth: float        #: bytes per second
    latency: float          #: seconds per message (one hop)
    per_hop_latency: float = 0.0  #: extra seconds per additional hop

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError(f"bandwidth must be positive: {self.bandwidth}")
        if self.latency < 0 or self.per_hop_latency < 0:
            raise ConfigurationError("latencies must be non-negative")

    def transfer_time(self, nbytes: int, hops: int = 1) -> float:
        """Time to move ``nbytes`` across ``hops`` switch hops."""
        if nbytes < 0:
            raise ConfigurationError(f"negative transfer size {nbytes}")
        extra = self.per_hop_latency * max(0, hops - 1)
        return self.latency + extra + nbytes / self.bandwidth


#: Quadrics QsNet II (Elan4): 900 MB/s peak, ~1.5 us MPI latency.
QSNET2 = LinkSpec("QsNet II", bandwidth=900.0 * MiB, latency=1.5e-6,
                  per_hop_latency=0.2e-6)

#: Gigabit Ethernet of the era.
ETHERNET_1G = LinkSpec("1G Ethernet", bandwidth=110.0 * MiB, latency=50e-6,
                       per_hop_latency=5e-6)

#: Switched 100 Mb/s Ethernet (the Diskless-checkpointing testbed class).
ETHERNET_100M = LinkSpec("100M Ethernet", bandwidth=11.0 * MiB, latency=100e-6,
                         per_hop_latency=10e-6)

#: The 10 Gb/s InfiniBand the paper's section 6.6 anticipates for 2005.
INFINIBAND_10G = LinkSpec("InfiniBand 10G", bandwidth=1180.0 * MiB,
                          latency=4e-6, per_hop_latency=0.1e-6)

"""Trace persistence: save and reload experiment traces.

Traces go to an ``.npz`` (column arrays) plus a JSON sidecar with the
run metadata, so EXPERIMENTS.md numbers can be regenerated or inspected
without re-running the simulations.
"""

from repro.trace.io import load_trace, save_trace, load_traces, save_traces

__all__ = ["load_trace", "load_traces", "save_trace", "save_traces"]

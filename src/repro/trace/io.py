"""NPZ + JSON trace serialization."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.instrument.records import TimesliceRecord, TraceLog

_FORMAT_VERSION = 1

_COLUMNS = ("index", "t_start", "t_end", "iws_pages", "iws_bytes",
            "footprint_bytes", "faults", "received_bytes", "overhead_time")


def _normalize(path: Union[str, Path]) -> tuple[Path, Path]:
    """Resolve a trace basename to its ``(npz, json)`` sibling paths.

    Accepts the bare stem or either sibling's full name; only a trailing
    ``.npz``/``.json`` is stripped, so dotted stems like ``run.v2``
    survive intact (``with_suffix`` would have truncated them to
    ``run``).  Directories cannot be trace basenames.
    """
    path = Path(path)
    if path.suffix in (".npz", ".json"):
        path = path.parent / path.name[:-len(path.suffix)]
    if path.is_dir():
        raise ConfigurationError(
            f"{path} is a directory, not a trace basename "
            "(use save_traces/load_traces for per-rank directories)")
    return (path.parent / (path.name + ".npz"),
            path.parent / (path.name + ".json"))


def save_trace(log: TraceLog, path: Union[str, Path]) -> Path:
    """Write one trace to ``<path>.npz`` and ``<path>.json``.

    Returns the npz path.
    """
    npz_path, meta_path = _normalize(path)
    arrays = {}
    for col in _COLUMNS:
        values = [getattr(r, col) for r in log.records]
        arrays[col] = np.asarray(values)
    np.savez_compressed(npz_path, **arrays)
    meta = {
        "format_version": _FORMAT_VERSION,
        "rank": log.rank,
        "timeslice": log.timeslice,
        "page_size": log.page_size,
        "app_name": log.app_name,
        "n_slices": len(log.records),
    }
    meta_path.write_text(json.dumps(meta, indent=2))
    return npz_path


def load_trace(path: Union[str, Path]) -> TraceLog:
    """Reload a trace saved by :func:`save_trace`."""
    npz_path, meta_path = _normalize(path)
    if not meta_path.exists() or not npz_path.exists():
        raise ConfigurationError(
            f"no trace at {npz_path.with_suffix('')} (.npz + .json expected)")
    meta = json.loads(meta_path.read_text())
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported trace format {meta.get('format_version')!r}")
    log = TraceLog(rank=int(meta["rank"]), timeslice=float(meta["timeslice"]),
                   page_size=int(meta["page_size"]),
                   app_name=meta.get("app_name", ""))
    n = int(meta["n_slices"])
    with np.load(npz_path) as data:
        # materialize each column once: NpzFile.__getitem__ decompresses
        # the whole array on every access, so indexing inside the record
        # loop would decompress n times per column
        cols = {col: data[col] for col in _COLUMNS}
    for i in range(n):
        log.append(TimesliceRecord(
            index=int(cols["index"][i]),
            t_start=float(cols["t_start"][i]),
            t_end=float(cols["t_end"][i]),
            iws_pages=int(cols["iws_pages"][i]),
            iws_bytes=int(cols["iws_bytes"][i]),
            footprint_bytes=int(cols["footprint_bytes"][i]),
            faults=int(cols["faults"][i]),
            received_bytes=int(cols["received_bytes"][i]),
            overhead_time=float(cols["overhead_time"][i]),
        ))
    return log


def save_traces(logs: dict[int, TraceLog], directory: Union[str, Path],
                prefix: str = "rank") -> list[Path]:
    """Save one trace per rank under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return [save_trace(log, directory / f"{prefix}{rank:04d}")
            for rank, log in sorted(logs.items())]


def load_traces(directory: Union[str, Path],
                prefix: str = "rank") -> dict[int, TraceLog]:
    """Load every per-rank trace from ``directory``."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ConfigurationError(f"no trace directory {directory}")
    logs = {}
    for meta_path in sorted(directory.glob(f"{prefix}*.json")):
        log = load_trace(meta_path)  # _normalize strips the .json
        logs[log.rank] = log
    if not logs:
        raise ConfigurationError(f"no traces under {directory}")
    return logs

"""repro: a full reproduction of *On the Feasibility of Incremental
Checkpointing for Scientific Computing* (Sancho, Petrini, Johnson,
Fernandez, Frachtenberg -- IPDPS 2004).

The paper instruments unmodified Fortran/MPI applications with an
``LD_PRELOAD`` library that tracks dirty pages through ``mprotect`` and
SIGSEGV, measures the Incremental Working Set per checkpoint timeslice,
and argues that OS-level incremental checkpointing fits comfortably
inside 2004 network (900 MB/s) and disk (320 MB/s) bandwidth.

This library rebuilds the entire stack in simulation -- paged virtual
memory with protection faults, UNIX processes, a QsNet-style DMA
network, an MPI runtime, the nine calibrated workloads, the
instrumentation library, and a working incremental checkpoint/rollback
engine -- and regenerates every table and figure of the evaluation.

Quickstart::

    from repro.cluster.experiment import paper_config, run_experiment

    result = run_experiment(paper_config("sweep3d", nranks=4, timeslice=1.0))
    print(result.ib().as_row())       # avg/max incremental bandwidth
    print(result.footprint().as_row())

Package map (bottom-up):

===================  ====================================================
``repro.sim``        deterministic discrete-event engine
``repro.mem``        paged address space, protection/dirty bits, faults
``repro.proc``       UNIX process model, syscalls, heap allocator
``repro.net``        links, topology, DMA-capable NIC
``repro.storage``    disks, arrays, checkpoint store
``repro.mpi``        ranks, point-to-point, collectives
``repro.apps``       calibrated workloads (Sage, Sweep3D, NAS BT/SP/LU/FT)
``repro.instrument`` the paper's dirty-page instrumentation library
``repro.metrics``    IWS/IB statistics, period and burst detection
``repro.checkpoint`` full/incremental capture, coordinated commit, recovery
``repro.feasibility`` technology envelope, verdicts, trends, Table 1
``repro.cluster``    node models and the experiment harness
``repro.analytic``   closed-form IB(timeslice) predictions
``repro.trace``      trace persistence
===================  ====================================================
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]

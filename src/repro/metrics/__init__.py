"""Analysis of instrumentation traces: the paper's metrics.

- :mod:`~repro.metrics.bandwidth` -- Incremental Bandwidth statistics
  (the average/maximum IB of Table 4 and the Fig 2/3 curves);
- :mod:`~repro.metrics.period` -- automatic main-iteration detection by
  autocorrelation of the IWS series (section 6.2's "can automatically be
  identified at run time"), and the fraction-of-memory-overwritten
  measurement of Table 3;
- :mod:`~repro.metrics.bursts` -- processing/communication burst
  segmentation of a timeslice series;
- :mod:`~repro.metrics.stats` -- run-level summaries (multi-run
  averaging with first-run omission, footprint statistics);
- :mod:`~repro.metrics.failures` -- lost-work/downtime/availability
  accounting for fault-injection runs (:mod:`repro.faults`).
"""

from repro.metrics.bandwidth import IBStats, ib_stats, iws_ratio
from repro.metrics.bursts import Burst, burst_duty_cycle, detect_bursts
from repro.metrics.failures import (CorruptionDetected, FailureRecord,
                                    FaultRunMetrics)
from repro.metrics.period import estimate_period, fraction_overwritten
from repro.metrics.stats import FootprintStats, footprint_stats, mean_omitting_first

__all__ = [
    "Burst",
    "CorruptionDetected",
    "FailureRecord",
    "FaultRunMetrics",
    "FootprintStats",
    "IBStats",
    "burst_duty_cycle",
    "detect_bursts",
    "estimate_period",
    "footprint_stats",
    "fraction_overwritten",
    "ib_stats",
    "iws_ratio",
    "mean_omitting_first",
]

"""Burst detection: segmenting a timeslice series into bursts and gaps.

The paper's Fig 1 shows processing bursts (IWS spikes) separated by
quiet gaps with communication bursts between them.  A burst-aware
checkpoint planner wants exactly this segmentation: checkpoints placed
in the gaps interfere least (pages are not about to be rewritten).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Burst:
    """A maximal run of above-threshold samples ``[start, end)``."""

    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start


def detect_bursts(values: np.ndarray, threshold_fraction: float = 0.2,
                  min_gap: int = 1) -> list[Burst]:
    """Samples above ``threshold_fraction * max(values)`` form bursts;
    bursts separated by fewer than ``min_gap`` quiet samples merge.

    Returns bursts in order; an all-quiet series yields none.
    """
    x = np.asarray(values, dtype=float)
    if x.ndim != 1:
        raise ConfigurationError("burst detection expects a 1-D series")
    if not (0 < threshold_fraction < 1):
        raise ConfigurationError(
            f"threshold fraction must be in (0, 1): {threshold_fraction}")
    if min_gap < 1:
        raise ConfigurationError(f"min_gap must be >= 1: {min_gap}")
    if len(x) == 0 or x.max() <= 0:
        return []
    hot = x > threshold_fraction * x.max()
    bursts: list[Burst] = []
    start = None
    for i, flag in enumerate(hot):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            bursts.append(Burst(start, i))
            start = None
    if start is not None:
        bursts.append(Burst(start, len(x)))
    # merge bursts separated by short gaps
    merged: list[Burst] = []
    for b in bursts:
        if merged and b.start - merged[-1].end < min_gap:
            merged[-1] = Burst(merged[-1].start, b.end)
        else:
            merged.append(b)
    return merged


def burst_duty_cycle(values: np.ndarray,
                     threshold_fraction: float = 0.2) -> float:
    """Fraction of samples inside bursts (0 if no bursts)."""
    x = np.asarray(values, dtype=float)
    if len(x) == 0:
        raise ConfigurationError("empty series")
    bursts = detect_bursts(x, threshold_fraction)
    return sum(b.length for b in bursts) / len(x)


def quiet_indices(values: np.ndarray,
                  threshold_fraction: float = 0.2) -> np.ndarray:
    """Indices of samples outside every burst -- candidate checkpoint
    placements for the burst-aware planner."""
    x = np.asarray(values, dtype=float)
    mask = np.ones(len(x), dtype=bool)
    for b in detect_bursts(x, threshold_fraction):
        mask[b.start:b.end] = False
    return np.flatnonzero(mask)

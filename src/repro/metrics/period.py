"""Main-iteration period estimation and overwrite fraction.

Section 6.2 observes that the bulk-synchronous rhythm of scientific
codes "can automatically be identified at run time"; this module is that
detector.  The IWS series is periodic with the main iteration, so its
autocorrelation peaks at the iteration lag.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.instrument.records import TraceLog


def estimate_period(values: np.ndarray, dt: float,
                    min_lag: int = 1, max_lag: Optional[int] = None) -> float:
    """Dominant period of a uniformly sampled series, in seconds.

    Detrends the series, computes the (biased) autocorrelation, and
    returns the lag of its highest *local maximum* -- a plain argmax
    would be fooled by the monotone decay near lag 0.
    """
    x = np.asarray(values, dtype=float)
    if len(x) < 4:
        raise ConfigurationError(
            f"need at least 4 samples to estimate a period, got {len(x)}")
    if dt <= 0:
        raise ConfigurationError(f"sample spacing must be positive: {dt}")
    x = x - x.mean()
    if not x.any():
        raise ConfigurationError("series is constant; no period to find")
    n = len(x)
    max_lag = max_lag or (n - 2)
    max_lag = min(max_lag, n - 2)
    corr = np.correlate(x, x, mode="full")[n - 1:]
    corr = corr / corr[0]

    best_lag, best_val = None, -np.inf
    for lag in range(max(min_lag, 1), max_lag + 1):
        left = corr[lag - 1]
        right = corr[lag + 1] if lag + 1 <= n - 1 else -np.inf
        if corr[lag] >= left and corr[lag] >= right and corr[lag] > best_val:
            best_lag, best_val = lag, corr[lag]
    if best_lag is None:
        raise ConfigurationError("no periodic structure found")
    return best_lag * dt


def estimate_period_from_log(log: TraceLog, skip_until: float = 0.0) -> float:
    """Iteration period from a trace's IWS series."""
    view = log.after(skip_until)
    return estimate_period(view.iws_bytes(), log.timeslice)


def fraction_overwritten(log: TraceLog, skip_until: float = 0.0) -> float:
    """Fraction of the memory image overwritten per main iteration
    (Table 3), measured the natural way: run the tracker with the
    timeslice equal to the iteration period so each slice's IWS is the
    per-iteration working set, then average IWS/footprint."""
    view = log.after(skip_until)
    if len(view) == 0:
        raise ConfigurationError(f"no timeslices after t={skip_until}")
    iws = view.iws_bytes().astype(float)
    fp = np.array([r.footprint_bytes for r in view], dtype=float)
    valid = fp > 0
    if not valid.any():
        raise ConfigurationError("footprint was never non-zero")
    return float((iws[valid] / fp[valid]).mean())

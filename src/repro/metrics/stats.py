"""Run-level summary statistics.

Includes the paper's experimental-methodology details: results are means
across repeated executions *omitting the first* (cold disk caches), and
footprints are reported as maximum and average over the run (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.instrument.records import TraceLog
from repro.units import MiB


def mean_omitting_first(values: Sequence[float]) -> float:
    """Mean of repeated measurements, dropping the first execution
    (the paper's section 5 methodology for disk-cache warm-up)."""
    if len(values) == 0:
        raise ConfigurationError("no measurements")
    if len(values) == 1:
        return float(values[0])
    return float(np.mean(np.asarray(values, dtype=float)[1:]))


@dataclass(frozen=True)
class FootprintStats:
    """Table 2's two columns for one application."""

    max_mb: float
    avg_mb: float

    def as_row(self) -> str:
        """One printable footprint row."""
        return f"max={self.max_mb:7.1f} MB  avg={self.avg_mb:7.1f} MB"


def footprint_stats(log: TraceLog, skip_until: float = 0.0) -> FootprintStats:
    """Maximum and average memory footprint over the run's timeslices."""
    view = log.after(skip_until)
    if len(view) == 0:
        raise ConfigurationError(f"no timeslices after t={skip_until}")
    fp = view.footprint_mb()
    return FootprintStats(max_mb=float(fp.max()), avg_mb=float(fp.mean()))


def aggregate_ranks(values_per_rank: dict[int, float]) -> tuple[float, float]:
    """(mean, max) across ranks of a per-rank scalar -- used to confirm
    the bulk-synchronous claim that one process represents the program."""
    if not values_per_rank:
        raise ConfigurationError("no ranks")
    xs = np.array(list(values_per_rank.values()), dtype=float)
    return float(xs.mean()), float(xs.max())

"""Failure and recovery accounting for fault-injection runs.

The fault-injection driver (:mod:`repro.faults`) records one
:class:`FailureRecord` per delivered fatal fault; :class:`FaultRunMetrics`
aggregates them into the quantities the availability model
(:mod:`repro.feasibility.availability`) predicts analytically:

- **lost work**: useful computation between the last committed global
  checkpoint and the failure instant, which must be recomputed;
- **downtime**: detection latency plus the time to read the recovery
  chain back from stable storage and relaunch;
- **availability**: fraction of wall time the machine was up;
- **efficiency**: fraction of wall time spent on *useful* (not
  recomputed, not down) work -- directly comparable to the Young/Daly
  first-order model.

Silent-corruption runs additionally record one
:class:`CorruptionDetected` per chain that failed integrity
verification at recovery time; a rejected committed sequence walks
recovery back to an older intact one (or from scratch), and the extra
rollback shows up in the lost-work totals above.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FailureRecord:
    """One delivered fatal fault and the recovery it triggered."""

    time: float                   #: virtual time the fault fired
    kind: str                     #: fault kind ("crash", "nic", ...)
    victims: tuple[int, ...]      #: ranks lost to this fault
    detected_at: float            #: when the runtime noticed
    recovered_seq: Optional[int]  #: committed sequence rolled back to
    #: which life's store served the chain (None: restarted from scratch)
    recovery_life: Optional[int]
    lost_work: float              #: useful seconds to be recomputed
    restore_time: float           #: reading the chain from storage
    downtime: float               #: fault -> computation resumed
    restarted_at: float           #: when the next life began

    def __post_init__(self) -> None:
        if self.lost_work < 0 or self.restore_time < 0 or self.downtime < 0:
            raise ConfigurationError(
                "lost work, restore time, and downtime must be >= 0")
        if not self.victims:
            raise ConfigurationError("a failure needs at least one victim")


@dataclass(frozen=True)
class CorruptionDetected:
    """One recovery chain that failed integrity verification.

    Emitted while scanning candidate checkpoints at recovery time: the
    committed sequence ``rejected_seq`` could not serve recovery because
    ``rank``'s chain broke at piece ``seq`` with ``reason``.
    """

    detected_at: float  #: virtual time of the recovery scan
    life: int           #: which life's store held the bad chain
    rank: int
    seq: int            #: piece that failed (or the missing target seq)
    #: "digest-mismatch", "chain-break", "base-mismatch",
    #: "missing-base", or "missing-target"
    reason: str
    rejected_seq: int   #: the committed sequence this verdict rejected

    def __post_init__(self) -> None:
        if self.reason == "ok":
            raise ConfigurationError(
                "a CorruptionDetected record needs a failure reason")


@dataclass(frozen=True)
class FaultRunMetrics:
    """Aggregate outcome of one run under failures."""

    wall_time: float              #: total virtual time, downtime included
    n_failures: int
    total_lost_work: float
    total_downtime: float
    total_restore_time: float
    #: failures recovered without any committed checkpoint (full rerun)
    from_scratch: int = 0
    #: chains that failed integrity verification at recovery time
    corruptions_detected: int = 0
    #: committed sequences rejected as corrupt (recovery walked past them)
    integrity_walkbacks: int = 0

    def __post_init__(self) -> None:
        if self.wall_time <= 0:
            raise ConfigurationError("wall time must be positive")
        if self.total_lost_work + self.total_downtime > self.wall_time:
            raise ConfigurationError(
                "lost work plus downtime cannot exceed the wall time")

    @property
    def availability(self) -> float:
        """Fraction of wall time the machine was up (downtime excluded)."""
        return (self.wall_time - self.total_downtime) / self.wall_time

    @property
    def efficiency(self) -> float:
        """Fraction of wall time doing useful, never-recomputed work --
        the empirical counterpart of
        :func:`repro.feasibility.availability.efficiency`."""
        useful = self.wall_time - self.total_downtime - self.total_lost_work
        return useful / self.wall_time

    @classmethod
    def from_records(cls, records: list[FailureRecord], wall_time: float,
                     corruptions: Sequence[CorruptionDetected] = (),
                     ) -> "FaultRunMetrics":
        """Aggregate per-failure records over a run of ``wall_time``."""
        return cls(
            wall_time=wall_time,
            n_failures=len(records),
            total_lost_work=sum(r.lost_work for r in records),
            total_downtime=sum(r.downtime for r in records),
            total_restore_time=sum(r.restore_time for r in records),
            from_scratch=sum(1 for r in records if r.recovered_seq is None),
            corruptions_detected=len(corruptions),
            integrity_walkbacks=len({(c.life, c.rejected_seq)
                                     for c in corruptions}),
        )

    def as_row(self) -> str:
        """One summary line for reports and the CLI."""
        row = (f"failures={self.n_failures} "
               f"lost={self.total_lost_work:.2f}s "
               f"down={self.total_downtime:.2f}s "
               f"availability={self.availability:.2%} "
               f"efficiency={self.efficiency:.2%}")
        if self.corruptions_detected:
            row += (f" corruptions={self.corruptions_detected}"
                    f" walkbacks={self.integrity_walkbacks}")
        return row

"""Incremental Bandwidth statistics.

The paper defines IB = IWS size / timeslice and reports, per application
and timeslice, the *average* and the *maximum* over all timeslices of a
run -- always excluding the data-initialization burst at the very start
(section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.instrument.records import TraceLog
from repro.units import MiB


@dataclass(frozen=True)
class IBStats:
    """IB summary of one run at one timeslice."""

    timeslice: float
    n_slices: int
    avg_mbps: float
    max_mbps: float
    avg_iws_mb: float
    max_iws_mb: float

    def as_row(self) -> str:
        """One printable statistics row."""
        return (f"timeslice={self.timeslice:5.1f}s  avg={self.avg_mbps:7.1f} "
                f"MB/s  max={self.max_mbps:7.1f} MB/s  ({self.n_slices} slices)")


def ib_stats(log: TraceLog, skip_until: float = 0.0) -> IBStats:
    """IB statistics over a trace, dropping slices that start before
    ``skip_until`` (the initialization burst)."""
    view = log.after(skip_until)
    if len(view) == 0:
        raise ConfigurationError(
            f"no timeslices after t={skip_until} (run too short?)")
    ib = view.ib_mbps()
    iws = view.iws_mb()
    return IBStats(
        timeslice=log.timeslice,
        n_slices=len(view),
        avg_mbps=float(ib.mean()),
        max_mbps=float(ib.max()),
        avg_iws_mb=float(iws.mean()),
        max_iws_mb=float(iws.max()),
    )


def iws_ratio(log: TraceLog, skip_until: float = 0.0) -> float:
    """Average ratio of IWS size to memory-image size per timeslice --
    the quantity Fig 4 plots against the timeslice length."""
    view = log.after(skip_until)
    if len(view) == 0:
        raise ConfigurationError(f"no timeslices after t={skip_until}")
    iws = view.iws_bytes().astype(float)
    fp = np.array([r.footprint_bytes for r in view], dtype=float)
    valid = fp > 0
    if not valid.any():
        raise ConfigurationError("footprint was never non-zero")
    return float((iws[valid] / fp[valid]).mean())

"""Restart-and-continue: resume a failed job from its checkpoints.

The full autonomic-computing loop the paper motivates: run, checkpoint,
fail, **restart from the last committed global checkpoint and keep
computing** -- without user intervention.

Restart-in-place mechanics (everything in the simulator is
deterministic, which the real systems the paper anticipates achieve with
recorded allocation maps):

1. build a fresh job (new processes, new NICs);
2. each rank body re-runs the application's *allocation* (no
   initialization writes) -- the geometry comes out identical to the
   failed run's;
3. the checkpoint chain's content is stamped over the fresh geometry
   (:func:`~repro.checkpoint.recovery.apply_chain`), verified strictly;
4. the ranks barrier and resume the iteration loop.

The instrumentation library and a new checkpoint engine can be installed
on the restarted job exactly like on the original one.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.apps.base import ScientificApplication
from repro.checkpoint.recovery import RecoveryManager, apply_chain
from repro.errors import RecoveryError
from repro.mpi import MPIJob, RankContext
from repro.sim import Engine
from repro.storage import CheckpointStore


def make_resume_body(app: ScientificApplication,
                     recovery: RecoveryManager,
                     seq: Optional[int] = None,
                     on_restored=None):
    """A body factory that restores state and continues iterating.

    ``on_restored(ctx)``, if given, runs right after the chain has been
    applied and before any new computation -- the seam verification and
    logging hang off.
    """

    def body(ctx: RankContext) -> Generator:
        rc = app._build_run_context(ctx)
        app.allocate_regions(rc)
        chain = recovery.recovery_chain(ctx.rank, seq)
        apply_chain(ctx.memory, chain, strict=True)
        ctx.memory.reset_dirty()
        if on_restored is not None:
            on_restored(ctx)
        yield from rc.comm.barrier()      # restart barrier
        rc.init_end_time = rc.engine.now
        yield from app._iterate(rc)

    return body


class RestartCoordinator:
    """Rebuilds and relaunches a job from a checkpoint store."""

    def __init__(self, store: CheckpointStore, app: ScientificApplication,
                 *, verify_integrity: bool = True):
        self.store = store
        self.app = app
        self.recovery = RecoveryManager(store, layout=app.layout,
                                        verify_integrity=verify_integrity)

    def restart(self, engine: Engine, *, nranks: Optional[int] = None,
                seq: Optional[int] = None, name: str = "restart",
                **job_kwargs) -> MPIJob:
        """Create the restarted job (not yet launched); the caller may
        install instrumentation/checkpointing before :meth:`launch`."""
        nranks = nranks if nranks is not None else self.store.nranks
        if nranks != self.store.nranks:
            raise RecoveryError(
                f"restart must use the original rank count "
                f"{self.store.nranks}, got {nranks}")
        target = seq if seq is not None else self.store.latest_committed()
        if target is None:
            raise RecoveryError("no committed global checkpoint to restart from")
        self._seq = target
        return MPIJob(engine, nranks, layout=self.app.layout,
                      process_factory=self.app.process_factory(engine),
                      name=name, **job_kwargs)

    def launch(self, job: MPIJob, on_restored=None):
        """Launch the resume bodies on a job built by :meth:`restart`."""
        return job.launch(make_resume_body(self.app, self.recovery,
                                           self._seq,
                                           on_restored=on_restored))

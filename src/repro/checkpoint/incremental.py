"""Incremental checkpoints: save only what changed since the last one.

The capture set for one checkpoint interval is the union of

1. the *dirty pages* of every timeslice since the previous capture --
   harvested via :meth:`observe` before each alarm's dirty-reset (the
   tracker's ``slice_listeners`` seam), and
2. *new pages*: pages beyond a segment's size at the previous capture,
   and whole newly mapped segments.  These are saved unconditionally
   because writes to them may predate their write-protection (heap
   growth through ``brk`` is only protected at the next alarm).

Heap shrink-then-regrow between captures is caught through the address
space's resize listener: the low-water mark marks regrown pages as new.
Unmapped segments simply vanish from the geometry -- the memory
exclusion of section 4.2: their dirty pages are never saved.

Contract: a capture is taken at a timeslice alarm, whose handler then
resets the dirty set and **re-protects the data memory**.  Standalone
users must do the same (``memory.reset_dirty(); memory.protect_data()``)
after each capture, or writes following the capture will not fault and
the next delta will miss them -- exactly the failure mode an OS-level
implementation prevents by re-arming protection in the handler.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.checkpoint.full import geometry_of, page_bytes_of
from repro.checkpoint.snapshot import Checkpoint, PagePayload
from repro.errors import CheckpointError
from repro.mem import AddressSpace


class IncrementalCheckpointer:
    """Per-process incremental capture engine."""

    def __init__(self, memory: AddressSpace):
        self.memory = memory
        #: sid -> accumulated dirty mask (grown lazily)
        self._dirty: dict[int, np.ndarray] = {}
        #: sid -> segment size (pages) at the last capture
        self._last_npages: dict[int, int] = {}
        #: heap low-water mark (pages) since the last capture
        self._heap_low: Optional[int] = None
        self._captures = 0
        memory.heap_resize_listeners.append(self._on_heap_resize)

    # -- observation -----------------------------------------------------------------

    def observe(self) -> None:
        """Fold the current dirty bits into the accumulator.  Call once
        per timeslice *before* the tracker resets the dirty set; safe to
        call at any other time too (idempotent for unchanged state)."""
        for seg in self.memory.data_segments():
            if seg.npages == 0:
                continue
            acc = self._dirty.get(seg.sid)
            if acc is None or len(acc) < seg.npages:
                grown = np.zeros(seg.npages, dtype=bool)
                if acc is not None:
                    grown[:len(acc)] = acc
                acc = grown
                self._dirty[seg.sid] = acc
            acc[:seg.npages] |= seg.pages.dirty

    def _on_heap_resize(self, old_npages: int, new_npages: int) -> None:
        if new_npages < old_npages:
            low = self._heap_low
            self._heap_low = new_npages if low is None else min(low, new_npages)

    # -- capture ----------------------------------------------------------------------

    def _capture_masks(self, seg) -> tuple[np.ndarray, np.ndarray]:
        """Per-page save masks for one segment: ``(mask, new)``.

        ``new`` marks pages saved *unconditionally* (whole new segments,
        grown/regrown pages -- writes there may predate protection);
        ``mask`` is the full capture set, ``new`` plus the accumulated
        dirty pages.  Shared with the dcp checkpointer, which must force
        every block of a ``new`` page into its delta.
        """
        new = np.zeros(seg.npages, dtype=bool)
        known = self._last_npages.get(seg.sid)
        if known is None:
            new[:] = True                   # whole segment is new
        else:
            new_from = known
            if (seg.kind.value == "heap" and self._heap_low is not None):
                new_from = min(new_from, self._heap_low)
            if new_from < seg.npages:
                new[new_from:] = True       # grown/regrown pages
        mask = new.copy()
        acc = self._dirty.get(seg.sid)
        if acc is not None:
            n = min(len(acc), seg.npages)
            mask[:n] |= acc[:n]
        return mask, new

    def capture(self, seq: int, taken_at: float = 0.0) -> Checkpoint:
        """Produce the delta checkpoint and reset the accumulator.

        Includes an implicit :meth:`observe`, so pages dirty *right now*
        are never missed.
        """
        self.observe()
        payloads = []
        for seg in self.memory.data_segments():
            if seg.npages == 0:
                continue
            mask, _ = self._capture_masks(seg)
            indices = np.flatnonzero(mask)
            if len(indices):
                payloads.append(PagePayload(
                    sid=seg.sid, indices=indices,
                    versions=seg.pages.versions[indices].copy(),
                    page_bytes=page_bytes_of(seg, indices)))
        ckpt = Checkpoint(seq=seq, kind="incremental", taken_at=taken_at,
                          page_size=self.memory.page_size,
                          geometry=geometry_of(self.memory),
                          payloads=tuple(payloads))
        self._reset_after_capture()
        self._captures += 1
        return ckpt

    def mark_baseline(self) -> None:
        """Declare the current state fully saved (call after a *full*
        checkpoint so the next delta is relative to it)."""
        self._reset_after_capture()

    def _reset_after_capture(self) -> None:
        self._dirty.clear()
        self._heap_low = None
        self._last_npages = {seg.sid: seg.npages
                             for seg in self.memory.data_segments()}

    @property
    def captures(self) -> int:
        return self._captures

    def detach(self) -> None:
        """Remove the heap-resize listener (end of life)."""
        listeners = self.memory.heap_resize_listeners
        if self._on_heap_resize in listeners:
            listeners.remove(self._on_heap_resize)

"""Burst-aware checkpoint placement.

Section 6.2: *"there are moments where it is more convenient to take a
checkpoint, for example at the beginning or at the end of an iteration
... it may not be convenient to checkpoint during a processing burst,
because pages are likely to be re-used in a short amount of time."*

The cost model quantifies "not convenient" as copy-on-write pressure: a
checkpoint that takes ``duration`` seconds to stream out must copy (or
stall on) every page the application rewrites while the stream is in
flight.  Placing checkpoints in the quiet gaps between bursts minimizes
that overlap.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import CheckpointError
from repro.instrument.records import TraceLog
from repro.metrics.bursts import detect_bursts, quiet_indices


def cow_cost(log: TraceLog, start_index: int, duration: float) -> int:
    """Bytes the application writes during a checkpoint stream that
    starts at slice boundary ``start_index`` and lasts ``duration``
    seconds -- the copy-on-write exposure of that placement."""
    if duration < 0:
        raise CheckpointError(f"negative write-out duration {duration}")
    if not (0 <= start_index <= len(log.records)):
        raise CheckpointError(
            f"slice index {start_index} outside trace of {len(log.records)}")
    remaining = duration
    total = 0.0
    for record in log.records[start_index:]:
        if remaining <= 0:
            break
        overlap = min(remaining, record.duration)
        if record.duration > 0:
            total += record.iws_bytes * (overlap / record.duration)
        remaining -= overlap
    return int(total)


class CheckpointPlanner:
    """Plans checkpoint slice indices from an observed IWS trace."""

    def __init__(self, log: TraceLog, threshold_fraction: float = 0.2,
                 skip_until: float = 0.0):
        self.log = log.after(skip_until)
        if len(self.log) == 0:
            raise CheckpointError("empty trace; nothing to plan from")
        self.threshold_fraction = threshold_fraction
        self._iws = self.log.iws_bytes().astype(float)

    def fixed_plan(self, interval_slices: int) -> list[int]:
        """Naive plan: every ``interval_slices``-th boundary."""
        if interval_slices < 1:
            raise CheckpointError("interval must be >= 1 slice")
        return list(range(interval_slices, len(self._iws) + 1,
                          interval_slices))

    def burst_aware_plan(self, interval_slices: int) -> list[int]:
        """Like :meth:`fixed_plan` but each point snaps to the nearest
        quiet slice boundary (outside every detected burst), keeping the
        average frequency."""
        quiet = set(int(i) for i in quiet_indices(self._iws,
                                                  self.threshold_fraction))
        plan = []
        for target in self.fixed_plan(interval_slices):
            snapped = self._nearest_quiet(target, quiet,
                                          radius=interval_slices // 2 or 1)
            if snapped is not None and (not plan or snapped > plan[-1]):
                plan.append(snapped)
            elif not plan or target > plan[-1]:
                plan.append(target)
        return plan

    def _nearest_quiet(self, index: int, quiet: set[int],
                       radius: int) -> Optional[int]:
        # a checkpoint *at boundary i* streams during slice i, so we want
        # slice i itself to be quiet
        for d in range(radius + 1):
            for cand in (index + d, index - d):
                if cand in quiet and 0 < cand <= len(self._iws):
                    return cand
        return None

    def plan_cost(self, plan: list[int], write_duration: float) -> int:
        """Total copy-on-write exposure of a plan (bytes)."""
        return sum(cow_cost(self.log, idx, write_duration)
                   for idx in plan if idx < len(self.log.records))

    def bursts(self):
        """The processing bursts detected in the trace."""
        return detect_bursts(self._iws, self.threshold_fraction)

"""The coordinated checkpoint engine: every rank, same boundary.

The paper's applications are bulk-synchronous, so a global checkpoint at
a common timeslice boundary is naturally coordinated: all ranks capture
their delta at the same alarm index and stream it to stable storage.  A
global sequence number *commits* only when every rank's piece is durable
(two-phase in spirit); recovery always targets the latest committed
sequence, so a failure mid-checkpoint rolls back to the previous one.

The engine rides the instrumentation seams:

- it observes every timeslice (before the tracker resets the dirty set)
  to accumulate each rank's delta;
- every ``interval_slices``-th slice it captures -- a full checkpoint
  every ``full_every`` captures, incremental otherwise;
- each capture is written to that rank's storage (per-node disk by
  default; pass a factory for shared arrays or ramdisk-style diskless
  checkpointing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.checkpoint.cow import CowWriteout
from repro.checkpoint.dcp import DcpCheckpointer
from repro.checkpoint.full import FullCheckpointer
from repro.checkpoint.incremental import IncrementalCheckpointer
from repro.checkpoint.transport import (CheckpointTransport, TransportSpec,
                                        make_transport, normalize_spec)
from repro.errors import CheckpointError
from repro.instrument import InstrumentationLibrary
from repro.instrument.records import TimesliceRecord
from repro.instrument.tracker import DirtyPageTracker
from repro.mpi import MPIJob, RankContext
from repro.storage import CheckpointStore, Disk, DisklessSink, SCSI_ULTRA320
from repro.units import GiB


@dataclass
class GlobalCheckpoint:
    """Progress record of one global checkpoint sequence."""

    seq: int
    kind: str
    requested_at: float
    total_bytes: int = 0
    ranks_stored: int = 0
    committed_at: Optional[float] = None
    per_rank_bytes: dict[int, int] = field(default_factory=dict)

    @property
    def committed(self) -> bool:
        return self.committed_at is not None

    @property
    def commit_latency(self) -> float:
        if self.committed_at is None:
            raise CheckpointError(f"sequence {self.seq} never committed")
        return self.committed_at - self.requested_at


class CheckpointEngine:
    """Coordinated full+incremental checkpointing for one job."""

    def __init__(self, job: MPIJob, library: InstrumentationLibrary,
                 store: Optional[CheckpointStore] = None, *,
                 interval_slices: int = 1,
                 full_every: int = 16,
                 storage_factory: Optional[Callable[[int], Disk]] = None,
                 keep_payloads: bool = True,
                 cow: bool = False,
                 gc: bool = False,
                 transport: Union[None, str, TransportSpec] = None,
                 mode: str = "incremental",
                 dcp_block_size: int = 256):
        if interval_slices < 1:
            raise CheckpointError(
                f"interval_slices must be >= 1, got {interval_slices}")
        if full_every < 1:
            raise CheckpointError(f"full_every must be >= 1, got {full_every}")
        if mode not in ("incremental", "dcp"):
            raise CheckpointError(
                f"unknown checkpoint mode {mode!r} "
                f"(expected 'incremental' or 'dcp')")
        self.mode = mode
        self.dcp_block_size = dcp_block_size
        self.job = job
        self.library = library
        self.store = store or CheckpointStore(job.nranks)
        self.interval_slices = interval_slices
        self.full_every = full_every
        self.keep_payloads = keep_payloads
        tspec = normalize_spec(transport)
        if storage_factory is None:
            if tspec.mode == "diskless":
                storage_factory = lambda rank: DisklessSink(
                    job.engine, capacity=4 * GiB,
                    name=f"ckpt-buddy.r{rank}")
            else:
                storage_factory = lambda rank: Disk(
                    job.engine, SCSI_ULTRA320, name=f"ckpt-disk.r{rank}")
        self._disks = {r: storage_factory(r) for r in range(job.nranks)}
        #: the data path from capture to durability (estimate mode is
        #: the seed behaviour bit for bit)
        self.transport: CheckpointTransport = make_transport(
            tspec, engine=job.engine, network=job.network,
            sinks=self._disks, nranks=job.nranks,
            buddies={r: self._buddy_rank(r) for r in range(job.nranks)})
        #: seconds of backpressure stall charged into later timeslices
        self.stall_time = 0.0
        self._incremental: dict[int, IncrementalCheckpointer] = {}
        self._full = FullCheckpointer()
        self._captures: dict[int, int] = {}
        self.globals: dict[int, GlobalCheckpoint] = {}
        #: model copy-on-write interference during write-out windows
        self.cow = cow
        self._writeouts: list[CowWriteout] = []
        #: garbage-collect superseded chains once a newer full checkpoint
        #: commits (bounds stable-storage occupancy; required for
        #: capacity-limited sinks like diskless buddy memory)
        self.gc = gc
        self.bytes_reclaimed = 0
        #: (rank, seq) pairs whose stable-storage write failed
        self.write_failures: list[tuple[int, int]] = []
        #: sequences that must never commit (a piece was lost; the deltas
        #: that built on it are unrecoverable until the next full)
        self._poisoned: set[int] = set()
        #: ranks whose next capture must be full (chain head was lost)
        self._force_full: set[int] = set()
        #: precomputed per-rank track names for the capture hot path
        self._tracks = {r: f"ckpt.r{r}" for r in range(job.nranks)}
        self._obs_cache = None
        #: captures awaiting the coalesced epoch flush: (rank, ckpt,
        #: tracker) in capture (= rank) order.  Populated only when the
        #: engine coalesces timers; the per-timer path submits inline.
        self._pending: list = []
        self._flush_hooked = False
        # run after the library's own init hook, so the tracker exists
        job.init_hooks.append(self._on_rank_start)

    def _buddy_rank(self, rank: int) -> int:
        """Diskless buddy: the same slot on the next node, so a node
        loss never takes a checkpoint down with its owner."""
        if self.job.nranks == 1:
            return 0
        buddy = (rank + self.job.procs_per_node) % self.job.nranks
        return buddy if buddy != rank else (rank + 1) % self.job.nranks

    # -- wiring ------------------------------------------------------------------------

    def _on_rank_start(self, ctx: RankContext) -> None:
        rank = ctx.rank
        tracker = self.library.tracker(rank)
        old = self._incremental.get(rank)
        if old is not None:
            old.detach()
        if self.mode == "dcp":
            inc = DcpCheckpointer(ctx.process.memory,
                                  block_size=self.dcp_block_size)
        else:
            inc = IncrementalCheckpointer(ctx.process.memory)
        inc.mark_baseline()
        self._incremental[rank] = inc
        self._captures.setdefault(rank, 0)
        tracker.slice_listeners.append(
            lambda record, trk, r=rank: self._on_slice(r, record, trk))
        hub = self.job.engine.timer_hub
        if hub is not None and not self._flush_hooked:
            # batch the epoch's piece submissions: the hub calls this
            # after the last co-scheduled alarm, inside the same event
            hub.epoch_listeners.append(self._flush_epoch)
            self._flush_hooked = True

    # -- the per-slice hook -------------------------------------------------------------

    def _on_slice(self, rank: int, record: TimesliceRecord,
                  tracker: DirtyPageTracker) -> None:
        inc = self._incremental[rank]
        inc.observe()
        if (record.index + 1) % self.interval_slices != 0:
            return
        seq = record.index
        n = self._captures[rank]
        self._captures[rank] = n + 1
        now = self.job.engine.now
        if n % self.full_every == 0 or rank in self._force_full:
            ckpt = self._full.capture(tracker.process.memory, seq,
                                      taken_at=now)
            inc.mark_baseline()
            self._force_full.discard(rank)
        else:
            ckpt = inc.capture(seq, taken_at=now)
        obs = self.job.engine.obs
        if obs.enabled:
            cache = self._obs_cache
            if cache is None or cache[0] is not obs:
                tracer = obs.tracer
                cache = self._obs_cache = (
                    obs,
                    tracer if tracer.enabled and tracer.wants("checkpoint")
                    else None)
            m = obs.metrics
            m.counter("checkpoint.captures").inc()
            m.counter(f"checkpoint.captures_{ckpt.kind}").inc()
            m.counter("checkpoint.bytes_captured").inc(ckpt.nbytes)
            if ckpt.kind == "dcp":
                # inc is the DcpCheckpointer here; its last_* stats
                # describe exactly this capture.  The hash cost is an
                # observability figure only -- never charged to sim time,
                # so dcp and incremental runs stay sim-identical.
                from repro.storage.integrity import HASH_BANDWIDTH
                m.counter("ckpt.dcp.blocks_hashed").inc(
                    inc.last_blocks_hashed)
                m.counter("ckpt.dcp.blocks_written").inc(
                    inc.last_blocks_written)
                m.counter("ckpt.dcp.bytes_saved").inc(
                    max(0, inc.last_page_mode_nbytes - ckpt.nbytes))
                m.counter("ckpt.dcp.hash_cost_s").inc(
                    inc.last_blocks_hashed * ckpt.block_size
                    / HASH_BANDWIDTH)
            tracer = cache[1]
            if tracer is not None:
                tracer.instant("capture", "checkpoint", now,
                               track=self._tracks[rank], seq=seq,
                               kind=ckpt.kind, bytes=ckpt.nbytes)
        if self._flush_hooked and not self.job.engine.obs.tracer.enabled:
            # coalesced engine: defer the transport hand-off to the
            # epoch flush, one batch after all co-scheduled captures.
            # The deferral reorders only same-instant python work, but a
            # recording tracer logs emission order -- so with tracing on
            # we keep the inline order and stay byte-comparable with the
            # per-timer path.
            self._pending.append((rank, ckpt, tracker))
            return
        self._submit(rank, ckpt, tracker)

    def _flush_epoch(self) -> None:
        """Submit the epoch's captured pieces as one batch (called by the
        timer hub after the last co-scheduled alarm; same engine event,
        same instant, same rank order as the inline path)."""
        pending = self._pending
        if not pending:
            return
        self._pending = []
        for rank, ckpt, tracker in pending:
            self._submit(rank, ckpt, tracker)

    def _submit(self, rank: int, ckpt, tracker: DirtyPageTracker) -> None:
        stall = self._write_out(rank, ckpt)
        if stall > 0.0:
            # backpressure: this slice's IWS outran the drain bandwidth.
            # Charge the stall *after* the alarm handler completes, so it
            # lands in the next timeslice's overhead window -- the next
            # reprotect charge is effectively delayed until the queue
            # has had time to catch up.
            self.stall_time += stall
            self.job.engine.schedule_at(self.job.engine.now,
                                        tracker.charge, stall)

    def _write_out(self, rank: int, ckpt) -> float:
        """Store the piece and hand it to the transport; returns the
        backpressure stall (seconds; 0.0 when the queue is keeping up)."""
        now = self.job.engine.now
        gc = self.globals.get(ckpt.seq)
        if gc is None:
            gc = GlobalCheckpoint(seq=ckpt.seq, kind=ckpt.kind,
                                  requested_at=now)
            self.globals[ckpt.seq] = gc
        self.store.put(rank, ckpt.seq, ckpt.kind, ckpt.nbytes,
                       payload=ckpt if self.keep_payloads else None,
                       stored_at=now)
        gc.total_bytes += ckpt.nbytes
        gc.per_rank_bytes[rank] = ckpt.nbytes
        disk = self._disks[rank]
        if self.cow:
            duration = self._estimate_write_duration(disk, ckpt.nbytes)
            writeout = CowWriteout(self.job.processes[rank], ckpt, duration)
            self._writeouts.append(writeout)
        stall = self.transport.submit(rank, ckpt.seq, ckpt.nbytes,
                                      self._on_durable)
        if rank == 0 and self.transport.spec.measured:
            self.transport.sample(ckpt.seq)
        return stall

    @staticmethod
    def _estimate_write_duration(sink, nbytes: int) -> float:
        """Expected stream duration for the COW window: queueing (if the
        sink exposes it) plus the transfer at the sink's rate."""
        delay = sink.queue_delay() if hasattr(sink, "queue_delay") else 0.0
        if hasattr(sink, "spec"):                      # Disk
            return delay + sink.spec.write_time(nbytes)
        if hasattr(sink, "aggregate_bandwidth"):       # StorageArray
            return delay + nbytes / sink.aggregate_bandwidth()
        if hasattr(sink, "link"):                      # DisklessSink
            return delay + sink.link.transfer_time(nbytes)
        raise CheckpointError(
            f"cannot estimate write duration for sink {sink!r}")

    def _on_durable(self, rank: int, seq: int,
                    done_at: Optional[float]) -> None:
        if done_at is None:           # the stable-storage write failed
            self._on_write_failed(rank, seq)
            return
        if seq in self._poisoned:
            return
        record = self.globals[seq]
        record.ranks_stored += 1
        if record.ranks_stored == self.job.nranks:
            record.committed_at = done_at
            self.store.mark_committed(seq)
            obs = self.job.engine.obs
            if obs.enabled:
                obs.metrics.counter("checkpoint.commits").inc()
                tracer = obs.tracer
                if tracer.enabled and tracer.wants("checkpoint"):
                    tracer.complete("commit", "checkpoint",
                                    record.requested_at,
                                    record.commit_latency, track="ckpt.global",
                                    seq=seq, kind=record.kind,
                                    bytes=record.total_bytes)
            if self.gc and record.kind == "full":
                self._collect_garbage(seq)

    def _on_write_failed(self, rank: int, seq: int) -> None:
        """A rank's piece never reached stable storage: that sequence can
        never commit, and any incremental already captured on top of the
        lost piece is unrecoverable too.  Drop them from the store and
        force the rank's next capture to be full, which re-heads its
        chain."""
        self.write_failures.append((rank, seq))
        obs = self.job.engine.obs
        if obs.enabled:
            obs.metrics.counter("checkpoint.write_failures").inc()
            tracer = obs.tracer
            if tracer.enabled and tracer.wants("checkpoint"):
                tracer.instant("write-failed", "checkpoint",
                               self.job.engine.now, track=f"ckpt.r{rank}",
                               seq=seq)
        self._poisoned.add(seq)
        self.store.discard(rank, seq)
        # disks are FIFO, so later pieces cannot have become durable yet;
        # discard the orphaned deltas up to (excluding) the next full
        for obj in list(self.store.pieces(rank)):
            if obj.seq <= seq:
                continue
            if obj.kind == "full":
                break
            self._poisoned.add(obj.seq)
            self.store.discard(rank, obj.seq)
        self._force_full.add(rank)

    def _collect_garbage(self, full_seq: int) -> None:
        """A committed full checkpoint supersedes everything before it:
        truncate the chains and hand capacity back to sinks that track
        occupancy (diskless buddy memory)."""
        for rank in range(self.job.nranks):
            reclaimed = self.store.truncate(rank, before_seq=full_seq)
            self.bytes_reclaimed += reclaimed
            sink = self._disks[rank]
            if reclaimed and hasattr(sink, "release"):
                sink.release(min(reclaimed, sink.bytes_held))

    # -- results ------------------------------------------------------------------------

    def committed(self) -> list[GlobalCheckpoint]:
        """All committed global checkpoints, oldest first."""
        return [gc for gc in sorted(self.globals.values(), key=lambda g: g.seq)
                if gc.committed]

    def latest_commit_time(self) -> Optional[float]:
        """When the most recent committed sequence became durable (the
        reference point for lost-work accounting), or None."""
        seq = self.store.latest_committed()
        if seq is None:
            return None
        return self.globals[seq].committed_at

    def bytes_to_storage(self) -> int:
        """Total checkpoint bytes streamed to disks (all ranks)."""
        return sum(d.bytes_written for d in self._disks.values())

    def cow_stats(self) -> tuple[int, float]:
        """(total copy-on-write page copies, total copy time charged)."""
        return (sum(w.cow_copies for w in self._writeouts),
                sum(w.cow_time for w in self._writeouts))

    def transport_stats(self):
        """Picklable :class:`~repro.checkpoint.transport.TransportStats`
        snapshot (queue ledger, achieved bandwidth, contention)."""
        return self.transport.snapshot()

    def disk(self, rank: int) -> Disk:
        """The storage sink serving one rank."""
        return self._disks[rank]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CheckpointEngine every={self.interval_slices} slices "
                f"committed={len(self.committed())}>")

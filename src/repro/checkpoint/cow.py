"""Copy-on-write checkpoint write-out.

A real incremental checkpointer cannot freeze the application while the
delta streams to disk; it keeps the captured pages write-protected and
*copies on demand* any page the application touches before it has been
flushed.  Each such collision costs an extra page copy (and a fault),
charged to the application -- this is the interference that makes
checkpointing *inside* a processing burst expensive and motivates the
paper's advice to checkpoint between bursts (section 6.2).

:class:`CowWriteout` models one in-flight write-out: given the captured
page set and the stream duration, it watches the process's write faults
and charges a copy cost for every captured-but-unflushed page hit.
Flushing progresses linearly over the stream duration, so early
collisions are more likely than late ones, exactly as in a real
sequential write-out.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.checkpoint.snapshot import Checkpoint
from repro.errors import CheckpointError
from repro.mem import Segment
from repro.proc import Process
from repro.sim import Engine
from repro.units import GiB


class CowWriteout:
    """One checkpoint's copy-on-write window."""

    def __init__(self, process: Process, checkpoint: Checkpoint,
                 duration: float, *, memcpy_bandwidth: float = 2.0 * GiB):
        if duration < 0:
            raise CheckpointError(f"negative write-out duration {duration}")
        if memcpy_bandwidth <= 0:
            raise CheckpointError("memcpy bandwidth must be positive")
        self.process = process
        self.engine: Engine = process.engine
        self.duration = duration
        self.memcpy_bandwidth = memcpy_bandwidth
        self.page_size = checkpoint.page_size
        self.start_time = self.engine.now
        #: sid -> sorted array of captured page indices not yet flushed
        self._pending: dict[int, np.ndarray] = {
            p.sid: p.indices.copy() for p in checkpoint.payloads
        }
        self._pending_total = sum(len(v) for v in self._pending.values())
        self._initial_total = max(self._pending_total, 1)
        self.cow_copies = 0
        self.cow_time = 0.0
        self._active = self._pending_total > 0 and duration > 0
        if self._active:
            self.process.memory.fault_listeners.append(self._on_fault)
            self.engine.schedule(duration, self.finish)

    # -- flush progress -------------------------------------------------------------

    def _flushed_fraction(self) -> float:
        if self.duration <= 0:
            return 1.0
        return min(1.0, (self.engine.now - self.start_time) / self.duration)

    def _advance_flush(self) -> None:
        """Retire the prefix of pending pages the stream has covered
        (write-out proceeds in index order per segment)."""
        frac = self._flushed_fraction()
        target_remaining = round(self._initial_total * (1.0 - frac))
        to_retire = self._pending_total - target_remaining
        if to_retire <= 0:
            return
        for sid in list(self._pending):
            arr = self._pending[sid]
            take = min(to_retire, len(arr))
            if take:
                self._pending[sid] = arr[take:]
                self._pending_total -= take
                to_retire -= take
            if to_retire <= 0:
                break

    # -- the collision path ------------------------------------------------------------

    def _on_fault(self, seg: Segment, lo: int, hi: int, nfaults: int) -> None:
        if not self._active:
            return
        arr = self._pending.get(seg.sid)
        if arr is None or len(arr) == 0:
            return
        self._advance_flush()
        arr = self._pending.get(seg.sid)
        if arr is None or len(arr) == 0:
            return
        # captured pages in [lo, hi) that the stream has not reached yet
        a, b = np.searchsorted(arr, [lo, hi])
        hits = b - a
        if hits <= 0:
            return
        self._pending[seg.sid] = np.concatenate([arr[:a], arr[b:]])
        self._pending_total -= hits
        self.cow_copies += int(hits)
        cost = hits * self.page_size / self.memcpy_bandwidth
        self.cow_time += cost
        self.process.overhead_time += cost

    def finish(self) -> None:
        """End the window (called automatically at stream completion)."""
        if not self._active:
            return
        self._active = False
        listeners = self.process.memory.fault_listeners
        if self._on_fault in listeners:
            listeners.remove(self._on_fault)

    @property
    def active(self) -> bool:
        return self._active

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CowWriteout pending={self._pending_total} "
                f"copies={self.cow_copies} active={self._active}>")

"""The checkpoint transport pipeline: payloads as real scheduled traffic.

The seed engine charged each capture a flat per-sink duration
(``Disk.write`` straight from the capture callback), which can argue
feasibility analytically but cannot *measure* it: checkpoint traffic
never shared the NIC, the wire, or the storage ingest link with
application messages.  A transport routes each captured piece through
the simulated fabric instead:

``estimate`` (the default)
    The seed behaviour, bit for bit: one sink write per capture, no
    network traffic, no backpressure.  Differential tests pin this.
``network``
    The piece is cut into frames that inject serially at the rank's NIC
    (contending with application sends for the transmit link), cross the
    wire, serialize at a shared :class:`~repro.net.network.StoragePort`
    (the aggregate ingest bottleneck of the storage target), and only
    then hit the rank's disk.
``diskless``
    Frames cross the fabric to a *buddy rank's* receive link (incast
    with application traffic on that node) and land in the buddy's
    memory at memcpy speed (:meth:`~repro.storage.DisklessSink.ingest`).

Every rank owns a bounded drain queue.  Bytes enter at capture and
leave at frame durability; the invariant ``enqueued == drained +
in_flight`` holds at every event (property-tested).  When a capture
finds the queue past its bound, :meth:`CheckpointTransport.submit`
returns a *stall*: the seconds of reprotect charge the coordinated
engine defers into the next timeslice -- a slice whose IWS outruns the
drain bandwidth slows the application down instead of queueing
unboundedly.

The measured side of the feasibility verdict
(:meth:`~repro.feasibility.FeasibilityAnalyzer.assess_measured`) reads
a :class:`TransportStats` snapshot: achieved drain bandwidth over the
per-rank busy-interval union (mathematically bounded by the sink rate,
hence by ``TechnologyEnvelope.sustainable_bandwidth``) plus the
per-timeslice contention delay the fabric charged application messages.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.errors import CheckpointError
from repro.units import MiB

#: durability callback signature: (rank, seq, done_at-or-None)
DurableFn = Callable[[int, int, Optional[float]], None]

TRANSPORT_MODES = ("estimate", "network", "diskless")


@dataclass(frozen=True)
class TransportSpec:
    """How checkpoint payloads reach stable storage."""

    mode: str = "estimate"
    #: payload cut size; frames inject back-to-back so application
    #: messages can interleave between them at frame boundaries
    frame_bytes: int = 1 * MiB
    #: per-rank drain-queue bound; captures beyond it stall the app
    max_queue_bytes: int = 64 * MiB
    #: extra fabric hops between a compute rank and the storage port
    port_hops: int = 1

    def __post_init__(self) -> None:
        if self.mode not in TRANSPORT_MODES:
            raise CheckpointError(
                f"unknown transport mode {self.mode!r}; "
                f"expected one of {TRANSPORT_MODES}")
        if self.frame_bytes < 1:
            raise CheckpointError(
                f"frame_bytes must be >= 1, got {self.frame_bytes}")
        if self.max_queue_bytes < 1:
            raise CheckpointError(
                f"max_queue_bytes must be >= 1, got {self.max_queue_bytes}")
        if self.port_hops < 0:
            raise CheckpointError(
                f"port_hops must be >= 0, got {self.port_hops}")

    @property
    def measured(self) -> bool:
        """Whether this mode produces real traffic worth measuring."""
        return self.mode != "estimate"


def normalize_spec(
        transport: Union[None, str, TransportSpec]) -> TransportSpec:
    """``None``/string/spec -> a :class:`TransportSpec`."""
    if transport is None:
        return TransportSpec()
    if isinstance(transport, TransportSpec):
        return transport
    if isinstance(transport, str):
        return TransportSpec(mode=transport)
    raise CheckpointError(
        f"transport must be a mode string or TransportSpec, "
        f"got {transport!r}")


class DrainQueue:
    """Byte accounting for one rank's outstanding checkpoint data.

    The conservation invariant -- ``enqueued == drained + in_flight`` --
    is the drain pipeline's ledger: every byte a capture hands over is
    either already durable or still somewhere between the NIC and the
    sink, never both and never lost.
    """

    __slots__ = ("enqueued_bytes", "drained_bytes", "in_flight_bytes",
                 "peak_bytes")

    def __init__(self) -> None:
        self.enqueued_bytes = 0
        self.drained_bytes = 0
        self.in_flight_bytes = 0
        self.peak_bytes = 0

    def enqueue(self, nbytes: int) -> None:
        """A capture handed ``nbytes`` to the pipeline."""
        if nbytes < 0:
            raise CheckpointError(f"negative enqueue of {nbytes} bytes")
        self.enqueued_bytes += nbytes
        self.in_flight_bytes += nbytes
        if self.in_flight_bytes > self.peak_bytes:
            self.peak_bytes = self.in_flight_bytes

    def drain(self, nbytes: int) -> None:
        """``nbytes`` reached durability and left the queue."""
        if nbytes < 0:
            raise CheckpointError(f"negative drain of {nbytes} bytes")
        if nbytes > self.in_flight_bytes:
            raise CheckpointError(
                f"draining {nbytes} bytes with only "
                f"{self.in_flight_bytes} in flight")
        self.drained_bytes += nbytes
        self.in_flight_bytes -= nbytes

    @property
    def consistent(self) -> bool:
        return (self.enqueued_bytes
                == self.drained_bytes + self.in_flight_bytes
                and self.in_flight_bytes >= 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DrainQueue in_flight={self.in_flight_bytes} "
                f"drained={self.drained_bytes}/{self.enqueued_bytes}>")


@dataclass
class TransportStats:
    """Picklable snapshot of one transport's lifetime accounting."""

    mode: str
    pieces: int = 0
    failed_pieces: int = 0
    frames: int = 0
    bytes_submitted: int = 0
    bytes_drained: int = 0
    in_flight_bytes: int = 0
    peak_queue_bytes: int = 0
    stalls: int = 0
    stall_time: float = 0.0
    #: per-rank busy-interval union, summed (seconds of active draining)
    busy_time: float = 0.0
    #: bytes_drained / busy_time (0 when nothing drained)
    achieved_bandwidth: float = 0.0
    #: fabric delay charged to application messages by checkpoint frames
    contention_delay: float = 0.0
    contended_messages: int = 0
    #: cumulative counters sampled at capture boundaries (rank 0)
    samples: list[dict] = field(default_factory=list)

    @property
    def measured(self) -> bool:
        return self.mode != "estimate"

    def per_slice_contention(self) -> list[float]:
        """Checkpoint-induced application-message delay per sampled
        timeslice (differences of the cumulative samples)."""
        out, prev = [], 0.0
        for s in self.samples:
            cur = s["contention_delay"]
            out.append(cur - prev)
            prev = cur
        return out


@dataclass
class _Piece:
    """One rank's capture in flight through the pipeline."""

    seq: int
    nbytes: int
    on_durable: DurableFn
    to_inject: int = 0
    unacked: int = 0
    #: zero-byte pieces still ride the pipeline as one sentinel frame
    pending_empty_frame: bool = False
    failed: bool = False
    started_at: Optional[float] = None
    done_at: Optional[float] = None


class CheckpointTransport:
    """Base transport: drain-queue ledger plus shared accounting."""

    def __init__(self, spec: TransportSpec, engine, sinks: dict,
                 nranks: int):
        self.spec = spec
        self.engine = engine
        self.sinks = sinks
        self.nranks = nranks
        self.queues = {r: DrainQueue() for r in range(nranks)}
        self.pieces = 0
        self.failed_pieces = 0
        self.frames_sent = 0
        self.stalls = 0
        self.stall_time = 0.0
        self._busy_until = [0.0] * nranks
        self._busy_time = [0.0] * nranks
        self._samples: list[dict] = []
        self._obs_cache = None

    # -- the coordinated engine's entry points ------------------------------

    def submit(self, rank: int, seq: int, nbytes: int,
               on_durable: DurableFn) -> float:
        """Hand one captured piece to the pipeline.

        Returns the *stall* in seconds: 0.0 when the rank's queue is
        within bounds, else the time the application must be slowed so
        the drain can catch up (charged by the caller into the next
        timeslice's overhead).
        """
        raise NotImplementedError

    def sample(self, seq: int) -> None:
        """Record one per-timeslice sample of the cumulative counters
        (called at capture boundaries; cheap, append-only)."""
        self._samples.append({
            "seq": seq,
            "t": self.engine.now,
            "bytes_drained": sum(q.drained_bytes
                                 for q in self.queues.values()),
            "queue_bytes": self.queue_bytes(),
            "contention_delay": self.contention_delay(),
            "contended_messages": self.contended_messages(),
        })

    # -- accounting ---------------------------------------------------------

    def queue_bytes(self) -> int:
        """Bytes currently in flight across every rank's queue."""
        return sum(q.in_flight_bytes for q in self.queues.values())

    def peak_queue_bytes(self) -> int:
        """The deepest any rank's drain queue ever got."""
        return max(q.peak_bytes for q in self.queues.values())

    def contention_delay(self) -> float:
        """Fabric delay charged to application messages (seconds)."""
        return 0.0

    def contended_messages(self) -> int:
        """Application-message link waits attributed to checkpoints."""
        return 0

    def busy_time(self) -> float:
        """Summed per-rank busy-interval union: seconds some piece of a
        rank's data was actively draining (inject start to durable)."""
        return sum(self._busy_time)

    def achieved_bandwidth(self) -> float:
        """Drained bytes over busy time.  Because each rank's busy union
        contains its sink's occupation, this never exceeds the sink
        bandwidth -- and hence never exceeds the envelope's
        ``sustainable_bandwidth``."""
        busy = self.busy_time()
        if busy <= 0.0:
            return 0.0
        drained = sum(q.drained_bytes for q in self.queues.values())
        return drained / busy

    def snapshot(self) -> TransportStats:
        """Everything the measured feasibility verdict needs, picklable."""
        return TransportStats(
            mode=self.spec.mode,
            pieces=self.pieces,
            failed_pieces=self.failed_pieces,
            frames=self.frames_sent,
            bytes_submitted=sum(q.enqueued_bytes
                                for q in self.queues.values()),
            bytes_drained=sum(q.drained_bytes for q in self.queues.values()),
            in_flight_bytes=self.queue_bytes(),
            peak_queue_bytes=self.peak_queue_bytes(),
            stalls=self.stalls,
            stall_time=self.stall_time,
            busy_time=self.busy_time(),
            achieved_bandwidth=self.achieved_bandwidth(),
            contention_delay=self.contention_delay(),
            contended_messages=self.contended_messages(),
            samples=[dict(s) for s in self._samples],
        )

    def _note_busy(self, rank: int, start: float, end: float) -> None:
        lo = max(start, self._busy_until[rank])
        if end > lo:
            self._busy_time[rank] += end - lo
            self._busy_until[rank] = end

    def _gauge_obs(self, obs):
        cache = self._obs_cache
        if cache is None or cache[0] is not obs:
            m = obs.metrics
            cache = self._obs_cache = (
                obs,
                m.gauge("checkpoint.transport.queue_bytes"),
                m.gauge("checkpoint.transport.peak_queue_bytes"),
                m.counter("checkpoint.transport.bytes_drained"),
                m.counter("checkpoint.transport.frames"),
                m.counter("checkpoint.transport.stalls"),
                m.counter("checkpoint.transport.stall_time_s"),
                m.series("checkpoint.transport.drained_bytes"),
            )
        return cache

    def _update_queue_gauges(self) -> None:
        obs = self.engine.obs
        if obs.enabled:
            cache = self._gauge_obs(obs)
            cache[1].set(self.queue_bytes())
            cache[2].set(self.peak_queue_bytes())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} mode={self.spec.mode!r} "
                f"pieces={self.pieces} in_flight={self.queue_bytes()}>")


class EstimateTransport(CheckpointTransport):
    """The seed data path, verbatim: one sink write per capture.

    Event scheduling, future labels, and callback order are exactly what
    ``CheckpointEngine._write_out`` produced before transports existed,
    so estimate-mode simulations are bit-identical to the seed (the
    differential suite pins this).  No frames, no network traffic, no
    backpressure: ``submit`` always returns 0.0.
    """

    def submit(self, rank: int, seq: int, nbytes: int,
               on_durable: DurableFn) -> float:
        self.pieces += 1
        q = self.queues[rank]
        q.enqueue(nbytes)
        start = self.engine.now
        fut = self.sinks[rank].write(nbytes)

        def finish(done_at, q=q, rank=rank, seq=seq, nbytes=nbytes,
                   start=start):
            q.drain(nbytes)
            if done_at is None:
                self.failed_pieces += 1
                self._note_busy(rank, start, self.engine.now)
            else:
                self._note_busy(rank, start, done_at)
            on_durable(rank, seq, done_at)

        fut.add_callback(finish)
        return 0.0


class _FramedTransport(CheckpointTransport):
    """Shared frame machinery of the network and diskless modes.

    Per rank, pieces drain in FIFO order: frames inject back-to-back at
    the rank's NIC (the transmit link stays busy, but application
    messages interleave at frame boundaries because each frame is a
    separate injection), cross the fabric, and are handed to
    :meth:`_deposit_frame`, whose future resolves at durability.  Both
    the fabric and the sinks are FIFO, so the head piece always
    completes first.
    """

    def __init__(self, spec: TransportSpec, engine, sinks: dict,
                 nranks: int, network):
        super().__init__(spec, engine, sinks, nranks)
        self.network = network
        self._pending: dict[int, deque] = {r: deque() for r in range(nranks)}
        self._injecting = [False] * nranks
        #: effective drain rate used to convert queue excess to stall
        #: seconds -- the slower of the wire and the sink
        self._drain_rate = min(network.spec.bandwidth,
                               self._sink_rate())

    def _sink_rate(self) -> float:
        raise NotImplementedError

    def _send_frame(self, rank: int, nbytes: int):
        """Put one frame on the fabric; returns (inject_at, arrival)."""
        raise NotImplementedError

    def _deposit_frame(self, rank: int, nbytes: int):
        """Frame arrived at the target; returns the durability future."""
        raise NotImplementedError

    def submit(self, rank: int, seq: int, nbytes: int,
               on_durable: DurableFn) -> float:
        self.pieces += 1
        q = self.queues[rank]
        q.enqueue(nbytes)
        piece = _Piece(seq=seq, nbytes=nbytes, on_durable=on_durable,
                       to_inject=nbytes, unacked=nbytes)
        if nbytes == 0:
            # an empty piece still rides the pipeline (one zero-byte
            # frame) so per-rank FIFO completion order is preserved
            piece.pending_empty_frame = True
            piece.unacked = 1
        self._pending[rank].append(piece)
        stall = 0.0
        if q.in_flight_bytes > self.spec.max_queue_bytes:
            # only the part of *this* piece that overflows the bound is
            # charged, so every byte stalls the application at most once
            excess = min(nbytes, q.in_flight_bytes
                         - self.spec.max_queue_bytes)
            stall = excess / self._drain_rate
            self.stalls += 1
            self.stall_time += stall
        obs = self.engine.obs
        if obs.enabled:
            cache = self._gauge_obs(obs)
            cache[1].set(self.queue_bytes())
            cache[2].set(self.peak_queue_bytes())
            if stall:
                cache[5].inc()
                cache[6].inc(stall)
        if not self._injecting[rank]:
            self._injecting[rank] = True
            self._inject_next(rank)
        return stall

    # -- the frame loop -----------------------------------------------------

    def _inject_next(self, rank: int) -> None:
        piece = None
        for p in self._pending[rank]:
            if p.to_inject > 0 or p.pending_empty_frame:
                piece = p
                break
        if piece is None:
            self._injecting[rank] = False
            return
        if piece.pending_empty_frame:
            frame = 0
            piece.pending_empty_frame = False
        else:
            frame = min(self.spec.frame_bytes, piece.to_inject)
            piece.to_inject -= frame
        self.frames_sent += 1
        inject_at, inject_done, arrival = self._send_frame(rank, frame)
        if piece.started_at is None:
            piece.started_at = inject_at
        self.engine.schedule_at(arrival, self._frame_arrived, rank, piece,
                                frame)
        # the transmit link frees at inject-done; keep the loop going
        # from there so application sends interleave between frames
        self.engine.schedule_at(inject_done, self._inject_next, rank)

    def _frame_arrived(self, rank: int, piece: _Piece, frame: int) -> None:
        fut = self._deposit_frame(rank, frame)
        fut.add_callback(lambda done_at: self._frame_durable(
            rank, piece, frame, done_at))

    def _frame_durable(self, rank: int, piece: _Piece, frame: int,
                       done_at: Optional[float]) -> None:
        q = self.queues[rank]
        q.drain(frame)
        if done_at is None:
            piece.failed = True
        else:
            piece.done_at = done_at
        piece.unacked -= frame if piece.nbytes else 1
        obs = self.engine.obs
        if obs.enabled:
            cache = self._gauge_obs(obs)
            cache[1].set(self.queue_bytes())
            cache[3].inc(frame)
            cache[4].inc()
            cache[7].record(self.engine.now, frame)
        if (piece.unacked == 0 and piece.to_inject == 0
                and not piece.pending_empty_frame):
            self._finish_piece(rank, piece)

    def _finish_piece(self, rank: int, piece: _Piece) -> None:
        deq = self._pending[rank]
        if not deq or deq[0] is not piece:
            raise CheckpointError(
                f"rank {rank}: piece seq {piece.seq} completed out of "
                "FIFO order")
        deq.popleft()
        end = self.engine.now if piece.failed else piece.done_at
        self._note_busy(rank, piece.started_at, end)
        if piece.failed:
            self.failed_pieces += 1
            piece.on_durable(rank, piece.seq, None)
        else:
            piece.on_durable(rank, piece.seq, piece.done_at)

    # -- accounting ---------------------------------------------------------

    def contention_delay(self) -> float:
        return self.network.ckpt_contention_delay

    def contended_messages(self) -> int:
        return self.network.ckpt_contended_messages


class NetworkTransport(_FramedTransport):
    """Frames cross the fabric to a shared storage port, then the disk.

    The port models the storage target's aggregate ingest link: frames
    from every rank serialize there (the DMTCP-style cluster-wide
    writeback bottleneck), then queue at the rank's disk behind it.
    """

    def __init__(self, spec: TransportSpec, engine, sinks: dict,
                 nranks: int, network):
        super().__init__(spec, engine, sinks, nranks, network)
        self.port = network.open_storage_port("ckpt-storage",
                                              hops=spec.port_hops)

    def _sink_rate(self) -> float:
        rates = []
        for sink in self.sinks.values():
            if hasattr(sink, "spec"):                    # Disk
                rates.append(sink.spec.bandwidth)
            elif hasattr(sink, "aggregate_bandwidth"):   # StorageArray
                rates.append(sink.aggregate_bandwidth())
            else:
                raise CheckpointError(
                    f"network transport needs disk-like sinks, "
                    f"got {sink!r}")
        return min(rates)

    def _send_frame(self, rank: int, nbytes: int):
        return self.network.storage_send(rank, nbytes, port=self.port)

    def _deposit_frame(self, rank: int, nbytes: int):
        return self.sinks[rank].write(nbytes)


class DisklessTransport(_FramedTransport):
    """Frames cross the fabric to a buddy rank's memory.

    The buddy is the co-resident spread ``(rank + procs_per_node) %
    nranks`` mapped by the caller; here the transport only needs the
    destination rank per source.  Frames occupy the buddy's *receive*
    link (incast with application traffic on that node) and then land
    at memcpy speed via :meth:`~repro.storage.DisklessSink.ingest` --
    the wire was already simulated, so the sink charges memory copy and
    capacity only.
    """

    def __init__(self, spec: TransportSpec, engine, sinks: dict,
                 nranks: int, network, buddies: dict[int, int]):
        super().__init__(spec, engine, sinks, nranks, network)
        for rank in range(nranks):
            if buddies.get(rank) is None:
                raise CheckpointError(f"rank {rank} has no buddy")
            if not hasattr(sinks[rank], "ingest"):
                raise CheckpointError(
                    f"diskless transport needs DisklessSink-like sinks, "
                    f"got {sinks[rank]!r}")
        self.buddies = buddies

    def _sink_rate(self) -> float:
        return min(sink.memcpy_bandwidth for sink in self.sinks.values())

    def _send_frame(self, rank: int, nbytes: int):
        return self.network.storage_send(rank, nbytes,
                                         dst=self.buddies[rank])

    def _deposit_frame(self, rank: int, nbytes: int):
        return self.sinks[rank].ingest(nbytes)


def make_transport(transport: Union[None, str, TransportSpec], *,
                   engine, network, sinks: dict, nranks: int,
                   buddies: Optional[dict[int, int]] = None
                   ) -> CheckpointTransport:
    """Build the transport a :class:`TransportSpec` (or mode string)
    asks for, wired to one job's engine/network/sinks."""
    spec = normalize_spec(transport)
    if spec.mode == "estimate":
        return EstimateTransport(spec, engine, sinks, nranks)
    if spec.mode == "network":
        return NetworkTransport(spec, engine, sinks, nranks, network)
    if buddies is None:
        buddies = {r: (r + 1) % nranks for r in range(nranks)}
    return DisklessTransport(spec, engine, sinks, nranks, network, buddies)

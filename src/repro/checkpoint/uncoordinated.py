"""Uncoordinated checkpointing and the domino effect.

The paper exploits bulk-synchrony to take *coordinated* checkpoints (all
ranks at the same timeslice boundary), so a failure loses at most one
interval.  The classic alternative -- every rank checkpoints on its own
schedule -- needs no coordination but risks cascading rollbacks: if a
message was sent after its sender's recovery point but received before
its receiver's, the receiver's state depends on unreproducible history
(an *orphan* message) and the receiver must roll back further, possibly
cascading all the way to the start (Elnozahy et al.'s survey, the
paper's reference [10]).

This module makes that trade-off measurable:

- :class:`MessageLogger` records every delivery (sender, receiver, send
  and receive times) from the live run;
- :class:`UncoordinatedSchedule` gives each rank an independent,
  staggered checkpoint clock;
- :func:`recovery_line` computes the consistent recovery line for a
  failure at time ``T``: start from every rank's latest checkpoint and
  iteratively roll receivers of orphan messages back to earlier
  checkpoints until no orphans remain (a monotone fixpoint).

The ablation bench compares the work lost under coordinated versus
uncoordinated schedules on the same workload and message log.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional

from repro.errors import CheckpointError
from repro.mpi import MPIJob, RankContext


@dataclass(frozen=True)
class LoggedMessage:
    """One delivered application message."""

    src: int
    dst: int
    send_time: float
    recv_time: float
    size: int


class MessageLogger:
    """Records every application-level delivery of a job."""

    def __init__(self, job: MPIJob):
        self.messages: list[LoggedMessage] = []
        job.init_hooks.append(self._attach)
        self._attached: set[int] = set()

    def _attach(self, ctx: RankContext) -> None:
        if ctx.rank in self._attached:
            return
        self._attached.add(ctx.rank)
        engine = ctx.engine

        def record(msg, dst=ctx.rank):
            self.messages.append(LoggedMessage(
                src=msg.src, dst=dst, send_time=msg.send_time,
                recv_time=engine.now, size=msg.size))

        ctx.comm.receive_listeners.append(record)

    def before(self, t: float) -> list[LoggedMessage]:
        """Messages fully delivered by time ``t``."""
        return [m for m in self.messages if m.recv_time <= t]


class UncoordinatedSchedule:
    """Independent per-rank checkpoint instants.

    ``stagger_fraction`` offsets each rank's clock by
    ``rank / nranks * interval`` -- the natural drift of uncoordinated
    checkpointing (0.0 degenerates to a coordinated schedule).
    """

    def __init__(self, nranks: int, interval: float, horizon: float,
                 stagger_fraction: float = 1.0, start: float = 0.0):
        if nranks < 1 or interval <= 0 or horizon <= start:
            raise CheckpointError("bad uncoordinated-schedule parameters")
        if not (0.0 <= stagger_fraction <= 1.0):
            raise CheckpointError("stagger fraction must be in [0, 1]")
        self.nranks = nranks
        self.interval = interval
        #: per-rank sorted checkpoint times; time 0 (the initial state)
        #: is always recoverable
        self.times: list[list[float]] = []
        for rank in range(nranks):
            offset = stagger_fraction * (rank / nranks) * interval
            ts = [start]
            t = start + offset
            if t == start:
                t += interval
            while t <= horizon:
                ts.append(t)
                t += interval
            self.times.append(ts)

    def latest_at_or_before(self, rank: int, t: float) -> float:
        """The rank's newest checkpoint taken at or before ``t``."""
        ts = self.times[rank]
        i = bisect.bisect_right(ts, t) - 1
        if i < 0:
            raise CheckpointError(
                f"rank {rank} has no checkpoint at or before t={t}")
        return ts[i]

    def latest_strictly_before(self, rank: int, t: float) -> float:
        """The rank's newest checkpoint strictly before ``t``."""
        ts = self.times[rank]
        i = bisect.bisect_left(ts, t) - 1
        if i < 0:
            raise CheckpointError(
                f"rank {rank} has no checkpoint strictly before t={t}")
        return ts[i]


def recovery_line(schedule: UncoordinatedSchedule,
                  messages: list[LoggedMessage],
                  failure_time: float) -> list[float]:
    """The consistent recovery line for a failure at ``failure_time``.

    Returns each rank's rollback time.  Fixpoint iteration: while some
    message was sent after its sender's line but received before its
    receiver's (an orphan), roll the receiver back before the receive.
    Terminates because lines only ever move to strictly earlier
    checkpoints and time 0 is always consistent (no messages precede it).
    """
    line = [schedule.latest_at_or_before(r, failure_time)
            for r in range(schedule.nranks)]
    relevant = [m for m in messages if m.recv_time <= failure_time]
    changed = True
    while changed:
        changed = False
        for m in relevant:
            if m.send_time > line[m.src] and m.recv_time <= line[m.dst]:
                line[m.dst] = schedule.latest_strictly_before(
                    m.dst, m.recv_time)
                changed = True
    return line


def lost_work(line: list[float], failure_time: float) -> float:
    """Total work discarded across ranks (rank-seconds)."""
    return sum(failure_time - t for t in line)


def in_flight_at(messages: list[LoggedMessage], t: float) -> list[LoggedMessage]:
    """Messages crossing the instant ``t`` (sent before, delivered after).

    A coordinated checkpoint taken at ``t`` must log or drain these to be
    fully consistent; for the paper's bulk-synchronous codes, boundaries
    between bursts have (near-)empty channels -- the quantitative backing
    for taking coordinated checkpoints there.
    """
    return [m for m in messages if m.send_time < t < m.recv_time]

"""Differential (sub-page) checkpoints: hash blocks, save only changes.

Page-granular incremental checkpointing (section 4 of the paper) pays
for *false sharing*: one dirty byte charges a whole page to stable
storage.  The dcp mode splits every dirty page into fixed-size blocks,
hashes each block, compares against the per-page hash vector recorded
at the previous checkpoint, and emits only the blocks whose hash moved
-- the differential scheme later literature (see PAPERS.md) showed
recovers most of the page-granularity waste at a modest hash cost.

Two hashing backends, matching the address space's two content
backends:

- **signature backend** (default): a block's "hash" is its 64-bit
  write version from the :class:`~repro.mem.blocks.BlockTable`.  Exact
  by construction -- a block whose bytes changed was written, so its
  version moved -- and restores are *version-identical*, so driver and
  experiment verification via ``state_signature()`` holds unchanged.
- **bytes backend** (``store_contents=True``): truncated blake2b over
  the real block bytes.  Blocks rewritten with identical content hash
  equal and are skipped -- content-hash dedup on top of write
  tracking.  Restored *content* is bit-identical; page versions are
  synthesized from hashes and carry no meaning (documented in
  DESIGN.md section 6.14).

Pages in the unconditionally-new portion of the capture mask (new
segments, heap growth, shrink-then-regrow) emit **all** their blocks
regardless of hash comparison: their baseline rows are stale or
absent, and the incremental checkpointer saves them whole for the same
reason.  This forced emit is what makes dcp at
``block_size == page_size`` byte-for-byte identical to incremental
mode.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.checkpoint.incremental import IncrementalCheckpointer
from repro.checkpoint.full import geometry_of
from repro.checkpoint.snapshot import (Checkpoint, BlockPayload,
                                       SEGMENT_HEADER_BYTES)
from repro.errors import CheckpointError
from repro.mem import AddressSpace, Segment

#: baseline sentinel for blocks that have never been hashed; a real
#: hash colliding with it merely forces a spurious (safe) emit
NEVER_HASHED = np.uint64(0xFFFFFFFFFFFFFFFF)


def content_block_hashes(seg: Segment, pages: np.ndarray,
                         block_size: int) -> np.ndarray:
    """blake2b content hash (truncated to 64 bits) of every block of
    the given pages; shape ``(len(pages), blocks_per_page)`` uint64.
    Bytes backend only."""
    bpp = seg.page_size // block_size
    out = np.empty((len(pages), bpp), dtype=np.uint64)
    view = memoryview(seg.contents)
    for row, page in enumerate(pages):
        off = int(page) * seg.page_size
        for b in range(bpp):
            digest = hashlib.blake2b(
                view[off:off + block_size], digest_size=8).digest()
            out[row, b] = int.from_bytes(digest, "little")
            off += block_size
    return out


class DcpCheckpointer(IncrementalCheckpointer):
    """Per-process differential capture engine.

    Same observe/capture/mark_baseline contract as
    :class:`IncrementalCheckpointer`; deltas come out as ``"dcp"``
    checkpoints carrying :class:`BlockPayload` pieces.
    """

    def __init__(self, memory: AddressSpace, block_size: int = 256):
        super().__init__(memory)
        if block_size < 1 or memory.page_size % block_size:
            raise CheckpointError(
                f"dcp block size {block_size} must be >= 1 and divide "
                f"the page size {memory.page_size}")
        self.block_size = block_size
        self.blocks_per_page = memory.enable_block_tracking(block_size)
        #: sid -> flat per-block baseline hash vector (one uint64 per
        #: block of the segment, NEVER_HASHED where no hash exists yet)
        self._baseline: dict[int, np.ndarray] = {}
        # per-capture stats (for ckpt.dcp.* observability)
        self.last_blocks_hashed = 0
        self.last_blocks_written = 0
        #: what the page-granular incremental delta would have cost
        self.last_page_mode_nbytes = 0

    # -- hashing ---------------------------------------------------------------

    def _hashes_of(self, seg: Segment, pages: np.ndarray) -> np.ndarray:
        """Current block hash vectors for the given pages, shape
        ``(len(pages), blocks_per_page)``."""
        if seg.contents is not None:
            return content_block_hashes(seg, pages, self.block_size)
        bpp = self.blocks_per_page
        return seg.blocks.versions.reshape(-1, bpp)[pages].copy()

    def _baseline_for(self, seg: Segment) -> np.ndarray:
        """The segment's baseline vector, resized to its current
        geometry (new blocks arrive as NEVER_HASHED)."""
        want = seg.npages * self.blocks_per_page
        base = self._baseline.get(seg.sid)
        if base is None:
            base = np.full(want, NEVER_HASHED, dtype=np.uint64)
            self._baseline[seg.sid] = base
        elif len(base) < want:
            grown = np.full(want, NEVER_HASHED, dtype=np.uint64)
            grown[:len(base)] = base
            base = grown
            self._baseline[seg.sid] = base
        elif len(base) > want:
            base = base[:want].copy()
            self._baseline[seg.sid] = base
        return base

    def _block_bytes_of(self, seg: Segment,
                        flat_blocks: np.ndarray) -> np.ndarray | None:
        if seg.contents is None or len(flat_blocks) == 0:
            return None
        flat = np.frombuffer(bytes(seg.contents), dtype=np.uint8)
        return flat.reshape(-1, self.block_size)[flat_blocks].copy()

    # -- capture ---------------------------------------------------------------

    def capture(self, seq: int, taken_at: float = 0.0) -> Checkpoint:
        """Produce the block-granular delta and reset the accumulator."""
        self.observe()
        bpp = self.blocks_per_page
        payloads = []
        blocks_hashed = 0
        blocks_written = 0
        pages_masked = 0
        nsegments = 0
        for seg in self.memory.data_segments():
            nsegments += 1
            if seg.npages == 0:
                continue
            mask, new = self._capture_masks(seg)
            pages = np.flatnonzero(mask)
            baseline = self._baseline_for(seg)
            if len(pages) == 0:
                continue
            pages_masked += len(pages)
            current = self._hashes_of(seg, pages)
            blocks_hashed += current.size
            base_rows = baseline.reshape(-1, bpp)[pages]
            changed = current != base_rows
            # new/grown/regrown pages: baseline is stale or absent, so
            # every block must go out -- exactly the pages incremental
            # mode saves unconditionally
            changed[new[pages]] = True
            baseline.reshape(-1, bpp)[pages] = current
            if not changed.any():
                continue
            flat = (pages[:, None] * bpp
                    + np.arange(bpp, dtype=pages.dtype))[changed]
            versions = current[changed].copy()
            blocks_written += len(flat)
            payloads.append(BlockPayload(
                sid=seg.sid,
                indices=flat.astype(np.int64),
                versions=versions,
                block_bytes=self._block_bytes_of(seg, flat)))
        ckpt = Checkpoint(seq=seq, kind="dcp", taken_at=taken_at,
                          page_size=self.memory.page_size,
                          geometry=geometry_of(self.memory),
                          payloads=tuple(payloads),
                          block_size=self.block_size)
        self.last_blocks_hashed = blocks_hashed
        self.last_blocks_written = blocks_written
        self.last_page_mode_nbytes = (
            pages_masked * self.memory.page_size
            + SEGMENT_HEADER_BYTES * nsegments)
        self._reset_after_capture()
        self._captures += 1
        return ckpt

    def mark_baseline(self) -> None:
        """A full checkpoint saved everything: refresh every segment's
        baseline hash vector to its current state."""
        super().mark_baseline()
        for seg in self.memory.data_segments():
            if seg.npages == 0:
                self._baseline.pop(seg.sid, None)
                continue
            base = np.empty(seg.npages * self.blocks_per_page,
                            dtype=np.uint64)
            all_pages = np.arange(seg.npages)
            base.reshape(-1, self.blocks_per_page)[:] = (
                self._hashes_of(seg, all_pages))
            self._baseline[seg.sid] = base

    def _reset_after_capture(self) -> None:
        super()._reset_after_capture()
        live = set(self._last_npages)
        for sid in [s for s in self._baseline if s not in live]:
            del self._baseline[sid]

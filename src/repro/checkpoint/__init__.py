"""Checkpoint and rollback recovery.

The paper *measures* the bandwidth an incremental checkpointer would
need; this package goes one step further and builds the checkpointer the
measurements argue for, which lets the tests prove the central identity:
**the IWS is exactly the data an incremental checkpoint must save**.

- :mod:`~repro.checkpoint.snapshot` -- checkpoint objects: segment
  geometry + per-page content versions;
- :mod:`~repro.checkpoint.full` / :mod:`~repro.checkpoint.incremental`
  -- capture engines (the incremental one accumulates dirty pages across
  timeslices and handles segment growth/shrink/unmap);
- :mod:`~repro.checkpoint.recovery` -- chain replay: reconstruct an
  address space from a full checkpoint plus deltas and verify it matches
  the original bit-for-bit (by content signature);
- :mod:`~repro.checkpoint.coordinated` -- the cluster-wide engine:
  every rank captures at the same timeslice boundaries, streams to
  stable storage, and a global sequence commits only when every rank's
  piece is durable;
- :mod:`~repro.checkpoint.planner` -- burst-aware checkpoint placement
  (section 6.2: checkpoint between bursts, not inside them).
"""

from repro.checkpoint.snapshot import (Checkpoint, BlockPayload, PagePayload,
                                       SegmentRecord)
from repro.checkpoint.full import FullCheckpointer
from repro.checkpoint.incremental import IncrementalCheckpointer
from repro.checkpoint.dcp import DcpCheckpointer, content_block_hashes
from repro.checkpoint.recovery import (
    RecoveryManager,
    apply_chain,
    restore_address_space,
)
from repro.checkpoint.coordinated import CheckpointEngine, GlobalCheckpoint
from repro.checkpoint.transport import (
    CheckpointTransport,
    DisklessTransport,
    DrainQueue,
    EstimateTransport,
    NetworkTransport,
    TransportSpec,
    TransportStats,
    make_transport,
)
from repro.checkpoint.planner import CheckpointPlanner, cow_cost
from repro.checkpoint.restart import RestartCoordinator, make_resume_body
from repro.checkpoint.uncoordinated import (
    LoggedMessage,
    MessageLogger,
    UncoordinatedSchedule,
    lost_work,
    recovery_line,
)

__all__ = [
    "BlockPayload",
    "Checkpoint",
    "CheckpointEngine",
    "CheckpointPlanner",
    "CheckpointTransport",
    "DcpCheckpointer",
    "DisklessTransport",
    "DrainQueue",
    "EstimateTransport",
    "FullCheckpointer",
    "GlobalCheckpoint",
    "IncrementalCheckpointer",
    "NetworkTransport",
    "TransportSpec",
    "TransportStats",
    "LoggedMessage",
    "MessageLogger",
    "PagePayload",
    "RecoveryManager",
    "RestartCoordinator",
    "SegmentRecord",
    "UncoordinatedSchedule",
    "apply_chain",
    "content_block_hashes",
    "cow_cost",
    "lost_work",
    "make_resume_body",
    "make_transport",
    "recovery_line",
    "restore_address_space",
]

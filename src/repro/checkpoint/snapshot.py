"""Checkpoint objects: what gets written to stable storage.

A checkpoint carries

- the *geometry* of every data segment at capture time (kind, base,
  size, and the segment's process-unique ``sid`` so chain replay can
  follow a segment through growth and shrink), and
- *page payloads*: per segment, the indices of saved pages and their
  content (64-bit write-version signatures standing in for the page
  bytes -- see DESIGN.md on content signatures).

``nbytes`` models the stable-storage cost: one page of data per saved
page plus a small per-segment header.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CheckpointError

#: modelled metadata cost per segment record
SEGMENT_HEADER_BYTES = 64


@dataclass(frozen=True)
class SegmentRecord:
    """Geometry of one data segment at capture time."""

    sid: int
    kind: str       #: SegmentKind value ("data", "bss", "heap", "mmap")
    base: int
    npages: int

    def __post_init__(self) -> None:
        if self.npages < 0:
            raise CheckpointError(f"negative page count in segment record")


@dataclass(frozen=True)
class PagePayload:
    """Saved pages of one segment: parallel index/version arrays, plus
    (under the bytes backend) the real page contents."""

    sid: int
    indices: np.ndarray    #: page indices within the segment (ascending)
    versions: np.ndarray   #: content signature per saved page
    #: real content, shape (npages, page_size) uint8; None under the
    #: default signature-only backend
    page_bytes: np.ndarray | None = None

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.versions):
            raise CheckpointError("payload index/version length mismatch")
        if self.page_bytes is not None and len(self.page_bytes) != len(self.indices):
            raise CheckpointError("payload byte-content length mismatch")

    @property
    def npages(self) -> int:
        return len(self.indices)


@dataclass(frozen=True)
class BlockPayload:
    """Saved sub-page blocks of one segment (dcp mode): parallel
    block-index/hash arrays, plus (under the bytes backend) the real
    block contents.

    ``indices`` are flat block indices within the segment (ascending):
    block ``i`` covers bytes ``[i * block_size, (i + 1) * block_size)``.
    ``versions`` carries one 64-bit word per saved block -- the block's
    write version under the signature backend (where it doubles as the
    content hash), a truncated blake2b content digest under the bytes
    backend.
    """

    sid: int
    indices: np.ndarray    #: flat block indices within the segment (ascending)
    versions: np.ndarray   #: content hash / write version per saved block
    #: real content, shape (nblocks, block_size) uint8; None under the
    #: default signature-only backend
    block_bytes: np.ndarray | None = None

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.versions):
            raise CheckpointError("payload index/version length mismatch")
        if (self.block_bytes is not None
                and len(self.block_bytes) != len(self.indices)):
            raise CheckpointError("payload byte-content length mismatch")

    @property
    def nblocks(self) -> int:
        return len(self.indices)


@dataclass(frozen=True)
class Checkpoint:
    """One rank's checkpoint: geometry + payloads."""

    seq: int
    kind: str                       #: "full", "incremental", or "dcp"
    taken_at: float
    page_size: int
    geometry: tuple[SegmentRecord, ...]
    payloads: tuple[PagePayload, ...]
    #: sub-page block granularity (bytes); set iff ``kind == "dcp"``,
    #: whose payloads are :class:`BlockPayload` pieces
    block_size: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("full", "incremental", "dcp"):
            raise CheckpointError(f"unknown checkpoint kind {self.kind!r}")
        if self.kind == "dcp":
            if self.block_size is None:
                raise CheckpointError("dcp checkpoint needs a block size")
            if self.block_size < 1 or self.page_size % self.block_size:
                raise CheckpointError(
                    f"block size {self.block_size} must be >= 1 and divide "
                    f"the page size {self.page_size}")
        sids = {rec.sid for rec in self.geometry}
        for p in self.payloads:
            if p.sid not in sids:
                raise CheckpointError(
                    f"payload for sid {p.sid} has no geometry record")
            if self.kind == "dcp" and not isinstance(p, BlockPayload):
                raise CheckpointError(
                    "dcp checkpoints carry block payloads only")
            if self.kind != "dcp" and isinstance(p, BlockPayload):
                raise CheckpointError(
                    f"{self.kind} checkpoints carry page payloads only")

    @property
    def pages_saved(self) -> int:
        return sum(p.npages for p in self.payloads
                   if isinstance(p, PagePayload))

    @property
    def blocks_saved(self) -> int:
        return sum(p.nblocks for p in self.payloads
                   if isinstance(p, BlockPayload))

    @property
    def nbytes(self) -> int:
        """Modelled size on stable storage.  dcp pieces pay per saved
        *block*; the per-segment header amortizes the block bitmap, so a
        dcp delta at ``block_size == page_size`` costs exactly what the
        page-granular incremental delta would."""
        if self.kind == "dcp":
            return (self.blocks_saved * self.block_size
                    + SEGMENT_HEADER_BYTES * len(self.geometry))
        return (self.pages_saved * self.page_size
                + SEGMENT_HEADER_BYTES * len(self.geometry))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.units import fmt_bytes
        return (f"<Checkpoint seq={self.seq} {self.kind} "
                f"pages={self.pages_saved} ({fmt_bytes(self.nbytes)}) "
                f"t={self.taken_at:.2f}>")

"""Checkpoint objects: what gets written to stable storage.

A checkpoint carries

- the *geometry* of every data segment at capture time (kind, base,
  size, and the segment's process-unique ``sid`` so chain replay can
  follow a segment through growth and shrink), and
- *page payloads*: per segment, the indices of saved pages and their
  content (64-bit write-version signatures standing in for the page
  bytes -- see DESIGN.md on content signatures).

``nbytes`` models the stable-storage cost: one page of data per saved
page plus a small per-segment header.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CheckpointError

#: modelled metadata cost per segment record
SEGMENT_HEADER_BYTES = 64


@dataclass(frozen=True)
class SegmentRecord:
    """Geometry of one data segment at capture time."""

    sid: int
    kind: str       #: SegmentKind value ("data", "bss", "heap", "mmap")
    base: int
    npages: int

    def __post_init__(self) -> None:
        if self.npages < 0:
            raise CheckpointError(f"negative page count in segment record")


@dataclass(frozen=True)
class PagePayload:
    """Saved pages of one segment: parallel index/version arrays, plus
    (under the bytes backend) the real page contents."""

    sid: int
    indices: np.ndarray    #: page indices within the segment (ascending)
    versions: np.ndarray   #: content signature per saved page
    #: real content, shape (npages, page_size) uint8; None under the
    #: default signature-only backend
    page_bytes: np.ndarray | None = None

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.versions):
            raise CheckpointError("payload index/version length mismatch")
        if self.page_bytes is not None and len(self.page_bytes) != len(self.indices):
            raise CheckpointError("payload byte-content length mismatch")

    @property
    def npages(self) -> int:
        return len(self.indices)


@dataclass(frozen=True)
class Checkpoint:
    """One rank's checkpoint: geometry + payloads."""

    seq: int
    kind: str                       #: "full" or "incremental"
    taken_at: float
    page_size: int
    geometry: tuple[SegmentRecord, ...]
    payloads: tuple[PagePayload, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("full", "incremental"):
            raise CheckpointError(f"unknown checkpoint kind {self.kind!r}")
        sids = {rec.sid for rec in self.geometry}
        for p in self.payloads:
            if p.sid not in sids:
                raise CheckpointError(
                    f"payload for sid {p.sid} has no geometry record")

    @property
    def pages_saved(self) -> int:
        return sum(p.npages for p in self.payloads)

    @property
    def nbytes(self) -> int:
        """Modelled size on stable storage."""
        return (self.pages_saved * self.page_size
                + SEGMENT_HEADER_BYTES * len(self.geometry))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.units import fmt_bytes
        return (f"<Checkpoint seq={self.seq} {self.kind} "
                f"pages={self.pages_saved} ({fmt_bytes(self.nbytes)}) "
                f"t={self.taken_at:.2f}>")

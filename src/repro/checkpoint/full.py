"""Full checkpoints: save every mapped data page."""

from __future__ import annotations

import numpy as np

from repro.checkpoint.snapshot import Checkpoint, PagePayload, SegmentRecord
from repro.mem import AddressSpace


def geometry_of(memory: AddressSpace) -> tuple[SegmentRecord, ...]:
    """Geometry records for all currently mapped data segments."""
    return tuple(SegmentRecord(sid=seg.sid, kind=seg.kind.value,
                               base=seg.base, npages=seg.npages)
                 for seg in memory.data_segments())


def page_bytes_of(seg, indices: np.ndarray):
    """Gather real page contents for the saved indices (bytes backend),
    or None under the signature-only backend."""
    if seg.contents is None:
        return None
    matrix = np.frombuffer(bytes(seg.contents), dtype=np.uint8).reshape(
        seg.npages, seg.page_size)
    return matrix[indices].copy()


class FullCheckpointer:
    """Captures the complete data memory (the non-incremental baseline
    the paper's bandwidth comparison is implicitly made against)."""

    def capture(self, memory: AddressSpace, seq: int,
                taken_at: float = 0.0) -> Checkpoint:
        """Snapshot every mapped data page of ``memory``."""
        payloads = []
        for seg in memory.data_segments():
            if seg.npages == 0:
                continue
            indices = np.arange(seg.npages, dtype=np.int64)
            payloads.append(PagePayload(sid=seg.sid, indices=indices,
                                        versions=seg.pages.versions.copy(),
                                        page_bytes=page_bytes_of(seg, indices)))
        return Checkpoint(seq=seq, kind="full", taken_at=taken_at,
                          page_size=memory.page_size,
                          geometry=geometry_of(memory),
                          payloads=tuple(payloads))

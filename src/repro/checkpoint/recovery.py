"""Rollback recovery: rebuild an address space from a checkpoint chain.

Replay walks the chain oldest-to-newest, evolving a per-segment version
map: geometry records grow/shrink/drop segments (new pages arrive
zeroed, exactly like the kernel's zero-fill), payloads stamp saved page
versions.  The final state is materialized into a fresh
:class:`~repro.mem.AddressSpace` whose content signature must equal the
original's at capture time -- the correctness property the test suite
checks exhaustively.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.checkpoint.snapshot import Checkpoint, SegmentRecord
from repro.errors import CorruptionError, RecoveryError
from repro.mem import AddressSpace, Layout, SegmentKind
from repro.storage import CheckpointStore
from repro.storage.integrity import ChainVerification, verify_chain


def replay_chain(chain: Sequence[Checkpoint]) \
        -> dict[int, tuple[SegmentRecord, np.ndarray, Optional[np.ndarray]]]:
    """Evolve the chain into ``sid -> (final geometry, versions, bytes)``.

    The third element is the reconstructed byte content, shape
    ``(npages, page_size)``; None when the chain was captured under the
    signature-only backend.
    """
    if not chain:
        raise RecoveryError("empty checkpoint chain")
    if chain[0].kind != "full":
        raise RecoveryError("chain must start with a full checkpoint")
    page_size = chain[0].page_size
    has_bytes = any(getattr(p, "page_bytes", None) is not None
                    or getattr(p, "block_bytes", None) is not None
                    for c in chain for p in c.payloads)
    state: dict[int, tuple[SegmentRecord, np.ndarray, Optional[np.ndarray]]] = {}
    for ckpt in chain:
        new_state: dict[int, tuple] = {}
        for rec in ckpt.geometry:
            versions = np.zeros(rec.npages, dtype=np.uint64)
            content = (np.zeros((rec.npages, page_size), dtype=np.uint8)
                       if has_bytes else None)
            old = state.get(rec.sid)
            if old is not None:
                n = min(len(old[1]), rec.npages)
                versions[:n] = old[1][:n]
                if content is not None and old[2] is not None:
                    content[:n] = old[2][:n]
            new_state[rec.sid] = (rec, versions, content)
        state = new_state  # segments missing from the geometry are dropped
        for payload in ckpt.payloads:
            entry = state.get(payload.sid)
            if entry is None:
                raise RecoveryError(
                    f"payload for unknown segment sid {payload.sid}")
            rec, versions, content = entry
            if ckpt.kind == "dcp":
                # block-granular piece: stamp pages with the max block
                # hash (== the page's write version under the signature
                # backend), scatter block bytes into the page grid
                bpp = ckpt.page_size // ckpt.block_size
                in_range = payload.indices < rec.npages * bpp
                idx = payload.indices[in_range]
                # a page with every block emitted (forced full-page emit
                # for new/regrown pages, or all blocks changed) takes
                # exactly max(emitted versions) -- the carried version
                # may be a stale higher value from before a shrink; a
                # partially-emitted page keeps its unchanged blocks, so
                # its version is max(carried, emitted)
                touched, counts = np.unique(idx // bpp, return_counts=True)
                versions[touched[counts == bpp]] = 0
                np.maximum.at(versions, idx // bpp,
                              payload.versions[in_range])
                if content is not None and payload.block_bytes is not None:
                    content.reshape(-1, ckpt.block_size)[idx] = \
                        payload.block_bytes[in_range]
                continue
            in_range = payload.indices < rec.npages
            versions[payload.indices[in_range]] = payload.versions[in_range]
            if content is not None and payload.page_bytes is not None:
                content[payload.indices[in_range]] = \
                    payload.page_bytes[in_range]
    return state


def restore_address_space(chain: Sequence[Checkpoint],
                          layout: Optional[Layout] = None) -> AddressSpace:
    """Materialize the chain's final state into a new address space.

    Chains captured under the bytes backend restore real page contents
    (the new space gets ``store_contents=True``); signature-only chains
    restore version arrays.
    """
    state = replay_chain(chain)
    by_kind: dict[str, list[tuple]] = {}
    has_bytes = False
    for rec, versions, content in state.values():
        by_kind.setdefault(rec.kind, []).append((rec, versions, content))
        has_bytes = has_bytes or content is not None
    for kind in ("data", "bss", "heap"):
        if len(by_kind.get(kind, [])) > 1:
            raise RecoveryError(f"chain holds multiple {kind} segments")

    layout = layout or Layout()
    page_size = layout.page_size
    if page_size != chain[0].page_size:
        raise RecoveryError(
            f"layout page size {page_size} != checkpoint page size "
            f"{chain[0].page_size}")

    def only(kind: str) -> Optional[tuple]:
        entries = by_kind.get(kind, [])
        return entries[0] if entries else None

    data = only("data")
    bss = only("bss")
    heap = only("heap")
    asp = AddressSpace(
        layout,
        data_size=(data[0].npages if data else 0) * page_size,
        bss_size=(bss[0].npages if bss else 0) * page_size,
        store_contents=has_bytes)
    if heap is not None and heap[0].npages:
        asp.sbrk(heap[0].npages * page_size)

    targets: list[tuple] = []
    if data is not None:
        targets.append((asp.data, data[1], data[2]))
    if bss is not None:
        targets.append((asp.bss, bss[1], bss[2]))
    if heap is not None:
        targets.append((asp.heap, heap[1], heap[2]))
    for rec, versions, content in sorted(by_kind.get("mmap", []),
                                         key=lambda e: e[0].base):
        seg = asp.mmap_fixed(rec.base, rec.npages * page_size)
        targets.append((seg, versions, content))

    max_version = 0
    for seg, src, content in targets:
        if seg.npages != len(src):
            raise RecoveryError("restored segment size mismatch")
        seg.pages.versions[:] = src
        if content is not None and seg.contents is not None:
            seg.contents[:] = content.tobytes()
        if len(src):
            max_version = max(max_version, int(src.max()))
    # future writes must not reuse version numbers already on the pages
    asp._version = max(asp._version, max_version)
    return asp


def apply_chain(memory: AddressSpace, chain: Sequence[Checkpoint],
                strict: bool = True) -> None:
    """Overlay a chain's final content onto a live address space.

    Used by restart-in-place: the application re-allocates its (fully
    deterministic) geometry, then the checkpointed page versions are
    stamped over it.  With ``strict`` the static geometries must match
    exactly -- a data/bss/heap mismatch means the checkpoint was taken
    with a different memory layout and restoring it in place would
    corrupt state.  Chain *mmap* segments the live process lacks are
    recreated at their recorded addresses (MAP_FIXED, like a real
    restore): checkpoints taken while transient allocations were live
    restore those allocations too, which is what makes the restored
    address space bit-identical to the captured one.
    """
    state = replay_chain(chain)
    by_key = {(rec.kind, rec.base): (rec, versions, content)
              for rec, versions, content in state.values()}
    live_keys = set()
    max_version = memory._version
    for seg in memory.data_segments():
        key = (seg.kind.value, seg.base)
        live_keys.add(key)
        entry = by_key.get(key)
        if entry is None:
            if strict and seg.npages > 0:
                raise RecoveryError(
                    f"live segment {seg.name!r} at {seg.base:#x} has no "
                    "counterpart in the checkpoint chain")
            continue
        rec, versions, content = entry
        if rec.npages != seg.npages:
            raise RecoveryError(
                f"segment {seg.name!r}: live size {seg.npages} pages != "
                f"checkpointed {rec.npages}")
        seg.pages.versions[:] = versions
        if content is not None and seg.contents is not None:
            seg.contents[:] = content.tobytes()
        if len(versions):
            max_version = max(max_version, int(versions.max()))
    if strict:
        missing = set(by_key) - live_keys
        missing = {k for k in missing if by_key[k][0].npages > 0}
        static_missing = {k for k in missing if k[0] != "mmap"}
        if static_missing:
            raise RecoveryError(
                f"checkpoint chain has segments the live process lacks: "
                f"{sorted(static_missing)}")
        for kind, base in sorted(missing):
            rec, versions, content = by_key[(kind, base)]
            seg = memory.mmap_fixed(base, rec.npages * memory.page_size)
            seg.pages.versions[:] = versions
            if content is not None and seg.contents is not None:
                seg.contents[:] = content.tobytes()
            if len(versions):
                max_version = max(max_version, int(versions.max()))
    memory._version = max_version


class RecoveryManager:
    """Recovery over a :class:`~repro.storage.CheckpointStore`.

    With ``verify_integrity`` (the default) every chain read recomputes
    piece digests and chain links before a single byte is trusted: a
    silently corrupted, truncated, or dropped piece raises
    :class:`~repro.errors.CorruptionError` instead of restoring garbage.
    :meth:`best_recovery_seq` implements the walk-back policy on top --
    the newest committed sequence whose every rank chain verifies.
    """

    def __init__(self, store: CheckpointStore,
                 layout: Optional[Layout] = None, *,
                 verify_integrity: bool = True):
        self.store = store
        self.layout = layout
        self.verify_integrity = verify_integrity

    def recovery_chain(self, rank: int,
                       seq: Optional[int] = None) -> list[Checkpoint]:
        """The checkpoint objects needed to recover ``rank`` to global
        sequence ``seq`` (default: the latest committed one)."""
        if seq is None:
            seq = self.store.latest_committed()
            if seq is None:
                raise RecoveryError("no committed global checkpoint to recover to")
        pieces = self.store.chain(rank, upto_seq=seq)
        if not pieces:
            raise RecoveryError(f"rank {rank} has no recoverable chain")
        if self.verify_integrity:
            # the commit invariant guarantees a piece at every committed
            # sequence, so a clean chain stopping short of one means the
            # target piece was silently dropped
            require = (seq if seq in self.store.committed_sequences()
                       else None)
            outcome = verify_chain(rank, pieces, target_seq=seq,
                                   require_seq=require)
            if not outcome.intact:
                bad = outcome.first_bad
                raise CorruptionError(
                    f"rank {rank} cannot recover to seq {seq}: "
                    f"piece seq {bad.seq} {bad.reason} (intact prefix ends "
                    f"at {outcome.verified_upto})")
        chain = [p.payload for p in pieces]
        if any(c is None for c in chain):
            raise RecoveryError("stored pieces are missing checkpoint payloads")
        return chain

    def verify_all(self, seq: Optional[int] = None) -> list[ChainVerification]:
        """Verify every rank's chain up to ``seq`` (default: latest
        stored); outcomes, never exceptions -- the scan behind
        ``repro ckpt verify``."""
        return [self.store.verify_chain(rank, upto_seq=seq)
                for rank in range(self.store.nranks)]

    def best_recovery_seq(self) -> Optional[int]:
        """The newest committed sequence every rank's chain verifies to
        -- where corruption-aware recovery actually goes.  None when no
        committed checkpoint survives intact (restart from scratch)."""
        for seq in reversed(self.store.committed_sequences()):
            if all(self.store.verify_chain(rank, upto_seq=seq,
                                           require_seq=seq).intact
                   for rank in range(self.store.nranks)):
                return seq
        return None

    def restore_rank(self, rank: int,
                     seq: Optional[int] = None) -> AddressSpace:
        """Rebuild one rank's address space from its stored chain."""
        return restore_address_space(self.recovery_chain(rank, seq),
                                     layout=self.layout)

    def restore_all(self, seq: Optional[int] = None) -> dict[int, AddressSpace]:
        """Roll every rank back to the same committed sequence -- the
        coordinated recovery a failure triggers."""
        return {rank: self.restore_rank(rank, seq)
                for rank in range(self.store.nranks)}

    def estimated_restore_time(self, rank: int, read_bandwidth: float,
                               seq: Optional[int] = None,
                               seek_latency: float = 4.7e-3,
                               verify_bandwidth: Optional[float] = None,
                               ) -> float:
        """How long reading this rank's recovery chain from stable
        storage takes: one sequential read per chain piece.  Feeds the
        availability model's restart-time parameter.

        ``verify_bandwidth`` additionally charges one digest
        recomputation pass over every byte read (integrity-checked
        restore); None keeps the cost identical to an unverified read.
        """
        if read_bandwidth <= 0:
            raise RecoveryError("read bandwidth must be positive")
        chain = self.recovery_chain(rank, seq)
        total = sum(seek_latency + ckpt.nbytes / read_bandwidth
                    for ckpt in chain)
        if verify_bandwidth is not None:
            if verify_bandwidth <= 0:
                raise RecoveryError("verify bandwidth must be positive")
            total += sum(ckpt.nbytes / verify_bandwidth for ckpt in chain)
        return total

"""Wall-time probes and the live progress reporter.

:func:`probe` is the profiling context manager host-side phases wrap
around expensive work (a sweep point, a restore, a cache miss): it
times the block on the monotonic clock and records the duration into a
histogram of the attached :class:`~repro.obs.metrics.MetricsRegistry`.
Against a disabled :class:`~repro.obs.Observability` it degrades to a
bare timer -- no metric is created, nothing is allocated beyond the
context frame.

:class:`ProgressReporter` renders the ``--progress`` live line:
subsystems feed it (timeslice boundaries per rank, sweep points
completed, fault-run lives started) and it repaints a single
carriage-return line on stderr, throttled on wall time so tight sim
loops don't spam the terminal.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager


@contextmanager
def probe(obs, name: str):
    """Time the enclosed block and observe the wall duration (seconds)
    into ``obs.metrics.histogram(name)``; a no-op recorder when ``obs``
    is None or disabled."""
    t0 = time.perf_counter()
    try:
        yield
    finally:
        if obs is not None and obs.enabled:
            obs.metrics.histogram(name).observe(time.perf_counter() - t0)


class ProgressReporter:
    """A single live status line, repainted in place on ``stream``.

    ``min_interval`` throttles repaints (wall seconds); the final state
    is always flushed by :meth:`close`.
    """

    def __init__(self, stream=None, min_interval: float = 0.1):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.slices: dict[int, int] = {}
        self._last_paint = 0.0
        self._painted = False
        self._last_line = ""

    # -- feeds --------------------------------------------------------------

    def on_slice(self, rank: int, record, now: float) -> None:
        """One rank finished a timeslice (fed by the tracker)."""
        self.slices[rank] = self.slices.get(rank, 0) + 1
        per_rank = " ".join(f"r{r}:{n}" for r, n in sorted(self.slices.items()))
        self._paint(f"t={now:9.2f}s  slices {per_rank}")

    def on_run(self, done: int, total: int, label: str = "") -> None:
        """One sweep point finished (fed by the executor)."""
        suffix = f"  {label}" if label else ""
        self._paint(f"sweep {done}/{total}{suffix}", force=done == total)

    def on_life(self, index: int, t_start: float) -> None:
        """A fault-run life launched (fed by the recovery driver)."""
        self.slices.clear()
        word = "launched" if index == 0 else "restarted"
        self._paint(f"life {index} {word} at t={t_start:.2f}s", force=True)

    # -- painting -----------------------------------------------------------

    def _paint(self, line: str, force: bool = False) -> None:
        now = time.perf_counter()
        if not force and now - self._last_paint < self.min_interval:
            self._last_line = line
            return
        self._last_paint = now
        self._painted = True
        self._last_line = ""
        pad = "\r\x1b[2K" if self.stream.isatty() else "\r"
        self.stream.write(f"{pad}{line}")
        self.stream.flush()

    def close(self) -> None:
        """Flush any throttled update and terminate the live line."""
        if self._last_line:
            self._paint(self._last_line, force=True)
        if self._painted:
            self.stream.write("\n")
            self.stream.flush()
            self._painted = False

"""Counters, gauges, and histograms with per-subsystem namespaces.

A :class:`MetricsRegistry` is a flat dictionary of dotted metric names
(``checkpoint.bytes_captured``, ``storage.ckpt-disk.r0.bytes_written``)
to one of three instrument kinds:

- :class:`Counter` -- monotonically increasing totals;
- :class:`Gauge` -- last-write-wins values (engine stats snapshots);
- :class:`Histogram` -- streaming count/sum/min/max of observations
  (wall-time probe durations).

``registry.scoped("checkpoint")`` returns a view that prefixes every
name, so a subsystem can own its namespace without threading strings
around.  Snapshots are plain dicts (sorted by name) for JSON dumps, and
:meth:`MetricsRegistry.render_text` is the human-readable form.

Determinism note: metric *values* derived from simulation state are
deterministic; histograms fed wall-clock durations are not, which is
why trace comparisons live in the tracer (sim-time) and not here.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import ObservabilityError


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (>= 0) to the running total."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {amount})")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: Union[int, float]) -> None:
        """Replace the current value."""
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Streaming summary of observations: count, sum, min, max, mean."""

    __slots__ = ("name", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float) -> None:
        """Fold one observation into the running summary."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.6f}>"


class MetricsRegistry:
    """Get-or-create registry of named metrics."""

    def __init__(self):
        self._metrics: dict[str, object] = {}

    # -- get-or-create ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        return self._get(name, Histogram)

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise ObservabilityError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}")
        return metric

    def scoped(self, prefix: str) -> "ScopedMetrics":
        """A view that prepends ``prefix.`` to every metric name."""
        return ScopedMetrics(self, prefix)

    # -- introspection ------------------------------------------------------

    def names(self) -> list[str]:
        """Every registered metric name, sorted."""
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict[str, dict]:
        """All metrics as plain JSON-able values, sorted by name."""
        out = {}
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, Histogram):
                out[name] = {"kind": m.kind, "count": m.count,
                             "sum": m.total, "min": m.min, "max": m.max,
                             "mean": m.mean}
            else:
                out[name] = {"kind": m.kind, "value": m.value}
        return out

    def render_text(self) -> str:
        """One metric per line, aligned, for terminals and .txt dumps."""
        lines = []
        for name, entry in self.snapshot().items():
            if entry["kind"] == "histogram":
                lines.append(
                    f"{name:52s} n={entry['count']:<8d} "
                    f"mean={entry['mean']:.6g} min={entry['min']} "
                    f"max={entry['max']}")
            else:
                lines.append(f"{name:52s} {entry['value']}")
        return "\n".join(lines)

    def dump(self, path: Union[str, Path]) -> Path:
        """Write a snapshot; ``*.txt`` renders text, anything else JSON."""
        path = Path(path)
        if path.is_dir():
            raise ObservabilityError(
                f"metrics target {path} is a directory; give a file path")
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        if path.suffix == ".txt":
            path.write_text(self.render_text() + "\n")
        else:
            path.write_text(json.dumps(self.snapshot(), indent=2,
                                       sort_keys=True) + "\n")
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry metrics={len(self._metrics)}>"


class ScopedMetrics:
    """A prefixing view over a :class:`MetricsRegistry`."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str):
        self._registry = registry
        self._prefix = prefix.rstrip(".")

    def counter(self, name: str) -> Counter:
        """The underlying registry's counter ``<prefix>.<name>``."""
        return self._registry.counter(f"{self._prefix}.{name}")

    def gauge(self, name: str) -> Gauge:
        """The underlying registry's gauge ``<prefix>.<name>``."""
        return self._registry.gauge(f"{self._prefix}.{name}")

    def histogram(self, name: str) -> Histogram:
        """The underlying registry's histogram ``<prefix>.<name>``."""
        return self._registry.histogram(f"{self._prefix}.{name}")

    def scoped(self, prefix: str) -> "ScopedMetrics":
        """A deeper view: ``<this prefix>.<prefix>``."""
        return ScopedMetrics(self._registry, f"{self._prefix}.{prefix}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ScopedMetrics prefix={self._prefix!r}>"

"""Counters, gauges, and histograms with per-subsystem namespaces.

A :class:`MetricsRegistry` is a flat dictionary of dotted metric names
(``checkpoint.bytes_captured``, ``storage.ckpt-disk.r0.bytes_written``)
to one of three instrument kinds:

- :class:`Counter` -- monotonically increasing totals;
- :class:`Gauge` -- last-write-wins values (engine stats snapshots),
  with :meth:`Gauge.add` for delta updates;
- :class:`Histogram` -- streaming count/sum/min/max of observations
  (wall-time probe durations) plus p50/p95/p99 from a bounded,
  deterministically decimated reservoir;
- :class:`WindowedSeries` -- a ring of fixed sim-time windows
  (``registry.series()``), so rates like drain throughput or dirty
  pages can be exported *over sim time* instead of as one final total.

``registry.scoped("checkpoint")`` returns a view that prefixes every
name, so a subsystem can own its namespace without threading strings
around.  Snapshots are plain dicts (sorted by name) for JSON dumps,
:meth:`MetricsRegistry.render_text` is the human-readable form, and
:meth:`MetricsRegistry.dump_series` writes every windowed series as
per-window JSONL.

Determinism note: metric *values* derived from simulation state are
deterministic; histograms fed wall-clock durations are not, which is
why trace comparisons live in the tracer (sim-time) and not here.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Union

from repro.errors import ObservabilityError


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (>= 0) to the running total."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {amount})")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: Union[int, float]) -> None:
        """Replace the current value."""
        self.value = value

    def add(self, delta: Union[int, float]) -> None:
        """Apply a delta (positive or negative) to the current value."""
        self.value += delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


#: observations retained for quantile estimation; past this the
#: reservoir is decimated (every 2nd sample kept, stride doubled)
_RESERVOIR_CAP = 512


class Histogram:
    """Streaming summary of observations: count, sum, min, max, mean,
    and p50/p95/p99 from a bounded reservoir.

    The reservoir decimates deterministically -- every ``stride``-th
    observation is kept, and when it fills, every second retained sample
    is dropped and the stride doubles -- so it stays O(1) memory, covers
    the whole stream uniformly, and two identical observation streams
    yield identical quantiles (no randomness).
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "_reservoir", "_stride")
    kind = "histogram"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._reservoir: list[float] = []
        self._stride = 1

    def observe(self, value: float) -> None:
        """Fold one observation into the running summary."""
        if self.count % self._stride == 0:
            res = self._reservoir
            res.append(value)
            if len(res) >= _RESERVOIR_CAP:
                del res[::2]
                self._stride *= 2
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Union[float, None]:
        """Nearest-rank quantile estimate from the reservoir (None when
        no observations were recorded)."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        if not self._reservoir:
            return None
        ordered = sorted(self._reservoir)
        n = len(ordered)
        rank = max(1, math.ceil(q * n))
        return ordered[min(n - 1, rank - 1)]

    @property
    def p50(self) -> Union[float, None]:
        return self.quantile(0.50)

    @property
    def p95(self) -> Union[float, None]:
        return self.quantile(0.95)

    @property
    def p99(self) -> Union[float, None]:
        return self.quantile(0.99)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.6f}>"


class WindowedSeries:
    """A ring of fixed-width sim-time windows, each a count/sum/min/max
    reservoir: ``record(t, value)`` folds a sample into the window
    containing sim-time ``t``; the oldest windows are evicted past
    ``capacity``.  Values derived from simulation state are
    deterministic, so two same-seed runs export identical series."""

    __slots__ = ("name", "window", "capacity", "count", "total", "_buckets")
    kind = "series"

    def __init__(self, name: str, window: float = 1.0, capacity: int = 512):
        if window <= 0:
            raise ObservabilityError(
                f"series {name!r}: window must be positive, got {window}")
        if capacity < 1:
            raise ObservabilityError(
                f"series {name!r}: capacity must be >= 1, got {capacity}")
        self.name = name
        self.window = float(window)
        self.capacity = int(capacity)
        self.count = 0
        self.total = 0.0
        #: per-window [index, count, sum, min, max], ascending index
        self._buckets: list[list] = []

    def record(self, t: float, value: float = 1.0) -> None:
        """Fold one sample at sim-time ``t`` into its window."""
        self.count += 1
        self.total += value
        index = int(t // self.window)
        buckets = self._buckets
        if buckets:
            last = buckets[-1]
            if last[0] == index:
                last[1] += 1
                last[2] += value
                if value < last[3]:
                    last[3] = value
                if value > last[4]:
                    last[4] = value
                return
            if index < last[0]:
                # rare out-of-order sample (multi-engine fault runs):
                # fold into the window if still retained, else drop
                for b in reversed(buckets):
                    if b[0] == index:
                        b[1] += 1
                        b[2] += value
                        if value < b[3]:
                            b[3] = value
                        if value > b[4]:
                            b[4] = value
                        return
                    if b[0] < index:
                        break
                return
        buckets.append([index, 1, value, value, value])
        if len(buckets) > self.capacity:
            del buckets[0]

    def windows(self) -> list[dict]:
        """The retained windows as JSON-able dicts, oldest first."""
        w = self.window
        return [{"index": b[0], "t_start": b[0] * w, "t_end": (b[0] + 1) * w,
                 "count": b[1], "sum": b[2], "min": b[3], "max": b[4]}
                for b in self._buckets]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<WindowedSeries {self.name} window={self.window} "
                f"windows={len(self._buckets)} n={self.count}>")


class MetricsRegistry:
    """Get-or-create registry of named metrics."""

    def __init__(self):
        self._metrics: dict[str, object] = {}

    # -- get-or-create ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        return self._get(name, Histogram)

    def series(self, name: str, window: float = 1.0,
               capacity: int = 512) -> WindowedSeries:
        """The windowed series registered under ``name`` (created on
        first use); re-requesting with a different window is an error --
        a series' buckets are meaningless across window sizes."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = WindowedSeries(name, window=window, capacity=capacity)
            self._metrics[name] = metric
        elif type(metric) is not WindowedSeries:
            raise ObservabilityError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested series")
        elif metric.window != window:
            raise ObservabilityError(
                f"series {name!r} already registered with window "
                f"{metric.window}, requested {window}")
        return metric

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise ObservabilityError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}")
        return metric

    def scoped(self, prefix: str) -> "ScopedMetrics":
        """A view that prepends ``prefix.`` to every metric name."""
        return ScopedMetrics(self, prefix)

    # -- introspection ------------------------------------------------------

    def names(self) -> list[str]:
        """Every registered metric name, sorted."""
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict[str, dict]:
        """All metrics as plain JSON-able values, sorted by name."""
        out = {}
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, Histogram):
                out[name] = {"kind": m.kind, "count": m.count,
                             "sum": m.total, "min": m.min, "max": m.max,
                             "mean": m.mean, "p50": m.p50, "p95": m.p95,
                             "p99": m.p99}
            elif isinstance(m, WindowedSeries):
                out[name] = {"kind": m.kind, "window": m.window,
                             "count": m.count, "sum": m.total,
                             "windows": len(m._buckets)}
            else:
                out[name] = {"kind": m.kind, "value": m.value}
        return out

    def render_text(self) -> str:
        """One metric per line, aligned, for terminals and .txt dumps."""
        lines = []
        for name, entry in self.snapshot().items():
            if entry["kind"] == "histogram":
                lines.append(
                    f"{name:52s} n={entry['count']:<8d} "
                    f"mean={entry['mean']:.6g} min={entry['min']} "
                    f"max={entry['max']} p50={entry['p50']} "
                    f"p95={entry['p95']} p99={entry['p99']}")
            elif entry["kind"] == "series":
                lines.append(
                    f"{name:52s} n={entry['count']:<8d} "
                    f"sum={entry['sum']:.6g} window={entry['window']:g}s "
                    f"windows={entry['windows']}")
            else:
                lines.append(f"{name:52s} {entry['value']}")
        return "\n".join(lines)

    def dump(self, path: Union[str, Path]) -> Path:
        """Write a snapshot; ``*.txt`` renders text, anything else JSON."""
        path = Path(path)
        if path.is_dir():
            raise ObservabilityError(
                f"metrics target {path} is a directory; give a file path")
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        if path.suffix == ".txt":
            path.write_text(self.render_text() + "\n")
        else:
            path.write_text(json.dumps(self.snapshot(), indent=2,
                                       sort_keys=True) + "\n")
        return path

    def all_series(self) -> list[WindowedSeries]:
        """Every registered windowed series, sorted by name."""
        return [self._metrics[name] for name in self.names()
                if isinstance(self._metrics[name], WindowedSeries)]

    def dump_series(self, path: Union[str, Path]) -> Path:
        """Write every windowed series as JSONL: one line per retained
        window, ``{"series", "window", "index", "t_start", "t_end",
        "count", "sum", "min", "max"}``, grouped by series name."""
        path = Path(path)
        if path.is_dir():
            raise ObservabilityError(
                f"series target {path} is a directory; give a file path")
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        lines = []
        for series in self.all_series():
            for win in series.windows():
                win = {"series": series.name, "window": series.window, **win}
                lines.append(json.dumps(win, sort_keys=True))
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry metrics={len(self._metrics)}>"


class ScopedMetrics:
    """A prefixing view over a :class:`MetricsRegistry`."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str):
        self._registry = registry
        self._prefix = prefix.rstrip(".")

    def counter(self, name: str) -> Counter:
        """The underlying registry's counter ``<prefix>.<name>``."""
        return self._registry.counter(f"{self._prefix}.{name}")

    def gauge(self, name: str) -> Gauge:
        """The underlying registry's gauge ``<prefix>.<name>``."""
        return self._registry.gauge(f"{self._prefix}.{name}")

    def histogram(self, name: str) -> Histogram:
        """The underlying registry's histogram ``<prefix>.<name>``."""
        return self._registry.histogram(f"{self._prefix}.{name}")

    def series(self, name: str, window: float = 1.0,
               capacity: int = 512) -> WindowedSeries:
        """The underlying registry's series ``<prefix>.<name>``."""
        return self._registry.series(f"{self._prefix}.{name}",
                                     window=window, capacity=capacity)

    def scoped(self, prefix: str) -> "ScopedMetrics":
        """A deeper view: ``<this prefix>.<prefix>``."""
        return ScopedMetrics(self._registry, f"{self._prefix}.{prefix}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ScopedMetrics prefix={self._prefix!r}>"

"""Sim-time critical-path extraction: what bounds each timeslice?

Walks an exported trace (the ``--trace-out`` file) and reports, per
timeslice, which dependency chain bounded the slice's completion:

- **app-compute** -- the slice is dominated by computation; checkpoint
  traffic (if any) fit in its shadow;
- **drain-backpressure** -- checkpoint frames (``ckpt.frame`` spans)
  and sink writes on ``ckpt-*`` tracks occupied most of the slice, or
  spilled past its boundary -- the PR 5 drain queue is the bound;
- **network-contention** -- application messages (``net.send``) and
  checkpoint frames overlapped on the wire for a meaningful fraction
  of the slice: the transport's contention attribution, as a per-slice
  verdict.

Slice boundaries come from the ``timeslice`` instants of one reference
rank track (the track with the most instants; ties break by name), so
the verdicts line up with the paper's per-timeslice measurements.  All
arithmetic is on sim time -- the analysis of a same-seed trace is
deterministic.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.view import _track_names

#: drain occupancy fraction past which a slice is drain-bound
DRAIN_THRESHOLD = 0.5
#: drain occupancy fraction that, combined with a frame spilling past
#: the slice boundary, still counts as backpressure
DRAIN_SPILL_THRESHOLD = 0.25
#: app-message / checkpoint-frame wire overlap fraction past which a
#: slice is contention-bound
CONTENTION_THRESHOLD = 0.05


def _union(intervals: list) -> float:
    """Total length of the union of (start, end) intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    cur_lo, cur_hi = intervals[0]
    for lo, hi in intervals[1:]:
        if lo > cur_hi:
            total += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
        elif hi > cur_hi:
            cur_hi = hi
    return total + (cur_hi - cur_lo)


def _clip(spans: list, lo: float, hi: float) -> list:
    """Spans intersected with the window [lo, hi)."""
    out = []
    for start, end in spans:
        s, e = max(start, lo), min(end, hi)
        if e > s:
            out.append((s, e))
    return out


def _overlap(a: list, b: list) -> float:
    """Union length of the pairwise intersection of two span lists."""
    pieces = []
    for s1, e1 in a:
        for s2, e2 in b:
            lo, hi = max(s1, s2), min(e1, e2)
            if hi > lo:
                pieces.append((lo, hi))
    return _union(pieces)


def extract_critical_path(events: list[dict], *,
                          drain_threshold: float = DRAIN_THRESHOLD,
                          contention_threshold: float = CONTENTION_THRESHOLD,
                          ) -> dict:
    """Per-timeslice critical-path verdicts from one trace event list.

    Returns ``{"schema", "track", "slices": [...], "verdicts": {...}}``;
    ``slices`` is empty (with a ``note``) when the trace carries no
    timeslice instants.
    """
    tracks = _track_names(events)
    per_track: dict[Optional[int], list[dict]] = {}
    drain_spans: list[tuple] = []
    net_spans: list[tuple] = []
    for ev in events:
        ph = ev.get("ph")
        name = ev.get("name")
        if ph in ("i", "I") and name == "timeslice":
            per_track.setdefault(ev.get("tid"), []).append(ev)
        elif ph == "X":
            start = ev.get("ts", 0.0) / 1e6
            end = start + ev.get("dur", 0.0) / 1e6
            if name == "ckpt.frame":
                drain_spans.append((start, end))
            elif name == "disk.write" and tracks.get(
                    ev.get("tid"), "").startswith("ckpt-"):
                drain_spans.append((start, end))
            elif name == "net.send":
                net_spans.append((start, end))
    if not per_track:
        return {"schema": "repro.obs.critpath/1", "track": None,
                "slices": [], "verdicts": {},
                "note": "no timeslice instants in trace (run with "
                        "--trace-out and a timeslice workload)"}

    ref_tid = min(per_track,
                  key=lambda tid: (-len(per_track[tid]),
                                   tracks.get(tid, ""), tid))
    instants = sorted(per_track[ref_tid], key=lambda ev: ev["ts"])
    t_first = min((ev.get("ts", 0.0) for ev in events
                   if ev.get("ph") in ("i", "I", "X")), default=0.0) / 1e6

    drain_spans.sort()
    net_spans.sort()
    slices = []
    prev = t_first
    for ev in instants:
        end = ev["ts"] / 1e6
        dur = end - prev
        if dur <= 0:
            prev = end
            continue
        drain_clip = _clip(drain_spans, prev, end)
        net_clip = _clip(net_spans, prev, end)
        drain_busy = _union(list(drain_clip))
        net_busy = _union(list(net_clip))
        overlap = _overlap(drain_clip, net_clip)
        spills = any(s < end < e for s, e in drain_spans)
        drain_frac = drain_busy / dur
        if drain_frac >= drain_threshold or (
                spills and drain_frac >= DRAIN_SPILL_THRESHOLD):
            verdict = "drain-backpressure"
        elif overlap / dur >= contention_threshold:
            verdict = "network-contention"
        else:
            verdict = "app-compute"
        slices.append({
            "index": ev.get("args", {}).get("index", len(slices)),
            "t_start": prev,
            "t_end": end,
            "dur_s": dur,
            "drain_busy_s": drain_busy,
            "net_busy_s": net_busy,
            "overlap_s": overlap,
            "drain_spills_boundary": spills,
            "verdict": verdict,
        })
        prev = end

    verdicts: dict[str, int] = {}
    for s in slices:
        verdicts[s["verdict"]] = verdicts.get(s["verdict"], 0) + 1
    return {"schema": "repro.obs.critpath/1",
            "track": tracks.get(ref_tid, str(ref_tid)),
            "slices": slices, "verdicts": verdicts}


def render_critpath(result: dict, limit: int = 30) -> str:
    """Terminal rendering of :func:`extract_critical_path`'s result."""
    slices = result["slices"]
    if not slices:
        return result.get("note", "no timeslices")
    lines = [
        f"critical path over {len(slices)} timeslice(s) "
        f"(reference track {result['track']}):",
        f"  {'slice':>5s} {'window':>19s} {'drain':>8s} {'net':>8s} "
        f"{'overlap':>8s}  verdict",
    ]
    shown = slices[:limit]
    for s in shown:
        spill = " >|" if s["drain_spills_boundary"] else ""
        lines.append(
            f"  {s['index']:5d} {s['t_start']:8.2f}s..{s['t_end']:8.2f}s "
            f"{s['drain_busy_s']:7.3f}s {s['net_busy_s']:7.3f}s "
            f"{s['overlap_s']:7.3f}s  {s['verdict']}{spill}")
    if len(slices) > limit:
        lines.append(f"  ... {len(slices) - limit} more slice(s) "
                     f"(raise --limit)")
    lines.append("")
    parts = [f"{count} {name}" for name, count in
             sorted(result["verdicts"].items(), key=lambda kv: (-kv[1], kv[0]))]
    lines.append("verdicts: " + ", ".join(parts))
    bound = max(result["verdicts"].items(), key=lambda kv: (kv[1], kv[0]))[0]
    lines.append(f"run is predominantly {bound}-bound")
    return "\n".join(lines)

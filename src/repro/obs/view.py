"""Trace summarization: the ``repro obs view`` backend.

Loads a trace written by :meth:`~repro.obs.Tracer.export` (Chrome JSON
or JSONL) and renders a terminal summary: event totals, top spans by
total sim time, instant-event counts, and -- when timeslice instants
are present -- the bulk-synchronous burst structure the paper measures
(section 6.2): how the incremental working set alternates between heavy
and light slices.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import ObservabilityError


def load_trace_events(path: Union[str, Path]) -> list[dict]:
    """Read a trace file into its event list.

    Accepts the Chrome object form (``{"traceEvents": [...]}``), a bare
    JSON array, or JSONL (one event per line).
    """
    path = Path(path)
    if not path.is_file():
        raise ObservabilityError(f"no trace file at {path}")
    text = path.read_text()
    if path.suffix == ".jsonl":
        try:
            events = [json.loads(line) for line in text.splitlines() if line]
        except json.JSONDecodeError as exc:
            raise ObservabilityError(f"bad JSONL trace {path}: {exc}") from exc
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(f"bad JSON trace {path}: {exc}") from exc
        if isinstance(data, dict):
            events = data.get("traceEvents")
            if events is None:
                raise ObservabilityError(
                    f"{path} has no 'traceEvents' array")
        elif isinstance(data, list):
            events = data
        else:
            raise ObservabilityError(
                f"{path}: expected an object or array, got {type(data).__name__}")
    if not isinstance(events, list) or not all(
            isinstance(ev, dict) for ev in events):
        raise ObservabilityError(f"{path}: traceEvents must be a list of objects")
    return events


def _track_names(events: list[dict]) -> dict[int, str]:
    """tid -> track name, from the thread_name metadata events."""
    names = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            names[ev.get("tid")] = ev.get("args", {}).get("name", "?")
    return names


def summarize_trace(events: list[dict], top: int = 10) -> str:
    """Render the terminal summary of one event list."""
    tracks = _track_names(events)
    spans = [ev for ev in events if ev.get("ph") == "X"]
    instants = [ev for ev in events if ev.get("ph") in ("i", "I")]
    timed = spans + instants
    if not timed:
        return "empty trace (no spans or instant events)"

    t_lo = min(ev["ts"] for ev in timed) / 1e6
    t_hi = max(ev["ts"] + ev.get("dur", 0.0) for ev in timed) / 1e6
    lines = [
        f"trace: {len(timed)} events ({len(spans)} spans, "
        f"{len(instants)} instants) on {len(tracks)} track(s), "
        f"sim time {t_lo:.3f}s .. {t_hi:.3f}s",
    ]

    if spans:
        totals: dict[str, list] = {}
        for ev in spans:
            agg = totals.setdefault(ev.get("name", "?"), [0, 0.0, 0.0])
            dur = ev.get("dur", 0.0) / 1e6
            agg[0] += 1
            agg[1] += dur
            agg[2] = max(agg[2], dur)
        lines.append("")
        lines.append(f"top spans by total sim time "
                     f"(showing {min(top, len(totals))} of {len(totals)}):")
        lines.append(f"  {'name':28s} {'count':>6s} {'total':>10s} "
                     f"{'mean':>10s} {'max':>10s}")
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1][1], kv[0]))
        for name, (count, total, peak) in ranked[:top]:
            lines.append(f"  {name:28s} {count:6d} {total:9.3f}s "
                         f"{total / count:9.4f}s {peak:9.4f}s")

    if instants:
        counts: dict[str, int] = {}
        for ev in instants:
            counts[ev.get("name", "?")] = counts.get(ev.get("name", "?"), 0) + 1
        lines.append("")
        lines.append("instant events:")
        for name, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"  {name:28s} {count:6d}")

    burst = _burst_structure(instants)
    if burst:
        lines.append("")
        lines.append(burst)
    return "\n".join(lines)


def _burst_structure(instants: list[dict]) -> str:
    """Bulk-synchronous burst summary from ``timeslice`` instants.

    Splits slices at the midpoint between the smallest and largest
    per-slice IWS and reports the heavy/light alternation -- the
    paper's section 6.2 observation that checkpoint traffic arrives in
    bursts aligned with iteration structure.
    """
    slices = [ev.get("args", {}) for ev in instants
              if ev.get("name") == "timeslice"]
    iws = [args.get("iws_bytes") for args in slices
           if args.get("iws_bytes") is not None]
    if len(iws) < 2:
        return ""
    lo, hi = min(iws), max(iws)
    mib = 1024.0 * 1024.0
    if hi == lo:
        return (f"burst structure: {len(iws)} timeslices, flat IWS "
                f"({hi / mib:.2f} MiB per slice)")
    threshold = (lo + hi) / 2.0
    heavy = [v for v in iws if v >= threshold]
    light = [v for v in iws if v < threshold]
    bursts = sum(1 for prev, cur in zip(iws, iws[1:])
                 if prev < threshold <= cur)
    if iws[0] >= threshold:
        bursts += 1
    mean_heavy = sum(heavy) / len(heavy) / mib
    mean_light = (sum(light) / len(light) / mib) if light else 0.0
    return (f"burst structure: {len(iws)} timeslices, {bursts} burst(s); "
            f"{len(heavy)} heavy slice(s) averaging {mean_heavy:.2f} MiB, "
            f"{len(light)} light averaging {mean_light:.2f} MiB "
            f"(threshold {threshold / mib:.2f} MiB)")

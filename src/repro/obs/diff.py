"""Cross-run artifact diffing: did anything change between two runs?

``repro obs diff A B`` compares two observability artifacts of the
same schema -- metrics snapshots (``--metrics-out``) or profiles
(``--profile-out``) -- and reports every *deterministic* value whose
relative change exceeds a configurable threshold.  Wall-clock-derived
values (histogram sums/means, profile self/cum seconds) vary run to
run on a shared host, so by default only the sim-determined values are
gated and the wall values are reported informationally:

- metrics: counter and gauge values, histogram *counts*, series
  counts/sums;
- profiles: per-category event counts, total event/section counts.

Two same-seed runs therefore diff clean (zero regressions) -- the
determinism contract, now checkable from artifacts alone.  ``--strict``
gates the wall values too, for same-machine A/B timing comparisons.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import ObservabilityError
from repro.obs.prof import PROFILE_SCHEMA

DIFF_SCHEMA = "repro.obs.diff/1"

#: histogram snapshot fields measured in host wall time
_HIST_WALL_FIELDS = ("sum", "min", "max", "mean", "p50", "p95", "p99")


def load_artifact(path: Union[str, Path]) -> tuple[str, dict]:
    """Read one artifact and detect its schema: ``("profile", data)``
    or ``("metrics", data)``.  Raises ObservabilityError otherwise."""
    path = Path(path)
    if not path.is_file():
        raise ObservabilityError(f"no artifact file at {path}")
    try:
        data = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ObservabilityError(f"bad artifact {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise ObservabilityError(
            f"{path}: expected a JSON object, got {type(data).__name__}")
    if data.get("schema") == PROFILE_SCHEMA:
        return ("profile", data)
    if data and all(isinstance(v, dict) and "kind" in v
                    for v in data.values()):
        return ("metrics", data)
    raise ObservabilityError(
        f"{path} is neither a metrics snapshot nor a "
        f"{PROFILE_SCHEMA} profile")


def _metrics_values(data: dict) -> tuple[dict, dict]:
    """(gated, informational) flat value maps of a metrics snapshot."""
    gated, wall = {}, {}
    for name, entry in data.items():
        kind = entry.get("kind")
        if kind == "histogram":
            gated[f"{name}.count"] = entry.get("count")
            for field in _HIST_WALL_FIELDS:
                if entry.get(field) is not None:
                    wall[f"{name}.{field}"] = entry[field]
        elif kind == "series":
            gated[f"{name}.count"] = entry.get("count")
            gated[f"{name}.sum"] = entry.get("sum")
        else:
            gated[name] = entry.get("value")
    return gated, wall


def _profile_values(data: dict) -> tuple[dict, dict]:
    """(gated, informational) flat value maps of a profile artifact."""
    gated = {"events": data.get("events"),
             "sections": data.get("sections")}
    wall = {"wall_total_s": data.get("wall_total_s"),
            "coverage": data.get("coverage")}
    for cat in data.get("categories", []):
        key = f"{cat['subsystem']}.{cat['kind']}.{cat['ranks']}"
        gated[f"{key}.count"] = cat.get("count")
        wall[f"{key}.self_s"] = cat.get("self_s")
    return gated, wall


def _compare(a: dict, b: dict, threshold: float) -> list[dict]:
    """Every key whose value changed beyond ``threshold`` (relative)."""
    changes = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va == vb:
            continue
        if va is None or vb is None:
            changes.append({"key": key, "a": va, "b": vb,
                            "rel_change": None})
            continue
        if not (isinstance(va, (int, float)) and isinstance(vb, (int, float))):
            changes.append({"key": key, "a": va, "b": vb,
                            "rel_change": None})
            continue
        rel = (vb - va) / abs(va) if va else float("inf")
        if abs(rel) > threshold:
            changes.append({"key": key, "a": va, "b": vb,
                            "rel_change": rel})
    return changes


def diff_artifacts(path_a: Union[str, Path], path_b: Union[str, Path], *,
                   threshold: float = 0.0, strict: bool = False) -> dict:
    """Compare two artifacts; the machine-readable regression report.

    ``regressions`` lists gated (deterministic) values that moved more
    than ``threshold``; ``informational`` lists wall-time values that
    moved (never gated unless ``strict``).  Mixed schemas raise."""
    kind_a, data_a = load_artifact(path_a)
    kind_b, data_b = load_artifact(path_b)
    if kind_a != kind_b:
        raise ObservabilityError(
            f"mixed artifact schemas: {path_a} is a {kind_a}, "
            f"{path_b} is a {kind_b} -- not comparable")
    extract = _profile_values if kind_a == "profile" else _metrics_values
    gated_a, wall_a = extract(data_a)
    gated_b, wall_b = extract(data_b)
    regressions = _compare(gated_a, gated_b, threshold)
    informational = _compare(wall_a, wall_b, threshold)
    if strict:
        regressions = regressions + informational
        informational = []
    return {
        "schema": DIFF_SCHEMA,
        "artifact": kind_a,
        "a": str(path_a),
        "b": str(path_b),
        "threshold": threshold,
        "strict": strict,
        "compared": len(set(gated_a) | set(gated_b)),
        "regressions": regressions,
        "informational": informational,
    }


def render_diff(report: dict, limit: int = 25) -> str:
    """Terminal rendering of :func:`diff_artifacts`'s report."""

    def fmt(change: dict) -> str:
        rel = change["rel_change"]
        pct = "" if rel is None else (
            " (inf)" if rel == float("inf") else f" ({rel:+.1%})")
        return f"    {change['key']}: {change['a']} -> {change['b']}{pct}"

    regressions = report["regressions"]
    info = report["informational"]
    lines = [
        f"diff: {report['artifact']} artifacts {report['a']} vs "
        f"{report['b']} (threshold {report['threshold']:.1%}"
        + (", strict)" if report["strict"] else ")"),
        f"  {report['compared']} gated value(s) compared, "
        f"{len(regressions)} regression(s)",
    ]
    for change in regressions[:limit]:
        lines.append(fmt(change))
    if len(regressions) > limit:
        lines.append(f"    ... {len(regressions) - limit} more")
    if info:
        lines.append(f"  {len(info)} wall-time value(s) changed "
                     f"(informational, not gated):")
        for change in info[:5]:
            lines.append(fmt(change))
        if len(info) > 5:
            lines.append(f"    ... {len(info) - 5} more")
    if not regressions:
        lines.append("  no regressions: artifacts agree on every gated value")
    return "\n".join(lines)

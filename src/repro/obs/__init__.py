"""Unified observability: tracing, metrics, and profiling probes.

The paper's argument is built on *measuring* a running system; this
package makes the reproduction's own runtime measurable.  One
:class:`Observability` object carries

- a :class:`Tracer` (or the no-op :data:`NULL_TRACER`) recording spans
  and instant events in deterministic sim-time, exportable as Chrome /
  Perfetto JSON or JSONL (:mod:`repro.obs.tracer`);
- a :class:`MetricsRegistry` of counters/gauges/histograms with dotted
  per-subsystem namespaces (:mod:`repro.obs.metrics`);
- optional wall-time :func:`probe` context managers and a live
  :class:`ProgressReporter` (:mod:`repro.obs.probe`).

It threads through the stack via :class:`~repro.sim.Engine` -- every
instrumented component reaches its engine's ``obs`` attribute -- so one
object observes a whole experiment, and :data:`NULL_OBS` (the default)
keeps every call site a single guarded branch:

    obs = engine.obs
    if obs.enabled:
        obs.tracer.instant(...)
        obs.metrics.counter("storage.bytes_written").inc(n)

Determinism contract: all trace timestamps/durations are virtual time,
so same-seed runs produce bit-identical sim-time event streams (wall
clocks live only in ``args.wall``, stripped by
:func:`~repro.obs.tracer.strip_wall_times`); and a disabled
observability object changes no simulated behavior -- golden traces are
byte-identical with or without the plumbing.
"""

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               ScopedMetrics, WindowedSeries)
from repro.obs.probe import ProgressReporter, probe
from repro.obs.prof import EngineProfiler, load_profile, render_profile
from repro.obs.tracer import (DEFAULT_CATEGORIES, ENGINE_DISPATCH,
                              NULL_TRACER, NullTracer, Tracer,
                              strip_wall_times)
from repro.obs.view import load_trace_events, summarize_trace


class Observability:
    """One experiment's tracer + metrics + optional progress feed.

    Disabled (``enabled = False``) unless a real tracer, a metrics
    registry, or a progress reporter is supplied -- construct with
    ``Observability(tracer=Tracer(), metrics=MetricsRegistry())`` to
    turn everything on.  Instrumented call sites are guarded on
    :attr:`enabled`, so the default :data:`NULL_OBS` costs one
    attribute read per site.
    """

    __slots__ = ("tracer", "metrics", "progress", "profiler", "enabled")

    def __init__(self, tracer=None, metrics=None, progress=None,
                 profiler=None):
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.metrics = MetricsRegistry() if metrics is None else metrics
        self.progress = progress
        #: an EngineProfiler, attached by every Engine built with this
        #: obs (None: the hot loop keeps its empty-hook-list fast path)
        self.profiler = profiler
        self.enabled = bool(self.tracer.enabled or metrics is not None
                            or progress is not None or profiler is not None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return (f"<Observability {state} tracer={self.tracer!r} "
                f"metrics={self.metrics!r}>")


#: the shared disabled instance every Engine starts with
NULL_OBS = Observability()

__all__ = [
    "Counter",
    "DEFAULT_CATEGORIES",
    "ENGINE_DISPATCH",
    "EngineProfiler",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "ProgressReporter",
    "ScopedMetrics",
    "Tracer",
    "WindowedSeries",
    "load_profile",
    "load_trace_events",
    "probe",
    "render_profile",
    "strip_wall_times",
    "summarize_trace",
]

"""Host-side engine profiler: where does the *wall* time go?

The tracer answers "where did the simulated time go"; this module
answers the other question the ROADMAP keeps asking -- which event
kinds and subsystems burn the host CPU.  An :class:`EngineProfiler`
rides the :meth:`~repro.sim.Engine.add_event_hook` seam: the hook fires
after every dispatched event, and the wall time *since the previous
hook call* is attributed to the event that just ran.  Because the gaps
between hook calls tile the whole run (setup before the first event and
teardown after the last land in explicit ``host.setup`` /
``host.teardown`` buckets), the per-category self times sum to ~100% of
the measured wall window -- there is no unattributed residue to hide a
hot spot in.

Attribution is three-dimensional: **subsystem** (sim, net, mpi,
checkpoint, storage, faults, app, host) x **event kind**
(``process.resume``, ``message.delivery``, ``transport.frame``, ...) x
**rank group** (``r0-63``, ...), with self/cumulative accounting:
host work wrapped in :meth:`EngineProfiler.section` (e.g. the
per-iteration region-allocation churn in :class:`~repro.apps.phases.
AllocPhase`) is charged to its own bucket's self time and subtracted
from the enclosing event's self time, so "generator resume" and "region
allocation" are separable even though one runs inside the other.

The profiler costs nothing when absent: ``Engine.__init__`` attaches it
only when ``obs.profiler`` is not None, and the hot loop's hook check
is the pre-existing one-truthiness-test guard.  Wall times are host
measurements and therefore *not* deterministic; event and section
counts are, and the pinned tests compare only those.

Output: :meth:`EngineProfiler.profile` (a JSON-able dict, schema
``repro.obs.profile/1``), :meth:`EngineProfiler.export` (the
``--profile-out`` file), and :func:`render_profile` (the ``repro obs
top`` table).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional, Union

from repro.errors import ObservabilityError

#: the artifact schema tag ``repro obs top`` / ``obs diff`` key off
PROFILE_SCHEMA = "repro.obs.profile/1"

#: function qualname -> (subsystem, event kind, rank-extraction mode).
#: Modes: "self_name" parses ``...r<N>`` off the bound object's name,
#: "arg0_rank" reads an integer first argument, "msg_dst" /
#: "batch_dst" read a Message destination, "item_proc" reads a
#: (process, value) wake item, "run_batch" re-classifies a coalesced
#: Engine._run_batch event by its inner callable (so batched deliveries
#: and resumes land in the same categories their per-item events used),
#: None means unranked.
_QUALNAME_KINDS = {
    "SimProcess._resume": ("sim", "process.resume", "self_name"),
    "_dispatch_resume": ("sim", "process.resume", "item_proc"),
    "Engine._run_batch": ("sim", "batch.dispatch", "run_batch"),
    "TimerHub._fire_group": ("sim", "timer.epoch", None),
    "IntervalTimer._fire": ("sim", "timer.expiry", None),
    "Network._deliver": ("net", "message.delivery", "msg_dst"),
    "Network._deliver_batch": ("net", "message.delivery", "batch_dst"),
    "RankComm._complete.<locals>.finish": ("mpi", "message.copy", None),
    "FaultInjector._deliver": ("faults", "fault.delivery", None),
    "_FramedTransport._inject_next": ("checkpoint", "transport.inject",
                                      "arg0_rank"),
    "_FramedTransport._frame_arrived": ("checkpoint", "transport.frame",
                                        "arg0_rank"),
    "CowWriteout.finish": ("checkpoint", "cow.finish", None),
}


class _Bucket:
    """One (subsystem, kind, rank-group) accumulation cell."""

    __slots__ = ("count", "self_s", "cum_s")

    def __init__(self):
        self.count = 0
        self.self_s = 0.0
        self.cum_s = 0.0

    def add(self, dt: float, inner: float = 0.0) -> None:
        self.count += 1
        self.cum_s += dt
        self.self_s += dt - inner if dt > inner else 0.0


class _Section:
    """Context manager for one host-work section (reusable shape, one
    allocation per entry -- sections run per phase, not per event)."""

    __slots__ = ("_prof", "_bucket", "_t0", "_inner0")

    def __init__(self, prof: "EngineProfiler", bucket: _Bucket):
        self._prof = prof
        self._bucket = bucket

    def __enter__(self):
        prof = self._prof
        self._t0 = prof._clock()
        self._inner0 = prof._inner
        return self

    def __exit__(self, exc_type, exc, tb):
        prof = self._prof
        now = prof._clock()
        dt = now - self._t0
        child = prof._inner - self._inner0
        self._bucket.add(dt, child)
        prof._inner = self._inner0 + dt
        prof.sections += 1
        return False


class EngineProfiler:
    """Attributes host wall time per event kind x subsystem x rank group.

    Construct one, put it on an :class:`~repro.obs.Observability`
    (``Observability(profiler=EngineProfiler())``), and every
    :class:`~repro.sim.Engine` built with that obs attaches it -- the
    fault driver's per-life engines all feed the same profile.
    """

    def __init__(self, *, rank_group_size: int = 64, clock=None):
        if rank_group_size < 1:
            raise ObservabilityError(
                f"rank_group_size must be >= 1, got {rank_group_size}")
        self.rank_group_size = int(rank_group_size)
        self._clock = time.perf_counter if clock is None else clock
        #: (subsystem, kind, rank_group) -> _Bucket
        self._buckets: dict[tuple, _Bucket] = {}
        #: id(function) -> (function, subsystem, kind, mode); the
        #: function reference pins the id against reuse
        self._fn_cache: dict = {}
        self._group_labels: dict[Optional[int], str] = {None: "-"}
        now = self._clock()
        self._t0 = now
        self._last = now
        self._inner = 0.0     # section seconds inside the current event
        self._fresh = True    # next gap is host setup, not an event
        self.events = 0
        self.sections = 0

    # -- wiring --------------------------------------------------------------

    def attach(self, engine) -> None:
        """Hook into one engine.  The wall gap from here to the engine's
        first event is host setup (cluster build, instrumentation
        install), not event work."""
        self._fresh = True
        engine.add_event_hook(self._on_event)

    def _on_event(self, ev) -> None:
        now = self._clock()
        dt = now - self._last
        self._last = now
        inner = self._inner
        if inner:
            self._inner = 0.0
        self.events += 1
        if self._fresh:
            self._fresh = False
            bucket = self._bucket("host", "setup", "-")
        else:
            bucket = self._event_bucket(ev)
        bucket.add(dt, inner)

    # -- classification ------------------------------------------------------

    def _bucket(self, subsystem: str, kind: str, group: str) -> _Bucket:
        key = (subsystem, kind, group)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket()
        return bucket

    def _event_bucket(self, ev) -> _Bucket:
        fn = ev.fn
        func = getattr(fn, "__func__", fn)
        entry = self._fn_cache.get(id(func))
        if entry is None:
            entry = self._classify(func)
            self._fn_cache[id(func)] = entry
        _, subsystem, kind, mode = entry
        rank = None
        if mode is not None:
            if mode == "self_name":
                rank = _rank_from_name(fn.__self__.name)
            elif mode == "arg0_rank":
                args = ev.args
                if args and type(args[0]) is int:
                    rank = args[0]
            elif mode == "msg_dst":
                args = ev.args
                if args:
                    rank = getattr(args[0], "dst", None)
            elif mode == "batch_dst":
                args = ev.args
                if args and args[0]:
                    rank = getattr(args[0][0], "dst", None)
            elif mode == "item_proc":
                args = ev.args
                if args and args[0]:
                    rank = _rank_from_name(args[0][0].name)
            elif mode == "run_batch":
                # a coalesced batch: attribute to the *inner* callable's
                # category (message.delivery, process.resume, ...) so the
                # batched and unbatched paths profile under one name
                inner_fn, items = ev.args
                ifunc = getattr(inner_fn, "__func__", inner_fn)
                ientry = self._fn_cache.get(id(ifunc))
                if ientry is None:
                    ientry = self._classify(ifunc)
                    self._fn_cache[id(ifunc)] = ientry
                _, subsystem, kind, imode = ientry
                if items:
                    if imode == "msg_dst":
                        rank = getattr(items[0], "dst", None)
                    elif imode == "item_proc":
                        rank = _rank_from_name(items[0][0].name)
            elif mode == "future":
                subsystem, kind, rank = _classify_future(fn.__self__)
        return self._bucket(subsystem, kind, self._group(rank))

    def _classify(self, func) -> tuple:
        qualname = getattr(func, "__qualname__", None) or "event"
        if qualname == "Future.resolve":
            # classification depends on the future's label (checkpoint
            # sink writes vs generic completions): resolved per event
            return (func, "sim", "future.resolve", "future")
        known = _QUALNAME_KINDS.get(qualname)
        if known is not None:
            return (func, known[0], known[1], known[2])
        module = getattr(func, "__module__", "") or ""
        parts = module.split(".")
        subsystem = parts[1] if len(parts) > 1 and parts[0] == "repro" else "host"
        return (func, subsystem, qualname, None)

    def _group(self, rank: Optional[int]) -> str:
        label = self._group_labels.get(rank)
        if label is None:
            gs = self.rank_group_size
            lo = (rank // gs) * gs
            label = self._group_labels[rank] = f"r{lo}-{lo + gs - 1}"
        return label

    # -- sections ------------------------------------------------------------

    def section(self, name: str, rank: Optional[int] = None) -> _Section:
        """A context manager charging the wrapped host work to its own
        bucket (``name`` is ``subsystem.kind``, e.g. ``app.region_alloc``)
        and *subtracting* it from the enclosing event's self time."""
        subsystem, dot, kind = name.partition(".")
        if not dot:
            subsystem, kind = "app", name
        return _Section(self, self._bucket(subsystem, kind,
                                           self._group(rank)))

    # -- output --------------------------------------------------------------

    def profile(self) -> dict:
        """The attribution as a JSON-able dict (schema
        ``repro.obs.profile/1``).  Closes the wall window at call time:
        the gap since the last event becomes ``host.teardown``."""
        now = self._clock()
        if now > self._last:
            self._bucket("host", "teardown", "-").add(now - self._last)
            self._last = now
        total = self._last - self._t0
        attributed = sum(b.self_s for b in self._buckets.values())
        categories = [
            {"subsystem": sub, "kind": kind, "ranks": group,
             "count": b.count, "self_s": b.self_s, "cum_s": b.cum_s}
            for (sub, kind, group), b in sorted(
                self._buckets.items(),
                key=lambda kv: (-kv[1].self_s, kv[0]))
        ]
        subsystems: dict[str, dict] = {}
        for cat in categories:
            agg = subsystems.setdefault(
                cat["subsystem"], {"count": 0, "self_s": 0.0, "cum_s": 0.0})
            agg["count"] += cat["count"]
            agg["self_s"] += cat["self_s"]
            agg["cum_s"] += cat["cum_s"]
        return {
            "schema": PROFILE_SCHEMA,
            "wall_total_s": total,
            "wall_attributed_s": attributed,
            "coverage": attributed / total if total > 0 else 1.0,
            "events": self.events,
            "sections": self.sections,
            "rank_group_size": self.rank_group_size,
            "categories": categories,
            "subsystems": {k: subsystems[k] for k in sorted(subsystems)},
        }

    def export(self, path: Union[str, Path]) -> dict:
        """Write :meth:`profile` as JSON; returns the profile dict."""
        path = Path(path)
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        prof = self.profile()
        path.write_text(json.dumps(prof, indent=2) + "\n")
        return prof

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EngineProfiler events={self.events} "
                f"buckets={len(self._buckets)}>")


def _rank_from_name(name: str) -> Optional[int]:
    """``"sage.rank12"`` or ``"ckpt-disk.r12"`` -> 12 (None when no
    rank suffix is present)."""
    for sep in (".rank", ".r"):
        head, found, tail = name.rpartition(sep)
        if found:
            try:
                return int(tail)
            except ValueError:
                continue
    return None


def _classify_future(future) -> tuple:
    """Label-based classification of ``Future.resolve`` events: the
    checkpoint sink writes are labelled ``ckpt-<sink>.r<N>.write#<op>``."""
    label = getattr(future, "label", "") or ""
    if ".write#" in label:
        return ("storage", "sink.write",
                _rank_from_name(label.split(".write#", 1)[0]))
    return ("sim", "future.resolve", None)


def load_profile(path: Union[str, Path]) -> dict:
    """Read a ``--profile-out`` artifact, validating the schema."""
    path = Path(path)
    if not path.is_file():
        raise ObservabilityError(f"no profile file at {path}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"bad profile {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("schema") != PROFILE_SCHEMA:
        raise ObservabilityError(
            f"{path} is not a {PROFILE_SCHEMA} artifact (wrote it with "
            f"--profile-out?)")
    return data


def render_profile(profile: dict, top: int = 20, by: str = "self") -> str:
    """The ``repro obs top`` table over one profile dict."""
    if by not in ("self", "cum", "count"):
        raise ObservabilityError(f"unknown sort key {by!r}")
    total = profile.get("wall_total_s", 0.0)
    lines = [
        f"profile: {profile.get('events', 0)} events, "
        f"{profile.get('sections', 0)} section(s), "
        f"{total:.3f}s wall, "
        f"{profile.get('coverage', 0.0) * 100.0:.1f}% attributed",
    ]
    categories = list(profile.get("categories", []))
    if not categories:
        lines.append("(no categories recorded)")
        return "\n".join(lines)
    keys = {"self": "self_s", "cum": "cum_s", "count": "count"}
    sort_key = keys[by]
    categories.sort(key=lambda c: (-c.get(sort_key, 0),
                                   c.get("subsystem", ""), c.get("kind", "")))
    lines.append("")
    lines.append(f"top categories by {by} "
                 f"(showing {min(top, len(categories))} of {len(categories)}):")
    lines.append(f"  {'subsystem':12s} {'kind':24s} {'ranks':>10s} "
                 f"{'count':>9s} {'self':>9s} {'cum':>9s} {'self%':>7s}")
    for cat in categories[:top]:
        share = cat["self_s"] / total * 100.0 if total > 0 else 0.0
        lines.append(f"  {cat['subsystem']:12s} {cat['kind']:24s} "
                     f"{cat['ranks']:>10s} {cat['count']:9d} "
                     f"{cat['self_s']:8.3f}s {cat['cum_s']:8.3f}s "
                     f"{share:6.1f}%")
    subsystems = profile.get("subsystems", {})
    if subsystems:
        lines.append("")
        lines.append("by subsystem (self time):")
        ranked = sorted(subsystems.items(),
                        key=lambda kv: (-kv[1].get("self_s", 0.0), kv[0]))
        for name, agg in ranked:
            share = agg["self_s"] / total * 100.0 if total > 0 else 0.0
            lines.append(f"  {name:12s} {agg['self_s']:8.3f}s {share:6.1f}%  "
                         f"({agg['count']} events)")
    return "\n".join(lines)

"""Span/instant event tracing with deterministic sim-time timestamps.

The :class:`Tracer` records *instant* events (a fault delivered, a
timeslice boundary, a checkpoint commit) and *complete* spans (a disk
write occupying a sim-time window, a recovery's downtime, one life of a
fault run) on named tracks.  Timestamps are **virtual** (simulation)
time converted to microseconds -- the unit Chrome's ``chrome://tracing``
and Perfetto expect -- so the trace of a deterministic run is itself
deterministic: two same-seed runs produce bit-identical event streams.

Wall-clock time is recorded *alongside* (an ``args.wall`` field stamped
from a monotonic clock at record time) so slow host phases are still
visible; comparisons and golden traces strip it
(:func:`strip_wall_times`).  Pass ``wall_clock=None`` to omit it
entirely and get traces that are bit-identical including the bytes on
disk.

Two export formats:

- :meth:`Tracer.export` to ``*.json`` -- a Chrome trace object
  (``{"traceEvents": [...]}``) that loads directly in Perfetto;
- :meth:`Tracer.export` to ``*.jsonl`` -- one event per line, for
  streaming consumers and cheap appends.

Zero cost when disabled: the module-level :data:`NULL_TRACER`
(a :class:`NullTracer`) reports ``enabled = False`` and every
instrumented call site is guarded, so the hot paths never build event
dicts, format names, or touch a clock.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.errors import ObservabilityError

#: categories recorded by default (everything but the per-event firehose)
DEFAULT_CATEGORIES = frozenset({
    "engine", "timeslice", "checkpoint", "net", "storage", "fault",
    "recovery", "exec",
})

#: opt-in: one instant per dispatched engine event (huge traces; enable
#: explicitly with ``Tracer(categories={..., ENGINE_DISPATCH})``)
ENGINE_DISPATCH = "engine.dispatch"


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Call sites guard on :attr:`enabled` (or :meth:`wants`), so with this
    tracer installed no event dict is ever built.
    """

    enabled = False
    __slots__ = ()

    def wants(self, cat: str) -> bool:
        """Always False: no category is recorded."""
        return False

    def instant(self, *args, **kwargs) -> None:
        """Discard the event."""

    def complete(self, *args, **kwargs) -> None:
        """Discard the span."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullTracer>"


#: the shared no-op instance (stateless, safe to share everywhere)
NULL_TRACER = NullTracer()


class Tracer:
    """Records spans and instant events in Chrome-trace form.

    Parameters
    ----------
    categories:
        Which event categories to record; ``None`` means
        :data:`DEFAULT_CATEGORIES`.  Events in other categories are
        dropped at the call.
    wall_clock:
        Monotonic clock stamped into each event's ``args.wall``
        (seconds since the tracer was created).  ``None`` omits wall
        times, making the exported bytes fully deterministic.
    """

    enabled = True

    def __init__(self, categories: Optional[Iterable[str]] = None,
                 wall_clock=time.perf_counter):
        self.categories = (DEFAULT_CATEGORIES if categories is None
                           else frozenset(categories))
        #: recorded events, in recording order (Chrome-trace dicts)
        self.events: list[dict] = []
        self._tracks: dict[str, int] = {}
        self._wall = wall_clock
        self._wall0 = wall_clock() if wall_clock is not None else 0.0

    # -- recording ----------------------------------------------------------

    def wants(self, cat: str) -> bool:
        """True when events of this category would be recorded."""
        return cat in self.categories

    def instant(self, name: str, cat: str, t: float, *,
                track: str = "sim", **args) -> None:
        """Record an instant event at virtual time ``t`` (seconds)."""
        if cat not in self.categories:
            return
        ev = {"name": name, "cat": cat, "ph": "i", "ts": t * 1e6,
              "pid": 1, "tid": self._tid(track), "s": "t"}
        self._stamp(ev, args)

    def complete(self, name: str, cat: str, t: float, dur: float, *,
                 track: str = "sim", **args) -> None:
        """Record a complete span ``[t, t+dur]`` in virtual seconds."""
        if cat not in self.categories:
            return
        ev = {"name": name, "cat": cat, "ph": "X", "ts": t * 1e6,
              "dur": dur * 1e6, "pid": 1, "tid": self._tid(track)}
        self._stamp(ev, args)

    def _tid(self, track: str) -> int:
        tid = self._tracks.get(track)
        if tid is None:
            tid = len(self._tracks) + 1
            self._tracks[track] = tid
        return tid

    def _stamp(self, ev: dict, args: dict) -> None:
        if self._wall is not None:
            args = dict(args)
            args["wall"] = self._wall() - self._wall0
        if args:
            ev["args"] = args
        self.events.append(ev)

    def __len__(self) -> int:
        return len(self.events)

    # -- export -------------------------------------------------------------

    def _metadata_events(self) -> list[dict]:
        """Chrome ``M`` events naming the process and every track."""
        meta = [{"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                 "args": {"name": "repro-sim"}}]
        for track, tid in sorted(self._tracks.items(), key=lambda kv: kv[1]):
            meta.append({"name": "thread_name", "ph": "M", "pid": 1,
                         "tid": tid, "args": {"name": track}})
        return meta

    def to_chrome(self) -> dict:
        """The full trace as a Chrome-trace JSON object."""
        return {
            "traceEvents": self._metadata_events() + self.events,
            "displayTimeUnit": "ms",
            "otherData": {"clock": "sim-microseconds", "format_version": 1},
        }

    def export(self, path: Union[str, Path]) -> Path:
        """Write the trace; ``*.jsonl`` streams, anything else is Chrome
        JSON.  Returns the path written."""
        path = Path(path)
        if path.is_dir():
            raise ObservabilityError(
                f"trace target {path} is a directory; give a file path")
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        if path.suffix == ".jsonl":
            with path.open("w") as fh:
                for ev in self._metadata_events():
                    fh.write(json.dumps(ev, sort_keys=True) + "\n")
                for ev in self.events:
                    fh.write(json.dumps(ev, sort_keys=True) + "\n")
        else:
            path.write_text(json.dumps(self.to_chrome(), sort_keys=True,
                                       indent=1) + "\n")
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Tracer events={len(self.events)} "
                f"tracks={len(self._tracks)}>")


def strip_wall_times(events: list[dict]) -> list[dict]:
    """A copy of ``events`` with every ``args.wall`` field removed --
    the sim-time-only view two same-seed runs must agree on exactly."""
    out = []
    for ev in events:
        args = ev.get("args")
        if args and "wall" in args:
            ev = dict(ev)
            args = {k: v for k, v in args.items() if k != "wall"}
            if args:
                ev["args"] = args
            else:
                ev.pop("args")
        out.append(ev)
    return out

"""Diskless checkpointing: stable storage in a peer's memory.

Plank's diskless checkpointing (related work, section 7) avoids the disk
bottleneck by storing checkpoints in the memory of other nodes.  The
sink here mimics the :class:`~repro.storage.Disk` interface so the
coordinated checkpoint engine can use either interchangeably:

- a write streams over the interconnect (link latency + size/bandwidth)
  and lands in the buddy's memory at memcpy speed;
- writes from one node serialize at its NIC, like disk writes at the
  spindle;
- the buddy donates a *capacity*: exceeding it is an error -- the real
  cost of diskless checkpointing is memory, which is why the engine
  should retire old checkpoints (``release``).
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.net.models import LinkSpec, QSNET2
from repro.sim import Engine, Future
from repro.units import GiB


class DisklessSink:
    """Checkpoint sink backed by a buddy node's memory."""

    def __init__(self, engine: Engine, link: LinkSpec = QSNET2,
                 memcpy_bandwidth: float = 2.0 * GiB,
                 capacity: int = 2 * GiB, name: str = "diskless"):
        if memcpy_bandwidth <= 0:
            raise StorageError("memcpy bandwidth must be positive")
        if capacity <= 0:
            raise StorageError("buddy capacity must be positive")
        self.engine = engine
        self.link = link
        self.memcpy_bandwidth = memcpy_bandwidth
        self.capacity = capacity
        self.name = name
        self._free_at = 0.0
        self.bytes_written = 0
        self.bytes_held = 0
        self.ops = 0

    def write(self, nbytes: int) -> Future:
        """Stream ``nbytes`` to the buddy; future resolves at durability
        (in the buddy's memory)."""
        if nbytes < 0:
            raise StorageError(f"negative write size {nbytes}")
        if self.bytes_held + nbytes > self.capacity:
            raise StorageError(
                f"{self.name}: buddy memory exhausted "
                f"({self.bytes_held + nbytes} > {self.capacity}); release "
                "retired checkpoints first")
        now = self.engine.now
        start = max(now, self._free_at)
        duration = (self.link.latency + nbytes / self.link.bandwidth
                    + nbytes / self.memcpy_bandwidth)
        done_at = start + duration
        self._free_at = done_at
        self.bytes_written += nbytes
        self.bytes_held += nbytes
        self.ops += 1
        fut = Future(self.engine, label=f"{self.name}.write#{self.ops}")
        self.engine.schedule_at(done_at, fut.resolve, done_at)
        return fut

    def ingest(self, nbytes: int) -> Future:
        """Deposit ``nbytes`` that already crossed the fabric (the
        checkpoint transport simulated the wire itself): charge only the
        memcpy into the buddy's memory plus capacity."""
        if nbytes < 0:
            raise StorageError(f"negative ingest size {nbytes}")
        if self.bytes_held + nbytes > self.capacity:
            raise StorageError(
                f"{self.name}: buddy memory exhausted "
                f"({self.bytes_held + nbytes} > {self.capacity}); release "
                "retired checkpoints first")
        now = self.engine.now
        start = max(now, self._free_at)
        done_at = start + nbytes / self.memcpy_bandwidth
        self._free_at = done_at
        self.bytes_written += nbytes
        self.bytes_held += nbytes
        self.ops += 1
        fut = Future(self.engine, label=f"{self.name}.ingest#{self.ops}")
        self.engine.schedule_at(done_at, fut.resolve, done_at)
        return fut

    def release(self, nbytes: int) -> None:
        """Retire ``nbytes`` of old checkpoints from the buddy's memory."""
        if nbytes < 0 or nbytes > self.bytes_held:
            raise StorageError(
                f"cannot release {nbytes} of {self.bytes_held} held bytes")
        self.bytes_held -= nbytes

    def queue_delay(self) -> float:
        """How long a write issued now would wait before starting."""
        return max(0.0, self._free_at - self.engine.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.units import fmt_bytes
        return (f"<DisklessSink {self.name!r} held={fmt_bytes(self.bytes_held)}"
                f"/{fmt_bytes(self.capacity)}>")

"""Stable-storage substrate: disks, arrays, and the checkpoint store.

The paper's feasibility argument compares the incremental bandwidth
against two sinks: the interconnect (QsNet II, 900 MB/s) and secondary
storage (Ultra320 SCSI, 320 MB/s).  This package models the storage
side: a single disk with a serialized write queue, RAID-0 style arrays
that aggregate bandwidth, and a logical checkpoint store holding
versioned per-rank checkpoint chains.
"""

from repro.storage.models import DiskSpec, SCSI_ULTRA320, IDE_ATA100, RAMDISK
from repro.storage.disk import Disk
from repro.storage.diskless import DisklessSink
from repro.storage.integrity import (ChainVerification, HASH_BANDWIDTH,
                                     PieceVerification, piece_digest)
from repro.storage.raid import StorageArray
from repro.storage.store import CheckpointStore, StoredObject

__all__ = [
    "ChainVerification",
    "CheckpointStore",
    "Disk",
    "DiskSpec",
    "DisklessSink",
    "HASH_BANDWIDTH",
    "IDE_ATA100",
    "PieceVerification",
    "RAMDISK",
    "SCSI_ULTRA320",
    "StorageArray",
    "StoredObject",
    "piece_digest",
]

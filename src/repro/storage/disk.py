"""A single disk with a serialized write queue."""

from __future__ import annotations

from repro.errors import StorageError
from repro.sim import Engine, Future
from repro.storage.models import DiskSpec, SCSI_ULTRA320


class Disk:
    """Sequential-write disk: operations queue and complete in order.

    ``write`` returns a :class:`~repro.sim.Future` resolving (with the
    completion time) when the data is on stable storage; simulated
    processes can ``yield`` it to block for durability.
    """

    def __init__(self, engine: Engine, spec: DiskSpec = SCSI_ULTRA320,
                 name: str = "disk"):
        self.engine = engine
        self.spec = spec
        self.name = name
        self._free_at = 0.0
        self.bytes_written = 0
        self.ops = 0
        self.busy_time = 0.0
        self._fail_budget = 0
        self.writes_failed = 0

    def write(self, nbytes: int) -> Future:
        """Enqueue a write of ``nbytes``; returns a completion future.

        The future resolves with the completion time on success, or with
        ``None`` when the write was hit by an injected media failure (the
        data never reached stable storage; the disk still spent the
        time).
        """
        if nbytes < 0:
            raise StorageError(f"negative write size {nbytes}")
        now = self.engine.now
        start = max(now, self._free_at)
        duration = self.spec.write_time(nbytes)
        done_at = start + duration
        self._free_at = done_at
        self.ops += 1
        self.busy_time += duration
        fut = Future(self.engine, label=f"{self.name}.write#{self.ops}")
        if self._fail_budget > 0:
            self._fail_budget -= 1
            self.writes_failed += 1
            failed = True
            self.engine.schedule_at(done_at, fut.resolve, None)
        else:
            self.bytes_written += nbytes
            failed = False
            self.engine.schedule_at(done_at, fut.resolve, done_at)
        obs = self.engine.obs
        if obs.enabled:
            m = obs.metrics
            if failed:
                m.counter("storage.writes_failed").inc()
            else:
                m.counter("storage.bytes_written").inc(nbytes)
                m.counter(f"storage.{self.name}.bytes_written").inc(nbytes)
            tracer = obs.tracer
            if tracer.enabled and tracer.wants("storage"):
                tracer.complete("disk.write", "storage", start, duration,
                                track=self.name, bytes=nbytes, failed=failed)
        return fut

    def fail_next_writes(self, count: int = 1) -> None:
        """Fault injection: the next ``count`` writes fail (their futures
        resolve with ``None`` instead of a completion time)."""
        if count < 1:
            raise StorageError(f"failure count must be >= 1, got {count}")
        self._fail_budget += count

    def queue_delay(self) -> float:
        """How long a write issued now would wait before starting."""
        return max(0.0, self._free_at - self.engine.now)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the disk spent busy."""
        if elapsed <= 0:
            raise StorageError(f"non-positive elapsed time {elapsed}")
        return min(1.0, self.busy_time / elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.units import fmt_bytes
        return (f"<Disk {self.name!r} {self.spec.name} "
                f"written={fmt_bytes(self.bytes_written)} ops={self.ops}>")

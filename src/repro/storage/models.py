"""Disk performance specifications."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GiB, MiB


@dataclass(frozen=True)
class DiskSpec:
    """A streaming-write disk model: ``seek + size / bandwidth``."""

    name: str
    bandwidth: float      #: sustained sequential bytes per second
    seek_latency: float   #: per-operation positioning cost, seconds

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError(f"bandwidth must be positive: {self.bandwidth}")
        if self.seek_latency < 0:
            raise ConfigurationError(f"negative seek latency: {self.seek_latency}")

    def write_time(self, nbytes: int) -> float:
        """Time for one sequential write of ``nbytes``."""
        if nbytes < 0:
            raise ConfigurationError(f"negative write size {nbytes}")
        return self.seek_latency + nbytes / self.bandwidth


#: The Ultra320 SCSI disk the paper quotes (Seagate Cheetah class): a
#: 320 MB/s bus; checkpoint streams are large sequential writes.
SCSI_ULTRA320 = DiskSpec("Ultra320 SCSI", bandwidth=320.0 * MiB,
                         seek_latency=4.7e-3)

#: Commodity IDE of the era, for contrast in ablations.
IDE_ATA100 = DiskSpec("ATA/100 IDE", bandwidth=55.0 * MiB, seek_latency=8.9e-3)

#: Memory-speed sink (diskless checkpointing to a peer's RAM).
RAMDISK = DiskSpec("ramdisk", bandwidth=2.0 * GiB, seek_latency=0.0)

"""Checkpoint integrity: content digests and verified chains.

A silently corrupted piece anywhere in an incremental chain poisons
every later restore -- the deltas stack on top of garbage and recovery
"succeeds" into a state that never existed.  This module gives the
store the machinery to make that impossible:

- :func:`piece_digest` -- a canonical blake2b digest over one stored
  piece (identity metadata + geometry + payload arrays), computed at
  write time and recomputed at verification time;
- *chain links* -- every piece records the digest of its predecessor in
  the rank's chain and, for incrementals, the digest of the full
  checkpoint heading its chain.  A piece that is silently dropped or
  replaced breaks the links of its successors even though their own
  content still hashes clean;
- :func:`verify_chain` -- walks a recovery chain head-to-tail and
  reports the longest intact prefix, the first bad piece, and why.

Verification is pure: it never mutates the store, and its outcome is a
deterministic function of the stored bytes -- the same corrupted store
yields the same report on every scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import blake2b
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.store import StoredObject

#: digest width in bytes (blake2b truncated; 128 bits is far beyond the
#: collision resistance silent-corruption detection needs)
DIGEST_SIZE = 16

#: modelled checksum throughput for integrity-checked restore cost
#: (blake2b on one modern core; feeds the feasibility comparison)
HASH_BANDWIDTH = 1_000_000_000.0  # B/s


def piece_digest(rank: int, seq: int, kind: str, nbytes: int,
                 payload=None) -> str:
    """Canonical digest of one stored piece.

    Covers the identity metadata (so a piece cannot be replayed under a
    different rank/sequence), the declared size (so a short write with a
    stale header cannot pass), and -- when the payload object is kept --
    the full geometry and page arrays.
    """
    h = blake2b(digest_size=DIGEST_SIZE)
    h.update(f"{rank}|{seq}|{kind}|{nbytes}".encode())
    if payload is not None:
        h.update(f"|{payload.page_size}|{payload.taken_at!r}".encode())
        for rec in payload.geometry:
            h.update(f"g{rec.sid}|{rec.kind}|{rec.base}|{rec.npages}".encode())
        for p in payload.payloads:
            if hasattr(p, "block_bytes"):
                # dcp block piece: a distinct tag (and the block size)
                # keeps it from ever colliding with a page piece whose
                # arrays happen to match
                h.update(f"B{p.sid}|{len(p.indices)}"
                         f"|{payload.block_size}".encode())
                h.update(np.ascontiguousarray(p.indices,
                                              dtype=np.int64).tobytes())
                h.update(np.ascontiguousarray(p.versions,
                                              dtype=np.uint64).tobytes())
                if p.block_bytes is not None:
                    h.update(b"b")
                    h.update(np.ascontiguousarray(p.block_bytes,
                                                  dtype=np.uint8).tobytes())
                continue
            h.update(f"p{p.sid}|{len(p.indices)}".encode())
            h.update(np.ascontiguousarray(p.indices, dtype=np.int64).tobytes())
            h.update(np.ascontiguousarray(p.versions,
                                          dtype=np.uint64).tobytes())
            if p.page_bytes is not None:
                h.update(b"b")
                h.update(np.ascontiguousarray(p.page_bytes,
                                              dtype=np.uint8).tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class PieceVerification:
    """Outcome of verifying one stored piece in chain context."""

    rank: int
    seq: int
    kind: str
    ok: bool
    #: "ok", "digest-mismatch", "chain-break", "base-mismatch",
    #: "missing-base", or "missing-target"
    reason: str = "ok"


@dataclass(frozen=True)
class ChainVerification:
    """Outcome of verifying one rank's recovery chain."""

    rank: int
    #: sequence the chain was asked to recover to (None: latest)
    target_seq: Optional[int]
    #: per-piece outcomes in chain order, stopping at the first bad one
    pieces: tuple[PieceVerification, ...]
    #: sequences of the longest intact prefix, chain order
    verified: tuple[int, ...]

    @property
    def intact(self) -> bool:
        return all(p.ok for p in self.pieces) and bool(self.pieces)

    @property
    def first_bad(self) -> Optional[PieceVerification]:
        for p in self.pieces:
            if not p.ok:
                return p
        return None

    @property
    def verified_upto(self) -> Optional[int]:
        """Newest sequence the intact prefix reaches, or None."""
        return self.verified[-1] if self.verified else None

    def summary(self) -> str:
        """One-line human verdict (the CLI's integrity-scan output)."""
        bad = self.first_bad
        if self.intact:
            return (f"rank {self.rank}: {len(self.verified)} piece(s) "
                    f"verified up to seq {self.verified_upto}")
        if bad is None:
            return f"rank {self.rank}: no recoverable chain (missing base)"
        return (f"rank {self.rank}: seq {bad.seq} {bad.reason}; intact "
                f"prefix ends at "
                f"{'nothing' if not self.verified else f'seq {self.verified_upto}'}")


def verify_chain(rank: int, chain: Sequence["StoredObject"],
                 target_seq: Optional[int] = None,
                 require_seq: Optional[int] = None) -> ChainVerification:
    """Verify a recovery chain: content digests plus predecessor/base
    links, head to tail, stopping at the first bad piece.

    ``require_seq`` additionally demands that the intact chain reach
    exactly that sequence -- the commit invariant guarantees a piece for
    every committed sequence, so a chain that verifies clean but stops
    short means the target piece was silently dropped.
    """
    pieces: list[PieceVerification] = []
    verified: list[int] = []

    def done() -> ChainVerification:
        return ChainVerification(rank=rank, target_seq=target_seq,
                                 pieces=tuple(pieces),
                                 verified=tuple(verified))

    if not chain:
        pieces.append(PieceVerification(
            rank=rank, seq=(-1 if require_seq is None else require_seq),
            kind="full", ok=False, reason="missing-base"))
        return done()

    head = chain[0]
    for i, obj in enumerate(chain):
        recomputed = piece_digest(obj.rank, obj.seq, obj.kind, obj.nbytes,
                                  obj.payload)
        if obj.digest is None or recomputed != obj.digest:
            pieces.append(PieceVerification(rank=rank, seq=obj.seq,
                                            kind=obj.kind, ok=False,
                                            reason="digest-mismatch"))
            return done()
        if i > 0:
            prev = chain[i - 1]
            if obj.prev_digest != prev.digest:
                pieces.append(PieceVerification(rank=rank, seq=obj.seq,
                                                kind=obj.kind, ok=False,
                                                reason="chain-break"))
                return done()
            if obj.base_digest != head.digest:
                pieces.append(PieceVerification(rank=rank, seq=obj.seq,
                                                kind=obj.kind, ok=False,
                                                reason="base-mismatch"))
                return done()
        pieces.append(PieceVerification(rank=rank, seq=obj.seq,
                                        kind=obj.kind, ok=True))
        verified.append(obj.seq)

    if require_seq is not None and (not verified
                                    or verified[-1] != require_seq):
        pieces.append(PieceVerification(rank=rank, seq=require_seq,
                                        kind="incremental", ok=False,
                                        reason="missing-target"))
    return done()

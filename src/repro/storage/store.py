"""The logical checkpoint store: versioned per-rank chains plus global
commit markers for coordinated checkpoints.

A *chain* for one rank is a full checkpoint followed by incremental
deltas.  A *global* checkpoint with sequence number ``seq`` is
recoverable only once every rank's piece for ``seq`` is durable, at
which point the coordinator marks it committed; recovery always rolls
back to the latest committed sequence (never a half-written one).

Every piece stored through :meth:`CheckpointStore.put` carries a
blake2b content digest plus chain links (the predecessor's digest and,
for incrementals, the digest of the full heading the chain) -- see
:mod:`repro.storage.integrity`.  The ``flip_bits`` / ``truncate_piece``
/ ``drop_piece`` methods model *silent* media corruption: they mangle
the stored data without touching the recorded digests, exactly the
failure the verification layer exists to catch.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.errors import StorageError
from repro.storage.integrity import (ChainVerification, PieceVerification,
                                     piece_digest, verify_chain)


@dataclass(frozen=True)
class StoredObject:
    """One stored checkpoint piece.

    Equality covers the logical identity *and the declared size* --
    ``(rank, seq, kind, nbytes)`` -- so a truncated piece never compares
    equal to the object that was originally written.  The payload,
    timestamps, and integrity metadata are excluded: two stores holding
    the same logical chain compare piecewise equal even though their
    digests were recorded at different times.
    """

    rank: int
    seq: int
    kind: str           #: "full", "incremental", or "dcp"
    nbytes: int
    payload: Any = field(compare=False, default=None)
    stored_at: float = field(compare=False, default=0.0)
    #: blake2b digest of the piece as written (recomputable)
    digest: Optional[str] = field(compare=False, default=None)
    #: digest of the predecessor piece in this rank's chain at write time
    prev_digest: Optional[str] = field(compare=False, default=None)
    #: digest of the full checkpoint heading the chain (incrementals)
    base_digest: Optional[str] = field(compare=False, default=None)


class CheckpointStore:
    """In-memory model of stable storage for checkpoint chains."""

    KINDS = ("full", "incremental", "dcp")

    def __init__(self, nranks: int):
        if nranks < 1:
            raise StorageError(f"need at least one rank, got {nranks}")
        self.nranks = nranks
        self._chains: dict[int, list[StoredObject]] = {r: [] for r in range(nranks)}
        self._committed: list[int] = []

    # -- writes ---------------------------------------------------------------

    def put(self, rank: int, seq: int, kind: str, nbytes: int,
            payload: Any = None, stored_at: float = 0.0) -> StoredObject:
        """Store one rank's piece of global checkpoint ``seq``."""
        self._check_rank(rank)
        if kind not in self.KINDS:
            raise StorageError(f"unknown checkpoint kind {kind!r}")
        if nbytes < 0:
            raise StorageError(f"negative checkpoint size {nbytes}")
        chain = self._chains[rank]
        if chain and seq <= chain[-1].seq:
            raise StorageError(
                f"non-monotonic sequence {seq} for rank {rank} "
                f"(last stored {chain[-1].seq})")
        if not chain and kind != "full":
            raise StorageError(
                f"rank {rank}: chain must start with a full checkpoint")
        digest = piece_digest(rank, seq, kind, nbytes, payload)
        prev_digest = chain[-1].digest if chain else None
        base_digest = None
        if kind != "full":        # incremental and dcp deltas link to base
            for obj in reversed(chain):
                if obj.kind == "full":
                    base_digest = obj.digest
                    break
        obj = StoredObject(rank=rank, seq=seq, kind=kind, nbytes=nbytes,
                           payload=payload, stored_at=stored_at,
                           digest=digest, prev_digest=prev_digest,
                           base_digest=base_digest)
        chain.append(obj)
        return obj

    def mark_committed(self, seq: int) -> None:
        """Record that global checkpoint ``seq`` is fully durable.

        Every rank must have stored a piece with exactly this sequence.
        """
        for rank in range(self.nranks):
            if not any(obj.seq == seq for obj in self._chains[rank]):
                raise StorageError(
                    f"cannot commit seq {seq}: rank {rank} has no piece for it")
        if self._committed and seq <= self._committed[-1]:
            raise StorageError(
                f"non-monotonic commit {seq} (last {self._committed[-1]})")
        self._committed.append(seq)

    # -- reads -----------------------------------------------------------------

    def chain(self, rank: int, upto_seq: Optional[int] = None) -> list[StoredObject]:
        """The recovery chain for ``rank``: the latest full checkpoint at
        or before ``upto_seq`` plus all later deltas up to it."""
        self._check_rank(rank)
        objs = self._chains[rank]
        if upto_seq is not None:
            objs = [o for o in objs if o.seq <= upto_seq]
        last_full = None
        for i, obj in enumerate(objs):
            if obj.kind == "full":
                last_full = i
        if last_full is None:
            return []
        return objs[last_full:]

    def latest_committed(self) -> Optional[int]:
        """Sequence of the most recent fully committed global checkpoint."""
        return self._committed[-1] if self._committed else None

    def committed_sequences(self) -> list[int]:
        """All committed global sequences, oldest first."""
        return list(self._committed)

    def pieces(self, rank: int) -> list[StoredObject]:
        """All stored pieces for ``rank``, oldest first."""
        self._check_rank(rank)
        return list(self._chains[rank])

    # -- integrity -----------------------------------------------------------

    def find(self, rank: int, seq: int) -> Optional[StoredObject]:
        """The stored piece for ``(rank, seq)``, or None."""
        self._check_rank(rank)
        for obj in self._chains[rank]:
            if obj.seq == seq:
                return obj
        return None

    def verify_piece(self, rank: int, seq: int) -> PieceVerification:
        """Recompute one piece's digest against the recorded one (content
        only; chain links are :meth:`verify_chain`'s job)."""
        obj = self.find(rank, seq)
        if obj is None:
            return PieceVerification(rank=rank, seq=seq, kind="incremental",
                                     ok=False, reason="missing-target")
        recomputed = piece_digest(obj.rank, obj.seq, obj.kind, obj.nbytes,
                                  obj.payload)
        ok = obj.digest is not None and recomputed == obj.digest
        return PieceVerification(rank=rank, seq=seq, kind=obj.kind, ok=ok,
                                 reason="ok" if ok else "digest-mismatch")

    def verify_chain(self, rank: int, upto_seq: Optional[int] = None,
                     require_seq: Optional[int] = None) -> ChainVerification:
        """Verify the recovery chain for ``rank`` up to ``upto_seq``:
        digests plus predecessor/base links.  See
        :func:`repro.storage.integrity.verify_chain`."""
        self._check_rank(rank)
        return verify_chain(rank, self.chain(rank, upto_seq=upto_seq),
                            target_seq=upto_seq, require_seq=require_seq)

    # -- silent corruption (fault-injection surface) --------------------------

    def flip_bits(self, rank: int, seq: int, *, nbits: int = 1,
                  seed: int = 0) -> Optional[StoredObject]:
        """Flip ``nbits`` random bits in the stored payload of one piece
        -- silent media corruption: the recorded digest is *not* updated,
        so only verification can tell.  Deterministic for a given
        ``(seed, rank, seq)``.  Returns the piece, or None when it holds
        no payload bytes to corrupt (nothing happened).
        """
        if nbits < 1:
            raise StorageError(f"nbits must be >= 1, got {nbits}")
        obj = self.find(rank, seq)
        if obj is None:
            raise StorageError(f"rank {rank} has no piece for seq {seq}")
        targets = self._corruptible_arrays(obj)
        if not targets:
            return None
        rng = np.random.default_rng([seed & 0x7FFFFFFF, rank, seq])
        sizes = np.array([t.size for t in targets])
        total = int(sizes.sum())
        for _ in range(nbits):
            pos = int(rng.integers(total))
            bit = int(rng.integers(8))
            for view, size in zip(targets, sizes):
                if pos < size:
                    view[pos] ^= np.uint8(1 << bit)
                    break
                pos -= int(size)
        return obj

    @staticmethod
    def _corruptible_arrays(obj: StoredObject) -> list[np.ndarray]:
        """Flat uint8 views over the piece's stored arrays (the "bytes
        on the platter"); empty when the piece keeps no payload."""
        if obj.payload is None:
            return []
        views = []
        for p in obj.payload.payloads:
            for arr in (getattr(p, "page_bytes", None),
                        getattr(p, "block_bytes", None), p.versions):
                if arr is not None and arr.size and arr.flags.c_contiguous:
                    views.append(arr.view(np.uint8).reshape(-1))
        return views

    def truncate_piece(self, rank: int, seq: int, *,
                       keep_bytes: Optional[int] = None) -> StoredObject:
        """Model a torn/short write: the piece's trailing saved pages are
        gone and its on-media size shrinks, but the recorded digest (the
        write-time header) still describes the full piece.  The store
        ledger reflects the *actual* bytes held.  Returns the truncated
        piece now in the chain.
        """
        obj = self.find(rank, seq)
        if obj is None:
            raise StorageError(f"rank {rank} has no piece for seq {seq}")
        if keep_bytes is None:
            keep_bytes = obj.nbytes // 2
        if not (0 <= keep_bytes <= obj.nbytes):
            raise StorageError(
                f"keep_bytes {keep_bytes} outside [0, {obj.nbytes}]")
        payload = obj.payload
        if payload is not None:
            payload = self._truncate_payload(payload, keep_bytes)
            new_nbytes = min(obj.nbytes, payload.nbytes)
        else:
            new_nbytes = keep_bytes
        truncated = dataclasses.replace(obj, nbytes=new_nbytes,
                                        payload=payload)
        chain = self._chains[rank]
        chain[chain.index(obj)] = truncated
        return truncated

    @staticmethod
    def _truncate_payload(payload, keep_bytes: int):
        """Drop trailing saved pages (or blocks, for dcp pieces) until
        the modelled size fits."""
        from repro.checkpoint.snapshot import (Checkpoint, BlockPayload,
                                               PagePayload)

        def rebuild(kept):
            return Checkpoint(seq=payload.seq, kind=payload.kind,
                              taken_at=payload.taken_at,
                              page_size=payload.page_size,
                              geometry=payload.geometry,
                              payloads=tuple(kept),
                              block_size=payload.block_size)

        def units(p) -> int:
            return len(p.indices)

        def head(p, n):
            if isinstance(p, BlockPayload):
                return BlockPayload(
                    sid=p.sid, indices=p.indices[:n],
                    versions=p.versions[:n],
                    block_bytes=(None if p.block_bytes is None
                                 else p.block_bytes[:n]))
            return PagePayload(
                sid=p.sid, indices=p.indices[:n],
                versions=p.versions[:n],
                page_bytes=(None if p.page_bytes is None
                            else p.page_bytes[:n]))

        kept = list(payload.payloads)
        while kept:
            size = rebuild(kept).nbytes
            if size <= keep_bytes:
                break
            last = kept[-1]
            n_units = units(last)
            if n_units <= 1:
                kept.pop()
                continue
            drop = max(1, n_units
                       - max(0, (n_units * keep_bytes) // max(size, 1)))
            kept[-1] = head(last, n_units - drop)
        return rebuild(kept)

    def drop_piece(self, rank: int, seq: int) -> StoredObject:
        """Silently lose one piece from a chain -- no poisoning, no
        commit bookkeeping, committed sequences included: exactly what a
        misdirected write or lost object leaves behind.  (Contrast
        :meth:`discard`, the *detected* write-failure path.)  Returns the
        removed piece; the ledger drops its bytes.
        """
        obj = self.find(rank, seq)
        if obj is None:
            raise StorageError(f"rank {rank} has no piece for seq {seq}")
        self._chains[rank].remove(obj)
        return obj

    # -- maintenance --------------------------------------------------------------

    def discard(self, rank: int, seq: int) -> int:
        """Remove one rank's piece for ``seq`` (its stable-storage write
        failed, so the store must not pretend the data is recoverable).
        Committed sequences cannot be discarded.  Returns bytes dropped.
        """
        self._check_rank(rank)
        if seq in self._committed:
            raise StorageError(f"cannot discard committed sequence {seq}")
        chain = self._chains[rank]
        for i, obj in enumerate(chain):
            if obj.seq == seq:
                del chain[i]
                return obj.nbytes
        raise StorageError(f"rank {rank} has no piece for seq {seq}")

    def truncate(self, rank: int, before_seq: int) -> int:
        """Drop pieces with ``seq < before_seq`` (after a new full
        checkpoint makes them unreachable).  Returns bytes reclaimed."""
        self._check_rank(rank)
        chain = self._chains[rank]
        keep = [o for o in chain if o.seq >= before_seq]
        if keep and keep[0].kind != "full":
            raise StorageError(
                f"truncation at seq {before_seq} would orphan incremental "
                f"pieces for rank {rank}")
        reclaimed = sum(o.nbytes for o in chain) - sum(o.nbytes for o in keep)
        self._chains[rank] = keep
        return reclaimed

    # -- accounting ---------------------------------------------------------------

    def total_bytes(self) -> int:
        """Bytes held across every rank's chain."""
        return sum(o.nbytes for chain in self._chains.values() for o in chain)

    def count(self) -> int:
        """Stored pieces across every rank."""
        return sum(len(chain) for chain in self._chains.values())

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nranks):
            raise StorageError(f"rank {rank} outside store of {self.nranks}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.units import fmt_bytes
        return (f"<CheckpointStore nranks={self.nranks} pieces={self.count()} "
                f"bytes={fmt_bytes(self.total_bytes())} "
                f"committed={self.latest_committed()}>")

"""The logical checkpoint store: versioned per-rank chains plus global
commit markers for coordinated checkpoints.

A *chain* for one rank is a full checkpoint followed by incremental
deltas.  A *global* checkpoint with sequence number ``seq`` is
recoverable only once every rank's piece for ``seq`` is durable, at
which point the coordinator marks it committed; recovery always rolls
back to the latest committed sequence (never a half-written one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import StorageError


@dataclass(frozen=True)
class StoredObject:
    """One stored checkpoint piece."""

    rank: int
    seq: int
    kind: str           #: "full" or "incremental"
    nbytes: int
    payload: Any = field(compare=False, default=None)
    stored_at: float = field(compare=False, default=0.0)


class CheckpointStore:
    """In-memory model of stable storage for checkpoint chains."""

    KINDS = ("full", "incremental")

    def __init__(self, nranks: int):
        if nranks < 1:
            raise StorageError(f"need at least one rank, got {nranks}")
        self.nranks = nranks
        self._chains: dict[int, list[StoredObject]] = {r: [] for r in range(nranks)}
        self._committed: list[int] = []

    # -- writes ---------------------------------------------------------------

    def put(self, rank: int, seq: int, kind: str, nbytes: int,
            payload: Any = None, stored_at: float = 0.0) -> StoredObject:
        """Store one rank's piece of global checkpoint ``seq``."""
        self._check_rank(rank)
        if kind not in self.KINDS:
            raise StorageError(f"unknown checkpoint kind {kind!r}")
        if nbytes < 0:
            raise StorageError(f"negative checkpoint size {nbytes}")
        chain = self._chains[rank]
        if chain and seq <= chain[-1].seq:
            raise StorageError(
                f"non-monotonic sequence {seq} for rank {rank} "
                f"(last stored {chain[-1].seq})")
        if not chain and kind != "full":
            raise StorageError(
                f"rank {rank}: chain must start with a full checkpoint")
        obj = StoredObject(rank=rank, seq=seq, kind=kind, nbytes=nbytes,
                           payload=payload, stored_at=stored_at)
        chain.append(obj)
        return obj

    def mark_committed(self, seq: int) -> None:
        """Record that global checkpoint ``seq`` is fully durable.

        Every rank must have stored a piece with exactly this sequence.
        """
        for rank in range(self.nranks):
            if not any(obj.seq == seq for obj in self._chains[rank]):
                raise StorageError(
                    f"cannot commit seq {seq}: rank {rank} has no piece for it")
        if self._committed and seq <= self._committed[-1]:
            raise StorageError(
                f"non-monotonic commit {seq} (last {self._committed[-1]})")
        self._committed.append(seq)

    # -- reads -----------------------------------------------------------------

    def chain(self, rank: int, upto_seq: Optional[int] = None) -> list[StoredObject]:
        """The recovery chain for ``rank``: the latest full checkpoint at
        or before ``upto_seq`` plus all later deltas up to it."""
        self._check_rank(rank)
        objs = self._chains[rank]
        if upto_seq is not None:
            objs = [o for o in objs if o.seq <= upto_seq]
        last_full = None
        for i, obj in enumerate(objs):
            if obj.kind == "full":
                last_full = i
        if last_full is None:
            return []
        return objs[last_full:]

    def latest_committed(self) -> Optional[int]:
        """Sequence of the most recent fully committed global checkpoint."""
        return self._committed[-1] if self._committed else None

    def committed_sequences(self) -> list[int]:
        """All committed global sequences, oldest first."""
        return list(self._committed)

    def pieces(self, rank: int) -> list[StoredObject]:
        """All stored pieces for ``rank``, oldest first."""
        self._check_rank(rank)
        return list(self._chains[rank])

    # -- maintenance --------------------------------------------------------------

    def discard(self, rank: int, seq: int) -> int:
        """Remove one rank's piece for ``seq`` (its stable-storage write
        failed, so the store must not pretend the data is recoverable).
        Committed sequences cannot be discarded.  Returns bytes dropped.
        """
        self._check_rank(rank)
        if seq in self._committed:
            raise StorageError(f"cannot discard committed sequence {seq}")
        chain = self._chains[rank]
        for i, obj in enumerate(chain):
            if obj.seq == seq:
                del chain[i]
                return obj.nbytes
        raise StorageError(f"rank {rank} has no piece for seq {seq}")

    def truncate(self, rank: int, before_seq: int) -> int:
        """Drop pieces with ``seq < before_seq`` (after a new full
        checkpoint makes them unreachable).  Returns bytes reclaimed."""
        self._check_rank(rank)
        chain = self._chains[rank]
        keep = [o for o in chain if o.seq >= before_seq]
        if keep and keep[0].kind != "full":
            raise StorageError(
                f"truncation at seq {before_seq} would orphan incremental "
                f"pieces for rank {rank}")
        reclaimed = sum(o.nbytes for o in chain) - sum(o.nbytes for o in keep)
        self._chains[rank] = keep
        return reclaimed

    # -- accounting ---------------------------------------------------------------

    def total_bytes(self) -> int:
        """Bytes held across every rank's chain."""
        return sum(o.nbytes for chain in self._chains.values() for o in chain)

    def count(self) -> int:
        """Stored pieces across every rank."""
        return sum(len(chain) for chain in self._chains.values())

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nranks):
            raise StorageError(f"rank {rank} outside store of {self.nranks}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.units import fmt_bytes
        return (f"<CheckpointStore nranks={self.nranks} pieces={self.count()} "
                f"bytes={fmt_bytes(self.total_bytes())} "
                f"committed={self.latest_committed()}>")

"""RAID-0 style striping across disks: aggregate checkpoint bandwidth.

The paper argues secondary-storage arrays provide the bandwidth headroom
for frequent incremental checkpoints; a stripe set of N disks sinks
roughly N times the single-disk rate for the large sequential writes a
checkpoint produces.
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.sim import Engine, Future, all_of
from repro.storage.disk import Disk
from repro.storage.models import DiskSpec, SCSI_ULTRA320


class StorageArray:
    """Stripes writes round-robin across member disks.

    A write of B bytes with stripe unit u is split into ceil(B/u) chunks
    dealt to the disks in order; the write completes when every chunk is
    durable.
    """

    def __init__(self, engine: Engine, ndisks: int,
                 spec: DiskSpec = SCSI_ULTRA320,
                 stripe_unit: int = 1 << 20, name: str = "array"):
        if ndisks < 1:
            raise StorageError(f"array needs at least one disk, got {ndisks}")
        if stripe_unit <= 0:
            raise StorageError(f"stripe unit must be positive, got {stripe_unit}")
        self.engine = engine
        self.stripe_unit = stripe_unit
        self.name = name
        self.disks = [Disk(engine, spec, name=f"{name}.d{i}")
                      for i in range(ndisks)]
        self._next = 0

    @property
    def ndisks(self) -> int:
        return len(self.disks)

    def aggregate_bandwidth(self) -> float:
        """Peak sequential bandwidth of the stripe set, B/s."""
        return sum(d.spec.bandwidth for d in self.disks)

    def write(self, nbytes: int) -> Future:
        """Striped write; future resolves when all chunks are durable."""
        if nbytes < 0:
            raise StorageError(f"negative write size {nbytes}")
        if nbytes == 0:
            fut = Future(self.engine, label=f"{self.name}.write0")
            fut.resolve(self.engine.now)
            return fut
        chunk_futures = []
        remaining = nbytes
        while remaining > 0:
            chunk = min(remaining, self.stripe_unit)
            chunk_futures.append(self.disks[self._next].write(chunk))
            self._next = (self._next + 1) % len(self.disks)
            remaining -= chunk
        done = all_of(self.engine, chunk_futures, label=f"{self.name}.write")
        out = Future(self.engine, label=f"{self.name}.write.done")
        done.add_callback(lambda times: out.resolve(max(times)))
        return out

    def bytes_written(self) -> int:
        """Total bytes written across the stripe set."""
        return sum(d.bytes_written for d in self.disks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StorageArray {self.name!r} ndisks={self.ndisks}>"

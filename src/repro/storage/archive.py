"""Checkpoint-store archives: a framed on-disk format plus a paranoid
scanner.

:func:`save_store` serializes a :class:`~repro.storage.CheckpointStore`
-- chains, commit markers, payload arrays, and the integrity metadata
recorded at write time -- into a single framed binary file.
:func:`load_store` reads it back; :func:`scan_store` walks the frames
*defensively* and reports every piece's integrity status without ever
raising on mangled input: a truncated, bit-flipped, or garbage file
yields a report, not a crash.  ``repro ckpt verify`` is a thin CLI
wrapper over the scanner.

Format (all integers little-endian uint32 length prefixes)::

    magic  b"RCKPT1\\n"
    frame  store header JSON  {"nranks", "committed", "pieces"}
    pieces x frame pairs:
        piece header JSON     {"rank", "seq", "kind", "nbytes",
                               "stored_at", "digest", "prev_digest",
                               "base_digest", "payload_len"}
        payload blob          (see _encode_payload; empty when the piece
                               kept no payload object)
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import StorageError
from repro.storage.integrity import piece_digest, verify_chain
from repro.storage.store import CheckpointStore, StoredObject

MAGIC = b"RCKPT1\n"
_LEN = struct.Struct("<I")
#: refuse absurd length prefixes instead of trying to allocate them
MAX_FRAME = 1 << 31


# -- payload codec ----------------------------------------------------------


def _encode_payload(payload) -> bytes:
    """Checkpoint object -> canonical bytes (JSON meta + raw arrays)."""
    if payload is None:
        return b""
    dcp = payload.kind == "dcp"

    def _bytes_of(p):
        return p.block_bytes if dcp else p.page_bytes

    meta = {
        "seq": payload.seq, "kind": payload.kind,
        "taken_at": payload.taken_at, "page_size": payload.page_size,
        "geometry": [[r.sid, r.kind, r.base, r.npages]
                     for r in payload.geometry],
        "payloads": [[p.sid, int(len(p.indices)), _bytes_of(p) is not None]
                     for p in payload.payloads],
    }
    if dcp:
        # only dcp pieces carry the key, so page-mode archives stay
        # byte-identical to the pre-dcp format
        meta["block_size"] = payload.block_size
    parts = [_frame(json.dumps(meta, sort_keys=True).encode())]
    for p in payload.payloads:
        parts.append(np.ascontiguousarray(p.indices,
                                          dtype=np.int64).tobytes())
        parts.append(np.ascontiguousarray(p.versions,
                                          dtype=np.uint64).tobytes())
        if _bytes_of(p) is not None:
            parts.append(np.ascontiguousarray(_bytes_of(p),
                                              dtype=np.uint8).tobytes())
    return b"".join(parts)


def _decode_payload(blob: bytes):
    """Bytes -> Checkpoint; raises StorageError on any malformation."""
    from repro.checkpoint.snapshot import (Checkpoint, BlockPayload,
                                           PagePayload, SegmentRecord)
    if not blob:
        return None
    meta_raw, offset = _read_frame(blob, 0, what="payload meta")
    try:
        meta = json.loads(meta_raw)
        geometry = tuple(SegmentRecord(sid=s, kind=k, base=b, npages=n)
                         for s, k, b, n in meta["geometry"])
        page_size = int(meta["page_size"])
        dcp = meta["kind"] == "dcp"
        block_size = int(meta["block_size"]) if dcp else None
        payloads = []
        for sid, nunits, has_bytes in meta["payloads"]:
            nunits = int(nunits)
            indices, offset = _take_array(blob, offset, nunits, np.int64)
            versions, offset = _take_array(blob, offset, nunits, np.uint64)
            unit_bytes = None
            if has_bytes:
                width = block_size if dcp else page_size
                flat, offset = _take_array(blob, offset,
                                           nunits * width, np.uint8)
                unit_bytes = flat.reshape(nunits, width)
            if dcp:
                payloads.append(BlockPayload(sid=int(sid), indices=indices,
                                             versions=versions,
                                             block_bytes=unit_bytes))
            else:
                payloads.append(PagePayload(sid=int(sid), indices=indices,
                                            versions=versions,
                                            page_bytes=unit_bytes))
        return Checkpoint(seq=int(meta["seq"]), kind=meta["kind"],
                          taken_at=float(meta["taken_at"]),
                          page_size=page_size, geometry=geometry,
                          payloads=tuple(payloads), block_size=block_size)
    except StorageError:
        raise
    except Exception as exc:
        raise StorageError(f"malformed payload blob: {exc}") from exc


def _take_array(blob: bytes, offset: int, count: int, dtype):
    nbytes = count * np.dtype(dtype).itemsize
    if nbytes < 0 or offset + nbytes > len(blob):
        raise StorageError("payload blob ends mid-array")
    arr = np.frombuffer(blob, dtype=dtype, count=count,
                        offset=offset).copy()
    return arr, offset + nbytes


# -- framing ----------------------------------------------------------------


def _frame(data: bytes) -> bytes:
    return _LEN.pack(len(data)) + data


def _read_frame(data: bytes, offset: int, *, what: str) -> tuple[bytes, int]:
    if offset + _LEN.size > len(data):
        raise StorageError(f"file ends mid-{what} length")
    (length,) = _LEN.unpack_from(data, offset)
    offset += _LEN.size
    if length > MAX_FRAME or offset + length > len(data):
        raise StorageError(f"file ends mid-{what} ({length} byte(s) claimed)")
    return data[offset:offset + length], offset + length


# -- save / load ------------------------------------------------------------


def save_store(store: CheckpointStore, path: Union[str, Path]) -> Path:
    """Write the store -- chains, commits, payloads, digests -- to one
    framed binary file.  Returns the path written."""
    path = Path(path)
    pieces = [obj for rank in range(store.nranks)
              for obj in store.pieces(rank)]
    header = {"nranks": store.nranks,
              "committed": store.committed_sequences(),
              "pieces": len(pieces)}
    parts = [MAGIC, _frame(json.dumps(header, sort_keys=True).encode())]
    for obj in pieces:
        blob = _encode_payload(obj.payload)
        meta = {"rank": obj.rank, "seq": obj.seq, "kind": obj.kind,
                "nbytes": obj.nbytes, "stored_at": obj.stored_at,
                "digest": obj.digest, "prev_digest": obj.prev_digest,
                "base_digest": obj.base_digest, "payload_len": len(blob)}
        parts.append(_frame(json.dumps(meta, sort_keys=True).encode()))
        parts.append(blob)
    path.write_bytes(b"".join(parts))
    return path


def load_store(path: Union[str, Path]) -> CheckpointStore:
    """Read an archive back into a live store.  The integrity metadata
    is restored *as recorded* (not recomputed), so corruption that crept
    into the file is still detectable afterwards through
    :meth:`~repro.storage.CheckpointStore.verify_chain`.  Raises
    :class:`~repro.errors.StorageError` on a structurally unreadable
    file; content corruption loads fine and fails verification instead.
    """
    report = scan_store(path)
    if report.error is not None:
        raise StorageError(f"cannot load {path}: {report.error}")
    store = CheckpointStore(report.nranks)
    for piece in report.pieces:
        if piece.object is None:
            raise StorageError(
                f"cannot load {path}: piece {piece.label} is {piece.status}")
        chain = store._chains[piece.object.rank]
        chain.append(piece.object)
    store._committed = list(report.committed)
    return store


# -- scanning ---------------------------------------------------------------


@dataclass(frozen=True)
class PieceScan:
    """Scan outcome for one archived piece."""

    index: int
    #: "ok", "corrupt" (digest mismatch), "unreadable" (bad meta or
    #: payload), or "truncated" (file ended inside the frame)
    status: str
    rank: Optional[int] = None
    seq: Optional[int] = None
    kind: Optional[str] = None
    detail: str = ""
    object: Optional[StoredObject] = field(default=None, repr=False,
                                           compare=False)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def label(self) -> str:
        if self.rank is None:
            return f"#{self.index}"
        return f"rank {self.rank} seq {self.seq}"


@dataclass(frozen=True)
class StoreScanReport:
    """Everything one defensive pass over an archive found."""

    path: str
    nranks: int = 0
    committed: tuple[int, ...] = ()
    pieces: tuple[PieceScan, ...] = ()
    #: chain-level verification failures (drops/links), by rank summary
    chain_problems: tuple[str, ...] = ()
    #: file-level failure (bad magic, unreadable header); None when the
    #: frames themselves could be walked
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return (self.error is None and all(p.ok for p in self.pieces)
                and not self.chain_problems)

    @property
    def n_corrupt(self) -> int:
        return sum(1 for p in self.pieces if not p.ok)

    def render(self) -> str:
        """The ``repro ckpt verify`` report text."""
        if self.error is not None:
            return f"{self.path}: UNREADABLE: {self.error}"
        lines = [f"{self.path}: {len(self.pieces)} piece(s), "
                 f"{self.nranks} rank(s), "
                 f"{len(self.committed)} committed sequence(s)"]
        for p in self.pieces:
            if p.ok:
                continue
            detail = f" ({p.detail})" if p.detail else ""
            lines.append(f"  {p.label}: {p.status.upper()}{detail}")
        lines.extend(f"  {problem}" for problem in self.chain_problems)
        lines.append("OK: every piece verified and every chain is intact"
                     if self.ok else
                     f"CORRUPT: {self.n_corrupt} bad piece(s), "
                     f"{len(self.chain_problems)} broken chain(s)")
        return "\n".join(lines)


def scan_store(path: Union[str, Path]) -> StoreScanReport:
    """Walk an archive defensively and verify every piece and chain.

    Never raises on mangled *content*: truncation anywhere, flipped
    header bytes, or garbage payloads all come back as statuses in the
    report.  Only a genuinely unreadable filesystem path raises OSError.
    """
    path = Path(path)
    data = path.read_bytes()
    if not data.startswith(MAGIC):
        return StoreScanReport(path=str(path), error="bad magic")
    offset = len(MAGIC)
    try:
        header_raw, offset = _read_frame(data, offset, what="store header")
        header = json.loads(header_raw)
        nranks = int(header["nranks"])
        committed = tuple(int(s) for s in header["committed"])
        npieces = int(header["pieces"])
        if nranks < 1 or npieces < 0:
            raise StorageError("nonsense store header counts")
    except (StorageError, ValueError, KeyError, TypeError) as exc:
        return StoreScanReport(path=str(path),
                               error=f"unreadable store header: {exc}")

    pieces: list[PieceScan] = []
    chains: dict[int, list[StoredObject]] = {}
    for index in range(npieces):
        try:
            meta_raw, offset = _read_frame(data, offset, what="piece header")
        except StorageError as exc:
            pieces.append(PieceScan(index=index, status="truncated",
                                    detail=str(exc)))
            break
        try:
            meta = json.loads(meta_raw)
            rank, seq = int(meta["rank"]), int(meta["seq"])
            kind = str(meta["kind"])
            nbytes = int(meta["nbytes"])
            payload_len = int(meta["payload_len"])
            if payload_len < 0 or nbytes < 0:
                raise ValueError("negative length")
        except (ValueError, KeyError, TypeError) as exc:
            pieces.append(PieceScan(index=index, status="unreadable",
                                    detail=f"bad piece header: {exc}"))
            break
        if offset + payload_len > len(data):
            pieces.append(PieceScan(index=index, status="truncated",
                                    rank=rank, seq=seq, kind=kind,
                                    detail="file ends inside the payload"))
            break
        blob = data[offset:offset + payload_len]
        offset += payload_len
        try:
            payload = _decode_payload(blob)
        except StorageError as exc:
            pieces.append(PieceScan(index=index, status="unreadable",
                                    rank=rank, seq=seq, kind=kind,
                                    detail=str(exc)))
            continue
        obj = StoredObject(rank=rank, seq=seq, kind=kind, nbytes=nbytes,
                           payload=payload,
                           stored_at=float(meta.get("stored_at", 0.0)),
                           digest=meta.get("digest"),
                           prev_digest=meta.get("prev_digest"),
                           base_digest=meta.get("base_digest"))
        recomputed = piece_digest(rank, seq, kind, nbytes, payload)
        if obj.digest is None or recomputed != obj.digest:
            pieces.append(PieceScan(index=index, status="corrupt",
                                    rank=rank, seq=seq, kind=kind,
                                    detail="digest mismatch", object=obj))
        else:
            pieces.append(PieceScan(index=index, status="ok", rank=rank,
                                    seq=seq, kind=kind, object=obj))
        if 0 <= rank < nranks:
            chains.setdefault(rank, []).append(obj)

    chain_problems: list[str] = []
    target = committed[-1] if committed else None
    # committed sequences promise a verifiable chain for EVERY rank, so
    # ranks whose pieces were lost entirely must be checked too
    check = (range(nranks) if target is not None else sorted(chains))
    for rank in check:
        chain = [o for o in chains.get(rank, ())
                 if target is None or o.seq <= target]
        last_full = max((i for i, o in enumerate(chain)
                         if o.kind == "full"), default=None)
        chain = [] if last_full is None else chain[last_full:]
        outcome = verify_chain(rank, chain, target_seq=target,
                               require_seq=target)
        if not outcome.intact:
            chain_problems.append(outcome.summary())
    return StoreScanReport(path=str(path), nranks=nranks,
                           committed=committed, pieces=tuple(pieces),
                           chain_problems=tuple(chain_problems))

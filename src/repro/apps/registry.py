"""Registry of the paper's nine application configurations."""

from __future__ import annotations

from typing import Callable, Optional

from repro.apps.base import ScientificApplication
from repro.apps.nas import bt_spec, ft_spec, lu_spec, sp_spec
from repro.apps.sage import sage_spec
from repro.apps.spec import WorkloadSpec
from repro.apps.sweep3d import sweep3d_spec
from repro.errors import ConfigurationError
from repro.mem import Layout

#: name -> spec factory, in the order the paper's tables list them
PAPER_APPS: dict[str, Callable[[], WorkloadSpec]] = {
    "sage-1000MB": lambda: sage_spec(1000),
    "sage-500MB": lambda: sage_spec(500),
    "sage-100MB": lambda: sage_spec(100),
    "sage-50MB": lambda: sage_spec(50),
    "sweep3d": sweep3d_spec,
    "sp": sp_spec,
    "lu": lu_spec,
    "bt": bt_spec,
    "ft": ft_spec,
}


def paper_spec(name: str) -> WorkloadSpec:
    """The calibrated spec for one of the paper's applications."""
    try:
        return PAPER_APPS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown application {name!r}; have {sorted(PAPER_APPS)}") from None


def default_run_duration(spec: WorkloadSpec) -> float:
    """A run long enough to observe several main iterations: at least
    three periods, at least 30 s (matching the paper's methodology of
    averaging over many timeslices)."""
    return max(3.5 * spec.iteration_period, 30.0)


def build_app(name: str, *, run_duration: Optional[float] = None,
              n_iterations: Optional[int] = None,
              charge_overhead: bool = False,
              layout: Optional[Layout] = None) -> ScientificApplication:
    """Construct a ready-to-launch application by paper name."""
    spec = paper_spec(name)
    if run_duration is None and n_iterations is None:
        run_duration = default_run_duration(spec)
    return ScientificApplication(spec, run_duration=run_duration,
                                 n_iterations=n_iterations,
                                 charge_overhead=charge_overhead,
                                 layout=layout)

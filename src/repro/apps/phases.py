"""Workload phases: the building blocks of an application iteration.

The paper observes that scientific codes alternate *processing bursts*
(writes sweeping the working set) and *communication bursts* (message
exchange), with idle/read-dominated gaps between.  Each phase type here
reproduces one of those behaviours against the simulated process:

- :class:`ComputePhase` -- a cyclic sweep of page writes over a region,
  spread uniformly over the phase duration and **sliced at checkpoint
  timeslice boundaries** so dirty pages land in the correct timeslice
  (the EINTR-style interaction with the instrumentation alarm);
- :class:`HaloExchangePhase` / :class:`AlltoallPhase` -- neighbour and
  transpose communication, whose received data lands in (and re-dirties)
  receive buffers;
- :class:`AllocPhase` / :class:`FreePhase` -- Sage-style transient
  allocations (mmap'ed under the F90 allocator, so freeing them lets the
  memory-exclusion optimization drop their dirty pages);
- :class:`BarrierPhase` -- the per-iteration global synchronization /
  convergence reduction;
- :class:`IdlePhase` -- read-dominated gaps (no page writes).

If the instrumentation charges overhead (``charge_overhead``), compute
phases stretch their wall-clock by the fault-handling time accrued while
they ran -- the source of the intrusiveness numbers in section 6.5.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import ConfigurationError
from repro.apps.regions import Region
from repro.sim import Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import AppRunContext

#: never let an engine step underflow to zero (floating-point guard)
_MIN_STEP = 1e-9

#: simulated call-frame depths (bytes) per phase type; deep solver call
#: chains use the most.  Totals stay well under the 42 KB the paper
#: measured -- the justification for leaving the stack untracked.
_STACK_COMPUTE = 24 * 1024
_STACK_COMM = 8 * 1024
_STACK_ALLOC = 6 * 1024


def sweep(rc: "AppRunContext", region: Region, duration: float,
          passes: float, start_visit: int = 0) -> Generator:
    """Write ``passes`` cyclic passes over ``region`` spread uniformly
    across ``duration`` seconds, stopping at every timeslice boundary.

    ``start_visit`` lets a sweep continue where a previous one stopped
    (sub-burst structure: Sweep3D's octants, BT's x/y/z passes), so a
    split burst covers exactly the same pages as a single one.  The
    generator's return value is the visit index after the sweep.

    This is the shared engine of compute and initialization phases.
    """
    if duration <= 0:
        raise ConfigurationError(f"sweep duration must be positive: {duration}")
    visits_total = max(1, round(passes * region.npages))
    proc = rc.process
    elapsed = 0.0
    visits_done = 0
    while elapsed < duration - 1e-12:
        now = rc.engine.now
        dt = duration - elapsed
        next_alarm = proc.next_timer_expiry()
        if next_alarm is not None and next_alarm - now < dt:
            dt = max(next_alarm - now, _MIN_STEP)
        frac = min(1.0, (elapsed + dt) / duration)
        visits_end = min(visits_total, round(visits_total * frac))
        overhead_before = proc.overhead_time
        region.touch_visits(rc.memory, start_visit + visits_done,
                            start_visit + visits_end)
        visits_done = visits_end
        overhead = proc.overhead_time - overhead_before
        stretch = overhead if rc.charge_overhead else 0.0
        yield Timeout(dt + stretch)
        elapsed += dt
    return start_visit + visits_total


def pad_until(rc: "AppRunContext", target_time: float) -> Generator:
    """Sleep until the absolute time ``target_time`` (no-op if past)."""
    gap = target_time - rc.engine.now
    if gap > 0:
        yield Timeout(gap)


class Phase:
    """Base class; subclasses implement ``run(rc)`` as a generator."""

    label = "phase"

    def run(self, rc: "AppRunContext") -> Generator:
        """Execute the phase against the run context (a generator)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.label!r}>"


class ComputePhase(Phase):
    """A processing burst: cyclic page-write sweep over a named region.

    With ``use_cursor`` the sweep resumes at the visit index the previous
    cursor-using phase over the same region stopped at (stored in the run
    context), so a burst split into sub-sweeps -- Sweep3D's eight
    octants, BT's three directional passes -- covers exactly the pages a
    single contiguous sweep would.
    """

    def __init__(self, region_name: str, duration: float, passes: float,
                 label: str = "", use_cursor: bool = False):
        if passes <= 0:
            raise ConfigurationError(f"passes must be positive: {passes}")
        self.region_name = region_name
        self.duration = duration
        self.passes = passes
        self.use_cursor = use_cursor
        self.label = label or f"compute:{region_name}"

    def run(self, rc: "AppRunContext") -> Generator:
        rc.use_stack(_STACK_COMPUTE)
        region = rc.region(self.region_name)
        start = (rc.sweep_cursors.get(self.region_name, 0)
                 if self.use_cursor else 0)
        end = yield from sweep(rc, region, self.duration, self.passes,
                               start_visit=start)
        if self.use_cursor:
            rc.sweep_cursors[self.region_name] = end % region.npages


class IdlePhase(Phase):
    """A read-dominated gap: time passes, nothing is written."""

    def __init__(self, duration: float, label: str = "idle"):
        if duration < 0:
            raise ConfigurationError(f"negative idle duration {duration}")
        self.duration = duration
        self.label = label

    def run(self, rc: "AppRunContext") -> Generator:
        if self.duration > 0:
            yield Timeout(self.duration)


class HaloExchangePhase(Phase):
    """A communication burst: ``rounds`` neighbour exchanges spread over
    ``duration``, received data deposited into the receive-buffer region.

    ``recv_offset`` places the deposits at a byte offset within the
    buffer, so the sub-exchanges of a pipelined iteration (one per
    octant/directional sweep) fill *distinct* parts of it -- together
    they dirty the same buffer pages one monolithic exchange would.
    """

    def __init__(self, nbytes_total: int, duration: float, rounds: int = 1,
                 recv_region: str = "recvbuf", recv_offset: int = 0,
                 label: str = "halo"):
        if nbytes_total < 0 or rounds < 1 or duration < 0 or recv_offset < 0:
            raise ConfigurationError("bad halo-exchange parameters")
        self.nbytes_total = nbytes_total
        self.duration = duration
        self.rounds = rounds
        self.recv_region = recv_region
        self.recv_offset = recv_offset
        self.label = label

    def run(self, rc: "AppRunContext") -> Generator:
        rc.use_stack(_STACK_COMM)
        start = rc.engine.now
        neighbors = rc.neighbors
        if neighbors and rc.size > 1:
            per_round = self.nbytes_total // self.rounds
            per_neighbor = per_round // len(neighbors)
            region = rc.region(self.recv_region) if per_neighbor else None
            for r in range(self.rounds):
                tag = rc.next_tag()
                rc.comm.send_many(neighbors, per_neighbor, tag)
                offset = self.recv_offset
                for nb in neighbors:
                    addr = None
                    if region is not None and per_neighbor > 0:
                        if offset + per_neighbor > region.nbytes:
                            offset = 0  # wrap within the buffer
                        addr = region.base_addr() + offset
                        offset += per_neighbor
                    yield rc.comm.recv(source=nb, tag=tag, addr=addr,
                                       size=per_neighbor)
                yield from pad_until(
                    rc, start + (r + 1) * self.duration / self.rounds)
        yield from pad_until(rc, start + self.duration)


class AlltoallPhase(Phase):
    """A transpose-style exchange (the FT pattern): every rank sends
    ``nbytes_total / (size - 1)`` to every peer; arrivals land in the
    receive-buffer region."""

    def __init__(self, nbytes_total: int, duration: float,
                 recv_region: str = "recvbuf", label: str = "alltoall"):
        if nbytes_total < 0 or duration < 0:
            raise ConfigurationError("bad alltoall parameters")
        self.nbytes_total = nbytes_total
        self.duration = duration
        self.recv_region = recv_region
        self.label = label

    def run(self, rc: "AppRunContext") -> Generator:
        rc.use_stack(_STACK_COMM)
        start = rc.engine.now
        n = rc.size
        if n > 1 and self.nbytes_total > 0:
            per_peer = self.nbytes_total // (n - 1)
            region = rc.region(self.recv_region)
            if region.nbytes < per_peer * (n - 1):
                raise ConfigurationError(
                    f"receive region {region.name!r} ({region.nbytes} B) too "
                    f"small for alltoall of {per_peer * (n - 1)} B")
            yield from rc.comm.alltoall([None] * n, nbytes_each=per_peer,
                                        addr=region.base_addr())
        yield from pad_until(rc, start + self.duration)


class AllocPhase(Phase):
    """Allocate transient blocks and initialize (write) them.

    Under the F90 allocator large temporaries are mmap'ed; their pages
    are dirtied by the initializing sweep and disappear from the IWS the
    moment :class:`FreePhase` unmaps them (memory exclusion, section 4.2).
    """

    def __init__(self, name: str, nbytes: int, duration: float,
                 nblocks: int = 4, label: str = ""):
        if nbytes <= 0 or nblocks < 1 or duration <= 0:
            raise ConfigurationError("bad allocation parameters")
        self.name = name
        self.nbytes = nbytes
        self.nblocks = nblocks
        self.duration = duration
        self.label = label or f"alloc:{name}"

    def run(self, rc: "AppRunContext") -> Generator:
        rc.use_stack(_STACK_ALLOC)
        per_block = -(-self.nbytes // self.nblocks)
        # the malloc + page-table growth here is real *host* work inside
        # a generator-resume event; the profiler section splits it out of
        # process.resume so allocation churn shows up under its own name
        profiler = rc.engine.obs.profiler
        if profiler is None:
            blocks, region = self._materialize(rc, per_block)
        else:
            with profiler.section("app.region_alloc", rank=rc.rank):
                blocks, region = self._materialize(rc, per_block)
        rc.blocks[self.name] = blocks
        yield from sweep(rc, region, self.duration, passes=1.0)

    def _materialize(self, rc: "AppRunContext", per_block: int):
        """Allocate the blocks and the Region view over them, reusing the
        cached Region when the address-space arena returned the same
        segments at the same addresses as last iteration (the steady
        state after iteration one)."""
        blocks = [rc.allocator.malloc(per_block)
                  for _ in range(self.nblocks)]
        geometry = [(b.segment, b.addr, b.size) for b in blocks]
        cached = rc.region_cache.get(self.name)
        if cached is not None and cached[0] == geometry:
            return blocks, cached[1]
        region = Region.from_blocks(self.name, rc.memory, blocks)
        rc.region_cache[self.name] = (geometry, region)
        return blocks, region


class FreePhase(Phase):
    """Release the blocks created by the matching :class:`AllocPhase`."""

    def __init__(self, name: str, label: str = ""):
        self.name = name
        self.label = label or f"free:{name}"

    def run(self, rc: "AppRunContext") -> Generator:
        blocks = rc.blocks.pop(self.name, None)
        if blocks is None:
            raise ConfigurationError(
                f"free of unknown transient allocation {self.name!r}")
        profiler = rc.engine.obs.profiler
        if profiler is None:
            for block in blocks:
                rc.allocator.free(block)
        else:
            with profiler.section("app.region_free", rank=rc.rank):
                for block in blocks:
                    rc.allocator.free(block)
        yield from ()


class BarrierPhase(Phase):
    """Global synchronization, optionally with a convergence allreduce.

    The reduction's latency grows with log2(size): the reason weak-scaled
    iterations stretch slightly at larger processor counts (Fig 5).
    """

    def __init__(self, reduction: bool = True, label: str = "barrier"):
        self.reduction = reduction
        self.label = label

    def run(self, rc: "AppRunContext") -> Generator:
        if self.reduction:
            yield from rc.comm.allreduce(0.0, nbytes=8)
        else:
            yield from rc.comm.barrier()

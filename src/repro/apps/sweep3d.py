"""Sweep3D: the discrete-ordinates neutron-transport kernel.

Sweep3D performs wavefront (KBA) sweeps of a 3-D grid across eight
octants per iteration, statically allocated Fortran77 style.  The paper
runs a 1000x1000x50 grid: 105.5 MB per process, a 7 s main iteration,
and -- being compute-dominated with small pipelined halo messages -- an
IB profile whose maximum (79.1 MB/s) is close to sweep rate and whose
average (49.5 MB/s) reflects the duty cycle of the sweeps.
"""

from __future__ import annotations

from repro.apps.spec import WorkloadSpec
from repro.proc.allocator import AllocStyle

#: Paper reference values (Tables 2-4).
_FOOTPRINT_MB = 105.5
_PERIOD_S = 7.0
_OVERWRITTEN = 0.52
_AVG_IB = 49.5
_MAX_IB = 79.1
_COMM_MB = 2.0


def sweep3d_spec() -> WorkloadSpec:
    """The calibrated Sweep3D model (1000x1000x50 grid points)."""
    main_mb = _MAX_IB                      # peak-slice working set
    passes = (_AVG_IB * _PERIOD_S - _COMM_MB) / main_mb
    comm_fraction = 0.2
    # with the octant sweeps interleaved by pipelined exchanges, a peak
    # timeslice holds sweep time in proportion burst/(burst+comm); the
    # burst fraction is chosen so that window still carries the paper's
    # maximum IB:  V / (T * (f_burst + f_comm)) = max_ib
    burst_fraction = _AVG_IB / _MAX_IB - comm_fraction
    return WorkloadSpec(
        name="sweep3d",
        footprint_mb=_FOOTPRINT_MB,
        main_region_mb=main_mb,
        iteration_period=_PERIOD_S,
        passes=passes,
        burst_fraction=burst_fraction,
        comm_mb_per_iteration=_COMM_MB,
        comm_fraction=comm_fraction,
        comm_rounds=8,                     # one exchange per octant sweep
        comm_pattern="grid2d",
        sub_bursts=8,                      # the eight octant sweeps
        alloc_style=AllocStyle.F77,
        main_allocation="static",
        init_write_rate_mb=250.0,
        global_reduction=True,
        paper_avg_ib_1s=_AVG_IB,
        paper_max_ib_1s=_MAX_IB,
        paper_overwritten=_OVERWRITTEN,
        paper_footprint_max_mb=_FOOTPRINT_MB,
        paper_footprint_avg_mb=_FOOTPRINT_MB,
    )

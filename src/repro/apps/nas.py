"""The NAS Parallel Benchmarks used in the paper: BT, SP, LU, FT (class C).

These Fortran77 codes allocate statically and iterate fast -- periods of
0.16 s (SP) to 1.2 s (FT), all at or below the shortest checkpoint
timeslice.  Consequences the models reproduce:

- a 1 s timeslice spans one or more whole iterations, so the IWS per
  slice is the per-iteration *unique* working set (plus receive
  buffers), and the maximum and average IB coincide (Table 4, and the
  flat max≈avg curves of Fig 2c-f);
- BT rewrites almost its whole image each iteration (92 % overwritten),
  LU has both the smallest footprint and the smallest working set;
- FT is communication-heavy: each iteration transposes the 3-D array
  with an all-to-all, so a large slice of its IWS is *received* data
  deposited into transpose buffers -- the reason its measured IB
  (92.1 MB/s) exceeds what its compute sweep alone would dirty.
"""

from __future__ import annotations

from repro.apps.spec import WorkloadSpec
from repro.errors import ConfigurationError
from repro.proc.allocator import AllocStyle

#: Paper reference values per benchmark (class C):
#: (footprint MB, period s, fraction overwritten, avg IB, max IB,
#:  main-region MB, passes, comm MB/iter, comm pattern, sub-bursts)
#: Sub-bursts give each iteration its real internal structure: BT and SP
#: sweep the three spatial directions, LU runs the two SSOR halves, FT
#: does three FFT dimension passes before the transpose.
_NAS_TABLE: dict[str, tuple] = {
    "bt": (76.5, 0.4, 0.92, 68.6, 72.7, 67.0, 1.0, 1.5, "grid2d", 3),
    "sp": (40.1, 0.16, 0.72, 32.6, 32.6, 30.0, 1.0, 2.5, "grid2d", 3),
    "lu": (16.6, 0.7, 0.72, 12.5, 12.5, 11.5, 1.0, 1.0, "grid2d", 2),
    "ft": (118.0, 1.2, 0.57, 92.1, 101.0, 65.0, 1.5, 32.0, "alltoall", 3),
}


def nas_spec(benchmark: str) -> WorkloadSpec:
    """The calibrated model for one NAS benchmark (bt, sp, lu, or ft)."""
    key = benchmark.lower()
    if key not in _NAS_TABLE:
        raise ConfigurationError(
            f"unknown NAS benchmark {benchmark!r}; have {sorted(_NAS_TABLE)}")
    (fp, period, overwritten, avg_ib, max_ib, main_mb, passes, comm_mb,
     pattern, sub_bursts) = _NAS_TABLE[key]
    return WorkloadSpec(
        name=key,
        footprint_mb=fp,
        main_region_mb=main_mb,
        iteration_period=period,
        passes=passes,
        burst_fraction=0.72 if key == "ft" else 0.6,
        comm_mb_per_iteration=comm_mb,
        comm_fraction=0.13 if key == "ft" else 0.2,
        comm_rounds=1,
        comm_pattern=pattern,
        sub_bursts=sub_bursts,
        alloc_style=AllocStyle.F77,
        main_allocation="static",
        init_write_rate_mb=250.0,
        global_reduction=True,
        paper_avg_ib_1s=avg_ib,
        paper_max_ib_1s=max_ib,
        paper_overwritten=overwritten,
        paper_footprint_max_mb=fp,
        paper_footprint_avg_mb=fp,
    )


def bt_spec() -> WorkloadSpec:
    """NAS BT (block tridiagonal solver), class C."""
    return nas_spec("bt")


def sp_spec() -> WorkloadSpec:
    """NAS SP (scalar pentadiagonal solver), class C."""
    return nas_spec("sp")


def lu_spec() -> WorkloadSpec:
    """NAS LU (SSOR solver), class C."""
    return nas_spec("lu")


def ft_spec() -> WorkloadSpec:
    """NAS FT (3-D FFT with all-to-all transposes), class C."""
    return nas_spec("ft")


NAS_BENCHMARKS = tuple(sorted(_NAS_TABLE))

"""Sage: the ASCI hydrodynamics workload (four problem sizes).

Sage (SAIC's Adaptive Grid Eulerian hydrocode) is the paper's flagship
workload: a Fortran90 code that *dynamically* allocates and deallocates
a large part of its data, which is why its measured footprint oscillates
(Table 2's average < maximum) and why its per-iteration temporary
allocations produce the tall IWS spikes of Fig 1(a).

Calibration (per problem size, from Tables 2-4):

- the **working-set region** swept by the processing burst is sized to
  the paper's *maximum* IB at a 1 s timeslice, so the peak slice of the
  burst carries exactly that many unique dirty pages;
- **passes** over it are chosen so the total visit volume per iteration
  reproduces the *average* IB (average = volume / period);
- the **burst fraction** is avg/max -- the fraction of the period the
  sweep must occupy for both to hold simultaneously;
- **temporaries** are sized from the footprint oscillation
  (``max - avg = (1 - hold) * temp``) and written in roughly one
  timeslice, reproducing the allocation spike;
- the **communication burst** delivers a few MB per iteration in ~10
  rounds, matching the 2-3.5 MB/timeslice humps of Fig 1(b).
"""

from __future__ import annotations

from repro.apps.spec import WorkloadSpec
from repro.errors import ConfigurationError
from repro.proc.allocator import AllocStyle

#: Paper reference values per Sage configuration:
#: (footprint max MB, footprint avg MB, period s, fraction overwritten,
#:  avg IB MB/s @1s, max IB MB/s @1s, comm MB per iteration)
_SAGE_TABLE: dict[int, tuple] = {
    1000: (954.6, 779.5, 145.0, 0.53, 78.8, 274.9, 30.0),
    500:  (497.3, 407.3,  80.0, 0.54, 49.9, 186.9, 20.0),
    100:  (103.7,  86.9,  38.0, 0.56, 15.0,  42.6,  8.0),
    50:   (55.0,   45.2,  20.0, 0.57,  9.6,  24.9,  5.0),
}

#: slack between the temporaries' hold window and alloc+burst
_HOLD_MARGIN = 0.02


def sage_spec(size_mb: int = 1000) -> WorkloadSpec:
    """The calibrated Sage model for one of the paper's problem sizes
    (50, 100, 500, or 1000 'MB' input decks)."""
    if size_mb not in _SAGE_TABLE:
        raise ConfigurationError(
            f"unknown Sage size {size_mb}; have {sorted(_SAGE_TABLE)}")
    (fp_max, fp_avg, period, overwritten, avg_ib, max_ib,
     comm_mb) = _SAGE_TABLE[size_mb]

    burst_fraction = avg_ib / max_ib
    hold_fraction = burst_fraction + _HOLD_MARGIN
    # footprint oscillation: avg = static + hold * temp, max = static + temp
    temp_mb = (fp_max - fp_avg) / (1.0 - hold_fraction)
    static_mb = fp_max - temp_mb

    main_mb = max_ib                       # peak-slice working set
    passes = (avg_ib * period - temp_mb - comm_mb) / main_mb
    comm_rounds = 10
    return WorkloadSpec(
        name=f"sage-{size_mb}MB",
        footprint_mb=static_mb,
        main_region_mb=main_mb,
        iteration_period=period,
        passes=passes,
        burst_fraction=burst_fraction,
        comm_mb_per_iteration=comm_mb,
        comm_fraction=0.15,
        comm_rounds=comm_rounds,
        comm_pattern="grid2d",
        temp_mb=temp_mb,
        temp_hold_fraction=hold_fraction,
        temp_alloc_duration=temp_mb / max_ib,
        alloc_style=AllocStyle.F90,
        main_allocation="dynamic",
        init_write_rate_mb=250.0,
        global_reduction=True,
        paper_avg_ib_1s=avg_ib,
        paper_max_ib_1s=max_ib,
        paper_overwritten=overwritten,
        paper_footprint_max_mb=fp_max,
        paper_footprint_avg_mb=fp_avg,
    )


SAGE_SIZES = tuple(sorted(_SAGE_TABLE))

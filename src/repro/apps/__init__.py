"""Synthetic scientific workloads calibrated to the paper's applications.

The paper instruments real Fortran/MPI codes -- Sage (four problem
sizes), Sweep3D, and the NAS benchmarks BT, SP, LU, FT.  What the
instrumentation observes is *not* their numerics but their memory and
communication behaviour: which pages are written when, how the footprint
evolves, what arrives off the network.  This package reproduces exactly
that observable behaviour:

- a workload is a sequence of *iterations*, each made of **phases**:
  compute bursts (cyclic sweeps over a working-set region, sliced at
  checkpoint-timeslice boundaries), communication bursts (halo exchange,
  all-to-all transposes, reductions), allocation/free phases (Sage's
  dynamic memory), and idle gaps;
- every workload is calibrated against Tables 2-4: footprint (max and
  average), main-iteration period, fraction of memory overwritten, and
  average/maximum incremental bandwidth at a 1 s timeslice.

Use :func:`~repro.apps.registry.build_app` /
:data:`~repro.apps.registry.PAPER_APPS` to get the paper's nine
configurations, or :class:`~repro.apps.synthetic.SyntheticApp` to define
custom behaviour.
"""

from repro.apps.spec import WorkloadSpec
from repro.apps.regions import Region
from repro.apps.phases import (
    AllocPhase,
    AlltoallPhase,
    BarrierPhase,
    ComputePhase,
    FreePhase,
    HaloExchangePhase,
    IdlePhase,
    Phase,
)
from repro.apps.base import AppRunContext, ScientificApplication
from repro.apps.registry import PAPER_APPS, build_app, paper_spec

__all__ = [
    "AllocPhase",
    "AlltoallPhase",
    "AppRunContext",
    "BarrierPhase",
    "ComputePhase",
    "FreePhase",
    "HaloExchangePhase",
    "IdlePhase",
    "PAPER_APPS",
    "Phase",
    "Region",
    "ScientificApplication",
    "WorkloadSpec",
    "build_app",
    "paper_spec",
]

"""Programmatic calibration validation: simulated versus paper targets.

Every workload spec carries the paper's reference values (Tables 2-4).
:func:`validate_app` runs the instrumented simulation and reports the
relative deviation of each reproduced metric; :func:`validate_all`
sweeps the nine configurations.  The CLI (``python -m repro validate``)
and the test suite both consume this, so calibration drift is caught
mechanically rather than by eyeballing tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.registry import PAPER_APPS
from repro.errors import CalibrationError


@dataclass(frozen=True)
class MetricCheck:
    """One reproduced metric against its paper value."""

    metric: str
    simulated: float
    paper: float

    @property
    def deviation(self) -> float:
        """Relative deviation (0 = exact)."""
        if self.paper == 0:
            return 0.0 if self.simulated == 0 else float("inf")
        return abs(self.simulated - self.paper) / abs(self.paper)

    def as_row(self) -> str:
        """One printable comparison row."""
        return (f"{self.metric:22s} sim={self.simulated:9.2f} "
                f"paper={self.paper:9.2f}  ({self.deviation:6.1%})")


@dataclass(frozen=True)
class CalibrationReport:
    """All checks for one application."""

    app_name: str
    checks: tuple[MetricCheck, ...]

    def worst(self) -> MetricCheck:
        """The check with the largest relative deviation."""
        if not self.checks:
            raise CalibrationError(f"{self.app_name}: no checks ran")
        return max(self.checks, key=lambda c: c.deviation)

    def passed(self, tolerance: float = 0.15) -> bool:
        """True when every metric is within ``tolerance``."""
        return all(c.deviation <= tolerance for c in self.checks)

    def render(self) -> str:
        """All checks as printable rows."""
        lines = [f"--- {self.app_name} ---"]
        lines += ["  " + c.as_row() for c in self.checks]
        return "\n".join(lines)


def validate_app(name: str, *, nranks: int = 2,
                 timeslice: float = 1.0) -> CalibrationReport:
    """Run one application and compare against its paper targets."""
    from repro.cluster.experiment import paper_config, run_experiment

    config = paper_config(name, nranks=nranks, timeslice=timeslice)
    result = run_experiment(config)
    spec = config.spec
    stats = result.ib()
    fp = result.footprint()
    checks = [
        MetricCheck("avg IB @1s (MB/s)", stats.avg_mbps,
                    spec.paper_avg_ib_1s),
        MetricCheck("max IB @1s (MB/s)", stats.max_mbps,
                    spec.paper_max_ib_1s),
        MetricCheck("footprint max (MB)", fp.max_mb,
                    spec.paper_footprint_max_mb),
        MetricCheck("footprint avg (MB)", fp.avg_mb,
                    spec.paper_footprint_avg_mb),
        MetricCheck("iteration period (s)", result.measured_period(),
                    spec.iteration_period),
    ]
    return CalibrationReport(app_name=name, checks=tuple(checks))


def validate_all(*, nranks: int = 2,
                 timeslice: float = 1.0) -> dict[str, CalibrationReport]:
    """Validate every paper application."""
    return {name: validate_app(name, nranks=nranks, timeslice=timeslice)
            for name in PAPER_APPS}


def summarize(reports: dict[str, CalibrationReport],
              tolerance: float = 0.15) -> str:
    """A printable summary with a pass/fail verdict per application."""
    lines = []
    for name, report in reports.items():
        worst = report.worst()
        verdict = "OK " if report.passed(tolerance) else "DRIFT"
        lines.append(f"{verdict} {name:14s} worst: {worst.metric} "
                     f"off by {worst.deviation:.1%}")
    n_ok = sum(r.passed(tolerance) for r in reports.values())
    lines.append(f"{n_ok}/{len(reports)} applications within "
                 f"{tolerance:.0%} of the paper")
    return "\n".join(lines)

"""Workload specifications: the calibration surface of the app models.

A :class:`WorkloadSpec` captures everything the instrumentation can
observe about an application, per process:

- *geometry*: total static footprint, the main working-set region
  rewritten every iteration, receive buffers, transient (Sage-style)
  allocations;
- *rhythm*: iteration period, the fraction of it spent in the processing
  burst and in the communication burst;
- *intensity*: how many cyclic passes over the working set each
  iteration makes (page *visits*; revisits within one timeslice are
  deduplicated by the dirty bit, revisits across timeslices are not --
  which is precisely why the incremental bandwidth falls as the
  timeslice grows);
- *communication*: bytes exchanged per iteration, the exchange pattern,
  and how many rounds spread it across the communication burst.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.proc.allocator import AllocStyle
from repro.units import MiB


@dataclass(frozen=True)
class WorkloadSpec:
    """Per-process behavioural model of one application configuration."""

    name: str
    #: total statically allocated data memory (MB): main region + receive
    #: buffers + read-mostly remainder
    footprint_mb: float
    #: the working-set region rewritten each iteration (MB)
    main_region_mb: float
    #: duration of the main iteration (s)
    iteration_period: float
    #: cyclic passes over the main region per iteration (may be fractional)
    passes: float
    #: fraction of the period occupied by the processing burst
    burst_fraction: float
    #: bytes received per rank per iteration (MB)
    comm_mb_per_iteration: float = 0.0
    #: fraction of the period occupied by the communication burst
    comm_fraction: float = 0.1
    #: exchange rounds the communication burst is split into
    comm_rounds: int = 1
    #: sub-sweeps the processing burst is split into, with a pipelined
    #: exchange after each (Sweep3D: 8 octants; BT/SP: 3 directional
    #: passes; LU: 2 SSOR halves; FT: 3 FFT dimension passes).  The
    #: sub-sweeps continue each other's cursor, so the pages covered per
    #: iteration are identical to a single contiguous burst.
    sub_bursts: int = 1
    #: neighbour pattern: "ring", "grid2d", or "alltoall"
    comm_pattern: str = "ring"
    #: transient allocation per iteration (MB, Sage's temporaries); these
    #: are mmap'ed under the F90 allocator and freed before iteration end
    temp_mb: float = 0.0
    #: fraction of the period the temporaries stay live
    temp_hold_fraction: float = 0.1
    #: how long the allocating/initializing sweep of the temporaries
    #: takes (s); None -> a small default fraction of the period.  Short
    #: durations concentrate the temporary writes into one timeslice --
    #: Sage's per-iteration IWS spike.
    temp_alloc_duration: float | None = None
    #: allocator personality
    alloc_style: AllocStyle = AllocStyle.F77
    #: heap trim threshold override (bytes); None -> the allocator's
    #: glibc-like default.  A very large value models runtimes whose
    #: arena never returns memory to the kernel (so freed pages stay
    #: mapped and keep costing checkpoint bandwidth).
    heap_trim_threshold: int | None = None
    #: how the bulk of the footprint is allocated: "static" (data/BSS,
    #: the Fortran77 codes) or "dynamic" (heap/mmap at startup, Sage)
    main_allocation: str = "static"
    #: initialization write rate (MB/s) -- the paper's startup spike
    init_write_rate_mb: float = 250.0
    #: per-iteration global reduction (convergence test); its latency
    #: grows with log2(ranks), the mechanism behind Fig 5's slight
    #: decrease of per-process IB at larger processor counts
    global_reduction: bool = True

    # -- paper reference values (targets, not inputs to the simulation) ------------
    paper_avg_ib_1s: float = 0.0    #: Table 4 average IB at 1 s (MB/s)
    paper_max_ib_1s: float = 0.0    #: Table 4 maximum IB at 1 s (MB/s)
    paper_overwritten: float = 0.0  #: Table 3 fraction of memory overwritten
    paper_footprint_max_mb: float = 0.0  #: Table 2 maximum footprint
    paper_footprint_avg_mb: float = 0.0  #: Table 2 average footprint

    def __post_init__(self) -> None:
        if self.footprint_mb <= 0:
            raise ConfigurationError(f"{self.name}: footprint must be positive")
        if not (0 < self.main_region_mb <= self.footprint_mb):
            raise ConfigurationError(
                f"{self.name}: main region {self.main_region_mb} MB must fit "
                f"in the footprint {self.footprint_mb} MB")
        if self.iteration_period <= 0:
            raise ConfigurationError(f"{self.name}: period must be positive")
        if self.passes <= 0:
            raise ConfigurationError(f"{self.name}: passes must be positive")
        if not (0 < self.burst_fraction <= 1):
            raise ConfigurationError(f"{self.name}: burst fraction in (0, 1]")
        if not (0 <= self.comm_fraction < 1):
            raise ConfigurationError(f"{self.name}: comm fraction in [0, 1)")
        if self.burst_fraction + self.comm_fraction > 1.0 + 1e-9:
            raise ConfigurationError(
                f"{self.name}: burst + comm fractions exceed the period")
        if self.comm_rounds < 1:
            raise ConfigurationError(f"{self.name}: need at least one comm round")
        if self.sub_bursts < 1:
            raise ConfigurationError(f"{self.name}: need at least one sub-burst")
        if self.comm_pattern not in ("ring", "grid2d", "alltoall"):
            raise ConfigurationError(
                f"{self.name}: unknown comm pattern {self.comm_pattern!r}")
        if self.main_allocation not in ("static", "dynamic"):
            raise ConfigurationError(
                f"{self.name}: main_allocation must be 'static' or 'dynamic'")
        if self.temp_mb < 0 or not (0 <= self.temp_hold_fraction <= 1):
            raise ConfigurationError(f"{self.name}: bad temporary settings")

    # -- derived quantities ---------------------------------------------------------

    @property
    def footprint_bytes(self) -> int:
        return int(self.footprint_mb * MiB)

    @property
    def main_region_bytes(self) -> int:
        return int(self.main_region_mb * MiB)

    @property
    def temp_bytes(self) -> int:
        return int(self.temp_mb * MiB)

    @property
    def comm_bytes_per_iteration(self) -> int:
        return int(self.comm_mb_per_iteration * MiB)

    @property
    def recv_buffer_bytes(self) -> int:
        """Receive-buffer region: one round's worth of incoming data."""
        return -(-self.comm_bytes_per_iteration // self.comm_rounds)

    @property
    def burst_duration(self) -> float:
        return self.burst_fraction * self.iteration_period

    @property
    def comm_duration(self) -> float:
        return self.comm_fraction * self.iteration_period

    @property
    def write_volume_per_iteration_mb(self) -> float:
        """Page-visit volume per iteration (MB), main region only."""
        return self.passes * self.main_region_mb

    @property
    def peak_write_rate_mb(self) -> float:
        """Sweep rate during the processing burst (MB/s of visits) -- the
        expected *maximum* IB at a 1 s timeslice, capped by the region."""
        return min(self.write_volume_per_iteration_mb / self.burst_duration,
                   self.main_region_mb / min(1.0, self.burst_duration))

    @property
    def init_duration(self) -> float:
        """Length of the startup initialization burst (s)."""
        return self.footprint_mb / self.init_write_rate_mb

    def scaled(self, **changes) -> "WorkloadSpec":
        """A copy with some fields replaced (parameter sweeps)."""
        return replace(self, **changes)

"""The generic application engine: spec -> process memory -> iterations.

A :class:`ScientificApplication` turns a :class:`~repro.apps.spec.WorkloadSpec`
into per-rank generator bodies for :class:`~repro.mpi.MPIJob.launch`:

1. *startup* -- allocate the footprint (statically in data/BSS for the
   Fortran77 codes, dynamically via the F90 allocator for Sage) and
   initialize it with a full write sweep: the startup spike visible at
   the left edge of the paper's Fig 1(a);
2. *iterations* -- the phase sequence derived from the spec: transient
   allocation, processing burst, communication burst, global reduction,
   idle remainder.  The iteration period is **emergent**: instrumentation
   overhead stretches compute phases rather than being absorbed by
   padding, which is what makes the section 6.5 intrusiveness
   measurements meaningful.

Weak scaling: the communication burst stretches mildly with log2(size)
(synchronization and exchange overhead), so the iteration period grows
by a few percent from 8 to 64 ranks and the per-process incremental
bandwidth *decreases slightly* -- the Fig 5 observation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.apps.phases import (
    AllocPhase,
    AlltoallPhase,
    BarrierPhase,
    ComputePhase,
    FreePhase,
    HaloExchangePhase,
    IdlePhase,
    Phase,
    pad_until,
    sweep,
)
from repro.apps.regions import Region
from repro.apps.spec import WorkloadSpec
from repro.errors import ConfigurationError
from repro.mem import Layout
from repro.mpi import RankContext
from repro.proc import Allocator, Process
from repro.proc.allocator import AllocStyle
from repro.units import MiB, pages_for

#: fraction of the period spent allocating+writing Sage-style temporaries
_ALLOC_FRACTION = 0.02
#: relative growth of the communication burst per doubling of the rank
#: count (weak-scaling overhead)
_COMM_SCALE_PER_DOUBLING = 0.02


@dataclass
class AppRunContext:
    """Everything one rank's running application carries around."""

    app: "ScientificApplication"
    rank: int
    size: int
    engine: object
    process: Process
    comm: object
    allocator: Allocator
    neighbors: list[int]
    charge_overhead: bool
    regions: dict[str, Region] = field(default_factory=dict)
    blocks: dict[str, list] = field(default_factory=dict)
    #: per-region sweep cursors for cursor-continuing compute phases
    sweep_cursors: dict[str, int] = field(default_factory=dict)
    #: transient-Region cache: name -> (block geometry, Region).  The
    #: address-space arena hands the steady-state AllocPhase the same
    #: segments at the same bases every iteration, so the Region built
    #: over them (a pure host-side view) can be reused instead of
    #: reconstructed; a geometry mismatch falls back to a rebuild.
    region_cache: dict[str, tuple] = field(default_factory=dict)
    iteration_starts: list[float] = field(default_factory=list)
    init_end_time: float = 0.0
    iterations: int = 0
    _tag: int = 0

    @property
    def memory(self):
        return self.process.memory

    def region(self, name: str) -> Region:
        """The named region, or a clear error listing what exists."""
        try:
            return self.regions[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown region {name!r}; have {sorted(self.regions)}") from None

    def next_tag(self) -> int:
        """Monotonic application message tag, identical on every rank
        because all ranks execute the same phase sequence."""
        self._tag += 1
        return self._tag

    def use_stack(self, nbytes: int) -> None:
        """Simulate call-frame usage: write the top ``nbytes`` of the
        stack.  Stack writes never fault (the stack cannot be
        write-protected, section 4.2) and never enter the IWS; they feed
        the high-water measurement the paper reports (< 42 KB)."""
        mem = self.memory
        npages = min(mem.stack.npages,
                     -(-nbytes // mem.page_size))
        if npages > 0:
            lo = mem.stack.npages - npages
            mem.cpu_write_pages(mem.stack, lo, mem.stack.npages)


def neighbor_ranks(rank: int, size: int, pattern: str) -> list[int]:
    """Exchange partners for one rank under the given pattern."""
    if size <= 1:
        return []
    if pattern == "ring":
        out = [(rank - 1) % size, (rank + 1) % size]
    elif pattern == "grid2d":
        px = int(math.sqrt(size))
        while size % px:
            px -= 1
        py = size // px
        x, y = rank % px, rank // px
        out = [((x - 1) % px) + y * px, ((x + 1) % px) + y * px,
               x + ((y - 1) % py) * px, x + ((y + 1) % py) * px]
    elif pattern == "alltoall":
        out = [r for r in range(size) if r != rank]
    else:
        raise ConfigurationError(f"unknown neighbour pattern {pattern!r}")
    seen: list[int] = []
    for r in out:
        if r != rank and r not in seen:
            seen.append(r)
    return seen


class ScientificApplication:
    """Runs a :class:`WorkloadSpec` on the simulated cluster."""

    def __init__(self, spec: WorkloadSpec, *,
                 run_duration: Optional[float] = None,
                 n_iterations: Optional[int] = None,
                 charge_overhead: bool = False,
                 layout: Optional[Layout] = None,
                 phantom_ranks: Optional[frozenset] = None):
        if run_duration is None and n_iterations is None:
            raise ConfigurationError(
                "need run_duration and/or n_iterations to bound the run")
        self.spec = spec
        self.run_duration = run_duration
        self.n_iterations = n_iterations
        self.charge_overhead = charge_overhead
        self.layout = layout or Layout()
        #: ranks owned by another shard in a sharded run: their processes
        #: carry O(1) phantom page state (see PhantomPageTable) while the
        #: event skeleton -- compute timing, MPI, network -- runs in full
        self.phantom_ranks = phantom_ranks or frozenset()
        self._contexts: list[AppRunContext] = []

    # -- process construction -----------------------------------------------------

    def process_factory(self, engine) -> "callable":
        """A factory for :class:`~repro.mpi.MPIJob`'s ``process_factory``."""
        spec = self.spec

        def make(rank: int) -> Process:
            if spec.main_allocation == "static":
                # Fortran77 style: the whole footprint is compile-time
                # data; split it between initialized data and BSS the way
                # a Fortran common block would land.  A few pages of slack
                # absorb the per-region page rounding when regions are
                # carved out of the segments.
                data = spec.footprint_bytes // 4
                bss = (spec.footprint_bytes - data
                       + 4 * self.layout.page_size)
            else:
                # Sage: small static segments, the bulk arrives at run
                # time through the allocator.
                data = 2 * MiB
                bss = 2 * MiB
            return Process(engine, name=f"{spec.name}.r{rank}",
                           layout=self.layout, data_size=data, bss_size=bss,
                           phantom=rank in self.phantom_ranks)

        return make

    # -- body ------------------------------------------------------------------------

    def _build_run_context(self, ctx: RankContext) -> AppRunContext:
        alloc_kwargs = {}
        if self.spec.heap_trim_threshold is not None:
            alloc_kwargs["trim_threshold"] = self.spec.heap_trim_threshold
        rc = AppRunContext(
            app=self, rank=ctx.rank, size=ctx.size, engine=ctx.engine,
            process=ctx.process, comm=ctx.comm,
            allocator=Allocator(ctx.process, style=self.spec.alloc_style,
                                **alloc_kwargs),
            neighbors=neighbor_ranks(ctx.rank, ctx.size,
                                     self.spec.comm_pattern),
            charge_overhead=self.charge_overhead)
        self._contexts.append(rc)
        return rc

    def _iterate(self, rc: AppRunContext) -> Generator:
        """The steady-state loop shared by fresh starts and restarts."""
        while not self._done(rc):
            rc.iteration_starts.append(rc.engine.now)
            for phase in self.iteration_phases(rc):
                yield from phase.run(rc)
            rc.iterations += 1

    def make_body(self):
        """The body factory handed to :meth:`MPIJob.launch`."""

        def body(ctx: RankContext) -> Generator:
            rc = self._build_run_context(ctx)
            yield from self.startup(rc)
            rc.init_end_time = rc.engine.now
            yield from self._iterate(rc)

        self._contexts: list[AppRunContext] = []
        return body

    @property
    def contexts(self) -> list[AppRunContext]:
        """Per-rank run contexts (populated once bodies start)."""
        return self._contexts

    def _done(self, rc: AppRunContext) -> bool:
        if self.n_iterations is not None and rc.iterations >= self.n_iterations:
            return True
        if (self.run_duration is not None
                and rc.engine.now - rc.init_end_time >= self.run_duration):
            return True
        return False

    # -- startup -----------------------------------------------------------------------

    def allocate_regions(self, rc: AppRunContext) -> None:
        """Allocate the footprint and build the named regions (no
        writes).  Deterministic: the same spec always produces the same
        geometry, which is what lets a restart rebuild the address
        layout and then overlay the checkpointed content."""
        spec = self.spec
        main_b = spec.main_region_bytes
        recv_b = max(spec.recv_buffer_bytes, rc.memory.page_size)
        rest_b = max(spec.footprint_bytes - main_b - recv_b, 0)

        if spec.main_allocation == "static":
            self._carve_static_regions(rc, main_b, recv_b, rest_b)
        else:
            self._allocate_dynamic_regions(rc, main_b, recv_b, rest_b)

        whole = Region("whole", [e for name in ("main", "recvbuf", "rest")
                                 if name in rc.regions
                                 for e in rc.regions[name].extents])
        rc.regions["whole"] = whole

    def startup(self, rc: AppRunContext) -> Generator:
        """Allocate the footprint, build the named regions, and run the
        initialization write sweep."""
        self.allocate_regions(rc)
        yield from sweep(rc, rc.regions["whole"], self.spec.init_duration,
                         passes=1.0)
        # ranks start iterating together, like after a startup barrier
        yield from rc.comm.barrier()

    def _carve_static_regions(self, rc: AppRunContext, main_b: int,
                              recv_b: int, rest_b: int) -> None:
        """Lay the regions across the data and BSS segments in order."""
        mem = rc.memory
        ps = mem.page_size
        need = [("main", pages_for(main_b, ps)),
                ("recvbuf", pages_for(recv_b, ps)),
                ("rest", pages_for(rest_b, ps))]
        segs = [(mem.data, mem.data.npages), (mem.bss, mem.bss.npages)]
        total_have = sum(n for _, n in segs)
        total_need = sum(n for _, n in need)
        if total_need > total_have:
            raise ConfigurationError(
                f"{self.spec.name}: static regions need {total_need} pages, "
                f"segments provide {total_have}")
        si, offset = 0, 0
        from repro.apps.regions import Extent
        for name, npages in need:
            if npages == 0:
                continue
            extents = []
            left = npages
            while left > 0:
                seg, seg_pages = segs[si]
                take = min(left, seg_pages - offset)
                if take > 0:
                    extents.append(Extent(seg, offset, offset + take))
                    offset += take
                    left -= take
                if offset >= seg_pages:
                    si += 1
                    offset = 0
            rc.regions[name] = Region(name, extents)

    def _allocate_dynamic_regions(self, rc: AppRunContext, main_b: int,
                                  recv_b: int, rest_b: int) -> None:
        """Sage style: the big arrays come from the allocator (mmap for
        large blocks under F90), in several chunks like real meshes."""
        mem = rc.memory
        for name, nbytes, nblocks in (("main", main_b, 8),
                                      ("recvbuf", recv_b, 1),
                                      ("rest", rest_b, 2)):
            if nbytes <= 0:
                continue
            per = -(-nbytes // nblocks)
            blocks = [rc.allocator.malloc(per) for _ in range(nblocks)]
            rc.blocks[f"_static_{name}"] = blocks
            rc.regions[name] = Region.from_blocks(name, mem, blocks)

    # -- the iteration ----------------------------------------------------------------

    def iteration_phases(self, rc: AppRunContext) -> list[Phase]:
        """Build the phase sequence for one iteration of this workload."""
        spec = self.spec
        period = spec.iteration_period
        phases: list[Phase] = []

        alloc_dur = 0.0
        if spec.temp_bytes > 0:
            alloc_dur = (spec.temp_alloc_duration
                         if spec.temp_alloc_duration is not None
                         else _ALLOC_FRACTION * period)
            phases.append(AllocPhase("temps", spec.temp_bytes, alloc_dur))

        comm_dur = spec.comm_duration * self._comm_scale(rc.size)
        k = spec.sub_bursts
        pipelined = k > 1 and spec.comm_pattern != "alltoall"

        if pipelined:
            # sub-sweep then exchange, k times; the cursor makes the
            # sub-sweeps cover exactly what one contiguous burst would
            per_sub = spec.comm_bytes_per_iteration // k
            for i in range(k):
                phases.append(ComputePhase(
                    "main", spec.burst_duration / k, spec.passes / k,
                    label=f"burst{i + 1}/{k}", use_cursor=True))
                phases.append(HaloExchangePhase(
                    per_sub, comm_dur / k,
                    rounds=max(1, spec.comm_rounds // k),
                    recv_offset=i * per_sub,
                    label=f"halo{i + 1}/{k}"))
        elif k > 1:
            # FT: FFT dimension passes, then one transpose
            for i in range(k):
                phases.append(ComputePhase(
                    "main", spec.burst_duration / k, spec.passes / k,
                    label=f"fft-pass{i + 1}/{k}", use_cursor=True))
        else:
            phases.append(ComputePhase("main", spec.burst_duration,
                                       spec.passes, label="burst"))

        # Sage's temporaries are released right after the burst, before
        # the communication phase -- the hold window the Table 2
        # footprint calibration is built on
        if spec.temp_bytes > 0:
            hold = spec.temp_hold_fraction * period
            extra = hold - alloc_dur - spec.burst_duration
            if extra > 0:
                phases.append(IdlePhase(extra, label="hold-temps"))
            phases.append(FreePhase("temps"))

        if not pipelined:
            if spec.comm_pattern == "alltoall":
                phases.append(AlltoallPhase(spec.comm_bytes_per_iteration,
                                            comm_dur))
            else:
                phases.append(HaloExchangePhase(
                    spec.comm_bytes_per_iteration, comm_dur,
                    rounds=spec.comm_rounds))

        if spec.global_reduction and rc.size > 1:
            phases.append(BarrierPhase(reduction=True))

        used = (alloc_dur + spec.burst_duration + spec.comm_duration
                + (max(0.0, spec.temp_hold_fraction * period - alloc_dur
                       - spec.burst_duration) if spec.temp_bytes > 0 else 0.0))
        idle = period - used
        if idle > 0:
            phases.append(IdlePhase(idle, label="gap"))
        return phases

    @staticmethod
    def _comm_scale(size: int) -> float:
        """Communication-burst stretch under weak scaling."""
        if size <= 1:
            return 1.0
        return 1.0 + _COMM_SCALE_PER_DOUBLING * math.log2(size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ScientificApplication {self.spec.name!r}>"

"""Logical memory regions: the arrays a workload sweeps over.

A :class:`Region` maps a contiguous *logical* page index space onto one
or more physical extents (segment + page range).  Compute phases address
the region by *visit index*; visit ``v`` touches logical page
``v mod N``, so a phase that performs ``passes * N`` visits sweeps the
region cyclically -- re-dirtying pages across timeslices while the dirty
bit deduplicates revisits within one timeslice.  That is the mechanism
behind the paper's declining IB-versus-timeslice curves.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import ConfigurationError
from repro.mem import AddressSpace, Segment
from repro.proc.allocator import Block


@dataclass(frozen=True)
class Extent:
    """A physical piece of a region: pages ``[lo, hi)`` of ``segment``."""

    segment: Segment
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not (0 <= self.lo < self.hi <= self.segment.npages):
            raise ConfigurationError(
                f"extent [{self.lo}, {self.hi}) outside segment "
                f"{self.segment.name!r} of {self.segment.npages} pages")

    @property
    def npages(self) -> int:
        return self.hi - self.lo


class Region:
    """A logical page space backed by physical extents."""

    def __init__(self, name: str, extents: Iterable[Extent]):
        self.name = name
        self.extents = list(extents)
        if not self.extents:
            raise ConfigurationError(f"region {self.name!r} has no extents")
        #: logical start offset of each extent plus a final total -- the
        #: touch path bisects into this instead of walking every extent
        offsets = [0]
        for e in self.extents:
            offsets.append(offsets[-1] + e.npages)
        self._offsets = offsets
        self.npages = offsets[-1]

    # -- constructors ---------------------------------------------------------------

    @classmethod
    def of_segment(cls, name: str, seg: Segment,
                   lo: int = 0, hi: Optional[int] = None) -> "Region":
        return cls(name, [Extent(seg, lo, seg.npages if hi is None else hi)])

    @classmethod
    def from_blocks(cls, name: str, memory: AddressSpace,
                    blocks: Iterable[Block]) -> "Region":
        """Region over allocator blocks (heap or mmap), page-granular:
        each block contributes the pages it covers."""
        extents = []
        for block in blocks:
            seg = memory.find_segment(block.addr)
            if seg is None:
                raise ConfigurationError(
                    f"block at {block.addr:#x} is not mapped")
            lo, hi = seg.page_range(block.addr, block.size)
            extents.append(Extent(seg, lo, hi))
        return cls(name, extents)

    # -- geometry --------------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        return sum(e.npages * e.segment.page_size for e in self.extents)

    def base_addr(self) -> int:
        """Address of the first byte of the first extent (for receives)."""
        e = self.extents[0]
        return e.segment.base + e.lo * e.segment.page_size

    # -- writes ----------------------------------------------------------------------

    def touch_all(self, memory: AddressSpace) -> int:
        """CPU-write every page once; returns faults taken."""
        faults = 0
        write = memory.cpu_write_pages
        for e in self.extents:
            faults += write(e.segment, e.lo, e.hi).faults
        return faults

    def touch_visits(self, memory: AddressSpace, v0: int, v1: int) -> int:
        """CPU-write the pages covered by visit indices ``[v0, v1)``.

        Visits map to logical pages modulo the region size; a span of
        ``>= npages`` visits touches everything.  Returns faults taken.
        """
        if v1 < v0:
            raise ConfigurationError(f"bad visit range [{v0}, {v1})")
        if v1 == v0:
            return 0
        if v1 - v0 >= self.npages:
            return self.touch_all(memory)
        a = v0 % self.npages
        b = a + (v1 - v0)
        if b <= self.npages:
            return self._touch_logical(memory, a, b)
        return (self._touch_logical(memory, a, self.npages)
                + self._touch_logical(memory, 0, b - self.npages))

    def _touch_logical(self, memory: AddressSpace, lo: int, hi: int) -> int:
        """Write logical page range ``[lo, hi)`` (no wrap-around).

        Bisects to the first overlapping extent, then walks only the
        extents the range actually covers -- O(log E + overlap) instead
        of O(E) per touch."""
        faults = 0
        offsets = self._offsets
        extents = self.extents
        write = memory.cpu_write_pages
        i = bisect_right(offsets, lo) - 1
        n = len(extents)
        while i < n:
            off = offsets[i]
            if off >= hi:
                break
            e = extents[i]
            e_lo = lo - off if lo > off else 0
            e_hi = hi - off
            if e_hi > e.npages:
                e_hi = e.npages
            faults += write(e.segment, e.lo + e_lo, e.lo + e_hi).faults
            i += 1
        return faults

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Region {self.name!r} npages={self.npages} extents={len(self.extents)}>"

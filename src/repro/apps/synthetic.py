"""A fully configurable workload for tests and custom experiments.

:class:`SyntheticApp` accepts either a plain :class:`WorkloadSpec` (it
then behaves exactly like the calibrated paper apps, just smaller) or an
explicit per-iteration phase list, which lets tests compose arbitrary
write/communication patterns.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.apps.base import AppRunContext, ScientificApplication
from repro.apps.phases import Phase
from repro.apps.spec import WorkloadSpec
from repro.proc.allocator import AllocStyle


def small_spec(name: str = "tiny", *, footprint_mb: float = 4.0,
               main_mb: float = 2.0, period: float = 2.0,
               passes: float = 1.0, comm_mb: float = 0.25,
               pattern: str = "ring", **overrides) -> WorkloadSpec:
    """A laptop-scale spec with sensible defaults for unit tests."""
    kwargs = dict(
        name=name,
        footprint_mb=footprint_mb,
        main_region_mb=main_mb,
        iteration_period=period,
        passes=passes,
        burst_fraction=0.5,
        comm_mb_per_iteration=comm_mb,
        comm_fraction=0.2,
        comm_rounds=2,
        comm_pattern=pattern,
        alloc_style=AllocStyle.F77,
        main_allocation="static",
        init_write_rate_mb=64.0,
        global_reduction=False,
    )
    kwargs.update(overrides)
    return WorkloadSpec(**kwargs)


class SyntheticApp(ScientificApplication):
    """A :class:`ScientificApplication` with optional custom phases.

    ``phase_factory`` (if given) replaces the spec-derived iteration:
    it is called with the run context and must return the phase list.
    """

    def __init__(self, spec: WorkloadSpec, *,
                 phase_factory: Optional[
                     Callable[[AppRunContext], Sequence[Phase]]] = None,
                 **kwargs):
        super().__init__(spec, **kwargs)
        self.phase_factory = phase_factory

    def iteration_phases(self, rc: AppRunContext) -> list[Phase]:
        if self.phase_factory is not None:
            return list(self.phase_factory(rc))
        return super().iteration_phases(rc)

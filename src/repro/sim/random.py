"""Named, reproducible random-number streams.

Every source of randomness in an experiment (per-rank workload jitter,
failure injection, synthetic page contents) draws from its own named
stream, derived deterministically from a single experiment seed.  This
keeps results reproducible and *independent*: adding a new consumer of
randomness does not perturb the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngStreams:
    """A factory of independent ``numpy.random.Generator`` streams.

    >>> streams = RngStreams(seed=42)
    >>> a = streams.stream("rank0/jitter")
    >>> b = streams.stream("rank1/jitter")

    The same ``(seed, name)`` pair always yields the same stream; streams
    are cached, so repeated calls return the *same generator object*
    (stateful -- draws continue where they left off).
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}\x00{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._cache.get(name)
        if gen is None:
            gen = np.random.default_rng(self._derive(name))
            self._cache[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name`` (not cached), always in
        its initial state.  Useful for replay/verification."""
        return np.random.default_rng(self._derive(name))

    def spawn(self, name: str) -> "RngStreams":
        """A child factory whose streams are independent of the parent's."""
        return RngStreams(self._derive(name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngStreams seed={self.seed} cached={len(self._cache)}>"

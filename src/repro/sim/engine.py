"""The discrete-event engine: a virtual clock plus an ordered event queue.

Events are callbacks scheduled at absolute virtual times.  Ties are broken
first by an integer *priority* (lower fires first), then by insertion
sequence, which makes runs bit-for-bit deterministic.

Priorities matter for one subtle interaction reproduced from the paper:
when a checkpoint-timeslice alarm expires at the same instant an
application process resumes, the alarm handler must run *first* so the
pages written before the boundary are attributed to the finished
timeslice.  Timers therefore use :data:`PRIORITY_TIMER` (0) while process
wake-ups use :data:`PRIORITY_NORMAL` (10).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import ClockError, DeadlockError

#: Priority for timer expiries (alarm signals).  Fires before anything else
#: scheduled at the same instant.
PRIORITY_TIMER: int = 0

#: Default priority for process wake-ups and message deliveries.
PRIORITY_NORMAL: int = 10

#: Priority for bookkeeping that must observe everything else at an instant.
PRIORITY_LATE: int = 100


class Event:
    """A scheduled callback.

    Instances are created through :meth:`Engine.schedule` /
    :meth:`Engine.schedule_at`; cancel with :meth:`cancel`.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, priority: int, seq: int,
                 fn: Callable[..., Any], args: tuple):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    def sort_key(self) -> tuple:
        """The (time, priority, sequence) ordering tuple."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} prio={self.priority} {state} fn={getattr(self.fn, '__name__', self.fn)!r}>"


class Engine:
    """The simulation event loop.

    Typical use::

        eng = Engine()
        eng.schedule(1.0, lambda: print("one second"))
        eng.run(until=10.0)

    Processes (see :mod:`repro.sim.process`) are layered on top of bare
    events.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._live_processes = 0  # maintained by SimProcess

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any,
                    priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ClockError(
                f"cannot schedule event at t={time:.9f}, now is t={self._now:.9f}")
        ev = Event(time, priority, next(self._seq), fn, args)
        heapq.heappush(self._heap, ev)
        return ev

    # -- execution ----------------------------------------------------------

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            ev.fn(*ev.args)
            return True
        return False

    def run(self, until: Optional[float] = None,
            detect_deadlock: bool = False) -> float:
        """Run events until the queue drains or ``until`` is reached.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fired earlier.  With ``detect_deadlock``
        the engine raises :class:`~repro.errors.DeadlockError` if the
        queue drains while simulated processes are still blocked (e.g. an
        MPI receive whose matching send never happens).

        Returns the final virtual time.
        """
        self._running = True
        try:
            while self._heap:
                t = self.peek_time()
                if t is None:
                    break
                if until is not None and t > until:
                    break
                self.step()
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        if detect_deadlock and not self._heap and self._live_processes > 0:
            raise DeadlockError(
                f"event queue drained with {self._live_processes} process(es) still blocked")
        return self._now

    def pending_events(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine now={self._now:.6f} pending={self.pending_events()}>"

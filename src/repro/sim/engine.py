"""The discrete-event engine: a virtual clock plus an ordered event queue.

Events are callbacks scheduled at absolute virtual times.  Ties are broken
first by an integer *priority* (lower fires first), then by insertion
sequence, which makes runs bit-for-bit deterministic.

Priorities matter for one subtle interaction reproduced from the paper:
when a checkpoint-timeslice alarm expires at the same instant an
application process resumes, the alarm handler must run *first* so the
pages written before the boundary are attributed to the finished
timeslice.  Timers therefore use :data:`PRIORITY_TIMER` (0) while process
wake-ups use :data:`PRIORITY_NORMAL` (10).

The queue is a binary heap of ``(time, priority, seq, event)`` tuples:
``seq`` is unique, so comparisons resolve inside the tuple and never call
back into Python-level ``Event`` ordering.  Cancelled events stay in the
heap (lazy deletion) but are counted exactly, and the heap is compacted
in place once cancelled entries outnumber live ones.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import ClockError, DeadlockError
from repro.obs import NULL_OBS
from repro.obs.tracer import ENGINE_DISPATCH

#: Priority for timer expiries (alarm signals).  Fires before anything else
#: scheduled at the same instant.
PRIORITY_TIMER: int = 0

#: Default priority for process wake-ups and message deliveries.
PRIORITY_NORMAL: int = 10

#: Priority for bookkeeping that must observe everything else at an instant.
PRIORITY_LATE: int = 100

#: Compact the heap only past this size (tiny heaps are not worth it).
_COMPACT_MIN: int = 64

#: Default for :class:`Engine`'s ``coalesce_timers``: co-phased interval
#: timers share one queued event per epoch (see
#: :class:`repro.sim.timers.TimerHub`).  The per-timer seed path remains
#: available with ``Engine(coalesce_timers=False)`` and is held to the
#: same event stream by the differential suite.
COALESCE_TIMERS_DEFAULT: bool = True

#: Default for :class:`Engine`'s ``coalesce_wakes`` / ``coalesce_deliveries``:
#: same-instant future wake-ups (resp. same-arrival message deliveries) share
#: one queued event drained in submission order by
#: :meth:`Engine.schedule_coalesced`.  The per-item seed path remains
#: available with ``Engine(coalesce_wakes=False, coalesce_deliveries=False)``
#: and is held to the same simulation by the differential suite.
COALESCE_EVENTS_DEFAULT: bool = True


class Event:
    """A scheduled callback.

    Instances are created through :meth:`Engine.schedule` /
    :meth:`Engine.schedule_at`; cancel with :meth:`cancel`.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled",
                 "_engine")

    def __init__(self, time: float, priority: int, seq: int,
                 fn: Callable[..., Any], args: tuple,
                 engine: "Optional[Engine]" = None):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: owning engine while the event sits in its queue; cleared when
        #: the event is popped so late cancels don't corrupt the counters
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        eng = self._engine
        if eng is not None:
            self._engine = None
            eng._note_cancel()

    def sort_key(self) -> tuple:
        """The (time, priority, sequence) ordering tuple."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} prio={self.priority} {state} fn={getattr(self.fn, '__name__', self.fn)!r}>"


class Engine:
    """The simulation event loop.

    Typical use::

        eng = Engine()
        eng.schedule(1.0, lambda: print("one second"))
        eng.run(until=10.0)

    Processes (see :mod:`repro.sim.process`) are layered on top of bare
    events.
    """

    def __init__(self, start_time: float = 0.0, obs=None,
                 coalesce_timers: Optional[bool] = None,
                 coalesce_wakes: Optional[bool] = None,
                 coalesce_deliveries: Optional[bool] = None):
        self._now = float(start_time)
        #: when True, :class:`~repro.sim.timers.IntervalTimer` expiries
        #: are batched through a :class:`~repro.sim.timers.TimerHub`
        #: (one queued event per co-phased timer group per epoch)
        self.coalesce_timers = (COALESCE_TIMERS_DEFAULT
                                if coalesce_timers is None
                                else bool(coalesce_timers))
        #: lazily created by the first coalesced IntervalTimer
        self.timer_hub = None
        #: when True, same-instant future wake-ups (``coalesce_wakes``) and
        #: same-arrival message deliveries (``coalesce_deliveries``) are
        #: drained through one queued event each (schedule_coalesced)
        self.coalesce_wakes = (COALESCE_EVENTS_DEFAULT
                               if coalesce_wakes is None
                               else bool(coalesce_wakes))
        self.coalesce_deliveries = (COALESCE_EVENTS_DEFAULT
                                    if coalesce_deliveries is None
                                    else bool(coalesce_deliveries))
        #: open coalesced batches: time -> (fn, priority, items, Event).
        #: Conservatively closed by ANY schedule_at at the same time, so a
        #: later join can never leapfrog an interleaved event (see
        #: schedule_coalesced's ordering note).
        self._open_batches: dict[float, tuple] = {}
        #: heap of (time, priority, seq, Event) -- C-level tuple ordering
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        self._stop_requested = False
        self._live_processes = 0  # maintained by SimProcess
        self._n_cancelled = 0     # cancelled entries still in the heap
        #: the observability sink every instrumented component reaches
        #: through its engine; NULL_OBS keeps all call sites one branch
        self.obs = NULL_OBS if obs is None else obs
        #: profiling hooks called with each Event after it fires
        self._event_hooks: list[Callable[[Event], None]] = []
        # a profiler on the obs bundle observes every engine built with
        # it -- including the fault driver's per-life engines
        profiler = self.obs.profiler
        if profiler is not None:
            profiler.attach(self)
        # lifetime stats (reset with reset_stats(), never by run():
        # the fault driver resumes stopped runs and counts must span them)
        self._n_dispatched = 0
        self._n_cancelled_total = 0
        self._n_compactions = 0

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any,
                    priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ClockError(
                f"cannot schedule event at t={time:.9f}, now is t={self._now:.9f}")
        if self._open_batches:
            # conservative closure: any event scheduled at this instant
            # seals an open coalesced batch, so later joins sort after it
            self._open_batches.pop(time, None)
        seq = next(self._seq)
        ev = Event(time, priority, seq, fn, args, engine=self)
        heapq.heappush(self._heap, (time, priority, seq, ev))
        return ev

    def schedule_coalesced(self, time: float, fn: Callable[[Any], Any],
                           item: Any, priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule ``fn(item)`` at ``time``, sharing one queued event with
        every other coalesced call for the same ``(time, fn, priority)``.

        The shared event drains its items in submission order, which is
        exactly the order separate per-item events would have fired in:
        items join a batch only while no other event has been scheduled at
        that instant in between (``schedule_at`` seals open batches), so the
        batch occupies its first item's place in the queue and the whole
        stream of callbacks is unchanged -- there are just fewer heap
        entries.  ``fn`` is compared by identity; callers must pass a stable
        callable (a module-level function or a bound method cached once),
        not a fresh bound method per call.

        The returned Event is the *shared* batch event.  Cancelling it
        cancels every joined item, so callers whose items can be withdrawn
        individually must guard in ``fn`` instead (the way
        :meth:`SimProcess._resume` ignores finished processes).
        """
        batch = self._open_batches.get(time)
        if (batch is not None and batch[0] is fn
                and batch[1] == priority and not batch[3].cancelled):
            batch[2].append(item)
            return batch[3]
        items = [item]
        ev = self.schedule_at(time, self._run_batch, fn, items,
                              priority=priority)
        self._open_batches[time] = (fn, priority, items, ev)
        return ev

    def _run_batch(self, fn: Callable[[Any], Any], items: list) -> None:
        """Drain one coalesced batch.  The batch unregisters itself before
        the first callback runs, so same-instant work scheduled *by* the
        batch opens a fresh event behind the running one (mirroring
        TimerHub._fire_group) instead of appending to a list already being
        drained."""
        batch = self._open_batches.get(self._now)
        if batch is not None and batch[2] is items:
            del self._open_batches[self._now]
        for item in items:
            fn(item)

    # -- cancellation bookkeeping ---------------------------------------------

    def _note_cancel(self) -> None:
        """One queued event was cancelled; compact once the dead outnumber
        the living (and the heap is big enough to care)."""
        self._n_cancelled += 1
        self._n_cancelled_total += 1
        heap = self._heap
        if (self._n_cancelled * 2 > len(heap)
                and len(heap) >= _COMPACT_MIN):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place (``run`` holds
        an alias of the list, so the object identity must survive)."""
        live = [entry for entry in self._heap if not entry[3].cancelled]
        self._heap[:] = live
        heapq.heapify(self._heap)
        self._n_cancelled = 0
        self._n_compactions += 1

    # -- execution ----------------------------------------------------------

    def stop(self) -> None:
        """Ask a running :meth:`run` loop to return after the current
        event.  The queue is left intact, so a later ``run`` resumes from
        exactly the stopped instant -- the seam the fault-injection
        driver uses to regain control at the moment a failure fires."""
        self._stop_requested = True

    @property
    def stopped(self) -> bool:
        """True when the last :meth:`run` returned because of :meth:`stop`."""
        return self._stop_requested

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._n_cancelled -= 1
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            ev = entry[3]
            if ev.cancelled:
                self._n_cancelled -= 1
                continue
            ev._engine = None
            self._now = entry[0]
            self._n_dispatched += 1
            ev.fn(*ev.args)
            if self._event_hooks:
                for hook in self._event_hooks:
                    hook(ev)
            return True
        return False

    def run(self, until: Optional[float] = None,
            detect_deadlock: bool = False) -> float:
        """Run events until the queue drains or ``until`` is reached.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fired earlier.  With ``detect_deadlock``
        the engine raises :class:`~repro.errors.DeadlockError` if the
        queue drains while simulated processes are still blocked (e.g. an
        MPI receive whose matching send never happens).

        Returns the final virtual time.
        """
        # the hot loop: peek and pop are fused, the heap and heapq
        # functions are bound locally.  self._heap is only ever mutated in
        # place (push/pop/compact), so the alias stays valid across
        # callbacks that schedule or cancel.
        heap = self._heap
        heappop = heapq.heappop
        tracer = self.obs.tracer
        trace_dispatch = tracer.enabled and tracer.wants(ENGINE_DISPATCH)
        self._running = True
        self._stop_requested = False
        try:
            while heap:
                entry = heap[0]
                ev = entry[3]
                if ev.cancelled:
                    heappop(heap)
                    self._n_cancelled -= 1
                    continue
                if until is not None and entry[0] > until:
                    break
                heappop(heap)
                ev._engine = None
                self._now = entry[0]
                self._n_dispatched += 1
                ev.fn(*ev.args)
                if trace_dispatch:
                    tracer.instant(
                        getattr(ev.fn, "__qualname__",
                                getattr(ev.fn, "__name__", "event")),
                        ENGINE_DISPATCH, entry[0], track="engine",
                        priority=entry[1])
                if self._event_hooks:
                    for hook in self._event_hooks:
                        hook(ev)
                if self._stop_requested:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stop_requested:
            self._now = until
        if detect_deadlock and not self._heap and self._live_processes > 0:
            raise DeadlockError(
                f"event queue drained with {self._live_processes} process(es) still blocked")
        return self._now

    def pending_events(self) -> int:
        """Number of non-cancelled events still queued (O(1))."""
        return len(self._heap) - self._n_cancelled

    # -- observability ------------------------------------------------------

    def add_event_hook(self, hook: Callable[[Event], None]) -> None:
        """Register a profiling hook called with every fired event.  The
        hot loop pays one truthiness check when no hooks are registered."""
        self._event_hooks.append(hook)

    def remove_event_hook(self, hook: Callable[[Event], None]) -> None:
        """Unregister a hook added with :meth:`add_event_hook`."""
        self._event_hooks.remove(hook)

    def stats(self) -> dict:
        """Lifetime counters of this engine: events dispatched, events
        cancelled, heap compactions, and the live pending count.

        Counters accumulate across :meth:`run` calls -- including the
        ``stop()``/resume seam the fault driver uses -- and are zeroed
        only by :meth:`reset_stats`, so one logical run reports exact
        totals however many times its clock was paused.
        """
        return {
            "dispatched": self._n_dispatched,
            "cancelled": self._n_cancelled_total,
            "compactions": self._n_compactions,
            "pending": self.pending_events(),
        }

    def reset_stats(self) -> None:
        """Zero the lifetime counters (between logical runs that reuse
        one engine).  Heap bookkeeping -- the live cancelled-entry count
        behind :meth:`pending_events` -- is *not* touched: it reflects
        queue state, not history, and resetting it would corrupt
        compaction accounting."""
        self._n_dispatched = 0
        self._n_cancelled_total = 0
        self._n_compactions = 0

    def publish_metrics(self, metrics, prefix: str = "sim.engine") -> None:
        """Snapshot :meth:`stats` into gauges of a
        :class:`~repro.obs.MetricsRegistry`."""
        for name, value in self.stats().items():
            metrics.gauge(f"{prefix}.{name}").set(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine now={self._now:.6f} pending={self.pending_events()}>"

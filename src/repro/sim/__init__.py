"""Deterministic discrete-event simulation engine.

This substrate underpins the whole reproduction: simulated cluster nodes,
MPI ranks, NIC transfers, disks, and the instrumentation library's alarm
all run on one event loop with a single virtual clock.

Public surface:

- :class:`~repro.sim.engine.Engine` -- the event loop and virtual clock.
- :class:`~repro.sim.process.SimProcess` -- generator-based processes.
- :class:`~repro.sim.process.Timeout`, :class:`~repro.sim.process.Future`
  -- the two blocking primitives a process can ``yield``.
- :class:`~repro.sim.timers.IntervalTimer` -- periodic timers (the
  ``setitimer`` model used for checkpoint timeslices).
- :class:`~repro.sim.random.RngStreams` -- named, reproducible RNG streams.

Determinism: events fire in ``(time, priority, sequence)`` order, and all
randomness flows from named streams derived from a single seed, so every
experiment is exactly reproducible.
"""

from repro.sim.engine import Engine, Event, PRIORITY_TIMER, PRIORITY_NORMAL, PRIORITY_LATE
from repro.sim.process import Future, SimProcess, Timeout, all_of
from repro.sim.random import RngStreams
from repro.sim.timers import IntervalTimer, TimerHub

__all__ = [
    "Engine",
    "Event",
    "Future",
    "IntervalTimer",
    "TimerHub",
    "PRIORITY_LATE",
    "PRIORITY_NORMAL",
    "PRIORITY_TIMER",
    "RngStreams",
    "SimProcess",
    "Timeout",
    "all_of",
]

"""Interval timers: the ``setitimer(ITIMER_REAL)`` model.

The paper's instrumentation library arms a periodic alarm; each expiry
(SIGALRM) records the incremental working set, resets the dirty counts and
re-protects the data memory.  :class:`IntervalTimer` reproduces that: a
periodic callback with a queryable *next expiry time*, which the
alarm-sliced compute phases use to stop exactly at timeslice boundaries.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SignalError
from repro.sim.engine import Engine, Event, PRIORITY_TIMER


class IntervalTimer:
    """A periodic timer firing ``handler(expiry_index)`` every ``interval``.

    Expiries run at :data:`~repro.sim.engine.PRIORITY_TIMER`, i.e. before
    any process wake-up scheduled at the same instant -- matching the
    paper's requirement that the alarm samples the dirty pages written
    *before* the boundary.
    """

    def __init__(self, engine: Engine, interval: float,
                 handler: Callable[[int], Any], start_after: Optional[float] = None,
                 name: str = "itimer"):
        if interval <= 0:
            raise SignalError(f"timer interval must be positive, got {interval}")
        self.engine = engine
        self.interval = float(interval)
        self.handler = handler
        self.name = name
        self.expiries = 0
        self._armed = False
        self._event: Optional[Event] = None
        self._next_time = engine.now + (self.interval if start_after is None
                                        else float(start_after))
        self._arm()

    def _arm(self) -> None:
        self._armed = True
        self._event = self.engine.schedule_at(
            self._next_time, self._fire, priority=PRIORITY_TIMER)

    def _fire(self) -> None:
        if not self._armed:
            return
        index = self.expiries
        self.expiries += 1
        self._next_time += self.interval
        self._arm()
        self.handler(index)

    @property
    def armed(self) -> bool:
        return self._armed

    def next_expiry(self) -> Optional[float]:
        """Absolute virtual time of the next expiry, or None if cancelled."""
        return self._next_time if self._armed else None

    def cancel(self) -> None:
        """Disarm the timer; pending expiry is dropped."""
        self._armed = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def reset(self, interval: Optional[float] = None) -> None:
        """Re-arm the timer, optionally with a new interval, starting now."""
        self.cancel()
        if interval is not None:
            if interval <= 0:
                raise SignalError(f"timer interval must be positive, got {interval}")
            self.interval = float(interval)
        self._next_time = self.engine.now + self.interval
        self._arm()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nxt = self.next_expiry()
        return (f"<IntervalTimer {self.name!r} interval={self.interval} "
                f"next={nxt if nxt is None else format(nxt, '.6f')} "
                f"expiries={self.expiries}>")

"""Interval timers: the ``setitimer(ITIMER_REAL)`` model.

The paper's instrumentation library arms a periodic alarm; each expiry
(SIGALRM) records the incremental working set, resets the dirty counts and
re-protects the data memory.  :class:`IntervalTimer` reproduces that: a
periodic callback with a queryable *next expiry time*, which the
alarm-sliced compute phases use to stop exactly at timeslice boundaries.

At scale the per-rank expiries dominate the event queue: 1024 ranks at a
1 s timeslice contribute 1024 heap pushes + pops + dispatches per epoch,
all at the same instant and priority.  :class:`TimerHub` coalesces them:
timers sharing an ``(interval, next expiry)`` group are swept by **one**
queued engine event per epoch, in enrollment order -- which equals the
per-timer path's sequence order, so the simulation is bit-identical
(asserted by the differential suite in
``tests/instrument/test_coalesced_differential.py``).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SignalError
from repro.sim.engine import Engine, Event, PRIORITY_TIMER


class TimerHub:
    """Coalesces co-phased :class:`IntervalTimer` expiries.

    Timers are grouped by ``(interval, next_expiry)``.  A group owns one
    queued engine event; firing it sweeps the members in enrollment
    order, advancing and re-enrolling each *before* its handler runs --
    the exact operation order of the per-timer path, so sequence-number
    ties resolve identically and the event stream is unchanged.

    Ordering note: members of one group re-arm contiguously, so a
    group's next event takes the sequence slot the per-timer path would
    have given its first member.  Timer populations whose arms
    *interleave* across different ``(interval, phase)`` groups would be
    swept group-by-group rather than in global arm order; no such
    population exists in this codebase (every tracker of a run shares
    the one checkpoint timeslice), and each path is individually
    deterministic either way.

    After every group sweep the hub calls its ``epoch_listeners`` --
    still inside the same engine event, after the last co-scheduled
    member.  The checkpoint engine uses this seam to submit the epoch's
    checkpoint pieces as one batch.
    """

    __slots__ = ("engine", "_groups", "epoch_listeners",
                 "epochs", "expiries_swept", "max_group")

    def __init__(self, engine: Engine):
        self.engine = engine
        #: (interval, next_time) -> _TimerGroup
        self._groups: dict[tuple[float, float], _TimerGroup] = {}
        #: called with no arguments after each group sweep completes
        self.epoch_listeners: list[Callable[[], Any]] = []
        # lifetime counters (surfaced by Engine.stats / the scale bench)
        self.epochs = 0
        self.expiries_swept = 0
        self.max_group = 0

    # -- membership --------------------------------------------------------

    def _enroll(self, timer: "IntervalTimer") -> None:
        key = (timer.interval, timer._next_time)
        group = self._groups.get(key)
        if group is None:
            group = _TimerGroup(key)
            self._groups[key] = group
            group.event = self.engine.schedule_at(
                timer._next_time, self._fire_group, group,
                priority=PRIORITY_TIMER)
        group.members.append(timer)
        group.live += 1
        timer._group = group

    def _withdraw(self, timer: "IntervalTimer") -> None:
        group = timer._group
        if group is None:
            return
        timer._group = None
        group.live -= 1
        if group.live == 0 and group.event is not None:
            group.event.cancel()
            group.event = None
            self._groups.pop(group.key, None)

    # -- firing ------------------------------------------------------------

    def _fire_group(self, group: "_TimerGroup") -> None:
        self._groups.pop(group.key, None)
        group.event = None
        self.epochs += 1
        members = group.members
        if len(members) > self.max_group:
            self.max_group = len(members)
        for timer in members:
            if timer._group is not group:
                continue                    # cancelled or reset mid-epoch
            timer._group = None
            self.expiries_swept += 1
            index = timer.expiries
            timer.expiries += 1
            timer._next_time += timer.interval
            self._enroll(timer)             # re-arm before handler, as the
            timer.handler(index)            # per-timer path does
        group.members = ()
        group.live = 0
        if self.epoch_listeners:
            for listener in self.epoch_listeners:
                listener()

    def stats(self) -> dict:
        """Lifetime sweep counters (epochs fired, expiries swept, and
        the largest group observed)."""
        return {"epochs": self.epochs, "expiries_swept": self.expiries_swept,
                "max_group": self.max_group}


class _TimerGroup:
    """One coalesced expiry: the timers sharing an (interval, time) key."""

    __slots__ = ("key", "members", "live", "event")

    def __init__(self, key: tuple[float, float]):
        self.key = key
        self.members: list = []
        self.live = 0
        self.event: Optional[Event] = None


class IntervalTimer:
    """A periodic timer firing ``handler(expiry_index)`` every ``interval``.

    Expiries run at :data:`~repro.sim.engine.PRIORITY_TIMER`, i.e. before
    any process wake-up scheduled at the same instant -- matching the
    paper's requirement that the alarm samples the dirty pages written
    *before* the boundary.

    When the engine has ``coalesce_timers`` set (the default), expiries
    are delivered through the engine's shared :class:`TimerHub` instead
    of a per-timer queued event; behaviour and ordering are identical.
    """

    def __init__(self, engine: Engine, interval: float,
                 handler: Callable[[int], Any], start_after: Optional[float] = None,
                 name: str = "itimer"):
        if interval <= 0:
            raise SignalError(f"timer interval must be positive, got {interval}")
        self.engine = engine
        self.interval = float(interval)
        self.handler = handler
        self.name = name
        self.expiries = 0
        self._armed = False
        self._event: Optional[Event] = None
        self._group: Optional[_TimerGroup] = None
        if engine.coalesce_timers:
            hub = engine.timer_hub
            if hub is None:
                hub = engine.timer_hub = TimerHub(engine)
            self._hub: Optional[TimerHub] = hub
        else:
            self._hub = None
        self._next_time = engine.now + (self.interval if start_after is None
                                        else float(start_after))
        self._arm()

    def _arm(self) -> None:
        self._armed = True
        if self._hub is not None:
            self._hub._enroll(self)
        else:
            self._event = self.engine.schedule_at(
                self._next_time, self._fire, priority=PRIORITY_TIMER)

    def _fire(self) -> None:
        if not self._armed:
            return
        index = self.expiries
        self.expiries += 1
        self._next_time += self.interval
        self._arm()
        self.handler(index)

    @property
    def armed(self) -> bool:
        return self._armed

    def next_expiry(self) -> Optional[float]:
        """Absolute virtual time of the next expiry, or None if cancelled."""
        return self._next_time if self._armed else None

    def cancel(self) -> None:
        """Disarm the timer; pending expiry is dropped."""
        self._armed = False
        if self._hub is not None:
            self._hub._withdraw(self)
        elif self._event is not None:
            self._event.cancel()
            self._event = None

    def reset(self, interval: Optional[float] = None) -> None:
        """Re-arm the timer, optionally with a new interval, starting now."""
        self.cancel()
        if interval is not None:
            if interval <= 0:
                raise SignalError(f"timer interval must be positive, got {interval}")
            self.interval = float(interval)
        self._next_time = self.engine.now + self.interval
        self._arm()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nxt = self.next_expiry()
        return (f"<IntervalTimer {self.name!r} interval={self.interval} "
                f"next={nxt if nxt is None else format(nxt, '.6f')} "
                f"expiries={self.expiries}>")

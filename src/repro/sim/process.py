"""Generator-based simulated processes.

A process body is a Python generator that ``yield``s blocking primitives:

- :class:`Timeout` -- sleep for a duration of virtual time;
- :class:`Future` -- block until another party resolves it (message
  arrival, disk-write completion, barrier release, ...).

``yield``ing any other value raises :class:`~repro.errors.ProcessStateError`
immediately, which keeps workload code honest.

Processes can be *killed* (failure injection for the rollback-recovery
experiments) and *joined* (their completion is itself a Future).
"""

from __future__ import annotations

import enum
import traceback
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import ProcessStateError
from repro.sim.engine import Engine, Event, PRIORITY_NORMAL


def _dispatch_resume(item: "tuple[SimProcess, Any]") -> None:
    """Resume one process from a coalesced wake batch.

    Module-level so every :meth:`SimProcess._on_future` shares one callable
    identity and same-instant wakes join a single engine event
    (:meth:`Engine.schedule_coalesced`).  A process killed or finished
    after joining the batch is skipped by :meth:`SimProcess._resume`'s
    state guard.
    """
    proc, value = item
    proc._resume(value)


class Timeout:
    """Yield this from a process body to sleep ``delay`` virtual seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = float(delay)

    def __repr__(self) -> str:
        return f"Timeout({self.delay!r})"


class Future:
    """A one-shot result that processes can block on.

    ``resolve(value)`` wakes every waiting process with ``value`` as the
    result of its ``yield`` expression.  Resolving twice is an error;
    callbacks added after resolution fire immediately.
    """

    __slots__ = ("engine", "_value", "_resolved", "_callbacks", "label")

    def __init__(self, engine: Engine, label: str = ""):
        self.engine = engine
        self._value: Any = None
        self._resolved = False
        self._callbacks: list[Callable[[Any], None]] = []
        self.label = label

    @property
    def resolved(self) -> bool:
        return self._resolved

    @property
    def value(self) -> Any:
        if not self._resolved:
            raise ProcessStateError(f"future {self.label!r} read before resolution")
        return self._value

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        """Call ``fn(value)`` when resolved (immediately if already)."""
        if self._resolved:
            fn(self._value)
        else:
            self._callbacks.append(fn)

    def resolve(self, value: Any = None) -> None:
        """Resolve with ``value`` and wake all waiters (at the current instant)."""
        if self._resolved:
            raise ProcessStateError(f"future {self.label!r} resolved twice")
        self._resolved = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"resolved={self._value!r}" if self._resolved else "pending"
        return f"<Future {self.label!r} {state}>"


class ProcessState(enum.Enum):
    """Lifecycle of a simulated process."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    FINISHED = "finished"
    FAILED = "failed"      # body raised
    KILLED = "killed"      # externally terminated (failure injection)


class SimProcess:
    """A simulated process driving a generator body on an :class:`Engine`.

    The process starts at ``start_delay`` after creation.  ``proc.done``
    is a :class:`Future` resolved with the generator's return value when
    the body finishes (or with the exception if it fails).
    """

    def __init__(self, engine: Engine, body: Generator[Any, Any, Any],
                 name: str = "proc", start_delay: float = 0.0):
        if not hasattr(body, "send"):
            raise ProcessStateError(
                f"process body must be a generator, got {type(body).__name__}")
        self.engine = engine
        self.name = name
        self._body = body
        self.state = ProcessState.READY
        self.done = Future(engine, label=f"{name}.done")
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._wakeup: Optional[Event] = None
        self._waiting_on: Optional[Future] = None
        engine._live_processes += 1
        engine.schedule(start_delay, self._resume, None)

    # -- driving -------------------------------------------------------------

    def _resume(self, send_value: Any) -> None:
        if self.state in (ProcessState.FINISHED, ProcessState.FAILED,
                          ProcessState.KILLED):
            return
        self.state = ProcessState.RUNNING
        self._wakeup = None
        self._waiting_on = None
        try:
            yielded = self._body.send(send_value)
        except StopIteration as stop:
            self._finish(ProcessState.FINISHED, result=stop.value)
            return
        except BaseException as exc:  # body crashed
            self.exception = exc
            self._finish(ProcessState.FAILED, result=exc)
            return
        self._block_on(yielded)

    def _block_on(self, yielded: Any) -> None:
        self.state = ProcessState.BLOCKED
        if isinstance(yielded, Timeout):
            self._wakeup = self.engine.schedule(
                yielded.delay, self._resume, None, priority=PRIORITY_NORMAL)
        elif isinstance(yielded, Future):
            self._waiting_on = yielded
            yielded.add_callback(self._on_future)
        else:
            err = ProcessStateError(
                f"process {self.name!r} yielded {yielded!r}; "
                "only Timeout and Future may be yielded")
            self.exception = err
            self._body.close()
            self._finish(ProcessState.FAILED, result=err)

    def _on_future(self, value: Any) -> None:
        if self.state is ProcessState.BLOCKED:
            # Wake at the current instant but via the queue, preserving
            # deterministic ordering with other same-instant events.
            engine = self.engine
            if engine.coalesce_wakes:
                # Same-instant wakes (a batch delivery releasing many
                # ranks) share one dispatch event, drained in resolution
                # order -- the order their per-process events would have
                # fired in.  The shared event is deliberately NOT stored
                # in _wakeup: kill() must not cancel other processes'
                # wakes, and _resume's state guard already makes a stale
                # wake for this process a no-op.
                engine.schedule_coalesced(
                    engine.now, _dispatch_resume, (self, value),
                    priority=PRIORITY_NORMAL)
            else:
                self._wakeup = engine.schedule(
                    0.0, self._resume, value, priority=PRIORITY_NORMAL)

    def _finish(self, state: ProcessState, result: Any) -> None:
        self.state = state
        self.result = result
        self.engine._live_processes -= 1
        self.done.resolve(result)

    # -- external control ------------------------------------------------------

    def kill(self, reason: str = "killed") -> None:
        """Terminate the process immediately (failure injection).

        The body's ``finally`` blocks run via generator close; the ``done``
        future resolves with ``None``.
        """
        if self.state in (ProcessState.FINISHED, ProcessState.FAILED,
                          ProcessState.KILLED):
            return
        if self._wakeup is not None:
            self._wakeup.cancel()
            self._wakeup = None
        self._waiting_on = None
        self._body.close()
        self._finish(ProcessState.KILLED, result=None)

    @property
    def alive(self) -> bool:
        return self.state in (ProcessState.READY, ProcessState.RUNNING,
                              ProcessState.BLOCKED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimProcess {self.name!r} {self.state.value}>"


def all_of(engine: Engine, futures: Iterable[Future], label: str = "all_of") -> Future:
    """A Future that resolves (with a list of values) when all inputs have."""
    futures = list(futures)
    out = Future(engine, label=label)
    remaining = [len(futures)]
    values: list[Any] = [None] * len(futures)
    if not futures:
        out.resolve([])
        return out

    def make_cb(i: int) -> Callable[[Any], None]:
        def cb(value: Any) -> None:
            values[i] = value
            remaining[0] -= 1
            if remaining[0] == 0:
                out.resolve(list(values))
        return cb

    for i, fut in enumerate(futures):
        fut.add_callback(make_cb(i))
    return out

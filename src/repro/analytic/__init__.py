"""Closed-form IWS/IB predictions from a workload spec.

Because the workload models are analytic (cyclic sweeps at known rates),
the expected incremental working set per timeslice has a closed form.
The model here predicts the average and maximum IB as functions of the
timeslice, which serves two purposes:

1. *validation* -- an ablation bench checks simulation against theory;
2. *planning* -- a deployment can estimate checkpoint bandwidth for a
   new timeslice without re-running the application.
"""

from repro.analytic.model import IBPrediction, predict_ib

__all__ = ["IBPrediction", "predict_ib"]

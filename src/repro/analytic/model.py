"""The closed-form timeslice model.

Notation (all sizes in MB, times in seconds):

- ``W``   main working-set region, swept cyclically
- ``V``   visit volume per iteration = passes * W
- ``B``   processing-burst duration; sweep rate ``r = V / B``
- ``T``   iteration period
- ``tau`` checkpoint timeslice

Within the burst, a timeslice window of length ``tau`` covers ``r*tau``
visits, hence ``min(r*tau, W)`` unique pages (the sweep wraps once the
window exceeds the region).  The burst overlaps about ``B/tau + 1``
slices (the ``+1`` is the boundary-straddling slice), so the per-
iteration IWS contribution of the sweep is ``min(V, (B/tau + 1) *
min(r*tau, W))`` -- never more than the raw visit volume.

Temporaries contribute their full size once per iteration (they are
written once); received data contributes up to the receive-buffer size
per covering slice, capped by the per-iteration communication volume.

The whole-iteration total divided by ``T`` is the average IB; the
maximum IB is the largest single-slice contribution over the iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.spec import WorkloadSpec
from repro.errors import ConfigurationError
from repro.units import MiB


@dataclass(frozen=True)
class IBPrediction:
    """Predicted bandwidth requirements at one timeslice."""

    timeslice: float
    avg_mbps: float
    max_mbps: float
    iws_per_iteration_mb: float


def predict_ib(spec: WorkloadSpec, timeslice: float) -> IBPrediction:
    """Closed-form average/maximum IB for ``spec`` at ``timeslice``."""
    if timeslice <= 0:
        raise ConfigurationError(f"timeslice must be positive: {timeslice}")
    tau = timeslice
    W = spec.main_region_mb
    V = spec.passes * W
    B = spec.burst_duration
    T = spec.iteration_period
    r = V / B

    # -- compute sweep ------------------------------------------------------------
    unique_per_burst_slice = min(r * tau, W)
    burst_slices = B / tau + 1.0
    sweep_total = min(V, burst_slices * unique_per_burst_slice)

    # -- temporaries (written once per iteration) -----------------------------------
    temp_total = spec.temp_mb
    alloc_dur = (spec.temp_alloc_duration if spec.temp_alloc_duration
                 else 0.02 * T) or 1e-9
    temp_rate = spec.temp_mb / alloc_dur if spec.temp_mb else 0.0
    temp_peak_slice = min(temp_rate * tau, spec.temp_mb)

    # -- received data ---------------------------------------------------------------
    comm = spec.comm_mb_per_iteration
    buffer_mb = spec.recv_buffer_bytes / MiB
    comm_dur = spec.comm_duration or 1e-9
    comm_slices = comm_dur / tau + 1.0
    comm_total = min(comm, comm_slices * min(buffer_mb * max(1.0, tau / max(
        comm_dur / spec.comm_rounds, 1e-9)), comm))
    comm_total = min(comm_total, comm)

    per_iteration = sweep_total + temp_total + comm_total

    # -- regimes ------------------------------------------------------------------------
    if tau >= T:
        # a slice spans whole iterations: unique content per slice is one
        # iteration's working set (rewrites across iterations collapse)
        per_slice = min(per_iteration,
                        W + spec.temp_mb + buffer_mb)
        # plus additional iterations only re-dirty the same pages
        avg = per_slice / tau
        mx = avg
    else:
        avg = per_iteration / T
        # the peak slice can straddle the temporary-allocation spike and
        # the start of the processing burst (they are adjacent phases)
        straddle = (min(temp_rate * tau, spec.temp_mb)
                    + min(r * max(0.0, tau - alloc_dur), W))
        mx = max(unique_per_burst_slice, temp_peak_slice, straddle,
                 min(buffer_mb, comm)) / tau
        mx = min(mx, (W + spec.temp_mb + buffer_mb) / tau)
        avg = min(avg, mx)

    return IBPrediction(timeslice=tau, avg_mbps=avg, max_mbps=mx,
                        iws_per_iteration_mb=per_iteration)

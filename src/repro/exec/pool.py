"""Process-pool sweep executor.

The paper's results are parameter sweeps -- IB versus timeslice (Figs
2-4), weak scaling over processor counts (Fig 5) -- and every point is
an *independent* simulation.  :class:`SweepExecutor` fans those runs
across a process pool and returns results in submission order, so a
parallel sweep is indistinguishable from a serial one: each run owns a
private :class:`~repro.sim.Engine` with its own virtual clock and seeded
state, and nothing is shared between runs, so per-run results are
bit-identical at any job count.

Workers return *detached* results (traces + derived metadata, no live
simulation objects) because generators and engines do not survive
pickling -- and because the derived statistics are all the sweep
consumers need.  With a :class:`~repro.exec.cache.ResultCache` attached,
hits skip simulation entirely and misses are persisted on completion.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache


def _run_detached(config):
    """Pool worker: one full experiment, shipped back without live objects."""
    from repro.cluster.experiment import run_experiment

    return run_experiment(config).detached()


def _pool_context():
    """Prefer fork (cheap, numpy already mapped); fall back to the
    platform default where fork is unavailable (Windows, some macOS)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return None


class SweepExecutor:
    """Run independent experiment configs, optionally in parallel and
    through a persistent cache.

    Parameters
    ----------
    jobs:
        Worker processes.  1 runs in-process (and returns *live* results
        with app/library/job attached, exactly like calling
        :func:`~repro.cluster.experiment.run_experiment` in a loop).
    cache:
        Optional :class:`ResultCache`; hits are returned without
        simulating, misses are stored after the run.
    obs:
        Optional :class:`~repro.obs.Observability`; serial runs (jobs=1)
        thread it into each experiment's engine and time every run via
        :func:`~repro.obs.probe`.  Pool workers run without it (tracers
        do not cross process boundaries), but cache and sweep-level
        counters are still recorded.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 obs=None):
        if jobs < 1:
            raise ConfigurationError(f"need at least one job, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.obs = obs

    def run_many(self, configs: Sequence) -> list:
        """One :class:`ExperimentResult` per config, in submission order."""
        from repro.cluster.experiment import run_experiment
        from repro.obs import probe

        obs = self.obs if (self.obs is not None and self.obs.enabled) else None
        configs = list(configs)
        results: list = [None] * len(configs)
        miss_idx: list[int] = []
        for i, config in enumerate(configs):
            cached = self.cache.get(config) if self.cache is not None else None
            if cached is not None:
                results[i] = cached
                if obs is not None and obs.progress is not None:
                    obs.progress.on_run(i + 1, len(configs), label="cached")
            else:
                miss_idx.append(i)

        if miss_idx:
            if self.jobs > 1 and len(miss_idx) > 1:
                ctx = _pool_context()
                workers = min(self.jobs, len(miss_idx))
                with probe(obs, "exec.pool_sweep"), \
                        ProcessPoolExecutor(max_workers=workers,
                                            mp_context=ctx) as pool:
                    fresh = []
                    for n, result in enumerate(pool.map(
                            _run_detached, [configs[i] for i in miss_idx])):
                        fresh.append(result)
                        if obs is not None and obs.progress is not None:
                            obs.progress.on_run(n + 1, len(miss_idx),
                                                label="pool run")
            else:
                fresh = []
                for n, i in enumerate(miss_idx):
                    with probe(obs, "exec.run"):
                        fresh.append(run_experiment(configs[i], obs=obs))
                    if obs is not None and obs.progress is not None:
                        obs.progress.on_run(n + 1, len(miss_idx), label="run")
            for i, result in zip(miss_idx, fresh):
                results[i] = result
                if self.cache is not None:
                    self.cache.put(configs[i], result)
        if obs is not None:
            m = obs.metrics
            m.counter("exec.runs").inc(len(miss_idx))
            m.counter("exec.cache.hits").inc(len(configs) - len(miss_idx))
            m.counter("exec.cache.misses").inc(len(miss_idx))
            if self.cache is not None:
                m.gauge("exec.cache.hits_total").set(self.cache.hits)
                m.gauge("exec.cache.misses_total").set(self.cache.misses)
        return results

    def run_one(self, config):
        """Single-config convenience wrapper over :meth:`run_many`."""
        return self.run_many([config])[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SweepExecutor jobs={self.jobs} cache={self.cache!r}>"

"""Process-pool sweep executor.

The paper's results are parameter sweeps -- IB versus timeslice (Figs
2-4), weak scaling over processor counts (Fig 5) -- and every point is
an *independent* simulation.  :class:`SweepExecutor` fans those runs
across a process pool and returns results in submission order, so a
parallel sweep is indistinguishable from a serial one: each run owns a
private :class:`~repro.sim.Engine` with its own virtual clock and seeded
state, and nothing is shared between runs, so per-run results are
bit-identical at any job count.

Workers return *detached* results (traces + derived metadata, no live
simulation objects) because generators and engines do not survive
pickling -- and because the derived statistics are all the sweep
consumers need.  With a :class:`~repro.exec.cache.ResultCache` attached,
hits skip simulation entirely and misses are persisted on completion.

Three things keep the parallel path ahead of serial even on small
sweeps:

- the fork-pool is *warm*: one pool per process, reused across
  ``run_many`` calls (pool creation used to cost more than a short
  sweep's entire win);
- cache probes overlap execution: each miss is submitted to the pool
  the moment its probe fails, so workers simulate config *i* while the
  parent is still probing config *i+1*;
- cache writes happen *in the workers* (each worker re-opens the cache
  by its root path and persists its own result), so the npz
  serialization of one run overlaps the simulation of the next instead
  of serializing in the parent after the pool drains.
"""

from __future__ import annotations

import atexit
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache


def _run_detached(config):
    """Pool worker: one full experiment, shipped back without live objects."""
    from repro.cluster.experiment import run_experiment

    return run_experiment(config).detached()


def _run_and_store(config, cache_root: Optional[str]):
    """Pool worker: run one experiment and persist it to the cache (by
    root path -- cache handles are not shared across processes).  Puts
    are atomic tmp+rename, and distinct configs map to distinct keys,
    so concurrent workers never collide."""
    from repro.cluster.experiment import run_experiment

    result = run_experiment(config).detached()
    if cache_root is not None:
        ResultCache(cache_root).put(config, result)
    return result


def _pool_context():
    """Prefer fork (cheap, numpy already mapped); fall back to the
    platform default where fork is unavailable (Windows, some macOS)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return None


#: the process-wide warm pool: (executor, max_workers)
_warm_pool: Optional[ProcessPoolExecutor] = None
_warm_workers = 0


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The warm pool, recreated only when the worker count changes.
    Workers are forked lazily on first submit, so an idle pool costs
    nothing; a reused one skips the fork+import tax entirely."""
    global _warm_pool, _warm_workers
    if _warm_pool is not None and _warm_workers != workers:
        _warm_pool.shutdown(wait=True)
        _warm_pool = None
    if _warm_pool is None:
        _warm_pool = ProcessPoolExecutor(max_workers=workers,
                                         mp_context=_pool_context())
        _warm_workers = workers
    return _warm_pool


def shutdown_pool() -> None:
    """Tear down the warm pool (tests, embedders, interpreter exit)."""
    global _warm_pool, _warm_workers
    if _warm_pool is not None:
        _warm_pool.shutdown(wait=True)
        _warm_pool = None
        _warm_workers = 0


atexit.register(shutdown_pool)


class SweepExecutor:
    """Run independent experiment configs, optionally in parallel and
    through a persistent cache.

    Parameters
    ----------
    jobs:
        Worker processes.  1 runs in-process (and returns *live* results
        with app/library/job attached, exactly like calling
        :func:`~repro.cluster.experiment.run_experiment` in a loop).
    cache:
        Optional :class:`ResultCache`; hits are returned without
        simulating, misses are stored after the run (by the worker
        itself on the parallel path).
    obs:
        Optional :class:`~repro.obs.Observability`; serial runs (jobs=1)
        thread it into each experiment's engine and time every run via
        :func:`~repro.obs.probe`.  Pool workers run without it (tracers
        do not cross process boundaries), but cache and sweep-level
        counters are still recorded.
    shards:
        Rank-group shards per run (see :mod:`repro.cluster.shards`).
        Serial sweeps only: the shard runner owns the warm pool, so
        combining ``jobs > 1`` with ``shards > 1`` is rejected rather
        than nesting process pools.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 obs=None, shards: int = 1):
        if jobs < 1:
            raise ConfigurationError(f"need at least one job, got {jobs}")
        if shards < 1:
            raise ConfigurationError(f"need at least one shard, got {shards}")
        if jobs > 1 and shards > 1:
            raise ConfigurationError(
                "sharded runs need the worker pool to themselves; use "
                "either jobs > 1 (parallel sweep points) or shards > 1 "
                "(parallel rank groups per point), not both")
        self.jobs = jobs
        self.cache = cache
        self.obs = obs
        self.shards = shards

    def run_many(self, configs: Sequence) -> list:
        """One :class:`ExperimentResult` per config, in submission order."""
        from repro.obs import probe

        obs = self.obs if (self.obs is not None and self.obs.enabled) else None
        configs = list(configs)
        if self.jobs > 1 and len(configs) > 1:
            results, nmisses = self._run_pooled(configs, obs, probe)
        else:
            results, nmisses = self._run_serial(configs, obs, probe)
        if obs is not None:
            m = obs.metrics
            m.counter("exec.runs").inc(nmisses)
            m.counter("exec.cache.hits").inc(len(configs) - nmisses)
            m.counter("exec.cache.misses").inc(nmisses)
            if self.cache is not None:
                m.gauge("exec.cache.hits_total").set(self.cache.hits)
                m.gauge("exec.cache.misses_total").set(self.cache.misses)
        return results

    def _run_serial(self, configs, obs, probe):
        from repro.cluster.experiment import run_experiment

        results: list = [None] * len(configs)
        miss_idx: list[int] = []
        for i, config in enumerate(configs):
            cached = self.cache.get(config) if self.cache is not None else None
            if cached is not None:
                results[i] = cached
                if obs is not None and obs.progress is not None:
                    obs.progress.on_run(i + 1, len(configs), label="cached")
            else:
                miss_idx.append(i)
        for n, i in enumerate(miss_idx):
            with probe(obs, "exec.run"):
                results[i] = run_experiment(configs[i], obs=obs,
                                            shards=self.shards)
            if self.cache is not None:
                self.cache.put(configs[i], results[i])
            if obs is not None and obs.progress is not None:
                obs.progress.on_run(n + 1, len(miss_idx), label="run")
        return results, len(miss_idx)

    def _run_pooled(self, configs, obs, probe):
        pool = _get_pool(self.jobs)
        cache_root = str(self.cache.root) if self.cache is not None else None
        results: list = [None] * len(configs)
        futures: dict[int, object] = {}
        try:
            with probe(obs, "exec.pool_sweep"):
                # probe and submit interleaved: a worker is already
                # simulating the first miss while later probes run
                for i, config in enumerate(configs):
                    cached = (self.cache.get(config)
                              if self.cache is not None else None)
                    if cached is not None:
                        results[i] = cached
                        if obs is not None and obs.progress is not None:
                            obs.progress.on_run(i + 1, len(configs),
                                                label="cached")
                    else:
                        futures[i] = pool.submit(_run_and_store, config,
                                                 cache_root)
                for n, i in enumerate(futures):
                    results[i] = futures[i].result()
                    if obs is not None and obs.progress is not None:
                        obs.progress.on_run(n + 1, len(futures),
                                            label="pool run")
        except BrokenProcessPool:
            # a dead worker poisons the warm pool; drop it so the next
            # sweep starts from a fresh one
            shutdown_pool()
            raise
        return results, len(futures)

    def run_one(self, config):
        """Single-config convenience wrapper over :meth:`run_many`."""
        return self.run_many([config])[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SweepExecutor jobs={self.jobs} cache={self.cache!r}>"

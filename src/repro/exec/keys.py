"""Stable cache keys for experiment runs.

A result is reusable when three things match: the experiment
configuration (every field, including the workload spec), the workload's
*code* (the simulator is the measurement instrument -- a changed
instrument invalidates old readings), and the cache format itself.

The configuration is canonicalized structurally -- dataclasses become
``{"__type__": ..., field: value}`` mappings, enums become
``[class, value]`` pairs, floats keep their full ``repr`` precision
through JSON -- so the key is independent of process, platform hash
randomization, and field declaration order.  The code component is a
SHA-256 over every ``*.py`` file of the installed ``repro`` package,
computed once per process.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError

#: bump when the on-disk cache layout changes incompatibly
CACHE_FORMAT_VERSION = 1

_code_fingerprint_cache: dict[str, str] = {}


def canonical(obj: Any) -> Any:
    """A JSON-serializable, deterministic projection of ``obj``."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: dict[str, Any] = {"__type__": type(obj).__qualname__}
        for f in sorted(dataclasses.fields(obj), key=lambda f: f.name):
            out[f.name] = canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, enum.Enum):
        return [type(obj).__qualname__, canonical(obj.value)]
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in sorted(obj.items())}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise ConfigurationError(
        f"cannot canonicalize {type(obj).__qualname__!r} for cache keying")


def config_fingerprint(config: Any) -> str:
    """SHA-256 over the canonical form of an :class:`ExperimentConfig`."""
    payload = json.dumps(canonical(config), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def code_fingerprint() -> str:
    """SHA-256 over the source of the installed ``repro`` package.

    Any edit to any module invalidates every cached result: the whole
    simulator is the measurement instrument, and slicing the dependency
    graph finer than "the package" buys little and risks stale reuse.
    """
    import repro

    pkg_root = str(Path(repro.__file__).parent)
    cached = _code_fingerprint_cache.get(pkg_root)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    root = Path(pkg_root)
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    digest = h.hexdigest()
    _code_fingerprint_cache[pkg_root] = digest
    return digest


def cache_key(config: Any) -> str:
    """The persistent-cache key of one experiment run."""
    h = hashlib.sha256()
    h.update(f"format={CACHE_FORMAT_VERSION}\0".encode())
    h.update(f"code={code_fingerprint()}\0".encode())
    h.update(f"config={config_fingerprint(config)}\0".encode())
    return h.hexdigest()

"""Persistent on-disk result cache.

One cache entry per experiment run, keyed by
:func:`repro.exec.keys.cache_key` (config + workload spec + code
version).  An entry is a directory holding ``meta.json`` (run metadata
and the canonical config, for human inspection) plus the per-rank traces
in the npz+json format of :mod:`repro.trace` -- the same serialization
``run --save-trace`` uses, so cached entries are also analyzable with
``repro analyze``.

Writes are atomic (tempdir + rename), so a killed run never leaves a
half-written entry, and concurrent writers of the same key simply race
to publish identical bytes.  Loaded results are *detached*: the derived
statistics (IB, IWS, footprint, period) are all available, the live
simulation objects (app, library, job) are not.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
from pathlib import Path
from typing import Optional, Union

from repro.errors import ConfigurationError
from repro.exec.keys import cache_key, canonical, CACHE_FORMAT_VERSION

#: environment variable naming the default cache directory
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_META_NAME = "meta.json"


def default_cache(directory: Union[str, Path, None] = None,
                  ) -> "Optional[ResultCache]":
    """The cache at ``directory``, falling back to ``$REPRO_CACHE_DIR``;
    None when neither names a directory (caching disabled)."""
    if directory is None:
        directory = os.environ.get(CACHE_DIR_ENV) or None
    if directory is None:
        return None
    return ResultCache(directory)


class ResultCache:
    """Filesystem-backed cache of :class:`ExperimentResult` runs."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # -- key plumbing ---------------------------------------------------------

    def key_for(self, config) -> str:
        """The cache key this store files ``config`` under."""
        return cache_key(config)

    def _entry_dir(self, key: str) -> Path:
        return self.root / key[:2] / key[2:]

    def contains(self, config) -> bool:
        """Whether a (possibly stale-format) entry exists for ``config``."""
        return (self._entry_dir(self.key_for(config)) / _META_NAME).exists()

    # -- read -----------------------------------------------------------------

    def get(self, config):
        """The cached :class:`ExperimentResult` for ``config``, or None.

        Corrupt or partially deleted entries count as misses and are
        removed so the next run rewrites them.
        """
        from repro.cluster.experiment import ExperimentResult
        from repro.trace import load_trace

        key = self.key_for(config)
        entry = self._entry_dir(key)
        meta_path = entry / _META_NAME
        if not meta_path.exists():
            self.misses += 1
            return None
        try:
            meta = json.loads(meta_path.read_text())
            if meta.get("format_version") != CACHE_FORMAT_VERSION:
                raise ConfigurationError("cache format mismatch")
            logs = {int(r): load_trace(entry / f"rank{int(r):04d}")
                    for r in meta["ranks"]}
            tstats = meta.get("transport_stats")
            if tstats is not None:
                from repro.checkpoint.transport import TransportStats
                tstats = TransportStats(**tstats)
            result = ExperimentResult(
                config=config,
                logs=logs,
                init_end_time=float(meta["init_end_time"]),
                iterations=int(meta["iterations"]),
                iteration_starts=[float(t) for t in meta["iteration_starts"]],
                final_time=float(meta["final_time"]),
                transport_stats=tstats,
                ckpt_commits=int(meta.get("ckpt_commits", 0)),
            )
        except Exception:
            shutil.rmtree(entry, ignore_errors=True)
            self.misses += 1
            return None
        self.hits += 1
        return result

    # -- write ----------------------------------------------------------------

    def put(self, config, result) -> Path:
        """Persist one run; returns the entry directory."""
        from repro.trace import save_traces

        key = self.key_for(config)
        entry = self._entry_dir(key)
        if (entry / _META_NAME).exists():
            return entry
        entry.parent.mkdir(parents=True, exist_ok=True)
        tmp = entry.parent / f".tmp-{os.getpid()}-{key[2:10]}"
        shutil.rmtree(tmp, ignore_errors=True)
        tmp.mkdir()
        try:
            save_traces(result.logs, tmp)
            meta = {
                "format_version": CACHE_FORMAT_VERSION,
                "key": key,
                "config": canonical(config),
                "ranks": sorted(result.logs),
                "init_end_time": result.init_end_time,
                "iterations": result.iterations,
                "iteration_starts": list(result.iteration_starts),
                "final_time": result.final_time,
                "transport_stats": (
                    None if result.transport_stats is None
                    else dataclasses.asdict(result.transport_stats)),
                "ckpt_commits": result.ckpt_commits,
            }
            (tmp / _META_NAME).write_text(json.dumps(meta, indent=2))
            try:
                os.replace(tmp, entry)
            except OSError:
                # a concurrent writer published the same key first; its
                # entry is byte-identical (same key -> same run)
                shutil.rmtree(tmp, ignore_errors=True)
        except Exception:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        return entry

    # -- maintenance ----------------------------------------------------------

    def entries(self) -> list[str]:
        """All cached keys."""
        if not self.root.is_dir():
            return []
        return sorted(
            prefix.name + entry.name
            for prefix in self.root.iterdir() if prefix.is_dir()
            for entry in prefix.iterdir()
            if (entry / _META_NAME).exists())

    def invalidate(self, config) -> bool:
        """Drop one entry; True if it existed."""
        entry = self._entry_dir(self.key_for(config))
        existed = entry.exists()
        shutil.rmtree(entry, ignore_errors=True)
        return existed

    def clear(self) -> None:
        """Drop every entry."""
        shutil.rmtree(self.root, ignore_errors=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ResultCache {str(self.root)!r} entries={len(self.entries())} "
                f"hits={self.hits} misses={self.misses}>")

"""Sweep execution: parallel fan-out plus a persistent result cache.

The substrate under every figure/table regeneration:

- :class:`SweepExecutor` -- runs independent experiment configs across a
  process pool, results in deterministic submission order;
- :class:`ResultCache` -- on-disk cache of finished runs keyed by
  (config, workload spec, code version), so repeat benchmark and figure
  runs are near-instant;
- :func:`cache_key` / :func:`config_fingerprint` / :func:`code_fingerprint`
  -- the stable hashing underneath.

See ``DESIGN.md`` ("Parallel sweeps and determinism") for why a parallel
sweep is guaranteed bit-identical to a serial one.
"""

from repro.exec.cache import CACHE_DIR_ENV, ResultCache, default_cache
from repro.exec.keys import (
    CACHE_FORMAT_VERSION,
    cache_key,
    canonical,
    code_fingerprint,
    config_fingerprint,
)
from repro.exec.pool import SweepExecutor

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_FORMAT_VERSION",
    "ResultCache",
    "SweepExecutor",
    "cache_key",
    "canonical",
    "code_fingerprint",
    "config_fingerprint",
    "default_cache",
]

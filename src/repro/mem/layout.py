"""Address-space layout constants.

Mirrors the Itanium II / Linux layout sketched in the paper (section 4.1):
initialized and uninitialized data follow the text, then the heap growing
toward higher addresses; mmap'ed regions live in their own area; the stack
starts at a fixed address and grows down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import DEFAULT_PAGE_SIZE, GiB, KiB, MiB, is_power_of_two


@dataclass(frozen=True)
class Layout:
    """Fixed virtual-address layout for a simulated process.

    All bases must be page-aligned.  Defaults give each area far more
    room than any of the paper's workloads need (the largest Sage
    configuration maps under 1 GB).
    """

    page_size: int = DEFAULT_PAGE_SIZE
    text_base: int = 0x0400_0000
    text_size: int = 8 * MiB
    #: base of the initialized-data segment (follows text)
    data_base: int = 0x0500_0000
    #: base of the mmap area
    mmap_base: int = 0x20_0000_0000
    mmap_limit: int = 0x40_0000_0000
    #: the stack starts here and grows toward lower addresses
    stack_top: int = 0x80_0000_0000
    max_stack: int = 64 * MiB
    #: hard ceiling for the heap (brk)
    heap_limit: int = 0x10_0000_0000

    def __post_init__(self) -> None:
        if not is_power_of_two(self.page_size):
            raise ConfigurationError(
                f"page size must be a power of two, got {self.page_size}")
        for name in ("text_base", "data_base", "mmap_base", "mmap_limit",
                     "stack_top", "heap_limit"):
            value = getattr(self, name)
            if value % self.page_size:
                raise ConfigurationError(
                    f"{name}={value:#x} is not aligned to page size {self.page_size}")
        if self.text_base + self.text_size > self.data_base:
            raise ConfigurationError("text segment overlaps data base")
        if self.mmap_base >= self.mmap_limit:
            raise ConfigurationError("empty mmap area")
        if self.heap_limit > self.mmap_base:
            raise ConfigurationError("heap area overlaps mmap area")
        if self.stack_top - self.max_stack < self.mmap_limit:
            raise ConfigurationError("stack area overlaps mmap area")

    @property
    def stack_base(self) -> int:
        """Lowest address the stack may grow down to."""
        return self.stack_top - self.max_stack

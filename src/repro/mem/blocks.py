"""Sub-page block-version state for differential (dcp) checkpoints.

A :class:`BlockTable` shadows a segment's
:class:`~repro.mem.pagetable.PageTable` at a finer granularity: every
page is split into ``blocks_per_page`` fixed-size blocks, and the
address-space write paths mark exactly the blocks a store covered with
the same monotonic write version the page table records for the page.

The invariant the dcp checkpointer and chain replay rely on: **a page's
version always equals the maximum version over its blocks**, because
every write stamps at least one covered block with the same version it
stamps the page (a byte range intersects at least one block of every
page it touches).  Restoring the saved blocks of a dirty page and
taking the per-page maximum therefore reproduces the page-granular
state signature exactly.

Like the page table, the visible ``versions`` array is a view into an
over-allocated backing buffer with a high-water mark, so heap
brk/sbrk churn costs amortized O(1) per block and shrink-then-regrow
never resurfaces stale state.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError


class BlockTable:
    """Block-granular write-version state for one segment."""

    __slots__ = ("npages", "page_size", "block_size", "blocks_per_page",
                 "versions", "_capacity", "_versions_buf", "_hwm")

    def __init__(self, npages: int, page_size: int, block_size: int):
        if npages < 0:
            raise MappingError(f"negative page count: {npages}")
        if block_size < 1 or page_size % block_size:
            raise MappingError(
                f"block size {block_size} must be >= 1 and divide the "
                f"page size {page_size}")
        self.npages = npages
        self.page_size = page_size
        self.block_size = block_size
        self.blocks_per_page = page_size // block_size
        self._allocate(npages, preserve=0)

    @property
    def nblocks(self) -> int:
        """Blocks currently exposed (``npages * blocks_per_page``)."""
        return self.npages * self.blocks_per_page

    def _allocate(self, capacity_pages: int, preserve: int = 0) -> None:
        """(Re)allocate the backing buffer at ``capacity_pages`` pages,
        carrying over the first ``preserve`` pages of live state."""
        bpp = self.blocks_per_page
        versions = np.zeros(capacity_pages * bpp, dtype=np.uint64)
        if preserve and getattr(self, "_versions_buf", None) is not None:
            versions[:preserve * bpp] = self._versions_buf[:preserve * bpp]
        self._capacity = capacity_pages
        self._versions_buf = versions
        #: high-water mark in *pages*: buffer pages at index >= _hwm have
        #: never held state since this allocation
        self._hwm = preserve
        self._reslice()

    def _reslice(self) -> None:
        self.versions = self._versions_buf[:self.nblocks]

    # -- write marking ---------------------------------------------------------

    def mark_pages(self, lo: int, hi: int, version: int) -> None:
        """A store covering whole pages ``[lo, hi)``: every block of
        every covered page gets ``version``."""
        if not 0 <= lo <= hi <= self.npages:
            raise MappingError(
                f"page range [{lo}, {hi}) outside table of "
                f"{self.npages} pages")
        bpp = self.blocks_per_page
        self.versions[lo * bpp:hi * bpp] = version

    def mark_bytes(self, lo: int, hi: int, version: int) -> None:
        """A store covering segment byte offsets ``[lo, hi)``: only the
        blocks the byte range actually intersects get ``version`` --
        the sub-page precision dcp checkpoints harvest."""
        if not (0 <= lo < hi <= self.npages * self.page_size):
            raise MappingError(
                f"byte range [{lo}, {hi}) outside table of "
                f"{self.npages * self.page_size} bytes")
        bs = self.block_size
        self.versions[lo // bs:(hi - 1) // bs + 1] = version

    # -- growth / shrink -------------------------------------------------------

    def resize(self, npages: int) -> None:
        """Mirror :meth:`PageTable.resize`: new pages arrive at version 0
        (zero-filled by the kernel); regrown pages within capacity are
        wiped only up to the high-water mark."""
        if npages < 0:
            raise MappingError(f"negative page count: {npages}")
        old = self.npages
        if npages == old:
            return
        bpp = self.blocks_per_page
        if npages > self._capacity:
            self._allocate(max(npages, 2 * self._capacity, 8), preserve=old)
        elif npages > old:
            wipe_hi = min(npages, self._hwm)
            if old < wipe_hi:
                self._versions_buf[old * bpp:wipe_hi * bpp] = 0
        if npages > self._hwm:
            self._hwm = npages
        self.npages = npages
        self._reslice()

    def recycle(self) -> None:
        """Reset to a freshly constructed table's state (the region
        arena's segment-reuse path); keeps the over-allocated buffer."""
        if self._hwm:
            self._versions_buf[:self._hwm * self.blocks_per_page] = 0
        self._hwm = self.npages
        # the view may have been narrowed by resize since the last
        # reslice of a grown buffer
        self._reslice()

    def split(self, at: int) -> "BlockTable":
        """Split off pages ``[at, npages)`` into a new table (partial
        munmap); this table keeps ``[0, at)``."""
        if not (0 <= at <= self.npages):
            raise MappingError(
                f"split at page {at} outside table of {self.npages} pages")
        tail = BlockTable(self.npages - at, self.page_size, self.block_size)
        tail.versions[:] = self.versions[at * self.blocks_per_page:]
        self.resize(at)
        return tail

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<BlockTable npages={self.npages} "
                f"block_size={self.block_size} nblocks={self.nblocks}>")

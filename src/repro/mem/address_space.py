"""The simulated process address space.

Reproduces the UNIX memory model of the paper's section 4.1: text, data,
BSS, a heap grown by ``brk``/``sbrk``, a stack, and mmap'ed regions
created/destroyed at run time.  CPU stores go through the protection
check (faulting path); NIC DMA stores bypass it.

The address space knows nothing about time -- it reports faults to
listeners (the dirty-page tracker) which do the accounting.
"""

from __future__ import annotations

from typing import Callable, Iterator, NamedTuple, Optional

import numpy as np

from repro.errors import MappingError, SegmentationFault
from repro.mem.layout import Layout
from repro.mem.segment import Segment, SegmentKind
from repro.units import page_align_up


class WriteResult(NamedTuple):
    """Outcome of one store operation.  (A NamedTuple, not a dataclass:
    one is built per store and the compute phases issue ~10^5 stores per
    simulated second at full scale.)"""

    pages: int     #: pages covered by the store
    faults: int    #: write-protection faults taken (CPU stores only)
    missed: int    #: pages modified without being recorded (DMA stores only)


#: fault listener: ``(segment, lo_page, hi_page, nfaults) -> None``
FaultListener = Callable[[Segment, int, int, int], None]
#: mapping listener: ``(segment) -> None``
MapListener = Callable[[Segment], None]


class AddressSpace:
    """Segments + page tables + the write paths.

    Parameters
    ----------
    layout:
        Virtual-address layout (page size lives here).
    data_size, bss_size:
        Sizes of the initialized and uninitialized data segments, rounded
        up to whole pages (set at "compile time" by the workload).
    stack_size:
        Initial stack mapping.  The paper measured stacks under 42 KB.
    """

    def __init__(self, layout: Optional[Layout] = None, *,
                 data_size: int = 0, bss_size: int = 0,
                 stack_size: int = 64 * 1024,
                 store_contents: bool = False,
                 phantom: bool = False):
        self.layout = layout or Layout()
        ps = self.layout.page_size
        self._version = 0
        #: the bytes backend: data-memory segments carry real byte
        #: payloads (checkpoints then capture/restore actual content).
        #: Off by default -- the paper's metrics need only page versions,
        #: and signatures keep full-scale footprints cheap.
        self.store_contents = store_contents
        #: phantom address spaces (ranks owned by another shard) carry
        #: O(1) no-op page state in every segment; see PhantomPageTable
        self.phantom = phantom

        self.text = Segment(SegmentKind.TEXT, self.layout.text_base,
                            page_align_up(self.layout.text_size, ps), ps,
                            phantom=phantom)
        self.data = Segment(SegmentKind.DATA, self.layout.data_base,
                            page_align_up(data_size, ps), ps,
                            store_contents=store_contents, phantom=phantom)
        self.bss = Segment(SegmentKind.BSS, self.data.end,
                           page_align_up(bss_size, ps), ps,
                           store_contents=store_contents, phantom=phantom)
        # the heap starts empty, immediately after the BSS
        self.heap = Segment(SegmentKind.HEAP, self.bss.end, 0, ps,
                            store_contents=store_contents, phantom=phantom)
        stack_size = page_align_up(stack_size, ps)
        if stack_size > self.layout.max_stack:
            raise MappingError(
                f"stack size {stack_size} exceeds limit {self.layout.max_stack}")
        self.stack = Segment(SegmentKind.STACK, self.layout.stack_top - stack_size,
                             stack_size, ps, phantom=phantom)

        #: mmap'ed segments, keyed by base address
        self._mmaps: dict[int, Segment] = {}
        self._mmap_cursor = self.layout.mmap_base
        #: region arena: fully-unmapped segments parked by page count for
        #: reuse by the next same-size mmap (the per-iteration temp-region
        #: churn maps/unmaps an identical pattern every iteration).  A
        #: reused segment is indistinguishable from a fresh one -- new
        #: sid, new name, recycled page table -- it just skips the host
        #: allocations.  Keyed npages -> stack of parked segments.
        self._arena: dict[int, list[Segment]] = {}
        #: parked segments across all sizes (bounds host memory pinned
        #: by the arena)
        self._arena_count = 0
        self._arena_cap = 32

        self.fault_listeners: list[FaultListener] = []
        self.map_listeners: list[MapListener] = []
        self.unmap_listeners: list[MapListener] = []
        #: cached data-memory segment list (the alarm sweep walks it four
        #: times per timeslice); rebuilt after any mmap/munmap
        self._data_cache: Optional[list[Segment]] = None
        #: last segment a lookup resolved to -- stores stream to the same
        #: region, so this hits almost always; cleared on unmap
        self._last_seg: Optional[Segment] = None
        #: cached (total_pages, total_bytes) over the data segments;
        #: invalidated on map/unmap and on sbrk (heap size changes)
        self._data_totals: Optional[tuple[int, int]] = None
        #: deepest stack page ever written (index within the stack
        #: segment); None until the first stack write.  The stack grows
        #: down from stack_top, so depth = (npages - lowest index) pages.
        self._stack_low_page: Optional[int] = None
        #: called with (old_npages, new_npages) on every brk/sbrk; the
        #: incremental checkpointer uses it to notice shrink-then-regrow
        self.heap_resize_listeners: list[Callable[[int, int], None]] = []
        #: sub-page block granularity (bytes) when dcp tracking is on;
        #: None keeps the write paths block-free (the default)
        self._block_size: Optional[int] = None

    # -- basic queries -----------------------------------------------------------

    @property
    def page_size(self) -> int:
        return self.layout.page_size

    @property
    def brk(self) -> int:
        """Current program break (top of the heap)."""
        return self.heap.end

    def segments(self) -> Iterator[Segment]:
        """All mapped segments, text and stack included."""
        yield self.text
        yield self.data
        yield self.bss
        yield self.heap
        yield self.stack
        yield from self._mmaps.values()

    def data_segments(self) -> Iterator[Segment]:
        """The *data memory* of the paper: initialized data, BSS, heap,
        and mmap'ed regions -- what gets protected and checkpointed."""
        return iter(self._data_list())

    def _data_list(self) -> list[Segment]:
        cached = self._data_cache
        if cached is None:
            cached = self._data_cache = [seg for seg in self.segments()
                                         if seg.kind.is_data_memory]
        return cached

    def _invalidate_caches(self) -> None:
        self._data_cache = None
        self._last_seg = None
        self._data_totals = None

    def _totals(self) -> tuple[int, int]:
        totals = self._data_totals
        if totals is None:
            npages = 0
            nbytes = 0
            for seg in self._data_list():
                npages += seg.pages.npages
                nbytes += seg.size
            totals = self._data_totals = (npages, nbytes)
        return totals

    def mmap_segments(self) -> list[Segment]:
        """The mmap'ed segments, ordered by base address."""
        return [self._mmaps[b] for b in sorted(self._mmaps)]

    def find_segment(self, addr: int) -> Optional[Segment]:
        """The segment containing ``addr``, or None if unmapped."""
        last = self._last_seg
        if last is not None and last.contains(addr):
            return last
        for seg in self.segments():
            if seg.contains(addr):
                self._last_seg = seg
                return seg
        return None

    def data_footprint(self) -> int:
        """Bytes of mapped data memory (the paper's 'memory footprint')."""
        return self._totals()[1]

    def data_summary(self) -> tuple[int, int]:
        """``(dirty_pages, footprint_bytes)`` -- the alarm handler's read
        side.  Dirty counts are O(1) per segment (PageTable maintains
        them incrementally); the footprint comes from the totals cache."""
        dirty = 0
        for seg in self._data_list():
            dirty += seg.pages._ndirty
        return dirty, self._totals()[1]

    def reset_and_protect(self) -> int:
        """Clear dirty bits and re-arm write protection on every data
        page in one pass (the alarm handler's write side); returns the
        number of pages protected.

        Segments untouched since the last sweep (clean and still fully
        protected) are skipped via the page tables' O(1) flags; the
        returned charge count still covers every data page, exactly as
        an unconditional mprotect sweep would."""
        for seg in self._data_list():
            pages = seg.pages
            if pages._ndirty or not pages._all_protected:
                pages.reset_dirty()
                pages.protect_all()
        return self._totals()[0]

    # -- block tracking (dcp checkpoint support) --------------------------------------

    @property
    def block_size(self) -> Optional[int]:
        """Sub-page block granularity, or None when block tracking is off."""
        return self._block_size

    def enable_block_tracking(self, block_size: int) -> int:
        """Attach block-granular write-version tracking to every data
        segment (present and future); returns blocks per page.

        The write paths then stamp exactly the blocks each store covers
        with the same monotonic version the page table records, giving
        dcp checkpoints a sub-page view of what actually changed.
        Idempotent for the same block size; a second size raises.
        """
        if self.phantom:
            raise MappingError(
                "cannot track blocks on a phantom address space "
                "(rank owned by another shard)")
        if self._block_size is not None:
            if self._block_size != block_size:
                raise MappingError(
                    f"block tracking already enabled at "
                    f"{self._block_size} B, cannot switch to {block_size} B")
            return self.page_size // block_size
        if block_size < 1 or self.page_size % block_size:
            raise MappingError(
                f"block size {block_size} must be >= 1 and divide the "
                f"page size {self.page_size}")
        self._block_size = block_size
        for seg in self.data_segments():
            seg.enable_blocks(block_size)
        return self.page_size // block_size

    def _attach_blocks(self, seg: Segment) -> None:
        """Give a newly mapped data segment its block table when block
        tracking is on (arena-reused segments may already carry one)."""
        if (self._block_size is not None and seg.blocks is None
                and seg.kind.is_data_memory):
            seg.enable_blocks(self._block_size)

    # -- write paths ----------------------------------------------------------------

    def _next_version(self) -> int:
        self._version += 1
        return self._version

    def _resolve(self, addr: int, size: int) -> Segment:
        seg = self.find_segment(addr)
        if seg is None:
            raise SegmentationFault(addr)
        if addr + size > seg.end:
            raise SegmentationFault(seg.end, f"store of {size} bytes at "
                                    f"{addr:#x} runs past segment {seg.name!r}")
        return seg

    def cpu_write(self, addr: int, size: int,
                  data: Optional[bytes] = None) -> WriteResult:
        """A CPU store to ``[addr, addr+size)``; takes the faulting path.

        With the bytes backend, ``data`` (which must be exactly ``size``
        bytes) is stored as the real content.
        """
        seg = self._resolve(addr, size)
        lo, hi = seg.page_range(addr, size)
        off = addr - seg.base
        result = self.cpu_write_pages(seg, lo, hi, _byte_span=(off, off + size))
        self._store_bytes(seg, addr, size, data)
        return result

    def cpu_write_pages(self, seg: Segment, lo: int, hi: int,
                        _byte_span: Optional[tuple[int, int]] = None
                        ) -> WriteResult:
        """Fast path: CPU store covering pages ``[lo, hi)`` of ``seg``.

        ``_byte_span`` (segment byte offsets, set by the byte-granular
        :meth:`cpu_write` entry) narrows dcp block marking to the bytes
        actually stored; whole-page callers mark every covered block.
        """
        self._version = version = self._version + 1
        faults = seg.pages.cpu_write(lo, hi, version)
        blocks = seg.blocks
        if blocks is not None:
            if _byte_span is None:
                blocks.mark_pages(lo, hi, version)
            else:
                blocks.mark_bytes(_byte_span[0], _byte_span[1], version)
        if seg.kind is SegmentKind.STACK:
            if self._stack_low_page is None or lo < self._stack_low_page:
                self._stack_low_page = lo
        if faults and self.fault_listeners:
            for listener in self.fault_listeners:
                listener(seg, lo, hi, faults)
        return WriteResult(pages=hi - lo, faults=faults, missed=0)

    @property
    def stack_used_bytes(self) -> int:
        """Stack high-water mark: bytes from the stack top down to the
        deepest page ever written.  The paper's section 4.2 measured this
        under 42 KB for all its applications -- the justification for
        not write-protecting (or checkpoint-tracking) the stack."""
        if self._stack_low_page is None:
            return 0
        return (self.stack.npages - self._stack_low_page) * self.page_size

    def dma_write(self, addr: int, size: int,
                  data: Optional[bytes] = None) -> WriteResult:
        """A device store (NIC DMA): bypasses protection and dirty tracking."""
        seg = self._resolve(addr, size)
        lo, hi = seg.page_range(addr, size)
        version = self._next_version()
        missed = seg.pages.dma_write(lo, hi, version)
        blocks = seg.blocks
        if blocks is not None:
            off = addr - seg.base
            blocks.mark_bytes(off, off + size, version)
        self._store_bytes(seg, addr, size, data)
        return WriteResult(pages=hi - lo, faults=0, missed=missed)

    def _store_bytes(self, seg: Segment, addr: int, size: int,
                     data: Optional[bytes]) -> None:
        if data is None:
            return
        if len(data) != size:
            raise MappingError(
                f"data payload of {len(data)} bytes != store size {size}")
        if seg.contents is None:
            raise MappingError(
                f"segment {seg.name!r} has no bytes backend "
                "(construct the AddressSpace with store_contents=True)")
        seg.write_bytes(addr, data)

    def read(self, addr: int, size: int) -> None:
        """A load; only checks the mapping (the paper tracks writes only)."""
        self._resolve(addr, size)

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Real content (bytes backend only)."""
        seg = self._resolve(addr, size)
        return seg.read_bytes(addr, size)

    # -- heap (brk/sbrk) ----------------------------------------------------------------

    def sbrk(self, delta: int) -> int:
        """Grow (or shrink, ``delta < 0``) the heap; returns the *old* break.

        Like the syscall, the break moves by whole pages here (the real
        libc tracks sub-page breaks; the paper's tracker works at page
        granularity so nothing is lost).
        """
        old = self.heap.end
        new_size = self.heap.size + delta
        if new_size < 0:
            raise MappingError(f"sbrk({delta}) would shrink heap below zero")
        new_size = page_align_up(new_size, self.page_size)
        if self.heap.base + new_size > self.layout.heap_limit:
            raise MappingError(f"sbrk({delta}) exceeds heap limit")
        old_npages = self.heap.npages
        self.heap.resize_pages(new_size // self.page_size)
        # segment identity is stable, but the cached data totals are not
        self._data_totals = None
        for listener in self.heap_resize_listeners:
            listener(old_npages, self.heap.npages)
        return old

    # -- mmap/munmap ----------------------------------------------------------------

    def mmap(self, size: int, name: str = "") -> Segment:
        """Map a new anonymous region of at least ``size`` bytes; returns
        the new segment.  Listeners (the instrumentation library's mmap
        interception) are notified."""
        if size <= 0:
            raise MappingError(f"mmap of non-positive size {size}")
        size = page_align_up(size, self.page_size)
        parked = self._arena.get(size // self.page_size)
        if parked:
            # FIFO: segments come back in the order they were freed, so
            # a forward free / forward alloc iteration reproduces the
            # same address layout every time (LIFO would reverse
            # same-size groups and oscillate with period 2)
            seg = parked.pop(0)
            self._arena_count -= 1
            # prefer the segment's previous base: the steady-state
            # alloc/free pattern then sees *stable addresses* iteration
            # after iteration (the cursor scan below would drift upward)
            if self._mmap_overlap(seg.base, size) is None:
                base = seg.base
            else:
                base = self._find_mmap_gap(size)
            seg.rebind(base, name or f"mmap@{base:#x}")
        else:
            base = self._find_mmap_gap(size)
            seg = Segment(SegmentKind.MMAP, base, size, self.page_size,
                          name=name or f"mmap@{base:#x}",
                          store_contents=self.store_contents,
                          phantom=self.phantom)
        self._attach_blocks(seg)
        self._mmaps[base] = seg
        self._invalidate_caches()
        for listener in self.map_listeners:
            listener(seg)
        return seg

    def mmap_fixed(self, base: int, size: int, name: str = "") -> Segment:
        """Map an anonymous region at exactly ``base`` (MAP_FIXED); used
        by checkpoint restore to rebuild the original geometry."""
        if size <= 0:
            raise MappingError(f"mmap of non-positive size {size}")
        if base % self.page_size:
            raise MappingError(f"mmap base {base:#x} not page-aligned")
        size = page_align_up(size, self.page_size)
        if not (self.layout.mmap_base <= base
                and base + size <= self.layout.mmap_limit):
            raise MappingError(
                f"fixed mapping [{base:#x}, {base + size:#x}) outside the "
                "mmap area")
        conflict = self._mmap_overlap(base, size)
        if conflict is not None:
            raise MappingError(
                f"fixed mapping at {base:#x} overlaps {conflict!r}")
        seg = Segment(SegmentKind.MMAP, base, size, self.page_size,
                      name=name or f"mmap@{base:#x}",
                      store_contents=self.store_contents,
                      phantom=self.phantom)
        self._attach_blocks(seg)
        self._mmaps[base] = seg
        self._invalidate_caches()
        for listener in self.map_listeners:
            listener(seg)
        return seg

    def _find_mmap_gap(self, size: int) -> int:
        """First-fit scan of the mmap area from the cursor, wrapping once."""
        for start in (self._mmap_cursor, self.layout.mmap_base):
            base = start
            while base + size <= self.layout.mmap_limit:
                conflict = self._mmap_overlap(base, size)
                if conflict is None:
                    self._mmap_cursor = base + size
                    return base
                base = conflict.end
        raise MappingError(f"mmap area exhausted for request of {size} bytes")

    def _mmap_overlap(self, base: int, size: int) -> Optional[Segment]:
        for seg in self._mmaps.values():
            if seg.overlaps(base, size):
                return seg
        return None

    def munmap(self, addr: int, size: int) -> None:
        """Unmap ``[addr, addr+size)``.

        The range must lie entirely within a single mapped mmap segment
        (partial unmaps split the segment, like the real syscall).
        """
        if size <= 0:
            raise MappingError(f"munmap of non-positive size {size}")
        if addr % self.page_size:
            raise MappingError(f"munmap address {addr:#x} not page-aligned")
        size = page_align_up(size, self.page_size)
        seg = self._mmaps.get(addr)
        if seg is None or addr + size > seg.end:
            seg = next((s for s in self._mmaps.values()
                        if s.base <= addr and addr + size <= s.end), None)
        if seg is None:
            raise MappingError(
                f"munmap range [{addr:#x}, {addr + size:#x}) is not a mapped "
                "sub-range of any mmap segment")
        del self._mmaps[seg.base]
        self._invalidate_caches()
        for listener in self.unmap_listeners:
            listener(seg)

        if addr == seg.base and addr + size == seg.end:
            # whole-segment unmap: park the host object for arena reuse
            # by the next same-size mmap (no remainder to re-map)
            self._park(seg)
            return

        # keep the head and/or tail remainders mapped (with their page
        # state intact -- partial munmap must not forget surviving content)
        orig_base, orig_end = seg.base, seg.end
        # snapshot the byte payload before any truncation mutates it
        orig_contents = (bytes(seg.contents) if seg.contents is not None
                         else None)
        if addr > seg.base:
            head_pages = (addr - seg.base) // self.page_size
            mid_table = seg.pages.split(head_pages)  # seg keeps the head
            mid_blocks = (seg.blocks.split(head_pages)
                          if seg.blocks is not None else None)
            if seg.contents is not None:
                del seg.contents[head_pages * self.page_size:]
            self._mmaps[seg.base] = seg
            self._invalidate_caches()
        else:
            mid_table = seg.pages
            mid_blocks = seg.blocks
        if addr + size < orig_end:
            tail_base = addr + size
            tail_table = mid_table.split(size // self.page_size)
            tail = Segment(SegmentKind.MMAP, tail_base, orig_end - tail_base,
                           self.page_size, name=f"{seg.name}+tail",
                           store_contents=self.store_contents)
            tail.pages = tail_table
            if mid_blocks is not None:
                tail.blocks = mid_blocks.split(size // self.page_size)
            if orig_contents is not None:
                off = tail_base - orig_base
                tail.contents = bytearray(
                    orig_contents[off:off + (orig_end - tail_base)])
            self._mmaps[tail_base] = tail
            self._invalidate_caches()
            for listener in self.map_listeners:
                listener(tail)

    def _park(self, seg: Segment) -> None:
        """Stash a fully-unmapped segment for reuse by a same-size mmap.

        Bytes-backend segments are not parked (their payload would need a
        zero-fill to match a fresh mapping, forfeiting the saving), and
        the arena is capped so pathological unmap streams cannot pin
        unbounded host memory."""
        if seg.contents is not None or self._arena_count >= self._arena_cap:
            return
        self._arena.setdefault(seg.npages, []).append(seg)
        self._arena_count += 1

    def unmap_segment(self, seg: Segment) -> None:
        """Unmap a whole mmap segment by identity."""
        self.munmap(seg.base, seg.size)

    # -- protection / dirty state (tracker support) ----------------------------------

    def protect_data(self) -> int:
        """Write-protect all data-memory pages; returns pages protected."""
        total = 0
        for seg in self.data_segments():
            seg.pages.protect_all()
            total += seg.npages
        return total

    def unprotect_data(self) -> None:
        """Drop write protection from every data-memory page."""
        for seg in self.data_segments():
            seg.pages.unprotect_all()

    def reset_dirty(self) -> None:
        """Clear the dirty bits of every data segment (alarm reset)."""
        for seg in self.data_segments():
            seg.pages.reset_dirty()

    def dirty_pages(self) -> int:
        """Dirty pages across currently mapped data segments -- the IWS in
        pages.  Pages of segments unmapped since the last reset are gone
        (the paper's memory-exclusion behaviour)."""
        return sum(seg.pages.dirty_count() for seg in self.data_segments())

    def dirty_bytes(self) -> int:
        """The IWS in bytes (dirty pages times the page size)."""
        return self.dirty_pages() * self.page_size

    # -- state signatures (for checkpoint verification) --------------------------------

    def state_signature(self) -> dict[tuple, tuple]:
        """Snapshot of data-memory geometry and page versions.

        Maps ``(kind, base) -> (size, versions)``.  The key is positional
        rather than the segment id so a *restored* address space (whose
        segments are new objects) compares equal to the original at
        checkpoint time.  Equal signatures mean identical data memory.
        """
        return {
            (seg.kind.value, seg.base): (seg.size, seg.pages.versions.copy())
            for seg in self.data_segments()
        }

    @staticmethod
    def signatures_equal(a: dict[tuple, tuple], b: dict[tuple, tuple]) -> bool:
        if a.keys() != b.keys():
            return False
        for key, (size, versions) in a.items():
            size2, versions2 = b[key]
            if size != size2 or not np.array_equal(versions, versions2):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.units import fmt_bytes
        return (f"<AddressSpace data={fmt_bytes(self.data_footprint())} "
                f"mmaps={len(self._mmaps)} brk={self.brk:#x}>")

"""Simulated paged virtual memory.

This package models exactly the machinery the paper's instrumentation
library relies on:

- an address space divided into text, data, BSS, heap, stack and mmap
  segments (:mod:`~repro.mem.layout`, :mod:`~repro.mem.segment`);
- per-page *write protection* and *dirty* state, maintained in vectorized
  NumPy bitmaps (:mod:`~repro.mem.pagetable`);
- the fault path: a CPU store to a protected page raises a write fault,
  which the registered handler (the dirty-page tracker) services by
  recording the page and unprotecting it -- so each page faults at most
  once per checkpoint timeslice;
- DMA writes (the QsNet NIC) which **bypass** protection and dirty
  tracking, reproducing the hazard the paper works around with bounce
  buffers;
- page *content signatures* (64-bit write versions) so checkpoint/restore
  correctness can be verified without storing gigabytes.
"""

from repro.mem.blocks import BlockTable
from repro.mem.layout import Layout
from repro.mem.pagetable import PageTable, PhantomPageTable
from repro.mem.segment import Segment, SegmentKind
from repro.mem.address_space import AddressSpace, WriteResult

__all__ = [
    "AddressSpace",
    "BlockTable",
    "Layout",
    "PageTable",
    "PhantomPageTable",
    "Segment",
    "SegmentKind",
    "WriteResult",
]

"""Memory segments: contiguous page-aligned regions of the address space.

The paper partitions a UNIX process's state into text, data (initialized
+ uninitialized/BSS), heap, stack, and mmap'ed memory.  The *data memory*
-- everything except text and stack -- is what the instrumentation
library protects and what dominates checkpoint size.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from repro.errors import MappingError
from repro.mem.blocks import BlockTable
from repro.mem.pagetable import PageTable, PhantomPageTable
from repro.units import is_power_of_two


class SegmentKind(enum.Enum):
    """What role a segment plays in the process image."""

    TEXT = "text"
    DATA = "data"        # initialized data
    BSS = "bss"          # uninitialized data, zero-filled at load
    HEAP = "heap"
    STACK = "stack"
    MMAP = "mmap"

    @property
    def is_data_memory(self) -> bool:
        """True for the segments the paper checkpoints (section 4.1): the
        data region -- initialized data, BSS, heap and mmap'ed memory."""
        return self in (SegmentKind.DATA, SegmentKind.BSS,
                        SegmentKind.HEAP, SegmentKind.MMAP)


_segment_ids = itertools.count(1)


class Segment:
    """A page-aligned contiguous mapping with its own :class:`PageTable`.

    ``base`` and ``size`` are bytes; ``size`` must be a whole number of
    pages.  Segments carry a process-unique ``sid`` so checkpoints can
    refer to them stably across growth and remapping.
    """

    __slots__ = ("sid", "kind", "base", "page_size", "pages", "name",
                 "contents", "blocks")

    def __init__(self, kind: SegmentKind, base: int, size: int,
                 page_size: int, name: str = "", sid: Optional[int] = None,
                 store_contents: bool = False, phantom: bool = False):
        if not is_power_of_two(page_size):
            raise MappingError(f"bad page size {page_size}")
        if base % page_size:
            raise MappingError(f"segment base {base:#x} not page-aligned")
        if size < 0 or size % page_size:
            raise MappingError(f"segment size {size} not a whole page count")
        self.sid = next(_segment_ids) if sid is None else sid
        self.kind = kind
        self.base = base
        self.page_size = page_size
        # phantom segments (ranks owned by another shard) carry O(1)
        # no-op page state instead of the real arrays
        self.pages = (PhantomPageTable(size // page_size) if phantom
                      else PageTable(size // page_size))
        self.name = name or kind.value
        #: actual byte payload (the bytes backend); None under the
        #: default signature-only backend
        self.contents: Optional[bytearray] = (
            bytearray(size) if store_contents else None)
        #: sub-page block-version state (dcp checkpoint mode); None until
        #: :meth:`enable_blocks` / AddressSpace.enable_block_tracking
        self.blocks: Optional[BlockTable] = None

    def enable_blocks(self, block_size: int) -> None:
        """Attach block-granular write tracking at ``block_size`` bytes
        per block (idempotent for the same size)."""
        if self.blocks is not None:
            if self.blocks.block_size != block_size:
                raise MappingError(
                    f"segment {self.name!r} already tracks "
                    f"{self.blocks.block_size}-byte blocks")
            return
        self.blocks = BlockTable(self.npages, self.page_size, block_size)

    # -- geometry -------------------------------------------------------------

    @property
    def size(self) -> int:
        """Current size in bytes."""
        return self.pages.npages * self.page_size

    @property
    def end(self) -> int:
        """One past the last mapped byte."""
        return self.base + self.size

    @property
    def npages(self) -> int:
        return self.pages.npages

    def contains(self, addr: int) -> bool:
        """True when ``addr`` lies inside the mapping."""
        return self.base <= addr < self.end

    def overlaps(self, base: int, size: int) -> bool:
        """True when ``[base, base+size)`` intersects this mapping."""
        return base < self.end and self.base < base + size

    def page_index(self, addr: int) -> int:
        """Index (within this segment) of the page holding ``addr``."""
        if not self.contains(addr):
            raise MappingError(
                f"address {addr:#x} outside segment {self.name!r} "
                f"[{self.base:#x}, {self.end:#x})")
        return (addr - self.base) // self.page_size

    def page_range(self, addr: int, size: int) -> tuple[int, int]:
        """Page index range ``[lo, hi)`` covering bytes ``[addr, addr+size)``."""
        if size <= 0:
            raise MappingError(f"non-positive access size {size}")
        if not (self.base <= addr and addr + size <= self.end):
            raise MappingError(
                f"byte range [{addr:#x}, {addr + size:#x}) outside segment "
                f"{self.name!r} [{self.base:#x}, {self.end:#x})")
        lo = (addr - self.base) // self.page_size
        hi = (addr + size - 1 - self.base) // self.page_size + 1
        return lo, hi

    # -- arena reuse ----------------------------------------------------------

    def rebind(self, base: int, name: str) -> None:
        """Reincarnate a parked segment as a brand-new mapping at ``base``
        (the region arena's reuse path).

        A fresh ``sid`` is minted from the same counter a new
        :class:`Segment` would draw from, so everything keyed by sid --
        incremental-checkpoint deltas, replayed page versions, integrity
        digests -- sees exactly what a from-scratch construction would
        have produced; only the host-side allocations are saved.  The
        page table is recycled to its fresh all-clean state.
        """
        if base % self.page_size:
            raise MappingError(f"segment base {base:#x} not page-aligned")
        self.sid = next(_segment_ids)
        self.base = base
        self.name = name
        self.pages.recycle()
        if self.blocks is not None:
            self.blocks.recycle()

    # -- growth ---------------------------------------------------------------

    def resize_pages(self, npages: int) -> None:
        """Grow/shrink in place (heap via brk, stack growth).  New byte
        content arrives zero-filled, like the kernel's fresh pages."""
        self.pages.resize(npages)
        if self.blocks is not None:
            self.blocks.resize(npages)
        if self.contents is not None:
            new_size = npages * self.page_size
            if new_size > len(self.contents):
                self.contents.extend(bytes(new_size - len(self.contents)))
            else:
                del self.contents[new_size:]

    # -- byte content (bytes backend only) -----------------------------------------

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Store real byte content (after the page-table write path has
        run).  No-op request on the signature-only backend is an error --
        callers should check ``contents is not None``."""
        if self.contents is None:
            raise MappingError(
                f"segment {self.name!r} does not store byte contents")
        lo, hi = self.page_range(addr, len(data))  # bounds check
        offset = addr - self.base
        self.contents[offset:offset + len(data)] = data

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Read real content (bytes backend only)."""
        if self.contents is None:
            raise MappingError(
                f"segment {self.name!r} does not store byte contents")
        self.page_range(addr, size)  # bounds check
        offset = addr - self.base
        return bytes(self.contents[offset:offset + size])

    def page_bytes(self, page_index: int) -> bytes:
        """One whole page of content (checkpoint capture granularity)."""
        if self.contents is None:
            raise MappingError(
                f"segment {self.name!r} does not store byte contents")
        if not (0 <= page_index < self.npages):
            raise MappingError(f"page {page_index} outside segment")
        off = page_index * self.page_size
        return bytes(self.contents[off:off + self.page_size])

    def set_page_bytes(self, page_index: int, data: bytes) -> None:
        """Overwrite one whole page of content (checkpoint restore)."""
        if self.contents is None:
            raise MappingError(
                f"segment {self.name!r} does not store byte contents")
        if len(data) != self.page_size:
            raise MappingError(
                f"page payload of {len(data)} bytes != page size "
                f"{self.page_size}")
        if not (0 <= page_index < self.npages):
            raise MappingError(f"page {page_index} outside segment")
        off = page_index * self.page_size
        self.contents[off:off + self.page_size] = data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Segment #{self.sid} {self.name!r} {self.kind.value} "
                f"[{self.base:#x}, {self.end:#x}) {self.npages}p>")

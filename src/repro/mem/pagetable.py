"""Vectorized per-page state for one segment.

Three NumPy arrays hold the page state:

``protected``
    write-protection bit, set by the tracker's ``mprotect`` sweep;
``dirty``
    set when a CPU store hits a *protected* page (the fault path) --
    exactly the paper's definition of a dirty page: "pages in which the
    write accesses occur" while protection is armed;
``versions``
    64-bit content signature, bumped on every write (CPU or DMA).  Two
    address spaces hold identical data iff their version arrays match,
    which is how checkpoint-restore correctness is asserted without
    storing page payloads.

All bulk operations are O(range) NumPy slices; a full-scale Sage-1000MB
footprint is ~61k pages, so a whole timeslice costs microseconds.

The three visible arrays are *views* into over-allocated backing buffers
that grow geometrically, so the brk/sbrk growth pattern (thousands of
small increments during Sage's allocation phase) costs amortized O(1)
per page instead of one full ``np.concatenate`` copy per call.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import MappingError


class PageTable:
    """Page-granular protection / dirty / version state."""

    __slots__ = ("npages", "protected", "dirty", "versions",
                 "_capacity", "_protected_buf", "_dirty_buf", "_versions_buf",
                 "_ndirty", "_dirty_overlap", "_all_protected", "_hwm")

    def __init__(self, npages: int):
        if npages < 0:
            raise MappingError(f"negative page count: {npages}")
        self.npages = npages
        #: exact dirty-page count, maintained incrementally so the
        #: per-timeslice alarm sweep is O(1) per segment instead of a
        #: count_nonzero scan
        self._ndirty = 0
        #: True when protection may have been armed over dirty pages
        #: (protect-without-reset); forces the slow newly-dirty count in
        #: cpu_write until the next reset
        self._dirty_overlap = False
        #: True when every page is known write-protected -- lets the
        #: alarm's re-protect sweep skip untouched segments entirely
        self._all_protected = False
        self._allocate(npages, npages)

    def _allocate(self, capacity: int, preserve: int = 0) -> None:
        """(Re)allocate the backing buffers at ``capacity`` pages, carrying
        over the first ``preserve`` pages of live state."""
        protected = np.zeros(capacity, dtype=bool)
        dirty = np.zeros(capacity, dtype=bool)
        versions = np.zeros(capacity, dtype=np.uint64)
        if preserve and getattr(self, "_protected_buf", None) is not None:
            protected[:preserve] = self._protected_buf[:preserve]
            dirty[:preserve] = self._dirty_buf[:preserve]
            versions[:preserve] = self._versions_buf[:preserve]
        self._capacity = capacity
        self._protected_buf = protected
        self._dirty_buf = dirty
        self._versions_buf = versions
        #: high-water mark: buffer pages at index >= _hwm have never held
        #: state since this allocation, so re-exposing them needs no wipe
        self._hwm = preserve
        self._reslice()

    def _reslice(self) -> None:
        """Refresh the public views after npages or the buffers changed."""
        n = self.npages
        self.protected = self._protected_buf[:n]
        self.dirty = self._dirty_buf[:n]
        self.versions = self._versions_buf[:n]

    # -- writes ---------------------------------------------------------------

    def cpu_write(self, lo: int, hi: int, version: int) -> int:
        """A CPU store to pages ``[lo, hi)``.

        Protected pages fault: they are marked dirty and unprotected (the
        SEGV handler's action).  Returns the number of faults taken.
        """
        if not 0 <= lo <= hi <= self.npages:
            self._check_range(lo, hi)  # raises with the full message
        sl = slice(lo, hi)
        if self._all_protected and not self._dirty_overlap and lo < hi:
            # first store after a full re-protect sweep: every page in
            # range faults, none is dirty -- plain fills, no counting
            nfaults = hi - lo
            self.dirty[sl] = True
            self.protected[sl] = False
            self._ndirty += nfaults
            self._all_protected = False
            self.versions[sl] = version
            return nfaults
        prot = self.protected[sl]
        nfaults = int(np.count_nonzero(prot))
        if nfaults:
            if self._dirty_overlap:
                # protection was armed over an existing dirty set, so a
                # faulting page may already be dirty: count exactly
                newly = nfaults - int(np.count_nonzero(self.dirty[sl] & prot))
            else:
                # invariant dirty & protected == 0 holds (reset always
                # precedes re-protect), so every fault dirties a new page
                newly = nfaults
            self.dirty[sl] |= prot
            self.protected[sl] = False
            self._ndirty += newly
            self._all_protected = False
        self.versions[sl] = version
        return nfaults

    def dma_write(self, lo: int, hi: int, version: int) -> int:
        """A device (NIC) write to pages ``[lo, hi)``.

        DMA bypasses the MMU: content changes but no fault is taken, the
        dirty bit is *not* set, and protection is left in place.  Returns
        the number of pages whose modification went unrecorded (i.e. that
        were neither already dirty nor unprotected-and-tracked) -- the
        pages an incremental checkpoint would silently miss.

        A page counts as missed only when it is protected *and* clean:
        the protection armed by the tracker proves the page was meant to
        fault on its next store, and the DMA defeated exactly that.
        Unprotected clean pages are outside the armed tracking window
        (pre-arm startup, or an explicit unprotect) and were never going
        to fault anyway; dirty pages are already in the IWS.
        """
        self._check_range(lo, hi)
        sl = slice(lo, hi)
        missed = int(np.count_nonzero(self.protected[sl] & ~self.dirty[sl]))
        self.versions[sl] = version
        return missed

    # -- protection ------------------------------------------------------------

    def protect_all(self) -> None:
        """Write-protect every page (the alarm handler's re-protect sweep)."""
        if not self._all_protected:
            self.protected[:] = True
            self._all_protected = True
        if self._ndirty:
            self._dirty_overlap = True

    def protect_range(self, lo: int, hi: int, value: bool = True) -> None:
        """mprotect a sub-range."""
        self._check_range(lo, hi)
        self.protected[lo:hi] = value
        if value:
            if self._ndirty:
                self._dirty_overlap = True
            if lo == 0 and hi == self.npages:
                self._all_protected = True
        elif lo < hi:
            self._all_protected = False

    def unprotect_all(self) -> None:
        """Drop write protection from every page."""
        self.protected[:] = False
        self._all_protected = False
        # no protected page survives, so no protected page is dirty
        self._dirty_overlap = False

    def any_protected(self, lo: int, hi: int) -> bool:
        """Whether any page in ``[lo, hi)`` is write-protected."""
        self._check_range(lo, hi)
        if lo >= hi:
            return False
        if self._all_protected:
            return True
        return bool(self.protected[lo:hi].any())

    # -- dirty accounting --------------------------------------------------------

    def dirty_count(self) -> int:
        """Number of dirty pages.  O(1): maintained incrementally."""
        return self._ndirty

    def dirty_indices(self) -> np.ndarray:
        """Indices of dirty pages (ascending)."""
        return np.flatnonzero(self.dirty)

    def reset_dirty(self) -> None:
        """Clear the dirty set (start of a new timeslice)."""
        if self._ndirty:
            self.dirty[:] = False
            self._ndirty = 0
        self._dirty_overlap = False

    # -- growth / shrink ------------------------------------------------------------

    def resize(self, npages: int) -> None:
        """Grow or shrink the table.  New pages arrive unprotected, clean,
        and at version 0 (zero-filled by the kernel).

        Shrinking just narrows the views; growing back within capacity
        wipes only the re-exposed range that ever held state (tracked by
        a high-water mark), so state dropped by a shrink never resurfaces
        and the brk shrink-then-regrow cycle costs O(pages moved), never
        O(table) and never a buffer copy.  Growth past capacity
        reallocates geometrically.
        """
        if npages < 0:
            raise MappingError(f"negative page count: {npages}")
        old = self.npages
        if npages == old:
            return
        if npages > self._capacity:
            # geometric over-allocation: amortized O(1) per added page
            self._allocate(max(npages, 2 * self._capacity, 8), preserve=old)
        elif npages > old:
            # re-expose pages within capacity: wipe stale tail state, but
            # only up to the high-water mark -- beyond it the buffers are
            # still in their freshly-allocated all-zero state
            wipe_hi = min(npages, self._hwm)
            if old < wipe_hi:
                self._protected_buf[old:wipe_hi] = False
                self._dirty_buf[old:wipe_hi] = False
                self._versions_buf[old:wipe_hi] = 0
        if npages > self._hwm:
            # every exposed page may come to hold state
            self._hwm = npages
        self.npages = npages
        self._reslice()
        if npages < old:
            # dropped pages may have been dirty: subtract exactly those
            # (O(pages dropped), not a recount of the whole table)
            if self._ndirty:
                self._ndirty -= int(
                    np.count_nonzero(self._dirty_buf[npages:old]))
        else:
            # new pages arrive unprotected
            self._all_protected = False

    def recycle(self) -> None:
        """Reset to the state a freshly constructed table of the same
        ``npages`` would have: every page unprotected, clean, version 0
        (the region arena reuses a parked segment instead of rebuilding
        it).  Only the range that ever held state (up to the high-water
        mark) is wiped, and the over-allocated buffers are kept."""
        hwm = self._hwm
        if hwm:
            self._protected_buf[:hwm] = False
            self._dirty_buf[:hwm] = False
            self._versions_buf[:hwm] = 0
        # a fresh PageTable(npages) starts with _hwm == npages
        self._hwm = self.npages
        self._ndirty = 0
        self._dirty_overlap = False
        self._all_protected = False

    def split(self, at: int) -> "PageTable":
        """Split off pages ``[at, npages)`` into a new table (for partial
        munmap); this table keeps ``[0, at)``."""
        self._check_range(at, self.npages)
        tail = PageTable(self.npages - at)
        tail.protected[:] = self.protected[at:]
        tail.dirty[:] = self.dirty[at:]
        tail.versions[:] = self.versions[at:]
        tail._ndirty = int(np.count_nonzero(tail.dirty))
        tail._dirty_overlap = self._dirty_overlap
        tail._all_protected = False
        self.resize(at)
        return tail

    # -- internals ---------------------------------------------------------------

    def _check_range(self, lo: int, hi: int) -> None:
        if not (0 <= lo <= hi <= self.npages):
            raise MappingError(
                f"page range [{lo}, {hi}) outside table of {self.npages} pages")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PageTable npages={self.npages} dirty={self.dirty_count()} "
                f"protected={int(np.count_nonzero(self.protected))}>")


class PhantomPageTable:
    """O(1) stand-in for a rank simulated by *another* shard.

    A sharded run replicates the full event skeleton in every worker but
    keeps real page state only for the ranks the worker owns; remote
    ranks carry a phantom table.  Every operation is a constant-time
    no-op: stores take no faults, nothing is ever dirty, and the alarm's
    re-protect sweep skips the segment via the ``_ndirty == 0`` /
    ``_all_protected`` fast flags -- so a worker pays the page-state cost
    of only its own rank group.

    Valid only when simulated *timing* is independent of page state:
    no overhead charging, no checkpoint capture, receive interception on
    (enforced by the shard runner).  Asking a phantom for content state
    (``protected`` / ``dirty`` / ``versions``) raises, so any accidental
    use outside that envelope fails loudly instead of silently lying.
    """

    __slots__ = ("npages",)

    #: class-level constants: the alarm sweep reads these attributes
    _ndirty = 0
    _dirty_overlap = False
    _all_protected = True

    def __init__(self, npages: int):
        if npages < 0:
            raise MappingError(f"negative page count: {npages}")
        self.npages = npages

    def _no_state(self):
        raise MappingError(
            "phantom page table has no page state (rank owned by another "
            "shard)")

    protected = property(_no_state)
    dirty = property(_no_state)
    versions = property(_no_state)

    def cpu_write(self, lo: int, hi: int, version: int) -> int:
        """A CPU store: no state, no faults."""
        self._check_range(lo, hi)
        return 0

    def dma_write(self, lo: int, hi: int, version: int) -> int:
        """A device store: no state, nothing missed."""
        self._check_range(lo, hi)
        return 0

    def protect_all(self) -> None:
        """No-op (phantoms are permanently 'all protected')."""

    def protect_range(self, lo: int, hi: int, value: bool = True) -> None:
        """No-op beyond bounds checking."""
        self._check_range(lo, hi)

    def unprotect_all(self) -> None:
        """No-op."""

    def any_protected(self, lo: int, hi: int) -> bool:
        """Always False: nothing faults and DMA never conflicts."""
        self._check_range(lo, hi)
        return False

    def dirty_count(self) -> int:
        """Always zero."""
        return 0

    def dirty_indices(self) -> np.ndarray:
        """Always empty."""
        return np.zeros(0, dtype=np.int64)

    def reset_dirty(self) -> None:
        """No-op."""

    def recycle(self) -> None:
        """No-op (phantoms carry no state to reset)."""

    def resize(self, npages: int) -> None:
        """Track the new size (geometry must stay exact for bounds
        checks and footprint totals); no state to carry or wipe."""
        if npages < 0:
            raise MappingError(f"negative page count: {npages}")
        self.npages = npages

    def split(self, at: int) -> "PhantomPageTable":
        """Split off pages ``[at, npages)`` into a new phantom."""
        self._check_range(at, self.npages)
        tail = PhantomPageTable(self.npages - at)
        self.npages = at
        return tail

    def _check_range(self, lo: int, hi: int) -> None:
        if not (0 <= lo <= hi <= self.npages):
            raise MappingError(
                f"page range [{lo}, {hi}) outside table of {self.npages} pages")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PhantomPageTable npages={self.npages}>"

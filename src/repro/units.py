"""Units, constants, and formatting helpers shared across the library.

The paper reports sizes in decimal megabytes (MB = 10**6 bytes is *not*
what it uses -- LANL performance papers of that era use binary MB) and
bandwidths in MB/s.  We follow the binary convention (1 MB = 2**20 bytes)
everywhere, which is what the instrumentation library in the paper counted
(whole pages of 2**n bytes).
"""

from __future__ import annotations

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

#: Default page size.  Linux on the Itanium II systems used in the paper
#: ran with 16 KiB pages; this is configurable throughout the library.
DEFAULT_PAGE_SIZE: int = 16 * KiB

#: Peak bandwidth of the Quadrics QsNet II (Elan4) network, per the paper, B/s.
QSNET2_BANDWIDTH: float = 900.0 * MiB

#: Peak bandwidth of an Ultra320 SCSI disk, per the paper, B/s.
SCSI_BANDWIDTH: float = 320.0 * MiB

MICROSECOND: float = 1e-6
MILLISECOND: float = 1e-3


def mb(nbytes: float) -> float:
    """Convert a byte count to (binary) megabytes."""
    return nbytes / MiB


def from_mb(megabytes: float) -> int:
    """Convert (binary) megabytes to a whole number of bytes."""
    return int(round(megabytes * MiB))


def mbps(bytes_per_second: float) -> float:
    """Convert B/s to MB/s."""
    return bytes_per_second / MiB


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count, e.g. ``'954.6 MB'``."""
    sign = "-" if nbytes < 0 else ""
    n = abs(float(nbytes))
    for unit, width in (("GB", GiB), ("MB", MiB), ("KB", KiB)):
        if n >= width:
            return f"{sign}{n / width:.1f} {unit}"
    return f"{sign}{n:.0f} B"


def fmt_bandwidth(bytes_per_second: float) -> str:
    """Human-readable bandwidth, e.g. ``'78.8 MB/s'``."""
    return fmt_bytes(bytes_per_second) + "/s"


def fmt_seconds(seconds: float) -> str:
    """Human-readable duration."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= MILLISECOND:
        return f"{seconds / MILLISECOND:.2f} ms"
    return f"{seconds / MICROSECOND:.1f} us"


def pages_for(nbytes: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Number of pages needed to hold ``nbytes`` (ceiling division)."""
    if nbytes < 0:
        raise ValueError(f"negative byte count: {nbytes}")
    return -(-nbytes // page_size)


def page_align_down(addr: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Round ``addr`` down to a page boundary."""
    return addr - (addr % page_size)


def page_align_up(addr: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Round ``addr`` up to a page boundary."""
    return page_align_down(addr + page_size - 1, page_size)


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0

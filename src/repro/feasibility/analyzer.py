"""The feasibility verdict: measured demand versus available bandwidth.

Reproduces the paper's section 6.3 comparison: even at the most
demanding setting (a 1 s timeslice), the average IB of the heaviest
application (Sage-1000MB, 78.8 MB/s) is ~9 % of the QsNet II peak and
~25 % of the SCSI disk peak -- comfortably feasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.feasibility.technology import TechnologyEnvelope
from repro.metrics.bandwidth import IBStats
from repro.units import MiB, fmt_bandwidth


@dataclass(frozen=True)
class FeasibilityVerdict:
    """One application's demand against one technology envelope."""

    app_name: str
    timeslice: float
    avg_demand: float          #: B/s
    max_demand: float          #: B/s
    envelope: TechnologyEnvelope
    headroom_required: float   #: demand may use at most this fraction

    @property
    def avg_fraction_of_network(self) -> float:
        return self.avg_demand / self.envelope.network_bandwidth

    @property
    def avg_fraction_of_disk(self) -> float:
        return self.avg_demand / self.envelope.disk_bandwidth

    @property
    def max_fraction_of_network(self) -> float:
        return self.max_demand / self.envelope.network_bandwidth

    @property
    def max_fraction_of_disk(self) -> float:
        return self.max_demand / self.envelope.disk_bandwidth

    @property
    def feasible(self) -> bool:
        """Peak demand fits in the bottleneck with the required headroom."""
        return (self.max_demand
                <= self.envelope.bottleneck_bandwidth * self.headroom_required)

    def as_row(self) -> str:
        """One printable verdict row."""
        return (f"{self.app_name:14s} avg={self.avg_demand / MiB:7.1f} MB/s "
                f"({self.avg_fraction_of_network:5.1%} net, "
                f"{self.avg_fraction_of_disk:5.1%} disk)  "
                f"max={self.max_demand / MiB:7.1f} MB/s  "
                f"{'FEASIBLE' if self.feasible else 'INFEASIBLE'}")


class FeasibilityAnalyzer:
    """Turns IB measurements into feasibility verdicts."""

    def __init__(self, envelope: Optional[TechnologyEnvelope] = None,
                 headroom_required: float = 1.0):
        if not (0 < headroom_required <= 1.0):
            raise ConfigurationError(
                f"headroom fraction must be in (0, 1]: {headroom_required}")
        self.envelope = envelope or TechnologyEnvelope()
        self.headroom_required = headroom_required

    def assess(self, app_name: str, stats: IBStats) -> FeasibilityVerdict:
        """Verdict from measured IB statistics."""
        return self.assess_rates(app_name, stats.avg_mbps * MiB,
                                 stats.max_mbps * MiB, stats.timeslice)

    def assess_rates(self, app_name: str, avg_bps: float, max_bps: float,
                     timeslice: float = 1.0) -> FeasibilityVerdict:
        """Verdict from raw average/maximum demand rates (B/s)."""
        if avg_bps < 0 or max_bps < avg_bps * (1.0 - 1e-9):
            raise ConfigurationError(
                f"bad demand rates avg={avg_bps}, max={max_bps}")
        max_bps = max(max_bps, avg_bps)  # absorb float rounding
        return FeasibilityVerdict(app_name=app_name, timeslice=timeslice,
                                  avg_demand=avg_bps, max_demand=max_bps,
                                  envelope=self.envelope,
                                  headroom_required=self.headroom_required)

    def report(self, verdicts: list[FeasibilityVerdict]) -> str:
        """A printable table (one row per application)."""
        lines = [
            f"Technology envelope ({self.envelope.year}): "
            f"network {fmt_bandwidth(self.envelope.network_bandwidth)}, "
            f"disk {fmt_bandwidth(self.envelope.disk_bandwidth)}",
        ]
        lines += [v.as_row() for v in verdicts]
        n_ok = sum(v.feasible for v in verdicts)
        lines.append(f"{n_ok}/{len(verdicts)} applications feasible")
        return "\n".join(lines)

"""The feasibility verdict: measured demand versus available bandwidth.

Reproduces the paper's section 6.3 comparison: even at the most
demanding setting (a 1 s timeslice), the average IB of the heaviest
application (Sage-1000MB, 78.8 MB/s) is ~9 % of the QsNet II peak and
~25 % of the SCSI disk peak -- comfortably feasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.feasibility.technology import TechnologyEnvelope
from repro.metrics.bandwidth import IBStats
from repro.units import MiB, fmt_bandwidth


@dataclass(frozen=True)
class FeasibilityVerdict:
    """One application's demand against one technology envelope."""

    app_name: str
    timeslice: float
    avg_demand: float          #: B/s
    max_demand: float          #: B/s
    envelope: TechnologyEnvelope
    headroom_required: float   #: demand may use at most this fraction

    @property
    def avg_fraction_of_network(self) -> float:
        return self.avg_demand / self.envelope.network_bandwidth

    @property
    def avg_fraction_of_disk(self) -> float:
        return self.avg_demand / self.envelope.disk_bandwidth

    @property
    def max_fraction_of_network(self) -> float:
        return self.max_demand / self.envelope.network_bandwidth

    @property
    def max_fraction_of_disk(self) -> float:
        return self.max_demand / self.envelope.disk_bandwidth

    @property
    def feasible(self) -> bool:
        """Peak demand fits in the bottleneck with the required headroom."""
        return (self.max_demand
                <= self.envelope.bottleneck_bandwidth * self.headroom_required)

    def as_row(self) -> str:
        """One printable verdict row."""
        return (f"{self.app_name:14s} avg={self.avg_demand / MiB:7.1f} MB/s "
                f"({self.avg_fraction_of_network:5.1%} net, "
                f"{self.avg_fraction_of_disk:5.1%} disk)  "
                f"max={self.max_demand / MiB:7.1f} MB/s  "
                f"{'FEASIBLE' if self.feasible else 'INFEASIBLE'}")


@dataclass(frozen=True)
class MeasuredVerdict:
    """What the checkpoint transport actually achieved, under contention.

    The analytic :class:`FeasibilityVerdict` compares IB demand against
    peak bandwidths; this one reads a
    :class:`~repro.checkpoint.transport.TransportStats` snapshot from a
    run whose checkpoints were real scheduled traffic: the drain
    bandwidth the pipeline achieved, whether the drain queues kept up
    (no backpressure stalls), and how much the checkpoint frames slowed
    application messages per timeslice.
    """

    app_name: str
    timeslice: float
    mode: str                    #: transport mode ("network"/"diskless")
    achieved_bandwidth: float    #: B/s over the per-rank busy union
    bytes_drained: int
    envelope: TechnologyEnvelope
    stall_time: float            #: backpressure seconds charged to the app
    stalls: int
    peak_queue_bytes: int
    contention_delay: float      #: app-message delay behind ckpt frames
    contended_messages: int
    #: checkpoint-induced app-message delay per sampled timeslice
    per_slice_contention: tuple = ()

    @property
    def fraction_of_sustainable(self) -> float:
        return (self.achieved_bandwidth
                / self.envelope.sustainable_bandwidth)

    @property
    def keeping_up(self) -> bool:
        """The drain never forced a backpressure stall: the demand fits
        the transport as *built*, not just as modelled."""
        return self.stalls == 0

    @property
    def mean_slice_contention(self) -> float:
        if not self.per_slice_contention:
            return 0.0
        return sum(self.per_slice_contention) / len(self.per_slice_contention)

    def as_row(self) -> str:
        """One printable measured-verdict row."""
        return (f"{self.app_name:14s} drain={self.achieved_bandwidth / MiB:7.1f} MB/s "
                f"({self.fraction_of_sustainable:5.1%} of sustainable) "
                f"stalls={self.stalls:3d} "
                f"contention={self.contention_delay * 1e3:8.3f} ms "
                f"{'KEEPING UP' if self.keeping_up else 'BACKPRESSURED'}")


class FeasibilityAnalyzer:
    """Turns IB measurements into feasibility verdicts."""

    def __init__(self, envelope: Optional[TechnologyEnvelope] = None,
                 headroom_required: float = 1.0):
        if not (0 < headroom_required <= 1.0):
            raise ConfigurationError(
                f"headroom fraction must be in (0, 1]: {headroom_required}")
        self.envelope = envelope or TechnologyEnvelope()
        self.headroom_required = headroom_required

    def assess(self, app_name: str, stats: IBStats) -> FeasibilityVerdict:
        """Verdict from measured IB statistics."""
        return self.assess_rates(app_name, stats.avg_mbps * MiB,
                                 stats.max_mbps * MiB, stats.timeslice)

    def assess_rates(self, app_name: str, avg_bps: float, max_bps: float,
                     timeslice: float = 1.0) -> FeasibilityVerdict:
        """Verdict from raw average/maximum demand rates (B/s)."""
        if avg_bps < 0 or max_bps < avg_bps * (1.0 - 1e-9):
            raise ConfigurationError(
                f"bad demand rates avg={avg_bps}, max={max_bps}")
        max_bps = max(max_bps, avg_bps)  # absorb float rounding
        return FeasibilityVerdict(app_name=app_name, timeslice=timeslice,
                                  avg_demand=avg_bps, max_demand=max_bps,
                                  envelope=self.envelope,
                                  headroom_required=self.headroom_required)

    def assess_measured(self, app_name: str, stats,
                        timeslice: float = 1.0) -> MeasuredVerdict:
        """Measured verdict from a transport snapshot
        (:class:`~repro.checkpoint.transport.TransportStats`)."""
        if not stats.measured:
            raise ConfigurationError(
                f"transport mode {stats.mode!r} produces no measured "
                "traffic; run with the network or diskless transport")
        return MeasuredVerdict(
            app_name=app_name,
            timeslice=timeslice,
            mode=stats.mode,
            achieved_bandwidth=stats.achieved_bandwidth,
            bytes_drained=stats.bytes_drained,
            envelope=self.envelope,
            stall_time=stats.stall_time,
            stalls=stats.stalls,
            peak_queue_bytes=stats.peak_queue_bytes,
            contention_delay=stats.contention_delay,
            contended_messages=stats.contended_messages,
            per_slice_contention=tuple(stats.per_slice_contention()))

    def report_measured(self, verdicts: list[MeasuredVerdict]) -> str:
        """A printable table of measured verdicts."""
        lines = [
            f"Measured under contention (sustainable "
            f"{fmt_bandwidth(self.envelope.sustainable_bandwidth)}):",
        ]
        lines += [v.as_row() for v in verdicts]
        n_ok = sum(v.keeping_up for v in verdicts)
        lines.append(f"{n_ok}/{len(verdicts)} configurations keeping up")
        return "\n".join(lines)

    def report(self, verdicts: list[FeasibilityVerdict]) -> str:
        """A printable table (one row per application)."""
        lines = [
            f"Technology envelope ({self.envelope.year}): "
            f"network {fmt_bandwidth(self.envelope.network_bandwidth)}, "
            f"disk {fmt_bandwidth(self.envelope.disk_bandwidth)}",
        ]
        lines += [v.as_row() for v in verdicts]
        n_ok = sum(v.feasible for v in verdicts)
        lines.append(f"{n_ok}/{len(verdicts)} applications feasible")
        return "\n".join(lines)

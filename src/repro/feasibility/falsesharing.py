"""The false-sharing ablation: pages written versus bytes changed.

Page-granular incremental checkpointing (the paper's scheme) charges a
whole page to stable storage for every dirty byte.  The gap between
the *pages-written* cost and the *actually-changed* bytes is false
sharing at the page boundary, and it is the quantity the dcp mode
(sub-page differential blocks, :mod:`repro.checkpoint.dcp`) exists to
recover.  This module measures it directly: the same workload is run
once in page-granular incremental mode per page size, and once per
(page size, block size) pair in dcp mode; the checkpoint store's delta
bytes give both sides of the comparison from real captures, not a
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cluster.experiment import ExperimentConfig, run_experiment
from repro.units import fmt_bytes


@dataclass(frozen=True)
class FalseSharingCell:
    """One point of the ablation grid."""

    page_size: int
    #: dcp block granularity; equal to ``page_size`` for the
    #: page-granular incremental baseline row
    block_size: int
    #: delta bytes a page-granular incremental run wrote
    page_mode_bytes: int
    #: delta bytes the dcp run at this block size wrote
    dcp_bytes: int
    #: delta captures behind both measurements
    captures: int

    @property
    def ratio(self) -> float:
        """dcp bytes as a fraction of page-mode bytes (1.0 = no win)."""
        if self.page_mode_bytes == 0:
            return 1.0
        return self.dcp_bytes / self.page_mode_bytes

    @property
    def waste(self) -> float:
        """Fraction of the page-mode delta traffic that was false
        sharing at this block granularity."""
        return 1.0 - self.ratio


def delta_bytes(result, rank: int = 0) -> tuple[int, int]:
    """(delta bytes, delta captures) one rank's chain stored -- the
    store ledger records piece sizes even when payload objects are
    dropped (``keep_payloads=False``)."""
    ckpt = result.ckpt
    if ckpt is None:
        raise ValueError("run had no checkpoint engine "
                         "(config.ckpt_transport unset)")
    deltas = [o for o in ckpt.store.pieces(rank) if o.kind != "full"]
    return sum(o.nbytes for o in deltas), len(deltas)


def false_sharing_ablation(
        config: ExperimentConfig,
        page_sizes: Sequence[int],
        block_sizes: Sequence[int]) -> list[FalseSharingCell]:
    """Sweep the grid: one incremental baseline per page size, one dcp
    run per (page size, block size) with ``block_size < page_size``.

    The baseline appears in the result as the ``block_size ==
    page_size`` cell (dcp at that granularity is byte-identical to
    incremental mode, a property the differential tests pin).
    """
    if config.ckpt_transport is None:
        config = config.scaled(ckpt_transport="estimate")
    cells = []
    for page_size in page_sizes:
        base = run_experiment(config.scaled(page_size=page_size,
                                            ckpt_mode="incremental"))
        page_mode, captures = delta_bytes(base)
        cells.append(FalseSharingCell(
            page_size=page_size, block_size=page_size,
            page_mode_bytes=page_mode, dcp_bytes=page_mode,
            captures=captures))
        for block_size in block_sizes:
            if block_size >= page_size or page_size % block_size:
                continue
            dcp = run_experiment(config.scaled(page_size=page_size,
                                               ckpt_mode="dcp",
                                               dcp_block_size=block_size))
            nbytes, n = delta_bytes(dcp)
            cells.append(FalseSharingCell(
                page_size=page_size, block_size=block_size,
                page_mode_bytes=page_mode, dcp_bytes=nbytes, captures=n))
    return cells


def markdown_table(cells: Sequence[FalseSharingCell],
                   title: Optional[str] = None) -> str:
    """The ablation grid as a GitHub-flavoured markdown table."""
    lines = []
    if title:
        lines.append(title)
        lines.append("")
    lines.append("| page size | block size | page-mode delta | "
                  "dcp delta | dcp/page | false sharing |")
    lines.append("|---:|---:|---:|---:|---:|---:|")
    for c in cells:
        block = ("= page" if c.block_size == c.page_size
                 else fmt_bytes(c.block_size))
        lines.append(
            f"| {fmt_bytes(c.page_size)} | {block} "
            f"| {fmt_bytes(c.page_mode_bytes)} | {fmt_bytes(c.dcp_bytes)} "
            f"| {c.ratio:.3f} | {c.waste:.1%} |")
    return "\n".join(lines)

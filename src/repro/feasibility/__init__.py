"""Feasibility analysis: the paper's headline argument.

Compares measured incremental-bandwidth requirements against what the
technology provides -- QsNet II at 900 MB/s and Ultra320 SCSI at
320 MB/s in 2004 -- and extrapolates the technology trends of section
6.6 (processors +60 %/yr, memory +7 %/yr, networks and storage growing
faster than application write rates), concluding that incremental
checkpointing only gets *more* feasible over time.

Also carries Table 1's qualitative taxonomy of checkpointing abstraction
levels (:mod:`~repro.feasibility.taxonomy`).
"""

from repro.feasibility.technology import TechnologyEnvelope, TrendModel
from repro.feasibility.analyzer import (FeasibilityAnalyzer,
                                        FeasibilityVerdict, MeasuredVerdict)
from repro.feasibility.taxonomy import ABSTRACTION_LEVELS, AbstractionLevel
from repro.feasibility.falsesharing import (FalseSharingCell,
                                            false_sharing_ablation,
                                            markdown_table)
from repro.feasibility.availability import (
    CheckpointCostModel,
    FailureModel,
    efficiency,
    efficiency_curve,
    integrity_checked_cost,
    observed_efficiency,
    optimal_efficiency,
    predicted_vs_observed,
    scale_study,
    verified_restart_time,
    young_interval,
)

__all__ = [
    "ABSTRACTION_LEVELS",
    "AbstractionLevel",
    "CheckpointCostModel",
    "FailureModel",
    "FalseSharingCell",
    "FeasibilityAnalyzer",
    "FeasibilityVerdict",
    "MeasuredVerdict",
    "TechnologyEnvelope",
    "TrendModel",
    "efficiency",
    "efficiency_curve",
    "false_sharing_ablation",
    "integrity_checked_cost",
    "markdown_table",
    "observed_efficiency",
    "optimal_efficiency",
    "predicted_vs_observed",
    "scale_study",
    "verified_restart_time",
    "young_interval",
]

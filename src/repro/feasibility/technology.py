"""Technology envelope and trend extrapolation (sections 3 and 6.6).

The paper's 2004 baseline: QsNet II (Elan4) at a 900 MB/s peak and
Ultra320 SCSI at 320 MB/s.  Its trend argument: processor performance
grows ~60 %/yr while memory performance grows ~7 %/yr (Hennessy &
Patterson), so application *write rates* -- bounded by the memory
system -- double only every two to three years, while networking and
storage bandwidth grow faster (10 Gb/s InfiniBand by 2005), widening the
feasibility margin every year.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.net.models import LinkSpec, QSNET2
from repro.storage.models import DiskSpec, SCSI_ULTRA320


@dataclass(frozen=True)
class TechnologyEnvelope:
    """What the platform offers a checkpoint stream, B/s."""

    network: LinkSpec = QSNET2
    disk: DiskSpec = SCSI_ULTRA320
    year: int = 2004

    @property
    def network_bandwidth(self) -> float:
        return self.network.bandwidth

    @property
    def disk_bandwidth(self) -> float:
        return self.disk.bandwidth

    @property
    def bottleneck_bandwidth(self) -> float:
        """The binding constraint for saving checkpoints to stable
        storage: the slower of network and disk."""
        return min(self.network.bandwidth, self.disk.bandwidth)

    @property
    def sustainable_bandwidth(self) -> float:
        """What a checkpoint stream can sustain end to end: data must
        cross the wire *and* land on disk, so the slower stage bounds
        any drain rate a transport can achieve."""
        return self.bottleneck_bandwidth


@dataclass(frozen=True)
class TrendModel:
    """Annual growth rates (fractions per year).

    Defaults: processor and memory growth are the paper's Hennessy &
    Patterson figures.  Application *write rates* are bounded by the
    memory system, not by the processor -- the paper's core trend
    argument -- so they track memory growth plus modest algorithmic
    gains (~15 %/yr), well below network growth (anchored on QsNet II
    2003 -> 10 Gb/s InfiniBand 2005, ~25 %/yr) and the storage roadmap
    of the era (~30 %/yr).  Hence the margin widens every year.
    """

    processor_growth: float = 0.60
    memory_growth: float = 0.07
    app_write_growth: float = 0.15       # memory-bound + algorithmic gains
    network_growth: float = 0.25
    storage_growth: float = 0.30

    def __post_init__(self) -> None:
        for name in ("processor_growth", "memory_growth", "app_write_growth",
                     "network_growth", "storage_growth"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    def project(self, envelope: TechnologyEnvelope,
                years: int) -> TechnologyEnvelope:
        """The envelope ``years`` ahead."""
        if years < 0:
            raise ConfigurationError(f"cannot project {years} years back")
        net_scale = (1 + self.network_growth) ** years
        disk_scale = (1 + self.storage_growth) ** years
        network = LinkSpec(f"{envelope.network.name} (+{years}y)",
                           bandwidth=envelope.network.bandwidth * net_scale,
                           latency=envelope.network.latency,
                           per_hop_latency=envelope.network.per_hop_latency)
        disk = DiskSpec(f"{envelope.disk.name} (+{years}y)",
                        bandwidth=envelope.disk.bandwidth * disk_scale,
                        seek_latency=envelope.disk.seek_latency)
        return TechnologyEnvelope(network=network, disk=disk,
                                  year=envelope.year + years)

    def project_write_rate(self, rate: float, years: int) -> float:
        """An application's incremental-bandwidth demand ``years`` ahead
        (weak scaling: footprint per process constant, write rate grows
        with application performance)."""
        if years < 0:
            raise ConfigurationError(f"cannot project {years} years back")
        return rate * (1 + self.app_write_growth) ** years

    def margin_trajectory(self, demand: float, envelope: TechnologyEnvelope,
                          years: int) -> list[tuple[int, float]]:
        """(year, demand/bottleneck) pairs -- the feasibility margin over
        time.  A decreasing series is the section 6.6 conclusion."""
        out = []
        for dy in range(years + 1):
            env = self.project(envelope, dy)
            dem = self.project_write_rate(demand, dy)
            out.append((env.year, dem / env.bottleneck_bandwidth))
        return out

"""Availability modelling: from feasible bandwidth to cluster efficiency.

The paper's motivation (section 1): BlueGene/L-scale machines with tens
of thousands of processors fail every few hours, so checkpoints must be
taken "every few minutes".  This module closes that loop -- it turns the
measured incremental bandwidth into the quantity operators care about:
**machine efficiency under failures** as a function of system size and
checkpoint interval.

Model (the classic Young/Daly first-order analysis):

- nodes fail independently with MTBF ``node_mtbf``; a system of ``N``
  nodes has ``system_mtbf = node_mtbf / N``;
- a checkpoint costs ``C`` seconds (delta size / storage bandwidth);
- a failure loses on average half a checkpoint interval plus a restart
  time ``R``;
- Young's optimum interval is ``sqrt(2 * C * system_mtbf)``.

Efficiency = useful time / wall time
           = (1 - C/tau) * exp-approximated failure waste
           ~ (1 - C/tau) * (1 - (tau/2 + R) / system_mtbf)

valid while tau << system_mtbf (the regime the paper targets).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.units import MiB


@dataclass(frozen=True)
class FailureModel:
    """Cluster-level failure characteristics."""

    node_mtbf: float              #: seconds between failures of ONE node
    nnodes: int
    restart_time: float = 300.0   #: reboot + restore + rejoin, seconds

    def __post_init__(self) -> None:
        if self.node_mtbf <= 0:
            raise ConfigurationError("node MTBF must be positive")
        if self.nnodes < 1:
            raise ConfigurationError("need at least one node")
        if self.restart_time < 0:
            raise ConfigurationError("restart time must be >= 0")

    @property
    def system_mtbf(self) -> float:
        """Mean time between failures anywhere in the system."""
        return self.node_mtbf / self.nnodes


@dataclass(frozen=True)
class CheckpointCostModel:
    """How long one coordinated checkpoint takes to reach stable storage."""

    delta_bytes: int        #: per-process incremental checkpoint size
    storage_bandwidth: float  #: per-process sink bandwidth, B/s
    latency: float = 0.1    #: coordination + commit overhead, seconds

    def __post_init__(self) -> None:
        if self.delta_bytes < 0 or self.storage_bandwidth <= 0 or self.latency < 0:
            raise ConfigurationError("bad checkpoint cost parameters")

    @property
    def cost(self) -> float:
        """Seconds per checkpoint."""
        return self.latency + self.delta_bytes / self.storage_bandwidth


def integrity_checked_cost(cost_model: CheckpointCostModel,
                           hash_bandwidth: Optional[float] = None) -> float:
    """Checkpoint cost including end-to-end integrity: one digest pass
    over every written byte (blake2b at ``hash_bandwidth``, default
    :data:`~repro.storage.HASH_BANDWIDTH`).  The delta is what makes
    this cheap -- hashing only the dirty pages rides the same
    feasibility curve as writing them.
    """
    from repro.storage import HASH_BANDWIDTH
    bw = HASH_BANDWIDTH if hash_bandwidth is None else hash_bandwidth
    if bw <= 0:
        raise ConfigurationError("hash bandwidth must be positive")
    return cost_model.cost + cost_model.delta_bytes / bw


def verified_restart_time(restart_time: float, chain_bytes: int,
                          hash_bandwidth: Optional[float] = None) -> float:
    """Restart time including digest recomputation over every byte of
    the recovery chain read back from stable storage -- the ``R`` to use
    in :class:`FailureModel` when restores are integrity-checked."""
    from repro.storage import HASH_BANDWIDTH
    bw = HASH_BANDWIDTH if hash_bandwidth is None else hash_bandwidth
    if restart_time < 0 or chain_bytes < 0:
        raise ConfigurationError(
            "restart time and chain bytes must be >= 0")
    if bw <= 0:
        raise ConfigurationError("hash bandwidth must be positive")
    return restart_time + chain_bytes / bw


def young_interval(cost: float, system_mtbf: float) -> float:
    """Young's optimum checkpoint interval ``sqrt(2 * C * MTBF)``."""
    if cost <= 0 or system_mtbf <= 0:
        raise ConfigurationError("cost and MTBF must be positive")
    return math.sqrt(2.0 * cost * system_mtbf)


def efficiency(interval: float, cost: float, failures: FailureModel) -> float:
    """Expected fraction of wall time doing useful work.

    First-order model: checkpoint overhead ``cost/interval`` plus
    failure waste ``(interval/2 + restart) / system_mtbf``.  Clamped to
    [0, 1]; returns 0 where the model's assumptions collapse (interval
    comparable to the MTBF).
    """
    if interval <= cost:
        return 0.0
    mtbf = failures.system_mtbf
    ckpt_overhead = cost / interval
    failure_waste = (interval / 2.0 + failures.restart_time) / mtbf
    eff = (1.0 - ckpt_overhead) * (1.0 - failure_waste)
    return max(0.0, min(1.0, eff))


def optimal_efficiency(cost: float, failures: FailureModel) -> tuple[float, float]:
    """(best interval, efficiency at it), using Young's interval."""
    tau = young_interval(cost, failures.system_mtbf)
    return tau, efficiency(tau, cost, failures)


def efficiency_curve(cost: float, failures: FailureModel,
                     intervals: list[float]) -> list[tuple[float, float]]:
    """(interval, efficiency) samples for plotting/benching."""
    if not intervals:
        raise ConfigurationError("no intervals given")
    return [(tau, efficiency(tau, cost, failures)) for tau in intervals]


def observed_efficiency(wall_time: float, total_downtime: float,
                        total_lost_work: float) -> float:
    """Empirical efficiency of one fault-injection run: the fraction of
    wall time spent on useful work (neither down nor later recomputed).
    The measured counterpart of :func:`efficiency`."""
    if wall_time <= 0:
        raise ConfigurationError("wall time must be positive")
    if total_downtime < 0 or total_lost_work < 0:
        raise ConfigurationError("downtime and lost work must be >= 0")
    waste = total_downtime + total_lost_work
    if waste > wall_time:
        raise ConfigurationError("waste cannot exceed the wall time")
    return (wall_time - waste) / wall_time


def predicted_vs_observed(interval: float, cost: float,
                          failures: FailureModel,
                          observed: float) -> dict:
    """Close the loop between the analytic model and a measured
    fault-injection run: the Young/Daly prediction at the run's actual
    checkpoint interval, the observation, and their gap."""
    predicted = efficiency(interval, cost, failures)
    return {
        "interval": interval,
        "checkpoint_cost": cost,
        "system_mtbf": failures.system_mtbf,
        "predicted_efficiency": predicted,
        "observed_efficiency": observed,
        "gap": observed - predicted,
    }


def scale_study(delta_bytes: int, storage_bandwidth: float,
                node_mtbf: float, node_counts: list[int],
                restart_time: float = 300.0) -> list[dict]:
    """The BlueGene/L question: how does achievable efficiency evolve as
    the machine grows, with incremental checkpointing at the measured
    per-process delta?

    Returns one row per node count: system MTBF, checkpoint cost,
    Young-optimal interval, and the efficiency at that interval.
    """
    cost_model = CheckpointCostModel(delta_bytes=delta_bytes,
                                     storage_bandwidth=storage_bandwidth)
    rows = []
    for n in node_counts:
        failures = FailureModel(node_mtbf=node_mtbf, nnodes=n,
                                restart_time=restart_time)
        tau, eff = optimal_efficiency(cost_model.cost, failures)
        rows.append({
            "nnodes": n,
            "system_mtbf": failures.system_mtbf,
            "checkpoint_cost": cost_model.cost,
            "optimal_interval": tau,
            "efficiency": eff,
        })
    return rows

"""Table 1: the qualitative comparison of checkpointing abstraction levels.

The paper's design-space table (section 2.1) compares five
implementation levels on transparency, portability, checkpoint size,
flexibility of the checkpointing interval, and granularity.  It is
qualitative, so the reproduction is structured data plus the rendering
used by the Table 1 bench.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Rating(enum.IntEnum):
    """Ordinal scale used throughout Table 1."""

    VERY_LOW = 0
    LOW = 1
    MEDIUM = 2
    HIGH = 3

    def label(self) -> str:
        """Human-readable form of the ordinal rating."""
        return {0: "Very Low", 1: "Low", 2: "Medium", 3: "High"}[int(self)]


@dataclass(frozen=True)
class AbstractionLevel:
    """One row of Table 1."""

    name: str
    transparency: Rating
    portability: Rating
    checkpoint_size: Rating       #: higher = larger checkpoints
    flexibility: Rating           #: of the checkpointing interval
    granularity: str


ABSTRACTION_LEVELS: tuple[AbstractionLevel, ...] = (
    AbstractionLevel("Application with library support",
                     transparency=Rating.LOW, portability=Rating.HIGH,
                     checkpoint_size=Rating.LOW, flexibility=Rating.LOW,
                     granularity="Data Structure"),
    AbstractionLevel("Application with compiler support",
                     transparency=Rating.MEDIUM, portability=Rating.HIGH,
                     checkpoint_size=Rating.MEDIUM, flexibility=Rating.LOW,
                     granularity="Data Structure"),
    AbstractionLevel("Run-time library",
                     transparency=Rating.MEDIUM, portability=Rating.MEDIUM,
                     checkpoint_size=Rating.HIGH, flexibility=Rating.HIGH,
                     granularity="Memory Segment"),
    AbstractionLevel("Operating system",
                     transparency=Rating.HIGH, portability=Rating.LOW,
                     checkpoint_size=Rating.HIGH, flexibility=Rating.HIGH,
                     granularity="Memory Page"),
    AbstractionLevel("Hardware",
                     transparency=Rating.HIGH, portability=Rating.VERY_LOW,
                     checkpoint_size=Rating.HIGH, flexibility=Rating.HIGH,
                     granularity="Cache line"),
)


def render_table1() -> str:
    """Table 1 as printable text."""
    header = (f"{'Level':38s} {'Transp.':9s} {'Portab.':9s} "
              f"{'Ckpt size':10s} {'Flexib.':9s} Granularity")
    rows = [header, "-" * len(header)]
    for lvl in ABSTRACTION_LEVELS:
        rows.append(f"{lvl.name:38s} {lvl.transparency.label():9s} "
                    f"{lvl.portability.label():9s} "
                    f"{lvl.checkpoint_size.label():10s} "
                    f"{lvl.flexibility.label():9s} {lvl.granularity}")
    return "\n".join(rows)


def os_level_tradeoff() -> AbstractionLevel:
    """The row the paper argues for: the operating-system level, whose
    transparency and flexibility the study shows can be had at an
    affordable bandwidth cost."""
    return next(l for l in ABSTRACTION_LEVELS if l.name == "Operating system")

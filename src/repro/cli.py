"""Command-line interface: ``python -m repro <command>``.

Commands:

``list-apps``
    The nine calibrated paper workloads with their reference values.
``run``
    Run one instrumented experiment and print footprint/IB statistics
    (optionally save the per-rank traces).
``sweep``
    IB versus timeslice for one application (the Fig 2 view).
``feasibility``
    Measure every application at a 1 s timeslice and print the section
    6.3 verdict table, plus the trend extrapolation.
``table1``
    Print the abstraction-level taxonomy.
``faults run``
    Fault-injection experiment: run under a seeded stochastic or
    explicit fault plan, recover from the checkpoint chain, and report
    lost-work/downtime/availability against the Young/Daly model.
    ``--corrupt KIND@TIME:RANK[:SEQ]`` adds silent store corruption
    (flip/truncate/drop) on top of -- or instead of -- the crash plan;
    integrity verification detects it at recovery time and walks the
    rollback past the poisoned checkpoint.
``ckpt verify``
    Verify an archived checkpoint store file (written with
    ``run --store-out``): recompute every piece digest, check every
    chain link, and report -- a mangled file yields a report, never a
    crash.
``obs view``
    Summarize a trace file written with ``--trace-out`` (span totals,
    instant counts, burst structure) without re-running anything.
``obs top``
    Render a host-time profile written with ``--profile-out``: wall
    time per event kind x subsystem x rank group.
``obs critpath``
    Per-timeslice critical-path verdicts from a trace: app compute vs
    drain backpressure vs network contention.
``obs diff``
    Compare two metrics/profile artifacts; exit 1 when any
    deterministic value moved beyond the threshold.

``run``, ``sweep``, and ``faults run`` all accept ``--trace-out FILE``
(Chrome/Perfetto JSON, or JSONL with a ``.jsonl`` suffix),
``--metrics-out FILE`` (text with ``.txt``, JSON otherwise),
``--profile-out FILE`` (host wall-time attribution),
``--series-out FILE`` (per-window JSONL of the sim-time metric
series), and ``--progress`` (live line on stderr).  Tracing never
perturbs the simulation: timestamps are virtual time, identical across
same-seed runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.apps import PAPER_APPS, paper_spec
from repro.cluster.experiment import paper_config, run_experiment, sweep_timeslices
from repro.feasibility import FeasibilityAnalyzer, TechnologyEnvelope, TrendModel
from repro.feasibility.taxonomy import render_table1
from repro.units import MiB


def _positive_int(text: str) -> int:
    """argparse type for flags that need a count of at least one."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be at least 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type for flags that need a strictly positive value."""
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _nonneg_float(text: str) -> float:
    """argparse type for flags that need a value >= 0."""
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _add_obs_flags(cmd: argparse.ArgumentParser) -> None:
    """The shared observability surface of run/sweep/faults-run."""
    grp = cmd.add_argument_group("observability")
    grp.add_argument("--trace-out", metavar="FILE", default=None,
                     help="write a Chrome/Perfetto trace (.jsonl for the "
                          "compact line stream)")
    grp.add_argument("--metrics-out", metavar="FILE", default=None,
                     help="dump the metrics registry (.txt for text, "
                          "JSON otherwise)")
    grp.add_argument("--profile-out", metavar="FILE", default=None,
                     help="write the host wall-time profile (view with "
                          "'obs top'; in-process runs only)")
    grp.add_argument("--series-out", metavar="FILE", default=None,
                     help="dump the sim-time-windowed metric series as "
                          "per-window JSONL")
    grp.add_argument("--progress", action="store_true",
                     help="live progress line on stderr")


def _make_obs(args):
    """An :class:`~repro.obs.Observability` for the requested flags, or
    None when none were given (the zero-cost path)."""
    if not (args.trace_out or args.metrics_out or args.progress
            or args.profile_out or args.series_out):
        return None
    from repro.obs import (EngineProfiler, MetricsRegistry, Observability,
                           ProgressReporter, Tracer)
    return Observability(
        tracer=Tracer() if args.trace_out else None,
        metrics=MetricsRegistry(),
        progress=ProgressReporter() if args.progress else None,
        profiler=EngineProfiler() if args.profile_out else None)


def _finish_obs(obs, args, out) -> None:
    """Flush whatever the flags asked for after a run completes."""
    if obs is None:
        return
    if obs.progress is not None:
        obs.progress.close()
    if args.profile_out:
        # first: the profile's wall window closes at export time, and
        # the trace/metrics serialization below is not simulation work
        profile = obs.profiler.export(args.profile_out)
        print(f"profile written to {args.profile_out} "
              f"({profile['events']} events, "
              f"{profile['coverage'] * 100.0:.1f}% of "
              f"{profile['wall_total_s']:.2f}s wall attributed)", file=out)
    if args.trace_out:
        obs.tracer.export(args.trace_out)
        print(f"trace written to {args.trace_out} "
              f"({len(obs.tracer.events)} events)", file=out)
    if args.metrics_out:
        obs.metrics.dump(args.metrics_out)
        print(f"metrics written to {args.metrics_out} "
              f"({len(obs.metrics.names())} series)", file=out)
    if args.series_out:
        obs.metrics.dump_series(args.series_out)
        print(f"series written to {args.series_out} "
              f"({len(obs.metrics.all_series())} series)", file=out)


def _reject_profile_with_workers(args, what: str) -> bool:
    """--profile-out measures the in-process engine; worker-process
    modes would profile only the parent.  True when rejected."""
    if args.profile_out:
        print(f"--profile-out is incompatible with {what}: the profiler "
              f"attributes this process's engine events", file=sys.stderr)
        return True
    return False


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'On the Feasibility of Incremental "
                    "Checkpointing for Scientific Computing' (IPDPS 2004)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list the calibrated paper workloads")

    run = sub.add_parser("run", help="run one instrumented experiment")
    run.add_argument("--app", required=True, choices=sorted(PAPER_APPS))
    run.add_argument("--timeslice", type=float, default=1.0)
    run.add_argument("--ranks", type=int, default=4)
    run.add_argument("--duration", type=float, default=None,
                     help="simulated seconds after initialization")
    run.add_argument("--shards", type=_positive_int, default=1,
                     help="simulate rank groups in N worker processes "
                          "and merge deterministically (default 1: "
                          "in-process; results are sim-identical at "
                          "any shard count)")
    run.add_argument("--save-trace", metavar="DIR", default=None,
                     help="write per-rank traces (npz+json) to DIR")
    run.add_argument("--ckpt-transport",
                     choices=("estimate", "network", "diskless"),
                     default=None,
                     help="checkpoint while running, with this data "
                          "path: 'estimate' (flat-duration sink writes), "
                          "'network' (frames through the shared fabric "
                          "to a storage port), or 'diskless' (frames to "
                          "a buddy rank's memory); default: no "
                          "checkpointing")
    run.add_argument("--ckpt-interval", type=_positive_int, default=2,
                     help="checkpoint every N timeslices (with "
                          "--ckpt-transport)")
    run.add_argument("--ckpt-full-every", type=_positive_int, default=4,
                     help="full checkpoint every N captures (with "
                          "--ckpt-transport)")
    run.add_argument("--ckpt-mode", choices=("incremental", "dcp"),
                     default="incremental",
                     help="delta granularity: whole dirty pages "
                          "('incremental') or sub-page differential "
                          "blocks ('dcp')")
    run.add_argument("--dcp-block-size", type=_positive_int, default=256,
                     metavar="BYTES",
                     help="dcp block granularity; must divide the page "
                          "size (default 256)")
    run.add_argument("--store-out", metavar="FILE", default=None,
                     help="archive the final checkpoint store to FILE "
                          "(verifiable with 'ckpt verify'; needs "
                          "--ckpt-transport)")
    _add_obs_flags(run)

    sweep = sub.add_parser("sweep", help="IB vs timeslice for one app")
    sweep.add_argument("--app", required=True, choices=sorted(PAPER_APPS))
    sweep.add_argument("--timeslices", default="1,2,5,10,15,20",
                       help="comma-separated seconds")
    sweep.add_argument("--ranks", type=int, default=2)
    sweep.add_argument("--duration", type=float, default=None,
                       help="simulated seconds after initialization")
    sweep.add_argument("--jobs", type=_positive_int, default=1,
                       help="worker processes for the sweep (default 1: "
                            "serial; results are identical at any count)")
    sweep.add_argument("--shards", type=_positive_int, default=1,
                       help="shard each run's rank groups across N "
                            "worker processes (serial sweeps only; "
                            "mutually exclusive with --jobs > 1)")
    sweep.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent result cache (default: "
                            "$REPRO_CACHE_DIR if set, else no cache)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="ignore any configured result cache")
    _add_obs_flags(sweep)

    feas = sub.add_parser("feasibility",
                          help="full Table 4 + section 6.3 verdicts")
    feas.add_argument("--ranks", type=int, default=2)
    feas.add_argument("--years", type=int, default=6,
                      help="trend-extrapolation horizon")

    sub.add_parser("table1", help="print the abstraction-level taxonomy")

    val = sub.add_parser("validate",
                         help="check every workload's calibration against "
                              "the paper's tables")
    val.add_argument("--tolerance", type=float, default=0.15)
    val.add_argument("--app", default=None, choices=sorted(PAPER_APPS),
                     help="validate one application (detailed rows)")

    rep = sub.add_parser("report",
                         help="regenerate the full reproduction report")
    rep.add_argument("--out", required=True, metavar="DIR")
    rep.add_argument("--ranks", type=int, default=2)
    rep.add_argument("--quick", action="store_true",
                     help="smaller sweeps (seconds instead of ~a minute)")

    faults = sub.add_parser("faults",
                            help="fault injection and recovery experiments")
    fsub = faults.add_subparsers(dest="faults_command", required=True)
    frun = fsub.add_parser("run",
                           help="run one experiment under a fault plan, "
                                "recovering from the checkpoint chain")
    frun.add_argument("--app", required=True, choices=sorted(PAPER_APPS))
    frun.add_argument("--ranks", type=_positive_int, default=4)
    frun.add_argument("--timeslice", type=_positive_float, default=1.0)
    frun.add_argument("--duration", type=_positive_float, default=None,
                      help="simulated seconds after initialization")
    src = frun.add_mutually_exclusive_group()
    src.add_argument("--mtbf", type=_positive_float, default=None,
                     help="per-node mean time between failures, seconds "
                          "(seeded stochastic plan)")
    src.add_argument("--plan", metavar="FILE", default=None,
                     help="explicit JSON fault plan")
    frun.add_argument("--corrupt", metavar="KIND@TIME:RANK[:SEQ]",
                      action="append", default=None,
                      help="inject silent store corruption: KIND is "
                           "flip, truncate, or drop; SEQ picks the "
                           "stored piece (default: newest at TIME); "
                           "repeatable")
    frun.add_argument("--no-verify-integrity", action="store_true",
                      help="trust checkpoint chains without digest "
                           "verification (the pre-integrity behaviour: "
                           "corruption restores garbage)")
    frun.add_argument("--integrity-bandwidth", type=_positive_float,
                      default=None, metavar="BPS",
                      help="charge digest recomputation at this "
                           "bandwidth into restore time (default: "
                           "uncharged)")
    frun.add_argument("--seed", type=int, default=0,
                      help="stochastic plan seed (same seed, same plan)")
    frun.add_argument("--model", choices=("exponential", "weibull"),
                      default="exponential")
    frun.add_argument("--shape", type=_positive_float, default=0.7,
                      help="Weibull shape (only with --model weibull)")
    frun.add_argument("--interval", type=_positive_int, default=2,
                      help="checkpoint every N timeslices")
    frun.add_argument("--full-every", type=_positive_int, default=4,
                      help="full checkpoint every N captures")
    frun.add_argument("--detect-latency", type=_nonneg_float, default=0.25,
                      help="failure-detection latency, seconds")
    frun.add_argument("--max-faults", type=_positive_int, default=None,
                      help="cap the stochastic plan's event count")
    frun.add_argument("--no-verify", action="store_true",
                      help="skip the bit-identical restore verification")
    frun.add_argument("--ckpt-transport",
                      choices=("estimate", "network", "diskless"),
                      default="estimate",
                      help="checkpoint data path (default: estimate, "
                           "the flat-duration sink writes)")
    frun.add_argument("--ckpt-mode", choices=("incremental", "dcp"),
                      default="incremental",
                      help="delta granularity: whole dirty pages "
                           "('incremental') or sub-page differential "
                           "blocks ('dcp')")
    frun.add_argument("--dcp-block-size", type=_positive_int, default=256,
                      metavar="BYTES",
                      help="dcp block granularity; must divide the page "
                           "size (default 256)")
    _add_obs_flags(frun)

    ckpt = sub.add_parser("ckpt", help="checkpoint store utilities")
    csub = ckpt.add_subparsers(dest="ckpt_command", required=True)
    cver = csub.add_parser("verify",
                           help="verify an archived checkpoint store "
                                "(digests + chain links)")
    cver.add_argument("store", metavar="FILE",
                      help="archive written with 'run --store-out'")
    cver.add_argument("--json", action="store_true",
                      help="machine-readable report")

    obs = sub.add_parser("obs", help="observability utilities")
    osub = obs.add_subparsers(dest="obs_command", required=True)
    oview = osub.add_parser("view",
                            help="summarize a trace written with --trace-out")
    oview.add_argument("trace", metavar="TRACE",
                       help="Chrome JSON or JSONL trace file")
    oview.add_argument("--top", type=_positive_int, default=10,
                       help="span rows to show (default 10)")

    otop = osub.add_parser("top",
                           help="render a host-time profile written with "
                                "--profile-out")
    otop.add_argument("profile", metavar="PROFILE",
                      help="profile.json written with --profile-out")
    otop.add_argument("--top", type=_positive_int, default=20,
                      help="category rows to show (default 20)")
    otop.add_argument("--by", choices=("self", "cum", "count"),
                      default="self",
                      help="sort key (default: self time)")

    ocrit = osub.add_parser("critpath",
                            help="per-timeslice critical-path verdicts "
                                 "from a trace")
    ocrit.add_argument("trace", metavar="TRACE",
                       help="Chrome JSON or JSONL trace file")
    ocrit.add_argument("--limit", type=_positive_int, default=30,
                       help="slice rows to show (default 30)")
    ocrit.add_argument("--json", action="store_true",
                       help="machine-readable result")

    odiff = osub.add_parser("diff",
                            help="compare two metrics/profile artifacts "
                                 "(exit 1 on regressions)")
    odiff.add_argument("a", metavar="A", help="baseline artifact")
    odiff.add_argument("b", metavar="B", help="candidate artifact")
    odiff.add_argument("--threshold", type=_nonneg_float, default=0.0,
                       help="relative change tolerated before a value "
                            "counts as a regression (default 0: exact)")
    odiff.add_argument("--strict", action="store_true",
                       help="gate wall-time values too (same-machine "
                            "A/B timing comparisons)")
    odiff.add_argument("--report", metavar="FILE", default=None,
                       help="also write the machine-readable report "
                            "as JSON")

    ana = sub.add_parser("analyze",
                         help="compute IWS/IB statistics from saved traces "
                              "(no re-simulation)")
    ana.add_argument("--trace", required=True, metavar="DIR",
                     help="directory written by 'run --save-trace'")
    ana.add_argument("--skip", type=float, default=0.0,
                     help="drop timeslices starting before this time "
                          "(the initialization burst)")
    return parser


def cmd_list_apps(out) -> int:
    """``list-apps``: print the calibrated workload table."""
    print(f"{'name':14s} {'footprint':>10s} {'period':>8s} "
          f"{'avg IB@1s':>10s} {'max IB@1s':>10s}  pattern", file=out)
    for name in PAPER_APPS:
        spec = paper_spec(name)
        print(f"{name:14s} {spec.paper_footprint_max_mb:8.1f}MB "
              f"{spec.iteration_period:7.2f}s "
              f"{spec.paper_avg_ib_1s:8.1f}MB/s {spec.paper_max_ib_1s:8.1f}MB/s"
              f"  {spec.comm_pattern}", file=out)
    return 0


def cmd_run(args, out) -> int:
    """``run``: one instrumented experiment, stats to stdout."""
    if args.shards > 1 and _reject_profile_with_workers(args, "--shards > 1"):
        return 2
    from repro.errors import ConfigurationError
    try:
        config = paper_config(args.app, nranks=args.ranks,
                              timeslice=args.timeslice,
                              run_duration=args.duration,
                              ckpt_transport=args.ckpt_transport,
                              ckpt_interval_slices=args.ckpt_interval,
                              ckpt_full_every=args.ckpt_full_every,
                              ckpt_mode=args.ckpt_mode,
                              dcp_block_size=args.dcp_block_size)
    except ConfigurationError as exc:
        print(f"bad configuration: {exc}", file=sys.stderr)
        return 2
    obs = _make_obs(args)
    result = run_experiment(config, obs=obs, shards=args.shards)
    _finish_obs(obs, args, out)
    print(f"{args.app}: {result.final_time:.1f} s simulated, "
          f"{result.iterations} iterations, {args.ranks} ranks", file=out)
    print(f"footprint: {result.footprint().as_row()}", file=out)
    print(f"IB:        {result.ib().as_row()}", file=out)
    print(f"period:    {result.measured_period():.2f} s measured "
          f"({config.spec.iteration_period:.2f} s configured)", file=out)
    stats = result.transport_stats
    if stats is not None:
        from repro.units import fmt_bytes
        print(f"checkpoint: {result.ckpt_commits} commit(s), "
              f"{fmt_bytes(stats.bytes_drained)} drained via "
              f"{stats.mode} transport, {stats.stalls} stall(s)", file=out)
        measured = result.measured_feasibility()
        if measured is not None:
            print(f"measured:  {measured.as_row()}", file=out)
    if args.save_trace:
        from repro.trace import save_traces
        paths = save_traces(result.logs, args.save_trace)
        print(f"saved {len(paths)} traces under {args.save_trace}", file=out)
    if args.store_out:
        if result.ckpt is None:
            print("--store-out needs --ckpt-transport (no checkpoint "
                  "store to archive)", file=sys.stderr)
            return 2
        from repro.storage.archive import save_store
        path = save_store(result.ckpt.store, args.store_out)
        print(f"checkpoint store archived to {path} "
              f"({result.ckpt.store.count()} piece(s))", file=out)
    return 0


def cmd_sweep(args, out) -> int:
    """``sweep``: IB versus timeslice for one application, optionally
    fanned across worker processes and backed by the persistent cache."""
    import time

    from repro.exec import default_cache

    timeslices = [float(t) for t in args.timeslices.split(",") if t]
    if not timeslices:
        print("no timeslices given", file=sys.stderr)
        return 2
    if (args.jobs > 1 or args.shards > 1) and _reject_profile_with_workers(
            args, "--jobs/--shards > 1"):
        return 2
    cache = None if args.no_cache else default_cache(args.cache_dir)
    config = paper_config(args.app, nranks=args.ranks,
                          run_duration=args.duration)
    obs = _make_obs(args)
    t0 = time.perf_counter()
    results = sweep_timeslices(config, timeslices, jobs=args.jobs,
                               cache=cache, obs=obs, shards=args.shards)
    elapsed = time.perf_counter() - t0
    _finish_obs(obs, args, out)
    print(f"{args.app}: average/maximum IB vs timeslice", file=out)
    for ts in sorted(results):
        print("  " + results[ts].ib().as_row(), file=out)
    status = f"{len(results)} runs in {elapsed:.2f}s with {args.jobs} job(s)"
    if cache is not None:
        status += (f"; cache {cache.root}: {cache.hits} hit(s), "
                   f"{cache.misses} miss(es)")
    print(status, file=out)
    return 0


def cmd_feasibility(args, out) -> int:
    """``feasibility``: measure all apps and print verdicts + trends."""
    analyzer = FeasibilityAnalyzer()
    verdicts = []
    for name in PAPER_APPS:
        result = run_experiment(paper_config(name, nranks=args.ranks,
                                             timeslice=1.0))
        verdicts.append(analyzer.assess(name, result.ib()))
    print(analyzer.report(verdicts), file=out)
    heaviest = max(verdicts, key=lambda v: v.avg_demand)
    print(f"\ntrend extrapolation for the most demanding application "
          f"({heaviest.app_name}):", file=out)
    for year, margin in TrendModel().margin_trajectory(
            heaviest.avg_demand, TechnologyEnvelope(), years=args.years):
        print(f"  {year}: demand is {margin:.1%} of the bottleneck",
              file=out)
    return 0


def _parse_corrupt_spec(spec: str):
    """``KIND@TIME:RANK[:SEQ]`` -> a corruption FaultEvent."""
    from repro.faults import FaultEvent, FaultKind
    try:
        kind_text, rest = spec.split("@", 1)
        kind = FaultKind(kind_text.strip().lower())
        parts = rest.split(":")
        if len(parts) not in (2, 3):
            raise ValueError("expected TIME:RANK or TIME:RANK:SEQ")
        time, rank = float(parts[0]), int(parts[1])
        seq = int(parts[2]) if len(parts) == 3 else None
    except ValueError as exc:
        raise ValueError(f"{spec!r}: {exc}") from exc
    if not kind.corrupting:
        raise ValueError(
            f"{spec!r}: {kind.value} is not a corruption kind "
            f"(use flip, truncate, or drop)")
    return FaultEvent(time=time, kind=kind, rank=rank, seq=seq)


def cmd_ckpt_verify(args, out) -> int:
    """``ckpt verify``: scan an archived store; exit 0 when every piece
    and chain verifies, 1 on corruption, 2 on an unreadable file."""
    from repro.storage.archive import scan_store
    try:
        report = scan_store(args.store)
    except OSError as exc:
        print(f"cannot read {args.store}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        import json
        print(json.dumps({
            "path": report.path,
            "ok": report.ok,
            "error": report.error,
            "nranks": report.nranks,
            "committed": list(report.committed),
            "pieces": [{"index": p.index, "status": p.status,
                        "rank": p.rank, "seq": p.seq, "kind": p.kind,
                        "detail": p.detail} for p in report.pieces],
            "chain_problems": list(report.chain_problems),
        }, indent=2), file=out)
    else:
        print(report.render(), file=out)
    if report.error is not None:
        return 2
    return 0 if report.ok else 1


def cmd_faults_run(args, out) -> int:
    """``faults run``: one fault-injection experiment with recovery."""
    from repro.errors import ConfigurationError, FaultPlanError
    from repro.faults import FaultPlan, run_with_failures
    from repro.feasibility import FailureModel, observed_efficiency, \
        predicted_vs_observed

    try:
        config = paper_config(args.app, nranks=args.ranks,
                              timeslice=args.timeslice,
                              run_duration=args.duration,
                              ckpt_mode=args.ckpt_mode,
                              dcp_block_size=args.dcp_block_size)
    except ConfigurationError as exc:
        print(f"bad configuration: {exc}", file=sys.stderr)
        return 2
    if args.mtbf is None and args.plan is None and not args.corrupt:
        print("need a fault source: --mtbf, --plan, or --corrupt",
              file=sys.stderr)
        return 2
    if args.plan is not None:
        try:
            plan = FaultPlan.from_file(args.plan)
            plan.validate_for(args.ranks)
        except FaultPlanError as exc:
            print(f"bad fault plan: {exc}", file=sys.stderr)
            return 2
    elif args.mtbf is not None:
        from repro.apps.registry import default_run_duration
        duration = (args.duration if args.duration is not None
                    else default_run_duration(config.spec))
        duration = max(duration, 5.0 * args.timeslice)
        # failures stretch the run; draw events past the nominal end too
        horizon = 3.0 * duration
        if args.model == "weibull":
            plan = FaultPlan.weibull(args.mtbf, args.ranks, horizon,
                                     seed=args.seed, shape=args.shape,
                                     max_faults=args.max_faults)
        else:
            plan = FaultPlan.exponential(args.mtbf, args.ranks, horizon,
                                         seed=args.seed,
                                         max_faults=args.max_faults)
    else:
        plan = FaultPlan.none()
    if args.corrupt:
        try:
            corruptions = [_parse_corrupt_spec(spec)
                           for spec in args.corrupt]
            plan = FaultPlan(list(plan.events) + corruptions)
            plan.validate_for(args.ranks)
        except (FaultPlanError, ValueError) as exc:
            print(f"bad --corrupt spec: {exc}", file=sys.stderr)
            return 2
    obs = _make_obs(args)
    result = run_with_failures(config, plan,
                               interval_slices=args.interval,
                               full_every=args.full_every,
                               detection_latency=args.detect_latency,
                               verify=not args.no_verify,
                               verify_integrity=not args.no_verify_integrity,
                               integrity_bandwidth=args.integrity_bandwidth,
                               ckpt_transport=args.ckpt_transport,
                               obs=obs)
    _finish_obs(obs, args, out)
    metrics = result.metrics
    print(f"{args.app}: {len(plan)} planned fault(s), "
          f"{len(result.failures)} recovery(ies), "
          f"{len(result.lives)} life(s), "
          f"{result.final_time:.1f} s simulated", file=out)
    for rec in result.failures:
        target = ("from scratch" if rec.recovered_seq is None
                  else f"seq {rec.recovered_seq} (life {rec.recovery_life})")
        print(f"  t={rec.time:8.2f}s {rec.kind:5s} rank(s) "
              f"{','.join(map(str, rec.victims))}: rolled back to {target}, "
              f"lost {rec.lost_work:.2f}s, down {rec.downtime:.2f}s",
              file=out)
    for c in result.corruptions:
        print(f"  integrity: life {c.life} rank {c.rank} seq {c.seq} "
              f"{c.reason} -- rejected committed seq {c.rejected_seq}",
              file=out)
    if any(e.kind.corrupting for e in plan):
        bad = []
        for life in result.lives:
            latest = life.store.latest_committed()
            if latest is None:
                continue
            for rank in range(args.ranks):
                o = life.store.verify_chain(rank, upto_seq=latest,
                                            require_seq=latest)
                if not o.intact:
                    bad.append(f"life {life.index} {o.summary()}")
        state = "all committed chains intact" if not bad else "; ".join(bad)
        print(f"integrity scan: {state}", file=out)
    print(metrics.as_row(), file=out)
    cost = result.mean_commit_latency()
    if args.mtbf is not None and cost is not None and result.failures:
        comparison = predicted_vs_observed(
            interval=args.interval * args.timeslice, cost=cost,
            failures=FailureModel(node_mtbf=args.mtbf, nnodes=args.ranks,
                                  restart_time=metrics.total_downtime
                                  / metrics.n_failures),
            observed=observed_efficiency(metrics.wall_time,
                                         metrics.total_downtime,
                                         metrics.total_lost_work))
        print(f"Young/Daly model: predicted efficiency "
              f"{comparison['predicted_efficiency']:.2%}, observed "
              f"{comparison['observed_efficiency']:.2%} "
              f"(gap {comparison['gap']:+.2%})", file=out)
    return 0


def cmd_obs_view(args, out) -> int:
    """``obs view``: summarize a saved trace (exit 2 on a bad file)."""
    from repro.errors import ObservabilityError
    from repro.obs import load_trace_events, summarize_trace

    try:
        events = load_trace_events(args.trace)
    except ObservabilityError as exc:
        print(f"bad trace: {exc}", file=sys.stderr)
        return 2
    print(summarize_trace(events, top=args.top), file=out)
    return 0


def cmd_obs_top(args, out) -> int:
    """``obs top``: render a saved profile (exit 2 on a bad file)."""
    from repro.errors import ObservabilityError
    from repro.obs import load_profile, render_profile

    try:
        profile = load_profile(args.profile)
    except ObservabilityError as exc:
        print(f"bad profile: {exc}", file=sys.stderr)
        return 2
    print(render_profile(profile, top=args.top, by=args.by), file=out)
    return 0


def cmd_obs_critpath(args, out) -> int:
    """``obs critpath``: per-timeslice verdicts (exit 2 on a bad file)."""
    from repro.errors import ObservabilityError
    from repro.obs import load_trace_events
    from repro.obs.critpath import extract_critical_path, render_critpath

    try:
        events = load_trace_events(args.trace)
    except ObservabilityError as exc:
        print(f"bad trace: {exc}", file=sys.stderr)
        return 2
    result = extract_critical_path(events)
    if args.json:
        import json
        print(json.dumps(result, indent=2), file=out)
    else:
        print(render_critpath(result, limit=args.limit), file=out)
    return 0


def cmd_obs_diff(args, out) -> int:
    """``obs diff``: compare two artifacts; exit 0 when they agree on
    every gated value, 1 on regressions, 2 on unreadable/mixed input."""
    from repro.errors import ObservabilityError
    from repro.obs.diff import diff_artifacts, render_diff

    try:
        report = diff_artifacts(args.a, args.b, threshold=args.threshold,
                                strict=args.strict)
    except ObservabilityError as exc:
        print(f"cannot diff: {exc}", file=sys.stderr)
        return 2
    if args.report:
        import json
        from pathlib import Path
        Path(args.report).write_text(json.dumps(report, indent=2) + "\n")
    print(render_diff(report), file=out)
    return 1 if report["regressions"] else 0


def cmd_validate(args, out) -> int:
    """``validate``: calibration drift check (exit 1 on drift)."""
    from repro.apps.validation import summarize, validate_all, validate_app
    if args.app is not None:
        report = validate_app(args.app)
        print(report.render(), file=out)
        return 0 if report.passed(args.tolerance) else 1
    reports = validate_all()
    print(summarize(reports, tolerance=args.tolerance), file=out)
    return 0 if all(r.passed(args.tolerance) for r in reports.values()) else 1


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = _parser().parse_args(argv)
    if args.command == "list-apps":
        return cmd_list_apps(out)
    if args.command == "run":
        return cmd_run(args, out)
    if args.command == "sweep":
        return cmd_sweep(args, out)
    if args.command == "feasibility":
        return cmd_feasibility(args, out)
    if args.command == "table1":
        print(render_table1(), file=out)
        return 0
    if args.command == "faults":
        return cmd_faults_run(args, out)
    if args.command == "ckpt":
        return cmd_ckpt_verify(args, out)
    if args.command == "obs":
        handlers = {"view": cmd_obs_view, "top": cmd_obs_top,
                    "critpath": cmd_obs_critpath, "diff": cmd_obs_diff}
        return handlers[args.obs_command](args, out)
    if args.command == "validate":
        return cmd_validate(args, out)
    if args.command == "report":
        from repro.report import generate_report
        path = generate_report(args.out, nranks=args.ranks, quick=args.quick)
        print(f"report written to {path}", file=out)
        return 0
    if args.command == "analyze":
        return cmd_analyze(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")


def cmd_analyze(args, out) -> int:
    """``analyze``: statistics from saved traces, no re-simulation."""
    from repro.metrics import ib_stats, iws_ratio
    from repro.metrics.period import estimate_period_from_log
    from repro.metrics.stats import footprint_stats
    from repro.trace import load_traces

    logs = load_traces(args.trace)
    for rank, log in sorted(logs.items()):
        stats = ib_stats(log, skip_until=args.skip)
        fp = footprint_stats(log, skip_until=args.skip)
        line = (f"rank {rank} ({log.app_name}): {stats.as_row()}  "
                f"footprint {fp.as_row()}  "
                f"iws/footprint {iws_ratio(log, skip_until=args.skip):.1%}")
        try:
            period = estimate_period_from_log(log, skip_until=args.skip)
            line += f"  period {period:.2f} s"
        except Exception:
            pass  # short or aperiodic trace: no period to report
        print(line, file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause.
The sub-hierarchies mirror the substrates: simulation engine, memory
system, process/syscall layer, network, MPI runtime, checkpointing, and
experiment configuration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# --------------------------------------------------------------------------
# Simulation engine
# --------------------------------------------------------------------------

class SimulationError(ReproError):
    """Errors in the discrete-event simulation engine."""


class ClockError(SimulationError):
    """An event was scheduled in the past, or time went backwards."""


class ProcessStateError(SimulationError):
    """A simulated process was driven while in an incompatible state."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked."""


class ShardDivergenceError(SimulationError):
    """Sharded rank-group runs disagreed where determinism requires
    bit-identical streams (cross-shard traffic digests, event counts,
    or the merged trace); the shards did not walk the same simulation."""


# --------------------------------------------------------------------------
# Memory subsystem
# --------------------------------------------------------------------------

class MemoryError_(ReproError):
    """Base for address-space errors (named to avoid shadowing builtins)."""


class SegmentationFault(MemoryError_):
    """An access touched an unmapped address (a *real* SIGSEGV, not a
    write-protection fault, which is handled internally by the MMU)."""

    def __init__(self, addr: int, message: str = ""):
        self.addr = addr
        super().__init__(message or f"segmentation fault at address {addr:#x}")


class MappingError(MemoryError_):
    """mmap/munmap/brk arguments were invalid (overlap, misalignment...)."""


class ProtectionError(MemoryError_):
    """mprotect was applied to an invalid range or invalid protection."""


class AllocationError(MemoryError_):
    """The heap allocator could not satisfy a request."""


# --------------------------------------------------------------------------
# Process / syscall layer
# --------------------------------------------------------------------------

class ProcessError(ReproError):
    """Errors from the simulated UNIX process layer."""


class SignalError(ProcessError):
    """Invalid signal number or handler registration."""


# --------------------------------------------------------------------------
# Network / MPI
# --------------------------------------------------------------------------

class NetworkError(ReproError):
    """Errors in the interconnect model."""


class MPIError(ReproError):
    """Errors in the MPI-like runtime (bad rank, mismatched collective...)."""


class RankError(MPIError):
    """A rank outside ``[0, size)`` was addressed."""

    def __init__(self, rank: int, size: int):
        self.rank = rank
        self.size = size
        super().__init__(f"rank {rank} out of range for communicator of size {size}")


# --------------------------------------------------------------------------
# Checkpoint / recovery
# --------------------------------------------------------------------------

class CheckpointError(ReproError):
    """Errors in checkpoint capture, storage, or restore."""


class RecoveryError(CheckpointError):
    """Rollback recovery could not reconstruct a consistent state."""


class CorruptionError(RecoveryError):
    """Integrity verification found a silently corrupted checkpoint piece
    (digest mismatch, broken chain link, or a dropped piece)."""


class StorageError(ReproError):
    """Errors in the stable-storage model."""


class FaultPlanError(ReproError):
    """A fault-injection plan is malformed or cannot be delivered."""


# --------------------------------------------------------------------------
# Observability
# --------------------------------------------------------------------------

class ObservabilityError(ReproError):
    """Errors in the tracing/metrics layer (bad trace file, metric kind
    mismatch, invalid export target)."""


# --------------------------------------------------------------------------
# Experiments / configuration
# --------------------------------------------------------------------------

class ConfigurationError(ReproError):
    """An experiment or application was configured inconsistently."""


class CalibrationError(ReproError):
    """A workload calibration target cannot be met with given parameters."""

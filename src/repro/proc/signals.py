"""The two signals the paper's instrumentation library handles.

SIGSEGV is delivered *synchronously* when a store hits a write-protected
page; the handler records the page as dirty and unprotects it.  SIGALRM
is delivered by the interval timer at each checkpoint-timeslice boundary.
"""

from __future__ import annotations

import enum


class Signal(enum.IntEnum):
    """Signal numbers (Linux/ia64 values, for flavour)."""

    SIGSEGV = 11
    SIGALRM = 14

"""Simulated UNIX process layer.

Glues an :class:`~repro.mem.AddressSpace` to the simulation engine and
exposes the POSIX-flavoured surface the paper's instrumentation library
uses: ``sbrk``/``brk``, ``mmap``/``munmap``, ``mprotect``, ``sigaction``
(SIGSEGV and SIGALRM) and ``setitimer``; plus a libc-style heap allocator
with the two allocation personalities the paper observes (Intel Fortran77
puts dynamic memory on the heap; Fortran90 uses heap *and* mmap).
"""

from repro.proc.signals import Signal
from repro.proc.process import Process
from repro.proc.allocator import Allocator, Block

__all__ = ["Allocator", "Block", "Process", "Signal"]

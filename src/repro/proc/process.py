"""The simulated process: address space + signals + timers.

A :class:`Process` is the unit the instrumentation library attaches to.
It does not *run* anything itself -- application workloads drive it from
a :class:`~repro.sim.process.SimProcess` body -- but it owns everything a
kernel would track for the process: the address space, signal handlers,
and interval timers.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import ProtectionError, SignalError
from repro.mem import AddressSpace, Layout, Segment
from repro.proc.signals import Signal
from repro.sim import Engine, IntervalTimer


class Process:
    """A simulated UNIX process.

    Parameters mirror what the loader would establish: the sizes of the
    initialized-data and BSS segments ("compile-time" memory), the stack,
    and the page size via ``layout``.
    """

    def __init__(self, engine: Engine, name: str = "proc", *,
                 layout: Optional[Layout] = None,
                 data_size: int = 0, bss_size: int = 0,
                 stack_size: int = 64 * 1024,
                 phantom: bool = False):
        self.engine = engine
        self.name = name
        self.memory = AddressSpace(layout, data_size=data_size,
                                   bss_size=bss_size, stack_size=stack_size,
                                   phantom=phantom)
        self._signal_handlers: dict[Signal, Callable[..., Any]] = {}
        self._itimer: Optional[IntervalTimer] = None
        #: CPU time spent in instrumentation (fault handling, re-protect
        #: sweeps, bounce-buffer copies); charged by the tracker and,
        #: when the workload runs with ``charge_overhead``, folded back
        #: into the application's wall clock (the section 6.5 slowdown).
        self.overhead_time: float = 0.0
        # SIGSEGV delivery: the MMU reports faults; if a handler is
        # installed we invoke it per faulting write (the recording the
        # paper's library does).  Without a handler a protected-page
        # store is a real crash.
        self.memory.fault_listeners.append(self._deliver_segv)

    # -- signals ---------------------------------------------------------------

    def sigaction(self, sig: Signal, handler: Optional[Callable[..., Any]]) -> None:
        """Install (or with None, remove) a signal handler.

        SIGSEGV handlers receive ``(segment, lo_page, hi_page, nfaults)``;
        SIGALRM handlers receive the expiry index.
        """
        if not isinstance(sig, Signal):
            raise SignalError(f"unknown signal {sig!r}")
        if handler is None:
            self._signal_handlers.pop(sig, None)
        else:
            self._signal_handlers[sig] = handler

    def _deliver_segv(self, seg: Segment, lo: int, hi: int, nfaults: int) -> None:
        handler = self._signal_handlers.get(Signal.SIGSEGV)
        if handler is not None:
            handler(seg, lo, hi, nfaults)

    # -- timers ----------------------------------------------------------------

    def setitimer(self, interval: float,
                  start_after: Optional[float] = None) -> IntervalTimer:
        """Arm the (single) real-interval timer; expiries deliver SIGALRM
        to the installed handler.  Re-arming cancels the previous timer."""
        if self._itimer is not None:
            self._itimer.cancel()

        def deliver(index: int) -> None:
            handler = self._signal_handlers.get(Signal.SIGALRM)
            if handler is not None:
                handler(index)

        self._itimer = IntervalTimer(self.engine, interval, deliver,
                                     start_after=start_after,
                                     name=f"{self.name}.itimer")
        return self._itimer

    def cancel_itimer(self) -> None:
        """Disarm the interval timer, if armed."""
        if self._itimer is not None:
            self._itimer.cancel()
            self._itimer = None

    def next_timer_expiry(self) -> Optional[float]:
        """Absolute time of the next SIGALRM, or None.  Compute phases use
        this to stop exactly at timeslice boundaries (EINTR-style)."""
        if self._itimer is None:
            return None
        return self._itimer.next_expiry()

    # -- syscalls (delegation to the address space) ------------------------------------

    def sbrk(self, delta: int) -> int:
        """Move the program break by ``delta`` bytes; returns the old one."""
        return self.memory.sbrk(delta)

    def brk(self, addr: int) -> None:
        """Set the program break to ``addr`` (page-aligned upward)."""
        self.memory.sbrk(addr - self.memory.brk)

    def mmap(self, size: int, name: str = "") -> Segment:
        """Map a new anonymous region (the intercepted syscall)."""
        return self.memory.mmap(size, name=name)

    def munmap(self, addr: int, size: int) -> None:
        """Unmap ``[addr, addr+size)`` (the intercepted syscall)."""
        self.memory.munmap(addr, size)

    def mprotect_data(self, readonly: bool = True) -> int:
        """(Un)protect the whole data memory, as the library does at
        MPI_Init and at each alarm."""
        if readonly:
            return self.memory.protect_data()
        self.memory.unprotect_data()
        return 0

    def mprotect(self, seg: Segment, lo: int, hi: int, readonly: bool = True) -> None:
        """mprotect a page range of one segment."""
        if not seg.kind.is_data_memory and readonly:
            raise ProtectionError(
                f"cannot write-protect {seg.kind.value} segment (section 4.2)")
        seg.pages.protect_range(lo, hi, value=readonly)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {self.memory!r}>"

"""A libc-style dynamic-memory allocator on top of the simulated process.

The paper (section 4.1) notes that dynamic-memory behaviour depends on
the compiler: *"The Intel Fortran77 compiler allocates dynamic memory to
the heap, while the Intel Fortran90 compiler uses both the heap and the
mmap memory areas."*  The allocator reproduces both personalities:

- :attr:`AllocStyle.F77` -- everything goes on the heap (``sbrk``);
- :attr:`AllocStyle.F90` -- requests at or above ``mmap_threshold`` get
  their own mmap'ed region (glibc's M_MMAP_THRESHOLD behaviour), the
  rest go on the heap.

The heap side is a first-fit free list with coalescing and optional
top-of-heap trimming, so long-running workloads like Sage exhibit the
varying footprint the paper reports (average < maximum in Table 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import AllocationError
from repro.mem import Segment
from repro.proc.process import Process
from repro.units import KiB, page_align_up

#: glibc default M_MMAP_THRESHOLD
DEFAULT_MMAP_THRESHOLD: int = 128 * KiB

_ALIGN = 16


class AllocStyle(enum.Enum):
    """Which memory areas dynamic allocations use."""

    F77 = "fortran77"   # heap only
    F90 = "fortran90"   # heap + mmap for large blocks


@dataclass
class Block:
    """A live allocation."""

    addr: int
    size: int            # usable bytes requested (rounded to alignment)
    via_mmap: bool
    segment: Optional[Segment] = None  # set for mmap blocks
    freed: bool = field(default=False, compare=False)

    @property
    def end(self) -> int:
        return self.addr + self.size


class Allocator:
    """First-fit heap allocator + mmap for large blocks.

    Not thread-safe and not trying to be clever -- the goal is realistic
    *address-space behaviour* (growth, reuse, fragmentation, unmapping),
    not allocator micro-performance.
    """

    def __init__(self, process: Process,
                 style: AllocStyle = AllocStyle.F90,
                 mmap_threshold: int = DEFAULT_MMAP_THRESHOLD,
                 trim_threshold: int = 1 * 1024 * KiB,
                 min_heap_grow: int = 256 * KiB):
        self.process = process
        self.style = style
        self.mmap_threshold = mmap_threshold
        self.trim_threshold = trim_threshold
        self.min_heap_grow = min_heap_grow
        #: free heap ranges as (addr, size), kept sorted and coalesced
        self._free: list[tuple[int, int]] = []
        #: top of the allocated heap region (== brk)
        self.live_bytes = 0
        self.peak_live_bytes = 0
        self.n_mallocs = 0
        self.n_frees = 0

    # -- public API -------------------------------------------------------------

    def malloc(self, size: int) -> Block:
        """Allocate ``size`` bytes; returns a :class:`Block`."""
        if size <= 0:
            raise AllocationError(f"malloc of non-positive size {size}")
        size = -(-size // _ALIGN) * _ALIGN
        self.n_mallocs += 1
        if self.style is AllocStyle.F90 and size >= self.mmap_threshold:
            seg = self.process.mmap(size, name=f"malloc-{self.n_mallocs}")
            block = Block(addr=seg.base, size=size, via_mmap=True, segment=seg)
        else:
            block = Block(addr=self._heap_alloc(size), size=size, via_mmap=False)
        self.live_bytes += size
        self.peak_live_bytes = max(self.peak_live_bytes, self.live_bytes)
        return block

    def free(self, block: Block) -> None:
        """Release a block.  mmap blocks are unmapped immediately; heap
        blocks return to the free list (coalesced), and the heap is
        trimmed when the top free range exceeds ``trim_threshold``."""
        if block.freed:
            raise AllocationError(f"double free of block at {block.addr:#x}")
        block.freed = True
        self.n_frees += 1
        self.live_bytes -= block.size
        if block.via_mmap:
            assert block.segment is not None
            self.process.munmap(block.segment.base, block.segment.size)
            return
        self._heap_free(block.addr, block.size)
        self._maybe_trim()

    def calloc(self, size: int) -> Block:
        """Allocate and zero (the zeroing *writes* the memory, which
        matters for dirty-page accounting)."""
        block = self.malloc(size)
        self.process.memory.cpu_write(block.addr, block.size)
        return block

    # -- heap internals ----------------------------------------------------------

    def _heap_alloc(self, size: int) -> int:
        # first fit
        for i, (addr, free_size) in enumerate(self._free):
            if free_size >= size:
                if free_size == size:
                    self._free.pop(i)
                else:
                    self._free[i] = (addr + size, free_size - size)
                return addr
        # grow the heap
        grow = page_align_up(max(size, self.min_heap_grow),
                             self.process.memory.page_size)
        old_brk = self.process.sbrk(grow)
        if grow > size:
            self._heap_free(old_brk + size, grow - size)
        return old_brk

    def _heap_free(self, addr: int, size: int) -> None:
        self._free.append((addr, size))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for a, s in self._free:
            if merged and merged[-1][0] + merged[-1][1] == a:
                merged[-1] = (merged[-1][0], merged[-1][1] + s)
            else:
                merged.append((a, s))
        self._free = merged

    def _maybe_trim(self) -> None:
        if not self._free:
            return
        top_addr, top_size = self._free[-1]
        brk = self.process.memory.brk
        if top_addr + top_size == brk and top_size >= self.trim_threshold:
            self.process.sbrk(-top_size)
            self._free.pop()

    # -- introspection -----------------------------------------------------------

    def free_bytes(self) -> int:
        """Bytes currently on the heap free list."""
        return sum(s for _, s in self._free)

    def check_invariants(self) -> None:
        """Assert free-list sanity (sorted, coalesced, within the heap)."""
        heap = self.process.memory.heap
        prev_end = heap.base
        for addr, size in self._free:
            if size <= 0:
                raise AllocationError(f"empty free range at {addr:#x}")
            if addr < prev_end:
                raise AllocationError("free list overlapping or unsorted")
            if addr + size > heap.end:
                raise AllocationError("free range outside the heap")
            prev_end = addr + size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.units import fmt_bytes
        return (f"<Allocator {self.style.value} live={fmt_bytes(self.live_bytes)} "
                f"free={fmt_bytes(self.free_bytes())}>")

"""An MPI-like message-passing runtime on the simulated cluster.

Ranks are simulation processes; each owns a :class:`~repro.proc.Process`
(address space) and a :class:`~repro.net.NIC`.  The API mirrors the
mpi4py conventions the workloads are written against:

- ``comm.send(dest, nbytes, ...)`` injects a message (eager protocol);
- ``msg = yield comm.recv(source, ...)`` blocks a rank body until a
  matching message arrives (wildcards ``ANY_SOURCE``/``ANY_TAG``);
- ``yield from comm.barrier()`` / ``bcast`` / ``reduce`` / ``allreduce``
  / ``gather`` / ``allgather`` / ``alltoall`` are generator collectives
  implemented over point-to-point messages (dissemination / binomial
  tree / ring / pairwise exchange).

The instrumentation library hooks two points, exactly as the paper's
preload library does: receive interception (bounce-buffer deposit) and
per-receive accounting for the data-received-per-timeslice metric.
"""

from repro.mpi.communicator import ANY_SOURCE, ANY_TAG, PostedRecv, RankComm, World
from repro.mpi.request import Request, wait_all
from repro.mpi.runtime import MPIJob, RankContext

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "MPIJob",
    "PostedRecv",
    "RankComm",
    "RankContext",
    "Request",
    "World",
    "wait_all",
]

"""Nonblocking-communication requests (the mpi4py ``isend``/``irecv``
surface).

A :class:`Request` wraps the completion future of a nonblocking
operation.  Rank bodies either ``yield req.wait()`` (block until
complete) or poll with :meth:`test` between other work -- the
computation/communication overlap idiom of the bulk-synchronous codes.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import MPIError
from repro.sim import Engine, Future, all_of


class Request:
    """Handle for one nonblocking send or receive."""

    __slots__ = ("future", "kind")

    def __init__(self, future: Future, kind: str):
        self.future = future
        self.kind = kind

    def test(self) -> bool:
        """True once the operation has completed (never blocks)."""
        return self.future.resolved

    def wait(self) -> Future:
        """The future to ``yield`` from a rank body; its value is the
        delivered :class:`~repro.net.Message` (receives) or None (sends)."""
        return self.future

    @property
    def value(self) -> Any:
        """The completion value; raises if not yet complete."""
        if not self.future.resolved:
            raise MPIError(f"{self.kind} request not yet complete")
        return self.future.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "complete" if self.future.resolved else "pending"
        return f"<Request {self.kind} {state}>"


def wait_all(engine: Engine, requests: list[Request]) -> Future:
    """A future that resolves when every request has completed (the
    ``MPI_Waitall`` pattern closing a halo exchange)."""
    return all_of(engine, [r.future for r in requests], label="waitall")

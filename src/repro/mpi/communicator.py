"""Point-to-point messaging with MPI matching semantics.

Matching follows the MPI rules: a posted receive names a source and tag
(either may be a wildcard) and matches arrivals in order; messages that
arrive before a matching receive is posted wait in the unexpected queue.

Both sides of the match are indexed so the common case is O(1):

- posted receives live in per-``(source, tag)`` deques keyed exactly as
  posted (wildcards included), stamped with a post sequence number.  An
  arrival probes the four keys that could match it -- ``(src, tag)``,
  ``(src, ANY)``, ``(ANY, tag)``, ``(ANY, ANY)`` -- and takes the head
  with the smallest stamp, which is the *oldest compatible posted
  receive* exactly as the linear scan found it;
- unexpected messages live in per-``(src, tag)`` deques (both concrete
  on arrival) stamped with an arrival sequence number.  A specific
  receive pops its class head in O(1); a wildcard receive falls back to
  scanning the heads of the live classes for the smallest stamp -- the
  *oldest compatible arrival*.  Empty deques are deleted eagerly, so
  the fallback scan is bounded by classes with messages actually
  queued (collectives mint fresh tags forever; stale keys must not
  accumulate).

Delivery into user memory goes through the NIC: by default the QsNet
direct path (DMA, invisible to dirty tracking); when the instrumentation
library has installed its receive interceptor, the bounce-buffer path
(CPU copy, ordinary faults, plus a copy-time overhead on the receiver).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.errors import MPIError, RankError
from repro.net import Message, Network, NIC, SkeletonMessage
from repro.sim import Engine, Future

ANY_SOURCE: int = -1
ANY_TAG: int = -1


@dataclass
class PostedRecv:
    """A receive waiting for a matching message."""

    source: int
    tag: int
    addr: Optional[int]
    size: int
    future: Future = field(repr=False)
    #: post-order stamp; ties across match classes resolve to the oldest
    seq: int = 0

    def matches(self, msg: Message) -> bool:
        """MPI matching: source and tag agree (wildcards allowed)."""
        return ((self.source == ANY_SOURCE or self.source == msg.src)
                and (self.tag == ANY_TAG or self.tag == msg.tag))


class World:
    """The communicator shared by all ranks of one job."""

    def __init__(self, engine: Engine, network: Network, nics: list[NIC]):
        self.engine = engine
        self.network = network
        self.nics = nics
        self.size = len(nics)
        if self.size < 1:
            raise MPIError("world needs at least one rank")
        self.ranks = [RankComm(self, r) for r in range(self.size)]
        for rank_comm, nic in zip(self.ranks, nics):
            nic.on_message = rank_comm._on_arrival

    def comm(self, rank: int) -> "RankComm":
        """The endpoint of one rank."""
        if not (0 <= rank < self.size):
            raise RankError(rank, self.size)
        return self.ranks[rank]


class RankComm:
    """One rank's endpoint: send/recv plus collective helpers."""

    # collective op codes used to build reserved (negative) tags
    _BARRIER, _BCAST, _REDUCE, _GATHER, _ALLGATHER, _ALLTOALL = range(6)

    def __init__(self, world: World, rank: int):
        self.world = world
        self.rank = rank
        #: posted receives, keyed by (source, tag) exactly as posted
        self._pending_by_key: dict[tuple[int, int], deque[PostedRecv]] = {}
        #: unexpected messages, keyed by concrete (src, tag); entries are
        #: (arrival_seq, Message)
        self._unexp_by_key: dict[tuple[int, int],
                                 deque[tuple[int, Message]]] = {}
        self._post_seq = 0
        self._arrival_seq = 0
        self._coll_seq = 0
        #: interception decision hook installed by the instrumentation
        #: library; None means raw QsNet DMA deposits.
        self.recv_interceptor: Optional[Callable[[Message], bool]] = None
        #: accounting callbacks fired at receive completion
        self.receive_listeners: list[Callable[[Message], None]] = []
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- properties ---------------------------------------------------------------

    @property
    def size(self) -> int:
        return self.world.size

    @property
    def engine(self) -> Engine:
        return self.world.engine

    @property
    def nic(self) -> NIC:
        return self.world.nics[self.rank]

    # -- point to point ---------------------------------------------------------------

    def send(self, dest: int, nbytes: int, tag: int = 0,
             payload: Any = None) -> Message:
        """Eager send: inject and return immediately (the NIC serializes
        back-to-back sends; the sender does not block)."""
        if not (0 <= dest < self.size):
            raise RankError(dest, self.size)
        if tag < 0:
            raise MPIError(f"application tags must be non-negative, got {tag}")
        return self._send(dest, nbytes, tag, payload)

    def _send(self, dest: int, nbytes: int, tag: int, payload: Any) -> Message:
        if payload is None:
            # replicated skeleton traffic (barrier rounds, halo bulk):
            # the slotted flyweight skips dataclass construction and the
            # global message-id counter
            msg = SkeletonMessage(self.rank, dest, nbytes, tag)
        else:
            msg = Message(src=self.rank, dst=dest, size=nbytes, tag=tag,
                          payload=payload)
        self.world.network.send(msg)
        self.bytes_sent += nbytes
        return msg

    def send_many(self, dests: Sequence[int], nbytes: int, tag: int = 0,
                  payload: Any = None) -> list[Message]:
        """Eager fan-out: one ``nbytes`` message to each destination, in
        order, through the network's batched injection path.

        Timing and accounting are identical to calling :meth:`send` once
        per destination; the engine sees one delivery event per distinct
        arrival time instead of one per message.
        """
        if tag < 0:
            raise MPIError(f"application tags must be non-negative, got {tag}")
        return self._send_many(dests, nbytes, tag, payload)

    def _send_many(self, dests: Sequence[int], nbytes: int, tag: int,
                   payload: Any) -> list[Message]:
        size = self.size
        for dest in dests:
            if not (0 <= dest < size):
                raise RankError(dest, size)
        if payload is None:
            rank = self.rank
            msgs: list[Message] = [SkeletonMessage(rank, dest, nbytes, tag)
                                   for dest in dests]
        else:
            msgs = [Message(src=self.rank, dst=dest, size=nbytes, tag=tag,
                            payload=payload) for dest in dests]
        self.world.network.send_many(msgs)
        self.bytes_sent += nbytes * len(msgs)
        return msgs

    def isend(self, dest: int, nbytes: int, tag: int = 0,
              payload: Any = None) -> "Request":
        """Nonblocking send; the request completes at network injection
        (the eager model -- buffered locally, like small-message MPI)."""
        from repro.mpi.request import Request
        msg = self.send(dest, nbytes, tag, payload)
        fut = Future(self.engine, label=f"rank{self.rank}.isend")
        fut.resolve(msg)
        return Request(fut, "isend")

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, *,
              addr: Optional[int] = None, size: int = 0) -> "Request":
        """Nonblocking receive; ``req.test()`` polls, ``yield req.wait()``
        blocks."""
        from repro.mpi.request import Request
        return Request(self.recv(source, tag, addr=addr, size=size), "irecv")

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, *,
             addr: Optional[int] = None, size: int = 0) -> Future:
        """Post a receive; returns a Future resolving with the Message.

        ``addr`` is the destination buffer in this rank's address space;
        when given, delivery writes the payload there (dirtying pages via
        whichever NIC path is active).  ``size`` bounds the acceptable
        message (0 = unbounded).
        """
        if source != ANY_SOURCE and not (0 <= source < self.size):
            raise RankError(source, self.size)
        fut = Future(self.engine, label=f"rank{self.rank}.recv")
        posted = PostedRecv(source=source, tag=tag, addr=addr, size=size,
                            future=fut, seq=self._post_seq)
        self._post_seq += 1
        msg = self._take_unexpected(source, tag)
        if msg is not None:
            self._complete(posted, msg)
            return fut
        dq = self._pending_by_key.get((source, tag))
        if dq is None:
            dq = self._pending_by_key[(source, tag)] = deque()
        dq.append(posted)
        return fut

    def _take_unexpected(self, source: int, tag: int) -> Optional[Message]:
        """Pop and return the oldest queued message matching
        ``(source, tag)``, or None."""
        unexp = self._unexp_by_key
        if not unexp:
            return None
        if source != ANY_SOURCE and tag != ANY_TAG:
            key = (source, tag)
            dq = unexp.get(key)
            if dq is None:
                return None
        else:
            # wildcard fallback: oldest arrival across compatible classes
            # (only heads are inspected; classes with no messages were
            # deleted when they drained)
            key = None
            best = -1
            for k, cand in unexp.items():
                if ((source == ANY_SOURCE or source == k[0])
                        and (tag == ANY_TAG or tag == k[1])):
                    seq = cand[0][0]
                    if key is None or seq < best:
                        key, best = k, seq
            if key is None:
                return None
            dq = unexp[key]
        _, msg = dq.popleft()
        if not dq:
            del unexp[key]
        return msg

    def _on_arrival(self, msg: Message) -> None:
        pending = self._pending_by_key
        if pending:
            # the four keys a (src, tag) arrival can match; oldest post wins
            best_key = None
            best_posted = None
            for key in ((msg.src, msg.tag), (msg.src, ANY_TAG),
                        (ANY_SOURCE, msg.tag), (ANY_SOURCE, ANY_TAG)):
                dq = pending.get(key)
                if dq and (best_posted is None
                           or dq[0].seq < best_posted.seq):
                    best_key, best_posted = key, dq[0]
            if best_posted is not None:
                dq = pending[best_key]
                dq.popleft()
                if not dq:
                    del pending[best_key]
                self._complete(best_posted, msg)
                return
        key = (msg.src, msg.tag)
        dq = self._unexp_by_key.get(key)
        if dq is None:
            dq = self._unexp_by_key[key] = deque()
        dq.append((self._arrival_seq, msg))
        self._arrival_seq += 1

    # -- introspection (ordered views of the indexed queues) -----------------------

    @property
    def _pending(self) -> list[PostedRecv]:
        """Posted receives in post order (a snapshot; tests and debugging
        read this -- the matcher itself uses the indexed deques)."""
        out = [p for dq in self._pending_by_key.values() for p in dq]
        out.sort(key=lambda p: p.seq)
        return out

    @property
    def _unexpected(self) -> list[Message]:
        """Unexpected messages in arrival order (a snapshot)."""
        out = [e for dq in self._unexp_by_key.values() for e in dq]
        out.sort(key=lambda e: e[0])
        return [msg for _, msg in out]

    def _complete(self, posted: PostedRecv, msg: Message) -> None:
        if posted.size and msg.size > posted.size:
            raise MPIError(
                f"rank {self.rank}: message of {msg.size} bytes overflows "
                f"posted receive buffer of {posted.size}")
        copy_time = 0.0
        if posted.addr is not None and msg.size > 0:
            intercept = (self.recv_interceptor(msg)
                         if self.recv_interceptor is not None else False)
            result = self.nic.deposit(posted.addr, msg.size, intercept=intercept)
            copy_time = result.copy_time
        self.bytes_received += msg.size

        def finish() -> None:
            for listener in self.receive_listeners:
                listener(msg)
            posted.future.resolve(msg)

        if copy_time > 0:
            self.engine.schedule(copy_time, finish)
        else:
            finish()

    # -- collective helpers (yield from these inside rank bodies) ------------------------

    def _coll_tag(self, op: int, seq: int, round_: int) -> int:
        return -(seq * 64 + op * 8 + round_ + 1)

    def _peer(self, rank: int) -> "RankComm":
        return self.world.ranks[rank]

    def barrier(self):
        """Dissemination barrier: ceil(log2(size)) rounds of header-size
        messages."""
        seq = self._coll_seq
        self._coll_seq += 1
        n = self.size
        k = 0
        dist = 1
        while dist < n:
            tag = self._coll_tag(self._BARRIER, seq, k)
            self._send((self.rank + dist) % n, 0, tag, None)
            yield self.recv(source=(self.rank - dist) % n, tag=tag)
            dist *= 2
            k += 1

    def bcast(self, value: Any = None, root: int = 0, nbytes: int = 0,
              addr: Optional[int] = None):
        """Binomial-tree broadcast; the generator returns the value."""
        self._check_root(root)
        seq = self._coll_seq
        self._coll_seq += 1
        n = self.size
        vrank = (self.rank - root) % n
        tag = self._coll_tag(self._BCAST, seq, 0)
        # canonical binomial tree (MPICH style): receive from the parent
        # (vrank with its lowest set bit cleared), then forward downward.
        mask = 1
        while mask < n:
            if vrank & mask:
                parent_v = vrank - mask
                msg = yield self.recv(source=(parent_v + root) % n, tag=tag,
                                      addr=addr, size=nbytes or 0)
                value = msg.payload
                break
            mask <<= 1
        mask >>= 1
        children = []
        while mask > 0:
            if vrank + mask < n and not (vrank & mask):
                children.append(((vrank + mask) + root) % n)
            mask >>= 1
        if children:
            self._send_many(children, nbytes, tag, value)
        return value

    def reduce(self, value: Any, op: Callable[[Any, Any], Any] = None,
               root: int = 0, nbytes: int = 0):
        """Binomial-tree reduction toward ``root``; returns the reduced
        value at the root (None elsewhere)."""
        self._check_root(root)
        if op is None:
            op = lambda a, b: a + b
        seq = self._coll_seq
        self._coll_seq += 1
        n = self.size
        vrank = (self.rank - root) % n
        acc = value
        dist = 1
        while dist < n:
            tag = self._coll_tag(self._REDUCE, seq, 0)
            if vrank & dist:
                self._send(((vrank - dist) + root) % n, nbytes, tag, acc)
                return None
            partner_v = vrank | dist
            if partner_v < n:
                msg = yield self.recv(source=(partner_v + root) % n, tag=tag)
                acc = op(acc, msg.payload)
            dist *= 2
        return acc

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] = None,
                  nbytes: int = 0):
        """reduce to rank 0 + bcast; returns the reduced value everywhere."""
        reduced = yield from self.reduce(value, op=op, root=0, nbytes=nbytes)
        result = yield from self.bcast(reduced, root=0, nbytes=nbytes)
        return result

    def gather(self, value: Any, root: int = 0, nbytes: int = 0):
        """Linear gather; returns the list at the root (None elsewhere)."""
        self._check_root(root)
        seq = self._coll_seq
        self._coll_seq += 1
        tag = self._coll_tag(self._GATHER, seq, 0)
        if self.rank != root:
            self._send(root, nbytes, tag, value)
            return None
        out: list[Any] = [None] * self.size
        out[root] = value
        for _ in range(self.size - 1):
            msg = yield self.recv(source=ANY_SOURCE, tag=tag)
            out[msg.src] = msg.payload
        return out

    def allgather(self, value: Any, nbytes: int = 0):
        """Ring allgather: size-1 rounds; returns the full list."""
        seq = self._coll_seq
        self._coll_seq += 1
        n = self.size
        out: list[Any] = [None] * n
        out[self.rank] = value
        right = (self.rank + 1) % n
        left = (self.rank - 1) % n
        carry_rank, carry = self.rank, value
        for r in range(n - 1):
            tag = self._coll_tag(self._ALLGATHER, seq, r % 8)
            self._send(right, nbytes, tag, (carry_rank, carry))
            msg = yield self.recv(source=left, tag=tag)
            carry_rank, carry = msg.payload
            out[carry_rank] = carry
        return out

    def alltoall(self, values: list[Any], nbytes_each: int = 0,
                 addr: Optional[int] = None):
        """Pairwise-exchange all-to-all; returns the received list.

        ``nbytes_each`` is the per-pair payload size (FT's transpose sends
        footprint/size**2 bytes to every peer).  When ``addr`` is given,
        each arriving block lands there sequentially.
        """
        if len(values) != self.size:
            raise MPIError(
                f"alltoall needs {self.size} values, got {len(values)}")
        seq = self._coll_seq
        self._coll_seq += 1
        n = self.size
        out: list[Any] = [None] * n
        out[self.rank] = values[self.rank]
        for r in range(1, n):
            # rotation schedule works for any communicator size: in round
            # r, send to rank+r and receive from rank-r (sends are eager,
            # so the cycle cannot deadlock)
            dst = (self.rank + r) % n
            src = (self.rank - r) % n
            tag = self._coll_tag(self._ALLTOALL, seq, r % 8)
            self._send(dst, nbytes_each, tag, values[dst])
            dest = (addr + (r - 1) * nbytes_each) if addr is not None else None
            msg = yield self.recv(source=src, tag=tag, addr=dest,
                                  size=nbytes_each or 0)
            out[src] = msg.payload
        return out

    # -- misc ---------------------------------------------------------------------

    def _check_root(self, root: int) -> None:
        if not (0 <= root < self.size):
            raise RankError(root, self.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RankComm rank={self.rank}/{self.size}>"

"""Job construction and launch: ranks, processes, NICs, contexts.

An :class:`MPIJob` assembles everything one parallel program needs on
the simulated cluster -- a network with a node-aware topology (two ranks
per node on the paper's dual-Itanium rx2600s), one UNIX process and NIC
per rank -- and launches rank bodies as simulation processes.

The instrumentation library attaches itself via ``init_hooks``, which
run when each rank body starts: that is the ``MPI_Init`` interception
the paper describes (section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.errors import ConfigurationError
from repro.mem import Layout
from repro.mpi.communicator import RankComm, World
from repro.net import LinkSpec, Network, NIC, QSNET2, Topology
from repro.proc import Process
from repro.sim import Engine, SimProcess


class RankTopology(Topology):
    """Maps ranks onto nodes (``procs_per_node`` ranks each) and measures
    hops between the *nodes*; co-located ranks are zero hops apart."""

    def __init__(self, nranks: int, procs_per_node: int = 2,
                 shape: str = "fat-tree", radix: int = 4):
        if procs_per_node < 1:
            raise ConfigurationError(
                f"procs_per_node must be >= 1, got {procs_per_node}")
        self.procs_per_node = procs_per_node
        nnodes = -(-nranks // procs_per_node)
        super().__init__(nnodes, shape=shape, radix=radix)  # type: ignore[arg-type]
        self.nranks = nranks

    def hops(self, a: int, b: int) -> int:
        node_a, node_b = a // self.procs_per_node, b // self.procs_per_node
        if node_a == node_b:
            return 0
        return super().hops(node_a, node_b)


@dataclass
class RankContext:
    """Everything a rank body needs, passed to the body factory."""

    rank: int
    size: int
    engine: Engine
    process: Process
    comm: RankComm
    node: int

    @property
    def memory(self):
        return self.process.memory


class MPIJob:
    """A parallel job on the simulated cluster."""

    def __init__(self, engine: Engine, nranks: int, *,
                 link: LinkSpec = QSNET2,
                 procs_per_node: int = 2,
                 layout: Optional[Layout] = None,
                 process_factory: Optional[Callable[[int], Process]] = None,
                 name: str = "job"):
        if nranks < 1:
            raise ConfigurationError(f"need at least one rank, got {nranks}")
        self.engine = engine
        self.nranks = nranks
        self.name = name
        self.procs_per_node = procs_per_node
        topo = RankTopology(nranks, procs_per_node=procs_per_node)
        self.network = Network(engine, nranks, spec=link, topology=topo)
        if process_factory is None:
            process_factory = lambda rank: Process(
                engine, name=f"{name}.r{rank}", layout=layout)
        self.processes = [process_factory(r) for r in range(nranks)]
        self.nics = [NIC(r, self.network, self.processes[r])
                     for r in range(nranks)]
        self.world = World(engine, self.network, self.nics)
        self.contexts = [RankContext(rank=r, size=nranks, engine=engine,
                                     process=self.processes[r],
                                     comm=self.world.comm(r),
                                     node=r // procs_per_node)
                         for r in range(nranks)]
        #: hooks run at each rank body's start (MPI_Init interception)
        self.init_hooks: list[Callable[[RankContext], None]] = []
        #: hooks run when a rank body completes or is killed
        #: (MPI_Finalize interception) -- the instrumentation library
        #: uses this to disarm its alarm so the simulation can drain
        self.fini_hooks: list[Callable[[RankContext], None]] = []
        self.sim_processes: list[SimProcess] = []

    def launch(self, body_factory: Callable[[RankContext], Generator],
               ranks: Optional[list[int]] = None) -> list[SimProcess]:
        """Start one simulation process per rank running ``body_factory``.

        ``ranks`` restricts the launch (used when restarting a subset
        after a failure).
        """
        launched = []
        for ctx in self.contexts:
            if ranks is not None and ctx.rank not in ranks:
                continue
            sp = SimProcess(self.engine, self._wrap(ctx, body_factory),
                            name=f"{self.name}.rank{ctx.rank}")
            launched.append(sp)
        self.sim_processes.extend(launched)
        return launched

    def _wrap(self, ctx: RankContext,
              body_factory: Callable[[RankContext], Generator]) -> Generator:
        for hook in self.init_hooks:
            hook(ctx)
        try:
            yield from body_factory(ctx)
        finally:
            # runs on normal completion *and* on kill (failure injection)
            for hook in self.fini_hooks:
                hook(ctx)

    def fail_rank(self, rank: int) -> None:
        """Failure injection: kill the rank's process and detach its NIC
        (in-flight messages to it are lost)."""
        if not (0 <= rank < self.nranks):
            raise ConfigurationError(f"rank {rank} outside job of {self.nranks}")
        for sp in self.sim_processes:
            if sp.name == f"{self.name}.rank{rank}":
                sp.kill()
        self.nics[rank].detach()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MPIJob {self.name!r} nranks={self.nranks}>"

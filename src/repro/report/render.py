"""Text rendering helpers for series data: sparklines, block plots, TSV."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ConfigurationError

_BLOCKS = " .:-=+*#%@"


def _downsample(values: Sequence[float], width: int) -> list[float]:
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    values = list(values)
    if not values:
        return []
    step = max(1, len(values) // width)
    return [max(values[i:i + step]) for i in range(0, len(values), step)]


def sparkline(values: Sequence[float], width: int = 100) -> str:
    """A one-line density plot (max-pooled to ``width`` columns)."""
    sampled = _downsample(values, width)
    if not sampled:
        return ""
    top = max(sampled)
    if top <= 0:
        return " " * len(sampled)
    return "".join(
        _BLOCKS[min(int(v / top * (len(_BLOCKS) - 1)), len(_BLOCKS) - 1)]
        for v in sampled)


def ascii_series(values: Sequence[float], width: int = 72, height: int = 8,
                 label: str = "") -> str:
    """A small multi-line block plot."""
    sampled = _downsample(values, width)
    if not sampled:
        return f"{label} (empty)"
    top = max(sampled) or 1.0
    lines = [f"{label} (peak {top:.1f})"] if label else []
    for row in range(height, 0, -1):
        lines.append("|" + "".join(
            "#" if v / top >= row / height else " " for v in sampled))
    lines.append("+" + "-" * len(sampled))
    return "\n".join(lines)


def tsv_series(columns: dict[str, Iterable]) -> str:
    """Column data as tab-separated text (header + rows)."""
    if not columns:
        raise ConfigurationError("no columns")
    names = list(columns)
    cols = [list(columns[n]) for n in names]
    length = len(cols[0])
    if any(len(c) != length for c in cols):
        raise ConfigurationError("column length mismatch")
    lines = ["\t".join(names)]
    for i in range(length):
        lines.append("\t".join(_fmt(c[i]) for c in cols))
    return "\n".join(lines) + "\n"


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)

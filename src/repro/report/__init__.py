"""Report generation: the whole reproduction as one artifact.

:func:`~repro.report.generator.generate_report` runs every experiment
and writes a self-contained ``report.md`` plus TSV data series for each
figure, so the paper-versus-measured comparison can be regenerated (or
plotted with any tool) in one command::

    python -m repro report --out report/
"""

from repro.report.render import ascii_series, sparkline, tsv_series
from repro.report.generator import generate_report

__all__ = ["ascii_series", "generate_report", "sparkline", "tsv_series"]

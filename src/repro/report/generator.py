"""Generate the full reproduction report.

Runs the paper's evaluation (Tables 2-4, Figs 1-5, sections 6.3/6.5/6.6)
on the simulated cluster and writes

- ``report.md`` -- every table with simulated-versus-paper columns,
  ASCII renderings of the figures, the feasibility verdicts, and the
  calibration summary;
- ``fig*.tsv`` -- the raw series behind each figure, for plotting.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.apps import PAPER_APPS, paper_spec
from repro.apps.validation import summarize, validate_all
from repro.cluster.experiment import (
    ExperimentResult,
    paper_config,
    run_experiment,
)
from repro.feasibility import FeasibilityAnalyzer, TechnologyEnvelope, TrendModel
from repro.feasibility.taxonomy import render_table1
from repro.report.render import ascii_series, tsv_series
from repro.units import MiB

#: the timeslice sweep of Figs 2-4
_TIMESLICES = (1.0, 2.0, 5.0, 10.0, 15.0, 20.0)
_FIG2_PANELS = ("sage-1000MB", "sweep3d", "bt", "sp", "ft", "lu")
_SAGE_SIZES = ("sage-50MB", "sage-100MB", "sage-500MB", "sage-1000MB")


class _Runner:
    """Memoized experiment runner for the report."""

    def __init__(self, nranks: int):
        self.nranks = nranks
        self._cache: dict[tuple, ExperimentResult] = {}

    def run(self, name: str, timeslice: float = 1.0,
            **overrides) -> ExperimentResult:
        key = (name, timeslice, tuple(sorted(overrides.items())))
        if key not in self._cache:
            self._cache[key] = run_experiment(
                paper_config(name, nranks=self.nranks, timeslice=timeslice,
                             **overrides))
        return self._cache[key]


def generate_report(out_dir: Union[str, Path], *, nranks: int = 2,
                    quick: bool = False) -> Path:
    """Write the report; returns the path of ``report.md``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    runner = _Runner(nranks)
    timeslices = _TIMESLICES[:3] if quick else _TIMESLICES
    apps = list(PAPER_APPS)
    md: list[str] = ["# Incremental-checkpointing feasibility: reproduction report",
                     "",
                     f"Simulated cluster, {nranks} ranks per measurement; "
                     "initialization bursts excluded as in the paper.", ""]

    # -- Table 1 ------------------------------------------------------------------
    md += ["## Table 1: abstraction levels", "", "```",
           render_table1(), "```", ""]

    # -- Tables 2 and 4 -----------------------------------------------------------
    md += ["## Tables 2 and 4: footprint and bandwidth at a 1 s timeslice",
           "",
           "| application | fp max sim/paper (MB) | fp avg sim/paper (MB) "
           "| avg IB sim/paper (MB/s) | max IB sim/paper (MB/s) |",
           "|---|---|---|---|---|"]
    for name in apps:
        spec = paper_spec(name)
        res = runner.run(name)
        fp = res.footprint()
        ib = res.ib()
        md.append(
            f"| {name} | {fp.max_mb:.1f} / {spec.paper_footprint_max_mb:.1f} "
            f"| {fp.avg_mb:.1f} / {spec.paper_footprint_avg_mb:.1f} "
            f"| {ib.avg_mbps:.1f} / {spec.paper_avg_ib_1s:.1f} "
            f"| {ib.max_mbps:.1f} / {spec.paper_max_ib_1s:.1f} |")
    md.append("")

    # -- Fig 1 ---------------------------------------------------------------------
    fig1_app = "sage-100MB" if quick else "sage-1000MB"
    res1 = runner.run(fig1_app, run_duration=160.0 if quick else 500.0)
    log1 = res1.log(0)
    md += [f"## Fig 1: {fig1_app} timeline (timeslice 1 s)", "", "```",
           ascii_series(log1.iws_mb(), label="(a) IWS size per timeslice, MB"),
           "",
           ascii_series(log1.received_mb(),
                        label="(b) data received per timeslice, MB"),
           "```", ""]
    (out / "fig1.tsv").write_text(tsv_series({
        "t_end": log1.times(), "iws_mb": log1.iws_mb(),
        "received_mb": log1.received_mb(),
        "footprint_mb": log1.footprint_mb()}))

    # -- Fig 2 ---------------------------------------------------------------------
    md += ["## Fig 2: IB versus timeslice", ""]
    fig2_cols: dict[str, list] = {"timeslice": list(timeslices)}
    for name in _FIG2_PANELS:
        avg_series, max_series = [], []
        for ts in timeslices:
            stats = runner.run(name, timeslice=ts).ib()
            avg_series.append(stats.avg_mbps)
            max_series.append(stats.max_mbps)
        fig2_cols[f"{name}_avg"] = avg_series
        fig2_cols[f"{name}_max"] = max_series
        md.append(f"- **{name}**: avg " + " -> ".join(
            f"{v:.1f}" for v in avg_series) + " MB/s over " + ", ".join(
            f"{t:.0f}s" for t in timeslices))
    md.append("")
    (out / "fig2.tsv").write_text(tsv_series(fig2_cols))

    # -- Figs 3 and 4 -----------------------------------------------------------------
    md += ["## Figs 3-4: Sage problem sizes", "",
           "| timeslice | " + " | ".join(_SAGE_SIZES) + " | (avg IB MB/s; "
           "IWS/footprint ratio in parentheses) |",
           "|---|" + "---|" * (len(_SAGE_SIZES) + 1)]
    fig34_cols: dict[str, list] = {"timeslice": list(timeslices)}
    for name in _SAGE_SIZES:
        fig34_cols[f"{name}_avg_ib"] = []
        fig34_cols[f"{name}_ratio"] = []
    for ts in timeslices:
        cells = []
        for name in _SAGE_SIZES:
            res = runner.run(name, timeslice=ts)
            stats = res.ib()
            ratio = res.iws_ratio()
            fig34_cols[f"{name}_avg_ib"].append(stats.avg_mbps)
            fig34_cols[f"{name}_ratio"].append(ratio)
            cells.append(f"{stats.avg_mbps:.1f} ({ratio:.1%})")
        md.append(f"| {ts:.0f}s | " + " | ".join(cells) + " | |")
    md.append("")
    (out / "fig3_fig4.tsv").write_text(tsv_series(fig34_cols))

    # -- Fig 5 -------------------------------------------------------------------------
    fig5_app = "sage-100MB"
    counts = (4, 8) if quick else (8, 16, 32, 64)
    md += [f"## Fig 5: weak scaling of {fig5_app}", ""]
    fig5_cols = {"nranks": list(counts), "avg_ib": []}
    for n in counts:
        stats = run_experiment(paper_config(fig5_app, nranks=n,
                                            timeslice=1.0)).ib()
        fig5_cols["avg_ib"].append(stats.avg_mbps)
        md.append(f"- {n} processors: {stats.avg_mbps:.2f} MB/s per process")
    md.append("")
    (out / "fig5.tsv").write_text(tsv_series(fig5_cols))

    # -- section 6.3 ---------------------------------------------------------------------
    analyzer = FeasibilityAnalyzer()
    verdicts = [analyzer.assess(name, runner.run(name).ib())
                for name in apps]
    md += ["## Section 6.3: feasibility verdicts", "", "```",
           analyzer.report(verdicts), "```", ""]

    # -- section 6.6 ---------------------------------------------------------------------
    heaviest = max(verdicts, key=lambda v: v.avg_demand)
    trajectory = TrendModel().margin_trajectory(
        heaviest.avg_demand, TechnologyEnvelope(), years=6)
    md += ["## Section 6.6: trend extrapolation", ""]
    md += [f"- {year}: demand/bottleneck = {margin:.1%}"
           for year, margin in trajectory]
    md.append("")

    # -- calibration summary ----------------------------------------------------------------
    if not quick:
        md += ["## Calibration summary", "", "```",
               summarize(validate_all(nranks=nranks)), "```", ""]

    report_path = out / "report.md"
    report_path.write_text("\n".join(md))
    return report_path

"""The dirty-page tracker: one rank's instrumentation state.

Reproduces section 4.2 of the paper faithfully:

- at attach (the intercepted ``MPI_Init``) it write-protects the data
  memory, installs the SIGSEGV handler, arms the timeslice alarm, and
  installs the receive interceptor;
- the SIGSEGV handler records dirty pages (the page-table write path
  already marks them; the handler here does the *accounting*: fault
  counts and handler CPU cost);
- the SIGALRM handler logs the timeslice record -- dirty pages of the
  currently mapped data memory only ("memory exclusion") -- then resets
  the dirty set and re-protects every data page;
- ``mmap`` interception protects newly mapped regions immediately so
  their first writes are observed (heap growth via ``brk`` is picked up
  at the next alarm's re-protect sweep, as in the paper);
- receive interception bounces incoming data through an unprotected
  buffer and CPU-copies it into place, so received bytes dirty pages the
  normal way and are also tallied for Fig 1(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.instrument.records import TimesliceRecord, TraceLog
from repro.mem import Segment
from repro.mpi.communicator import RankComm
from repro.net.message import Message
from repro.proc import Process, Signal
from repro.sim import Engine


@dataclass(frozen=True)
class TrackerConfig:
    """Tunables of the instrumentation library."""

    #: checkpoint timeslice (s): the alarm interval
    timeslice: float = 1.0
    #: CPU cost of one write-protection fault (signal delivery + handler)
    fault_cost: float = 15e-6
    #: CPU cost per page of the alarm's re-protect sweep
    reprotect_cost_per_page: float = 0.2e-6
    #: write-protect mmap'ed regions at map time (first writes observed
    #: immediately rather than after the next alarm)
    protect_on_map: bool = True
    #: intercept receives through the bounce buffer (the QsNet fix);
    #: disabling this reproduces the DMA-undercount hazard
    intercept_receives: bool = True

    def __post_init__(self) -> None:
        if self.timeslice <= 0:
            raise ConfigurationError(
                f"timeslice must be positive, got {self.timeslice}")
        if self.fault_cost < 0 or self.reprotect_cost_per_page < 0:
            raise ConfigurationError("instrumentation costs must be >= 0")


class DirtyPageTracker:
    """Attached to one rank's process (and optionally its communicator)."""

    def __init__(self, process: Process, config: Optional[TrackerConfig] = None,
                 comm: Optional[RankComm] = None, app_name: str = ""):
        self.process = process
        self.config = config or TrackerConfig()
        self.comm = comm
        self.engine: Engine = process.engine
        rank = comm.rank if comm is not None else 0
        self.log = TraceLog(rank=rank, timeslice=self.config.timeslice,
                            page_size=process.memory.page_size,
                            app_name=app_name)
        self.attached = False
        self.attach_time = 0.0
        self._slice_start = 0.0
        self._slice_faults = 0
        self._slice_received = 0
        self._slice_overhead = 0.0
        self.total_faults = 0
        #: called with (record, tracker) after each slice is logged but
        #: *before* the dirty set is reset -- the seam the incremental
        #: checkpoint engine uses to harvest the slice's dirty pages
        self.slice_listeners: list = []
        #: per-obs cached alarm-path lookups (track string, counters,
        #: tracer wants-decision); the alarm fires thousands of times
        self._track = f"rank{self.log.rank}"
        self._obs_cache = None

    # -- lifecycle ---------------------------------------------------------------------

    def attach(self) -> None:
        """The MPI_Init interception: install handlers, protect, arm."""
        if self.attached:
            raise ConfigurationError("tracker already attached")
        self.attached = True
        self.attach_time = self.engine.now
        self._slice_start = self.engine.now

        proc = self.process
        proc.sigaction(Signal.SIGSEGV, self._on_segv)
        proc.sigaction(Signal.SIGALRM, self._on_alarm)
        proc.setitimer(self.config.timeslice)
        proc.memory.reset_dirty()
        proc.mprotect_data()
        if self.config.protect_on_map:
            proc.memory.map_listeners.append(self._on_map)
        if self.comm is not None:
            if self.config.intercept_receives:
                self.comm.recv_interceptor = self._intercept_recv
            self.comm.receive_listeners.append(self._on_receive)

    def detach(self) -> None:
        """Remove all hooks and unprotect the data memory."""
        if not self.attached:
            return
        self.attached = False
        proc = self.process
        proc.cancel_itimer()
        proc.sigaction(Signal.SIGSEGV, None)
        proc.sigaction(Signal.SIGALRM, None)
        proc.memory.unprotect_data()
        if self._on_map in proc.memory.map_listeners:
            proc.memory.map_listeners.remove(self._on_map)
        if self.comm is not None:
            if self.comm.recv_interceptor is self._intercept_recv:
                self.comm.recv_interceptor = None
            if self._on_receive in self.comm.receive_listeners:
                self.comm.receive_listeners.remove(self._on_receive)

    # -- handlers -----------------------------------------------------------------------

    def _on_segv(self, seg: Segment, lo: int, hi: int, nfaults: int) -> None:
        """SIGSEGV: the page table already marked the pages dirty and
        unprotected them; account the faults and their CPU cost."""
        self._slice_faults += nfaults
        self.total_faults += nfaults
        cost = nfaults * self.config.fault_cost
        self._charge(cost)

    def _alarm_obs(self, obs):
        cache = self._obs_cache
        if cache is None or cache[0] is not obs:
            tracer = obs.tracer
            m = obs.metrics
            cache = self._obs_cache = (
                obs,
                tracer if tracer.enabled and tracer.wants("timeslice")
                else None,
                m.counter("instrument.slices"),
                m.counter("instrument.pages_dirtied"),
                m.counter("instrument.pages_protected"),
                m.counter("instrument.faults"),
                m.series("instrument.iws_bytes"),
                m.series("instrument.dirty_pages"),
            )
        return cache

    def _on_alarm(self, index: int) -> None:
        """SIGALRM: log the slice, reset, re-protect."""
        mem = self.process.memory
        now = self.engine.now
        iws_pages, footprint = mem.data_summary()
        iws_bytes = iws_pages * mem.page_size
        faults = self._slice_faults
        obs = self.engine.obs
        listeners = self.slice_listeners
        if listeners or obs.enabled:
            # slow path: a record object is observable this slice
            record = TimesliceRecord(
                index=index, t_start=self._slice_start, t_end=now,
                iws_pages=iws_pages, iws_bytes=iws_bytes,
                footprint_bytes=footprint, faults=faults,
                received_bytes=self._slice_received,
                overhead_time=self._slice_overhead)
            self.log.append(record)
            for listener in listeners:
                listener(record, self)
        else:
            # hot path (the scale bench): columnar append, no dataclass
            self.log.append_slice(index, self._slice_start, now, iws_pages,
                                  iws_bytes, footprint, faults,
                                  self._slice_received, self._slice_overhead)
        protected = mem.reset_and_protect()
        self._slice_start = now
        self._slice_faults = 0
        self._slice_received = 0
        self._slice_overhead = 0.0
        self._charge(protected * self.config.reprotect_cost_per_page)
        if obs.enabled:
            (_, tracer, ctr_slices, ctr_dirtied, ctr_protected,
             ctr_faults, ser_iws, ser_dirty) = self._alarm_obs(obs)
            if tracer is not None:
                tracer.instant("timeslice", "timeslice", now,
                               track=self._track,
                               index=index, iws_pages=iws_pages,
                               iws_bytes=iws_bytes,
                               faults=faults,
                               footprint_bytes=footprint)
            ctr_slices.inc()
            ctr_dirtied.inc(iws_pages)
            ctr_protected.inc(protected)
            ctr_faults.inc(faults)
            ser_iws.record(now, iws_bytes)
            ser_dirty.record(now, iws_pages)
            if obs.progress is not None:
                obs.progress.on_slice(self.log.rank, record, now)

    def _on_map(self, seg: Segment) -> None:
        """mmap interception: protect the new region immediately."""
        seg.pages.protect_all()

    def _intercept_recv(self, msg: Message) -> bool:
        return True

    def _on_receive(self, msg: Message) -> None:
        self._slice_received += msg.size

    def _charge(self, cost: float) -> None:
        if cost > 0:
            self._slice_overhead += cost
            self.process.overhead_time += cost

    def charge(self, cost: float) -> None:
        """Charge extra instrumentation overhead to this rank (public
        seam for the checkpoint transport's backpressure stalls: charged
        after the alarm handler, so the cost lands in the *next*
        timeslice's overhead window)."""
        self._charge(cost)

    # -- summary ------------------------------------------------------------------------

    def slices(self) -> TraceLog:
        """The trace recorded so far."""
        return self.log

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DirtyPageTracker rank={self.log.rank} "
                f"timeslice={self.config.timeslice} slices={len(self.log)} "
                f"faults={self.total_faults}>")

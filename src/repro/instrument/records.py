"""Trace records produced by the dirty-page tracker.

One :class:`TimesliceRecord` per checkpoint timeslice per rank; a
:class:`TraceLog` collects a rank's records and exposes the series the
paper plots: IWS size over time (Fig 1a), data received per timeslice
(Fig 1b), footprint over time (Table 2), fault counts and instrumentation
overhead (section 6.5).

Storage is **columnar**: the alarm hot path appends nine scalars to
parallel columns (:meth:`TraceLog.append_slice`) instead of building a
dataclass per slice -- at 1024 ranks a fig5 row logs half a million
slices, and the column arrays also make the series views cheap.
:attr:`TraceLog.records` materializes :class:`TimesliceRecord` objects
on demand (cached until the next append), so every existing consumer
keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.units import MiB


@dataclass(frozen=True)
class TimesliceRecord:
    """What the alarm handler logs at the end of one timeslice."""

    index: int              #: timeslice number (0-based)
    t_start: float          #: virtual time at slice start
    t_end: float            #: virtual time at the alarm
    iws_pages: int          #: dirty pages of currently mapped data memory
    iws_bytes: int          #: the same, in bytes
    footprint_bytes: int    #: mapped data memory at the alarm
    faults: int             #: protection faults taken during the slice
    received_bytes: int     #: message payload received during the slice
    overhead_time: float    #: instrumentation CPU time accrued this slice

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def iws_mb(self) -> float:
        return self.iws_bytes / MiB

    @property
    def ib_bytes_per_s(self) -> float:
        """Incremental bandwidth of this slice: IWS / timeslice."""
        return self.iws_bytes / self.duration if self.duration > 0 else 0.0


#: column order of one slice (matches TimesliceRecord's fields)
_COLUMNS = ("index", "t_start", "t_end", "iws_pages", "iws_bytes",
            "footprint_bytes", "faults", "received_bytes", "overhead_time")


class TraceLog:
    """A rank's timeslice records plus run metadata."""

    def __init__(self, *, rank: int, timeslice: float, page_size: int,
                 app_name: str = ""):
        self.rank = rank
        self.timeslice = timeslice
        self.page_size = page_size
        self.app_name = app_name
        #: parallel columns, one scalar per slice (see _COLUMNS)
        self._cols: tuple[list, ...] = tuple([] for _ in _COLUMNS)
        self._records_cache: Optional[list[TimesliceRecord]] = None

    def append_slice(self, index: int, t_start: float, t_end: float,
                     iws_pages: int, iws_bytes: int, footprint_bytes: int,
                     faults: int, received_bytes: int,
                     overhead_time: float) -> None:
        """Log one timeslice from its scalars (the alarm fast path: no
        record object is built unless :attr:`records` is read)."""
        (c_index, c_t0, c_t1, c_pages, c_bytes, c_fp, c_faults, c_recv,
         c_ovh) = self._cols
        c_index.append(index)
        c_t0.append(t_start)
        c_t1.append(t_end)
        c_pages.append(iws_pages)
        c_bytes.append(iws_bytes)
        c_fp.append(footprint_bytes)
        c_faults.append(faults)
        c_recv.append(received_bytes)
        c_ovh.append(overhead_time)
        self._records_cache = None

    def append(self, record: TimesliceRecord) -> None:
        """Add one timeslice record."""
        self.append_slice(record.index, record.t_start, record.t_end,
                          record.iws_pages, record.iws_bytes,
                          record.footprint_bytes, record.faults,
                          record.received_bytes, record.overhead_time)

    @property
    def records(self) -> list[TimesliceRecord]:
        """The slices as :class:`TimesliceRecord` objects (materialized
        lazily from the columns; cached until the next append)."""
        cached = self._records_cache
        if cached is None:
            cached = self._records_cache = [
                TimesliceRecord(*row) for row in zip(*self._cols)]
        return cached

    @records.setter
    def records(self, records) -> None:
        cols = tuple([] for _ in _COLUMNS)
        for r in records:
            for col, name in zip(cols, _COLUMNS):
                col.append(getattr(r, name))
        self._cols = cols
        self._records_cache = list(records)

    def __len__(self) -> int:
        return len(self._cols[0])

    def __iter__(self):
        return iter(self.records)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_records_cache"] = None     # columns are the wire format
        return state

    # -- series views ----------------------------------------------------------------

    def after(self, t: float) -> "TraceLog":
        """A view containing only slices that *start* at or after ``t``
        (used to drop the initialization burst, as the paper does)."""
        out = TraceLog(rank=self.rank, timeslice=self.timeslice,
                       page_size=self.page_size, app_name=self.app_name)
        keep = [i for i, t0 in enumerate(self._cols[1]) if t0 >= t - 1e-9]
        out._cols = tuple([col[i] for i in keep] for col in self._cols)
        return out

    def times(self) -> np.ndarray:
        """Slice end times (s)."""
        return np.array(self._cols[2])

    def iws_bytes(self) -> np.ndarray:
        """Per-slice IWS sizes in bytes."""
        return np.array(self._cols[4], dtype=np.int64)

    def iws_mb(self) -> np.ndarray:
        """Per-slice IWS sizes in MB."""
        return self.iws_bytes() / MiB

    def ib_mbps(self) -> np.ndarray:
        """Per-slice incremental bandwidth (MB/s)."""
        durations = np.array(self._cols[2]) - np.array(self._cols[1])
        return np.divide(self.iws_mb(), durations,
                         out=np.zeros(len(self)),
                         where=durations > 0)

    def received_mb(self) -> np.ndarray:
        """Per-slice data received in MB (Fig 1b's series)."""
        return np.array(self._cols[7]) / MiB

    def footprint_mb(self) -> np.ndarray:
        """Per-slice mapped data memory in MB."""
        return np.array(self._cols[5]) / MiB

    def faults(self) -> np.ndarray:
        """Per-slice protection-fault counts."""
        return np.array(self._cols[6], dtype=np.int64)

    def overhead_time(self) -> np.ndarray:
        """Per-slice instrumentation CPU time."""
        return np.array(self._cols[8])

    def total_overhead(self) -> float:
        """Instrumentation CPU time summed over the run."""
        return float(sum(self._cols[8]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TraceLog {self.app_name!r} rank={self.rank} "
                f"timeslice={self.timeslice} slices={len(self)}>")

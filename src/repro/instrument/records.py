"""Trace records produced by the dirty-page tracker.

One :class:`TimesliceRecord` per checkpoint timeslice per rank; a
:class:`TraceLog` collects a rank's records and exposes the series the
paper plots: IWS size over time (Fig 1a), data received per timeslice
(Fig 1b), footprint over time (Table 2), fault counts and instrumentation
overhead (section 6.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.units import MiB


@dataclass(frozen=True)
class TimesliceRecord:
    """What the alarm handler logs at the end of one timeslice."""

    index: int              #: timeslice number (0-based)
    t_start: float          #: virtual time at slice start
    t_end: float            #: virtual time at the alarm
    iws_pages: int          #: dirty pages of currently mapped data memory
    iws_bytes: int          #: the same, in bytes
    footprint_bytes: int    #: mapped data memory at the alarm
    faults: int             #: protection faults taken during the slice
    received_bytes: int     #: message payload received during the slice
    overhead_time: float    #: instrumentation CPU time accrued this slice

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def iws_mb(self) -> float:
        return self.iws_bytes / MiB

    @property
    def ib_bytes_per_s(self) -> float:
        """Incremental bandwidth of this slice: IWS / timeslice."""
        return self.iws_bytes / self.duration if self.duration > 0 else 0.0


class TraceLog:
    """A rank's timeslice records plus run metadata."""

    def __init__(self, *, rank: int, timeslice: float, page_size: int,
                 app_name: str = ""):
        self.rank = rank
        self.timeslice = timeslice
        self.page_size = page_size
        self.app_name = app_name
        self.records: list[TimesliceRecord] = []

    def append(self, record: TimesliceRecord) -> None:
        """Add one timeslice record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # -- series views ----------------------------------------------------------------

    def after(self, t: float) -> "TraceLog":
        """A view containing only slices that *start* at or after ``t``
        (used to drop the initialization burst, as the paper does)."""
        out = TraceLog(rank=self.rank, timeslice=self.timeslice,
                       page_size=self.page_size, app_name=self.app_name)
        out.records = [r for r in self.records if r.t_start >= t - 1e-9]
        return out

    def times(self) -> np.ndarray:
        """Slice end times (s)."""
        return np.array([r.t_end for r in self.records])

    def iws_bytes(self) -> np.ndarray:
        """Per-slice IWS sizes in bytes."""
        return np.array([r.iws_bytes for r in self.records], dtype=np.int64)

    def iws_mb(self) -> np.ndarray:
        """Per-slice IWS sizes in MB."""
        return self.iws_bytes() / MiB

    def ib_mbps(self) -> np.ndarray:
        """Per-slice incremental bandwidth (MB/s)."""
        durations = np.array([r.duration for r in self.records])
        return np.divide(self.iws_mb(), durations,
                         out=np.zeros(len(self.records)),
                         where=durations > 0)

    def received_mb(self) -> np.ndarray:
        """Per-slice data received in MB (Fig 1b's series)."""
        return np.array([r.received_bytes for r in self.records]) / MiB

    def footprint_mb(self) -> np.ndarray:
        """Per-slice mapped data memory in MB."""
        return np.array([r.footprint_bytes for r in self.records]) / MiB

    def faults(self) -> np.ndarray:
        """Per-slice protection-fault counts."""
        return np.array([r.faults for r in self.records], dtype=np.int64)

    def overhead_time(self) -> np.ndarray:
        """Per-slice instrumentation CPU time."""
        return np.array([r.overhead_time for r in self.records])

    def total_overhead(self) -> float:
        """Instrumentation CPU time summed over the run."""
        return float(sum(r.overhead_time for r in self.records))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TraceLog {self.app_name!r} rank={self.rank} "
                f"timeslice={self.timeslice} slices={len(self.records)}>")

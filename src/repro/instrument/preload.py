"""The LD_PRELOAD analog: attach a tracker to every rank of a job.

The real library rides in via the dynamic linker and springs to life
when the application calls ``MPI_Init``.  Here the equivalent seam is
:attr:`MPIJob.init_hooks`, which run at the start of every rank body.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.instrument.records import TraceLog
from repro.instrument.tracker import DirtyPageTracker, TrackerConfig
from repro.mpi import MPIJob, RankContext


class InstrumentationLibrary:
    """Per-job instrumentation: one :class:`DirtyPageTracker` per rank."""

    def __init__(self, config: Optional[TrackerConfig] = None,
                 app_name: str = ""):
        self.config = config or TrackerConfig()
        self.app_name = app_name
        self.trackers: dict[int, DirtyPageTracker] = {}
        self._installed_on: Optional[MPIJob] = None

    def install(self, job: MPIJob) -> "InstrumentationLibrary":
        """Register on the job; trackers attach as rank bodies start."""
        if self._installed_on is not None:
            raise ConfigurationError(
                "instrumentation library already installed on a job")
        self._installed_on = job
        job.init_hooks.append(self._on_mpi_init)
        job.fini_hooks.append(self._on_mpi_finalize)
        return self

    def _on_mpi_init(self, ctx: RankContext) -> None:
        if ctx.rank in self.trackers:  # relaunch after failure: reattach
            self.trackers[ctx.rank].detach()
        tracker = DirtyPageTracker(ctx.process, self.config, comm=ctx.comm,
                                   app_name=self.app_name)
        tracker.attach()
        self.trackers[ctx.rank] = tracker

    def _on_mpi_finalize(self, ctx: RankContext) -> None:
        """Disarm the rank's alarm when its body ends, so the event
        queue can drain (the MPI_Finalize interception)."""
        tracker = self.trackers.get(ctx.rank)
        if tracker is not None:
            tracker.detach()

    # -- results ------------------------------------------------------------------------

    def tracker(self, rank: int) -> DirtyPageTracker:
        """The tracker attached to one rank."""
        try:
            return self.trackers[rank]
        except KeyError:
            raise ConfigurationError(
                f"no tracker for rank {rank}; attached: {sorted(self.trackers)}"
            ) from None

    def records(self, rank: int = 0) -> TraceLog:
        """The timeslice trace of one rank."""
        return self.tracker(rank).log

    def all_records(self) -> dict[int, TraceLog]:
        """Every rank's trace, keyed by rank."""
        return {rank: t.log for rank, t in sorted(self.trackers.items())}

    def detach_all(self) -> None:
        """Disarm every tracker (alarms cancelled, memory unprotected)."""
        for tracker in self.trackers.values():
            tracker.detach()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<InstrumentationLibrary app={self.app_name!r} "
                f"trackers={len(self.trackers)}>")

"""The paper's instrumentation library, reproduced over the simulator.

This is the system under study (section 4): a library preloaded into an
unmodified MPI application that

1. intercepts ``MPI_Init`` to install its handlers, write-protect the
   data memory, and arm the checkpoint-timeslice alarm;
2. services write-protection faults (SIGSEGV) by recording the faulting
   page as *dirty* and unprotecting it, so each page faults at most once
   per timeslice;
3. on each alarm (SIGALRM) records the **Incremental Working Set** (the
   dirty pages of the currently mapped data memory -- unmapped regions
   are excluded), the footprint, and the data received, then resets the
   dirty set and re-protects everything;
4. intercepts ``mmap``/``munmap`` to track dynamic regions, and receive
   calls to bounce incoming QsNet DMA through an unprotected buffer.

:class:`~repro.instrument.preload.InstrumentationLibrary` is the
"LD_PRELOAD" entry point: install it on an :class:`~repro.mpi.MPIJob`
and every rank gets its own :class:`~repro.instrument.tracker.DirtyPageTracker`.
"""

from repro.instrument.records import TimesliceRecord, TraceLog
from repro.instrument.tracker import DirtyPageTracker, TrackerConfig
from repro.instrument.preload import InstrumentationLibrary

__all__ = [
    "DirtyPageTracker",
    "InstrumentationLibrary",
    "TimesliceRecord",
    "TraceLog",
    "TrackerConfig",
]

"""Deterministic fault plans: *what* fails, *when*, and *how*.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent`\\ s.  Plans
come from three places:

- an explicit event list (targeted tests, "kill rank 1 at t=5.25");
- a seeded stochastic model (:meth:`FaultPlan.exponential` /
  :meth:`FaultPlan.weibull`): per-node failure processes drawn from
  named :class:`~repro.sim.random.RngStreams`, so the same seed always
  yields the same schedule and adding nodes never perturbs the draws of
  existing ones;
- a JSON file (:meth:`FaultPlan.from_file`), the CLI's ``--plan``.

Plans are data, not behaviour: delivery is the
:class:`~repro.faults.injector.FaultInjector`'s job.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.errors import FaultPlanError
from repro.sim.random import RngStreams


class FaultKind(enum.Enum):
    """What breaks.

    ``CRASH``
        The rank's process dies and its NIC detaches (fail-stop node
        loss) -- fatal, triggers rollback recovery.
    ``NIC``
        The rank's NIC fails permanently; the node is unreachable and
        the runtime treats it exactly like a node loss -- fatal.
    ``DISK``
        The rank's checkpoint disk loses its next write(s).  Transient:
        no recovery is triggered, but the affected global sequence never
        commits, so a later crash rolls back further (more lost work).
    ``FLIP``
        Silent media corruption: random bits flip in one already-stored
        checkpoint piece.  The write *succeeded* -- nothing poisons,
        nothing aborts -- so only integrity verification at recovery
        time can tell.
    ``TRUNCATE``
        A torn/short write silently loses the tail of a stored piece.
    ``DROP``
        A stored piece vanishes entirely (misdirected write, lost
        object), leaving a hole in the rank's recovery chain.
    """

    CRASH = "crash"
    NIC = "nic"
    DISK = "disk"
    FLIP = "flip"
    TRUNCATE = "truncate"
    DROP = "drop"

    @property
    def fatal(self) -> bool:
        return self in (FaultKind.CRASH, FaultKind.NIC)

    @property
    def corrupting(self) -> bool:
        """Silent store-corruption kinds (deliverable only when the
        victim rank has a stored piece to mangle)."""
        return self in (FaultKind.FLIP, FaultKind.TRUNCATE, FaultKind.DROP)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    time: float       #: absolute virtual time the fault fires
    kind: FaultKind
    rank: int         #: victim rank
    count: int = 1    #: DISK: consecutive failed writes; FLIP: bits flipped
    #: corruption kinds: stored sequence to mangle (None: newest stored
    #: piece of the victim rank at delivery time)
    seq: Optional[int] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise FaultPlanError(f"fault time must be >= 0, got {self.time}")
        if self.rank < 0:
            raise FaultPlanError(f"victim rank must be >= 0, got {self.rank}")
        if self.count < 1:
            raise FaultPlanError(f"count must be >= 1, got {self.count}")
        if self.seq is not None and not self.kind.corrupting:
            raise FaultPlanError(
                f"seq targets are only for corruption faults, "
                f"not {self.kind.value}")

    def as_dict(self) -> dict:
        """JSON-ready form, the inverse of :meth:`FaultPlan.from_file`."""
        d = {"time": self.time, "kind": self.kind.value,
             "rank": self.rank, "count": self.count}
        if self.seq is not None:
            d["seq"] = self.seq
        return d


class FaultPlan:
    """An immutable, time-ordered fault schedule."""

    def __init__(self, events: Iterable[FaultEvent] = ()):
        evs = list(events)
        for ev in evs:
            if not isinstance(ev, FaultEvent):
                raise FaultPlanError(f"not a FaultEvent: {ev!r}")
        # stable deterministic order: time, then rank, then kind
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(evs, key=lambda e: (e.time, e.rank, e.kind.value)))

    # -- constructors --------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan (failure-free reference runs)."""
        return cls(())

    @classmethod
    def exponential(cls, mtbf: float, nranks: int, horizon: float,
                    seed: int = 0, *, kind: FaultKind = FaultKind.CRASH,
                    max_faults: Optional[int] = None) -> "FaultPlan":
        """Per-rank Poisson failure processes with the given MTBF.

        Each rank draws exponential interarrival times from its own
        named stream of ``RngStreams(seed)``; events past ``horizon``
        are discarded.  Same ``(seed, mtbf, nranks, horizon)`` ⇒ same
        plan, always.
        """
        return cls._stochastic(mtbf, nranks, horizon, seed, kind=kind,
                               shape=1.0, max_faults=max_faults)

    @classmethod
    def weibull(cls, mtbf: float, nranks: int, horizon: float,
                seed: int = 0, *, shape: float = 0.7,
                kind: FaultKind = FaultKind.CRASH,
                max_faults: Optional[int] = None) -> "FaultPlan":
        """Weibull interarrivals (shape < 1: infant-mortality clustering,
        the empirically observed behaviour of large clusters), scaled so
        the mean interarrival is ``mtbf``."""
        if shape <= 0:
            raise FaultPlanError(f"Weibull shape must be positive, got {shape}")
        return cls._stochastic(mtbf, nranks, horizon, seed, kind=kind,
                               shape=shape, max_faults=max_faults)

    @classmethod
    def _stochastic(cls, mtbf: float, nranks: int, horizon: float,
                    seed: int, *, kind: FaultKind, shape: float,
                    max_faults: Optional[int]) -> "FaultPlan":
        import math
        if mtbf <= 0:
            raise FaultPlanError(f"MTBF must be positive, got {mtbf}")
        if nranks < 1:
            raise FaultPlanError(f"need at least one rank, got {nranks}")
        if horizon <= 0:
            raise FaultPlanError(f"horizon must be positive, got {horizon}")
        streams = RngStreams(seed)
        # Weibull(shape) has mean Gamma(1 + 1/shape); rescale to mtbf
        scale = mtbf / math.gamma(1.0 + 1.0 / shape)
        events: list[FaultEvent] = []
        for rank in range(nranks):
            rng = streams.stream(f"faults/rank{rank}")
            t = 0.0
            while True:
                t += scale * float(rng.weibull(shape))
                if t > horizon:
                    break
                events.append(FaultEvent(time=t, kind=kind, rank=rank))
        events.sort(key=lambda e: (e.time, e.rank, e.kind.value))
        if max_faults is not None:
            events = events[:max_faults]
        return cls(events)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "FaultPlan":
        """Load a JSON plan: ``{"events": [{"time", "kind", "rank",
        "count"?}, ...]}``."""
        path = Path(path)
        try:
            raw = json.loads(path.read_text())
        except OSError as exc:
            raise FaultPlanError(f"cannot read fault plan {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan {path} is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict) or "events" not in raw:
            raise FaultPlanError(f"fault plan {path} lacks an 'events' list")
        events = []
        for i, entry in enumerate(raw["events"]):
            try:
                kind = FaultKind(entry["kind"])
                seq = entry.get("seq")
                events.append(FaultEvent(time=float(entry["time"]), kind=kind,
                                         rank=int(entry["rank"]),
                                         count=int(entry.get("count", 1)),
                                         seq=(None if seq is None
                                              else int(seq))))
            except (KeyError, TypeError, ValueError) as exc:
                raise FaultPlanError(
                    f"fault plan {path}, event {i}: {exc}") from exc
        return cls(events)

    def to_file(self, path: Union[str, Path]) -> None:
        """Write the plan as JSON, loadable by :meth:`from_file`."""
        Path(path).write_text(json.dumps(
            {"events": [e.as_dict() for e in self.events]}, indent=2))

    # -- queries -------------------------------------------------------------

    def validate_for(self, nranks: int) -> None:
        """Check every victim exists in a job of ``nranks`` ranks."""
        for ev in self.events:
            if ev.rank >= nranks:
                raise FaultPlanError(
                    f"fault at t={ev.time} targets rank {ev.rank}, "
                    f"but the job has only {nranks} ranks")

    def after(self, time: float) -> "FaultPlan":
        """The sub-plan of events strictly later than ``time``."""
        return FaultPlan(e for e in self.events if e.time > time)

    def first_fatal(self) -> Optional[FaultEvent]:
        """The earliest fatal (crash-class) event, or None."""
        for ev in self.events:
            if ev.kind.fatal:
                return ev
        return None

    def fatal_count(self) -> int:
        """How many crash-class events the plan holds."""
        return sum(1 for e in self.events if e.kind.fatal)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultPlan) and self.events == other.events

    def __hash__(self) -> int:
        return hash(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan {len(self.events)} events, {self.fatal_count()} fatal>"

"""The failure-recovery driver: run, fail, restore, continue.

:func:`run_with_failures` is the experiment entry point that closes the
paper's loop end-to-end on the simulated cluster: it runs an
instrumented, coordinated-checkpointed application under a
:class:`~repro.faults.plan.FaultPlan`, and every time a fatal fault
lands it

1. stops the virtual clock at the failure instant (the injector calls
   :meth:`~repro.sim.Engine.stop`),
2. finds the newest *committed* global checkpoint across all previous
   lives whose every rank chain passes integrity verification, and
   rolls every rank back to it
   (:class:`~repro.checkpoint.RecoveryManager` /
   :class:`~repro.checkpoint.RestartCoordinator`).  A silently
   corrupted piece (bit flips, torn writes, dropped objects -- the
   FLIP/TRUNCATE/DROP fault kinds) is detected here: the poisoned
   committed sequence is rejected with a
   :class:`~repro.metrics.failures.CorruptionDetected` record and
   recovery *walks back* to the newest older intact one, or restarts
   from scratch when nothing verifies,
3. charges detection latency + chain-read restore time as downtime and
   the recomputation window as lost work
   (:class:`~repro.metrics.failures.FailureRecord`),
4. relaunches the job in a fresh *life* whose clock starts where the
   downtime ended, with a fresh checkpoint store headed by a new full
   checkpoint.

Determinism: the same config and plan produce bit-identical traces,
failure records, and metrics on every run.  With ``verify=True`` (the
default) the driver additionally asserts, at every restore, that the
rebuilt address spaces are bit-identical to the state the failed run
held at the recovered checkpoint's capture instant -- which, because
faults have no effect before they fire, is exactly the state of a
failure-free run at the same logical time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.apps.base import ScientificApplication
from repro.apps.registry import default_run_duration
from repro.checkpoint import CheckpointEngine, RestartCoordinator
from repro.checkpoint.coordinated import GlobalCheckpoint
from repro.checkpoint.recovery import RecoveryManager
from repro.cluster.experiment import ExperimentConfig
from repro.errors import FaultPlanError, RecoveryError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.instrument import InstrumentationLibrary, TraceLog, TrackerConfig
from repro.mem import AddressSpace, Layout
from repro.metrics.failures import (CorruptionDetected, FailureRecord,
                                    FaultRunMetrics)
from repro.mpi import MPIJob
from repro.sim import Engine
from repro.storage import CheckpointStore


@dataclass
class LifeResult:
    """One life of the job: launch (or restart) until completion or death."""

    index: int
    t_start: float
    t_end: float
    logs: dict[int, TraceLog]
    store: CheckpointStore
    committed: list[GlobalCheckpoint]
    #: state signature snapped at each capture boundary: (rank, seq) -> sig
    signatures: dict[tuple[int, int], dict] = field(repr=False,
                                                    default_factory=dict)
    #: absolute useful progress (seconds) at each capture boundary
    progress_at: dict[int, float] = field(default_factory=dict)
    iterations: int = 0
    #: (life index, seq) this life was restored from; None for a fresh start
    restored_from: Optional[tuple[int, int]] = None
    #: absolute useful progress already banked when this life started
    progress_before: float = 0.0
    write_failures: list[tuple[int, int]] = field(default_factory=list)
    #: checkpoint-transport snapshot of this life (TransportStats)
    transport_stats: Optional[object] = None


@dataclass
class FaultRunResult:
    """Everything one fault-injection experiment produced."""

    config: ExperimentConfig
    plan: FaultPlan
    lives: list[LifeResult]
    failures: list[FailureRecord]
    #: chains that failed integrity verification during recovery scans
    corruptions: list[CorruptionDetected] = field(default_factory=list)
    #: per failure: the restored address-space signatures {rank: sig}
    restored_signatures: list[dict[int, dict]] = field(repr=False,
                                                       default_factory=list)
    final_time: float = 0.0

    @property
    def metrics(self) -> FaultRunMetrics:
        return FaultRunMetrics.from_records(self.failures,
                                            wall_time=self.final_time,
                                            corruptions=self.corruptions)

    def mean_commit_latency(self) -> Optional[float]:
        """Measured checkpoint cost C: mean request-to-commit latency
        over every committed global checkpoint, all lives."""
        lats = [gc.commit_latency
                for life in self.lives for gc in life.committed]
        if not lats:
            return None
        return sum(lats) / len(lats)

    def logs_of_life(self, index: int = 0) -> dict[int, TraceLog]:
        """Per-rank timeslice traces of one life."""
        return self.lives[index].logs


class FailureRecoveryDriver:
    """Drives one configuration through a fault plan, life by life."""

    def __init__(self, config: ExperimentConfig, plan: FaultPlan, *,
                 interval_slices: int = 2, full_every: int = 4,
                 detection_latency: float = 0.25,
                 read_bandwidth: Optional[float] = None,
                 verify: bool = True,
                 verify_integrity: bool = True,
                 integrity_bandwidth: Optional[float] = None,
                 max_failures: int = 1000,
                 ckpt_transport: str = "estimate",
                 obs=None):
        from repro.obs import NULL_OBS
        plan.validate_for(config.nranks)
        if detection_latency < 0:
            raise FaultPlanError("detection latency must be >= 0")
        if max_failures < 1:
            raise FaultPlanError("max_failures must be >= 1")
        self.config = config
        self.plan = plan
        self.interval_slices = interval_slices
        self.full_every = full_every
        self.detection_latency = detection_latency
        self.read_bandwidth = read_bandwidth
        self.verify = verify
        #: verify chain integrity before trusting a committed checkpoint
        #: (off reproduces the pre-integrity driver: corruption restores
        #: garbage and the signature check, if on, is what catches it)
        self.verify_integrity = verify_integrity
        #: when set, charge digest recomputation at this bandwidth (B/s)
        #: into restore time; None keeps restore costs bit-identical to
        #: integrity-unaware runs
        self.integrity_bandwidth = integrity_bandwidth
        self.max_failures = max_failures
        #: checkpoint data path per life ("estimate" reproduces the
        #: seed's flat-duration writes bit for bit)
        self.ckpt_transport = ckpt_transport
        #: observability sink threaded into every life's engine
        self.obs = NULL_OBS if obs is None else obs
        # the same duration resolution as run_experiment, so an empty
        # plan reproduces its traces byte for byte
        duration = (config.run_duration if config.run_duration is not None
                    else default_run_duration(config.spec))
        self.total_duration = max(duration, 5.0 * config.timeslice)

    # -- public -------------------------------------------------------------

    def run(self) -> FaultRunResult:
        """Run lives until the job completes; see the module docstring."""
        result = FaultRunResult(config=self.config, plan=self.plan,
                                lives=[], failures=[])
        t_now = 0.0
        progress_before = 0.0
        restored_from: Optional[tuple[int, int]] = None

        while True:
            life = self._run_life(result, t_now, progress_before,
                                  restored_from)
            result.lives.append(life)
            if life is not None and self._life_complete:
                result.final_time = life.t_end
                return result
            if len(result.failures) >= self.max_failures:
                raise RecoveryError(
                    f"gave up after {self.max_failures} failures")
            record, t_now, progress_before, restored_from = \
                self._recover(result, life)
            result.failures.append(record)

    # -- one life -----------------------------------------------------------

    def _run_life(self, result: FaultRunResult, t_start: float,
                  progress_before: float,
                  restored_from: Optional[tuple[int, int]]) -> LifeResult:
        config = self.config
        engine = Engine(start_time=t_start, obs=self.obs)
        layout = Layout(page_size=config.page_size)
        remaining = max(0.0, self.total_duration - progress_before)
        app = ScientificApplication(config.spec, run_duration=remaining,
                                    charge_overhead=config.charge_overhead,
                                    layout=layout)
        index = len(result.lives)
        if restored_from is None:
            job = MPIJob(engine, config.nranks, layout=layout,
                         procs_per_node=config.procs_per_node,
                         process_factory=app.process_factory(engine),
                         name=config.spec.name)
        else:
            src_life, seq = restored_from
            coordinator = RestartCoordinator(
                result.lives[src_life].store, app,
                verify_integrity=self.verify_integrity)
            job = coordinator.restart(engine, seq=seq,
                                      procs_per_node=config.procs_per_node,
                                      name=f"{config.spec.name}.life{index}")
        library = InstrumentationLibrary(
            TrackerConfig(timeslice=config.timeslice,
                          fault_cost=config.fault_cost,
                          reprotect_cost_per_page=config.reprotect_cost_per_page,
                          protect_on_map=config.protect_on_map,
                          intercept_receives=config.intercept_receives),
            app_name=config.spec.name).install(job)
        if not config.intercept_receives:
            for nic in job.nics:
                nic.strict_dma = False
        ckpt = CheckpointEngine(job, library,
                                interval_slices=self.interval_slices,
                                full_every=self.full_every,
                                transport=self.ckpt_transport,
                                mode=config.ckpt_mode,
                                dcp_block_size=config.dcp_block_size)

        life = LifeResult(index=index, t_start=t_start, t_end=t_start,
                          logs={}, store=ckpt.store, committed=[],
                          restored_from=restored_from,
                          progress_before=progress_before)
        if self.obs.enabled and self.obs.progress is not None:
            self.obs.progress.on_life(index, t_start)
        self._install_probe(job, library, app, life, progress_before)
        injector = FaultInjector(job, self.plan, disk_resolver=ckpt.disk,
                                 store=ckpt.store, stop_on_fatal=True)
        injector.arm()
        finished: list[int] = []

        def on_fini(ctx):
            finished.append(ctx.rank)
            if len(finished) == config.nranks:
                # job done: faults on an idle cluster are not failures,
                # and must not stretch the clock while the queue drains
                injector.disarm()

        job.fini_hooks.append(on_fini)

        if restored_from is None:
            procs = job.launch(app.make_body())
            if index > 0:
                # from-scratch restart: nothing was restored
                result.restored_signatures.append({})
        else:
            verify_hook = (self._make_verify_hook(result, restored_from)
                           if self.verify else None)
            restored: dict[int, dict] = {}

            def on_restored(ctx, _hook=verify_hook):
                restored[ctx.rank] = ctx.memory.state_signature()
                if _hook is not None:
                    try:
                        _hook(ctx)
                    except RecoveryError:
                        # a poisoned restore kills this rank before the
                        # restart barrier; without a halt the surviving
                        # ranks would checkpoint forever against a
                        # barrier that can never complete
                        engine.stop()
                        raise

            procs = coordinator.launch(job, on_restored=on_restored)
            result.restored_signatures.append(restored)

        self._drive(engine, injector, procs)
        for p in procs:
            if p.exception is not None:
                raise p.exception

        life.t_end = engine.now
        life.logs = library.all_records()
        life.committed = ckpt.committed()
        life.write_failures = list(ckpt.write_failures)
        life.transport_stats = ckpt.transport_stats()
        life.iterations = (app.contexts[0].iterations
                           if app.contexts else 0)
        if self.obs.enabled:
            engine.publish_metrics(self.obs.metrics,
                                   prefix=f"sim.engine.life{index}")
            tracer = self.obs.tracer
            if tracer.enabled and tracer.wants("recovery"):
                tracer.complete(f"life{index}", "recovery", t_start,
                                life.t_end - t_start, track="lives",
                                restored_from=(None if restored_from is None
                                               else list(restored_from)),
                                committed=len(life.committed),
                                iterations=life.iterations)
        self._life_complete = not self._needs_recovery(injector, procs)
        self._life_injector = injector
        self._life_ckpt = ckpt
        self._life_app = app
        return life

    def _drive(self, engine: Engine, injector: FaultInjector,
               procs: list) -> None:
        """Run the engine to completion, treating post-completion fatal
        faults (the job already finished; the 'cluster' is idle) as
        no-ops rather than failures."""
        for _ in range(len(self.plan) + 2):
            engine.run(detect_deadlock=True)
            if any(p.exception is not None for p in procs):
                return      # _run_life re-raises the body's exception
            if engine.pending_events() == 0:
                return
            if self._needs_recovery(injector, procs):
                return
        raise RecoveryError("engine stopped repeatedly without progress")

    @staticmethod
    def _needs_recovery(injector: FaultInjector, procs: list) -> bool:
        """A fatal fault landed while the job still had work in flight."""
        return injector.fatal_delivered and any(p.alive for p in procs)

    # -- probes -------------------------------------------------------------

    def _install_probe(self, job: MPIJob, library: InstrumentationLibrary,
                       app: ScientificApplication, life: LifeResult,
                       progress_before: float) -> None:
        """Snapshot state signatures and useful progress at every capture
        boundary, *before* the checkpoint engine's listener runs (same
        instant, identical state)."""
        interval = self.interval_slices

        def install(ctx):
            tracker = library.tracker(ctx.rank)

            def probe(record, trk, rank=ctx.rank):
                if (record.index + 1) % interval != 0:
                    return
                seq = record.index
                if self.verify:
                    life.signatures[(rank, seq)] = \
                        trk.process.memory.state_signature()
                if rank == 0:
                    rc0 = app.contexts[0] if app.contexts else None
                    if rc0 is not None and rc0.iteration_starts:
                        useful = max(0.0, record.t_end
                                     - rc0.iteration_starts[0])
                    else:
                        useful = 0.0
                    life.progress_at[seq] = progress_before + useful

            tracker.slice_listeners.insert(0, probe)

        job.init_hooks.append(install)

    def _make_verify_hook(self, result: FaultRunResult,
                          restored_from: tuple[int, int]):
        """The headline guarantee, enforced at runtime: the restored
        address space must be bit-identical to the one the serving life
        held when the recovered checkpoint was captured."""
        src_life, seq = restored_from
        signatures = result.lives[src_life].signatures

        def check(ctx):
            want = signatures.get((ctx.rank, seq))
            if want is None:
                return  # signatures disabled for that life
            got = ctx.memory.state_signature()
            if not AddressSpace.signatures_equal(got, want):
                raise RecoveryError(
                    f"rank {ctx.rank} restored state differs from the "
                    f"checkpoint captured at seq {seq} (life {src_life})")

        return check

    # -- recovery -----------------------------------------------------------

    def _recover(self, result: FaultRunResult, life: LifeResult):
        """Account one failure and decide where the next life starts."""
        injector = self._life_injector
        t_fail = injector.delivered[-1].time if injector.delivered else life.t_end
        kind = next((e.kind.value for e in reversed(injector.delivered)
                     if e.kind.fatal), "crash")
        victims = tuple(injector.dead_ranks)
        detected_at = t_fail + self.detection_latency

        target = self._recovery_target(result, detected_at)
        progress_at_fail = self._progress_at(life, t_fail)
        if target is None:
            # nothing committed anywhere (or nothing that verifies):
            # start over from scratch with a fresh full checkpoint
            restore_time = 0.0
            recovered_seq = None
            recovery_life = None
            progress_restored = 0.0
            restored_from = None
        else:
            recovery_life, recovered_seq = target
            src = result.lives[recovery_life]
            manager = RecoveryManager(
                src.store, verify_integrity=self.verify_integrity)
            bw = (self.read_bandwidth if self.read_bandwidth is not None
                  else self.config.cluster.disk.bandwidth)
            restore_time = max(
                manager.estimated_restore_time(
                    rank, bw, seq=recovered_seq,
                    verify_bandwidth=self.integrity_bandwidth)
                for rank in range(self.config.nranks))
            progress_restored = src.progress_at.get(recovered_seq, 0.0)
            restored_from = target
        lost_work = max(0.0, progress_at_fail - progress_restored)
        downtime = self.detection_latency + restore_time
        restarted_at = t_fail + downtime
        record = FailureRecord(
            time=t_fail, kind=kind, victims=victims,
            detected_at=detected_at, recovered_seq=recovered_seq,
            recovery_life=recovery_life, lost_work=lost_work,
            restore_time=restore_time, downtime=downtime,
            restarted_at=restarted_at)
        if self.obs.enabled:
            m = self.obs.metrics
            m.counter("faults.failures").inc()
            m.counter("faults.lost_work_s").inc(lost_work)
            m.counter("faults.downtime_s").inc(downtime)
            tracer = self.obs.tracer
            if tracer.enabled and tracer.wants("recovery"):
                tracer.complete("recovery", "recovery", t_fail, downtime,
                                track="lives", kind=kind,
                                victims=list(victims), seq=recovered_seq,
                                lost_work=lost_work,
                                restore_time=restore_time)
        return record, restarted_at, progress_restored, restored_from

    def _recovery_target(self, result: FaultRunResult,
                         detected_at: float) -> Optional[tuple[int, int]]:
        """Newest committed global checkpoint across all lives that
        passes integrity verification.

        With ``verify_integrity`` every candidate is scanned rank by
        rank before recovery trusts it; a corrupted, truncated, or
        dropped piece rejects the whole committed sequence (a
        :class:`~repro.metrics.failures.CorruptionDetected` record per
        bad chain) and the search walks back to the next older one --
        across lives if need be.  Nothing intact anywhere means a
        from-scratch restart, never a restore from corrupt data.
        """
        for life in reversed(result.lives):
            for seq in reversed(life.store.committed_sequences()):
                if not self.verify_integrity:
                    return (life.index, seq)
                if self._candidate_intact(result, life, seq, detected_at):
                    return (life.index, seq)
        return None

    def _candidate_intact(self, result: FaultRunResult, life: LifeResult,
                          seq: int, detected_at: float) -> bool:
        """Verify every rank's chain up to ``seq`` in one life's store,
        recording each broken chain."""
        intact = True
        for rank in range(self.config.nranks):
            outcome = life.store.verify_chain(rank, upto_seq=seq,
                                              require_seq=seq)
            if outcome.intact:
                continue
            intact = False
            bad = outcome.first_bad
            result.corruptions.append(CorruptionDetected(
                detected_at=detected_at, life=life.index, rank=rank,
                seq=bad.seq, reason=bad.reason, rejected_seq=seq))
            if self.obs.enabled:
                self.obs.metrics.counter("ckpt.integrity.detected").inc()
                self.obs.metrics.series("ckpt.integrity.detected_at").record(
                    detected_at)
        if not intact and self.obs.enabled:
            self.obs.metrics.counter("ckpt.integrity.walkbacks").inc()
        return intact

    def _progress_at(self, life: LifeResult, t: float) -> float:
        """Absolute useful progress the failed life had reached at ``t``:
        what it inherited at restore, plus iteration time since."""
        app = self._life_app
        rc0 = app.contexts[0] if app.contexts else None
        if rc0 is not None and rc0.iteration_starts:
            return life.progress_before + max(0.0, t - rc0.iteration_starts[0])
        return life.progress_before


def run_with_failures(config: ExperimentConfig,
                      plan: FaultPlan, *,
                      interval_slices: int = 2, full_every: int = 4,
                      detection_latency: float = 0.25,
                      read_bandwidth: Optional[float] = None,
                      verify: bool = True,
                      verify_integrity: bool = True,
                      integrity_bandwidth: Optional[float] = None,
                      max_failures: int = 1000,
                      ckpt_transport: str = "estimate",
                      obs=None) -> FaultRunResult:
    """Run one experiment under a fault plan; see
    :class:`FailureRecoveryDriver`.

    Same config + same plan ⇒ identical traces, failure records, and
    metrics; an empty plan reproduces
    :func:`~repro.cluster.experiment.run_experiment`'s traces byte for
    byte.
    """
    return FailureRecoveryDriver(
        config, plan, interval_slices=interval_slices,
        full_every=full_every, detection_latency=detection_latency,
        read_bandwidth=read_bandwidth, verify=verify,
        verify_integrity=verify_integrity,
        integrity_bandwidth=integrity_bandwidth,
        max_failures=max_failures, ckpt_transport=ckpt_transport,
        obs=obs).run()

"""Deterministic fault injection and end-to-end failure recovery.

Three layers, data -> mechanism -> policy:

- :mod:`~repro.faults.plan` -- :class:`FaultPlan`\\ s say *what* fails
  and *when* (explicit lists, seeded exponential/Weibull models, JSON
  files);
- :mod:`~repro.faults.injector` -- the :class:`FaultInjector` schedules
  a plan on the sim engine and breaks the right component when an event
  fires;
- :mod:`~repro.faults.driver` -- :func:`run_with_failures` closes the
  loop: run, fail, roll back to the newest committed global checkpoint,
  restart, repeat; with lost-work / restore-time / downtime accounting
  that feeds :mod:`repro.feasibility.availability`.

Everything is seeded and replayable: the same plan on the same config
yields bit-identical traces, failure records, and metrics.
"""

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.injector import FaultInjector
from repro.faults.driver import (
    FailureRecoveryDriver,
    FaultRunResult,
    LifeResult,
    run_with_failures,
)

__all__ = [
    "FailureRecoveryDriver",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRunResult",
    "LifeResult",
    "run_with_failures",
]

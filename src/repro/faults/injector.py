"""Delivering scheduled faults into a live simulated job.

The :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into engine events and, when one fires, breaks the right component:

- ``CRASH``  -- kill the rank's process and detach its NIC
  (:meth:`~repro.mpi.MPIJob.fail_rank`);
- ``NIC``    -- fail the NIC (:meth:`~repro.net.NIC.fail`); the node is
  unreachable, so the runtime's failure detector treats it as a node
  loss and the injector kills the now-isolated rank too;
- ``DISK``   -- inject media failures into the rank's checkpoint sink
  (:meth:`~repro.storage.Disk.fail_next_writes`); transient.
- ``FLIP`` / ``TRUNCATE`` / ``DROP`` -- silently corrupt one stored
  checkpoint piece (:meth:`~repro.storage.CheckpointStore.flip_bits` /
  ``truncate_piece`` / ``drop_piece``).  Needs a ``store``; delivery
  targets the event's ``seq`` or, when unset, the victim rank's newest
  stored piece.  A corruption fault with nothing to corrupt (empty
  chain, payload-free piece) is recorded as skipped -- corruption of
  data that does not exist is provably harmless.

Fault events fire at :data:`~repro.sim.engine.PRIORITY_LATE` so all
ordinary activity at the same instant completes first -- delivery is
deterministic with respect to the application's own events.

After a *fatal* fault the injector calls :meth:`~repro.sim.Engine.stop`
(if ``stop_on_fatal``), handing control back to the recovery driver at
exactly the failure instant.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import FaultPlanError
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.mpi import MPIJob
from repro.sim.engine import PRIORITY_LATE


class FaultInjector:
    """Schedules one plan's events onto one job's engine."""

    def __init__(self, job: MPIJob, plan: FaultPlan, *,
                 disk_resolver: Optional[Callable[[int], object]] = None,
                 store: Optional[object] = None,
                 stop_on_fatal: bool = True,
                 on_fault: Optional[Callable[[FaultEvent], None]] = None):
        plan.validate_for(job.nranks)
        self.job = job
        self.engine = job.engine
        self.plan = plan
        #: maps a rank to its checkpoint storage sink (DISK faults);
        #: typically ``CheckpointEngine.disk``
        self.disk_resolver = disk_resolver
        #: the :class:`~repro.storage.CheckpointStore` corruption faults
        #: mangle; typically ``CheckpointEngine.store``
        self.store = store
        self.stop_on_fatal = stop_on_fatal
        self.on_fault = on_fault
        #: events actually delivered, in delivery order
        self.delivered: list[FaultEvent] = []
        #: events that could not be scheduled (already in the past) or
        #: had nothing to act on (corruption with no stored piece)
        self.skipped: list[FaultEvent] = []
        #: corruption events delivered, as ``(event, rank, seq)`` --
        #: seq resolved at delivery time
        self.corrupted: list[tuple[FaultEvent, int, int]] = []
        #: ranks lost to fatal faults delivered by this injector
        self.dead_ranks: list[int] = []
        self._armed = False
        self._events: list = []

    def arm(self) -> int:
        """Schedule every deliverable event; returns how many were armed.

        Events at or before the engine's current time cannot fire (the
        node was down then, or the plan predates this life) and are
        recorded in :attr:`skipped`.
        """
        if self._armed:
            raise FaultPlanError("injector already armed")
        self._armed = True
        armed = 0
        now = self.engine.now
        for ev in self.plan.events:
            if ev.time <= now:
                self.skipped.append(ev)
                continue
            self._events.append(
                self.engine.schedule_at(ev.time, self._deliver, ev,
                                        priority=PRIORITY_LATE))
            armed += 1
        return armed

    def disarm(self) -> int:
        """Cancel every not-yet-fired fault (the job completed; a fault
        on an idle cluster is not a failure).  Returns how many were
        cancelled."""
        n = 0
        for handle in self._events:
            if not handle.cancelled:
                handle.cancel()
                n += 1
        self._events.clear()
        return n

    # -- delivery -----------------------------------------------------------

    def _deliver(self, ev: FaultEvent) -> None:
        if ev.kind.fatal and ev.rank in self.dead_ranks:
            # the node is already gone; a second fault on it is a no-op
            self.skipped.append(ev)
            return
        if ev.kind is FaultKind.CRASH:
            self.job.fail_rank(ev.rank)
            self.dead_ranks.append(ev.rank)
        elif ev.kind is FaultKind.NIC:
            self.job.nics[ev.rank].fail()
            # unreachable node: the failure detector declares it dead
            self.job.fail_rank(ev.rank)
            self.dead_ranks.append(ev.rank)
        elif ev.kind is FaultKind.DISK:
            if self.disk_resolver is None:
                raise FaultPlanError(
                    f"DISK fault at t={ev.time} but no disk_resolver given")
            self.disk_resolver(ev.rank).fail_next_writes(ev.count)
        elif ev.kind.corrupting:
            if not self._corrupt(ev):
                self.skipped.append(ev)
                return
        else:  # pragma: no cover - enum is exhaustive
            raise FaultPlanError(f"unknown fault kind {ev.kind!r}")
        self.delivered.append(ev)
        obs = self.engine.obs
        if obs.enabled:
            obs.metrics.counter("faults.delivered").inc()
            obs.metrics.counter(f"faults.delivered_{ev.kind.value}").inc()
            if ev.kind.corrupting:
                obs.metrics.counter("ckpt.integrity.corrupted").inc()
            tracer = obs.tracer
            if tracer.enabled and tracer.wants("fault"):
                tracer.instant(f"fault.{ev.kind.value}", "fault", ev.time,
                               track="faults", rank=ev.rank,
                               fatal=ev.kind.fatal)
        if self.on_fault is not None:
            self.on_fault(ev)
        if ev.kind.fatal and self.stop_on_fatal:
            self.engine.stop()

    def _corrupt(self, ev: FaultEvent) -> bool:
        """Deliver one silent-corruption event; False when there was
        nothing to corrupt (recorded as skipped by the caller)."""
        if self.store is None:
            raise FaultPlanError(
                f"{ev.kind.value} fault at t={ev.time} but no store given")
        seq = ev.seq
        if seq is None:
            pieces = self.store.pieces(ev.rank)
            if not pieces:
                return False
            seq = pieces[-1].seq
        elif self.store.find(ev.rank, seq) is None:
            return False
        if ev.kind is FaultKind.FLIP:
            # seed folds in the fault time so two flips of the same
            # piece hit different bits, deterministically
            if self.store.flip_bits(ev.rank, seq, nbits=ev.count,
                                    seed=int(round(ev.time * 1e6))) is None:
                return False  # payload-free piece: no bytes to flip
        elif ev.kind is FaultKind.TRUNCATE:
            self.store.truncate_piece(ev.rank, seq)
        else:
            self.store.drop_piece(ev.rank, seq)
        self.corrupted.append((ev, ev.rank, seq))
        return True

    @property
    def fatal_delivered(self) -> bool:
        """True once at least one crash-class fault has been delivered."""
        return bool(self.dead_ranks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FaultInjector delivered={len(self.delivered)} "
                f"dead={self.dead_ranks}>")

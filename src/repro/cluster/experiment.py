"""The experiment harness: one call from configuration to results.

Every benchmark and example drives the system through
:func:`run_experiment`: build the cluster, install the instrumentation
library, launch the calibrated application, run the virtual clock, and
return per-rank traces plus the derived statistics the paper reports.
Sweeps over the checkpoint timeslice (Figs 2-4) and the processor count
(Fig 5) are one-liners on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.apps.base import ScientificApplication
from repro.apps.registry import default_run_duration, paper_spec
from repro.apps.spec import WorkloadSpec
from repro.cluster.node import ClusterSpec, PAPER_CLUSTER
from repro.errors import ConfigurationError
from repro.instrument import InstrumentationLibrary, TraceLog, TrackerConfig
from repro.mem import Layout
from repro.metrics.bandwidth import IBStats, ib_stats, iws_ratio
from repro.metrics.stats import FootprintStats, footprint_stats
from repro.mpi import MPIJob
from repro.sim import Engine
from repro.units import DEFAULT_PAGE_SIZE, MiB


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything one run needs."""

    spec: WorkloadSpec
    nranks: int = 4
    timeslice: float = 1.0
    run_duration: Optional[float] = None   #: None -> app default
    charge_overhead: bool = False
    page_size: int = DEFAULT_PAGE_SIZE
    procs_per_node: int = 2
    intercept_receives: bool = True
    protect_on_map: bool = True
    fault_cost: float = 15e-6
    reprotect_cost_per_page: float = 0.2e-6
    cluster: ClusterSpec = PAPER_CLUSTER
    #: checkpoint data path: None (no checkpoint engine, the seed
    #: behaviour), "estimate", "network", or "diskless"
    ckpt_transport: Optional[str] = None
    ckpt_interval_slices: int = 2
    ckpt_full_every: int = 4
    #: delta capture granularity: "incremental" (whole dirty pages) or
    #: "dcp" (sub-page differential blocks)
    ckpt_mode: str = "incremental"
    #: block granularity (bytes) for ``ckpt_mode="dcp"``
    dcp_block_size: int = 256

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ConfigurationError("need at least one rank")
        if self.timeslice <= 0:
            raise ConfigurationError("timeslice must be positive")
        if self.ckpt_transport is not None:
            from repro.checkpoint.transport import TRANSPORT_MODES
            if self.ckpt_transport not in TRANSPORT_MODES:
                raise ConfigurationError(
                    f"unknown checkpoint transport "
                    f"{self.ckpt_transport!r}; expected one of "
                    f"{TRANSPORT_MODES}")
        if self.ckpt_interval_slices < 1:
            raise ConfigurationError("ckpt_interval_slices must be >= 1")
        if self.ckpt_full_every < 1:
            raise ConfigurationError("ckpt_full_every must be >= 1")
        if self.ckpt_mode not in ("incremental", "dcp"):
            raise ConfigurationError(
                f"unknown checkpoint mode {self.ckpt_mode!r}; expected "
                f"'incremental' or 'dcp'")
        if self.dcp_block_size < 1 or self.page_size % self.dcp_block_size:
            raise ConfigurationError(
                f"dcp_block_size {self.dcp_block_size} must be >= 1 and "
                f"divide the page size {self.page_size}")

    def scaled(self, **changes) -> "ExperimentConfig":
        """A copy with some fields replaced (parameter sweeps)."""
        return replace(self, **changes)


@dataclass
class ExperimentResult:
    """Traces and derived statistics of one run."""

    config: ExperimentConfig
    logs: dict[int, TraceLog]
    init_end_time: float          #: when initialization finished (rank 0)
    iterations: int               #: completed main iterations (rank 0)
    iteration_starts: list[float]
    final_time: float
    #: live simulation objects; None on results reloaded from the
    #: persistent cache or shipped back from a pool worker (the derived
    #: statistics above need only the traces and metadata)
    app: Optional[ScientificApplication] = field(repr=False, default=None)
    library: Optional[InstrumentationLibrary] = field(repr=False, default=None)
    job: Optional[MPIJob] = field(repr=False, default=None)
    #: checkpoint-transport accounting when ``config.ckpt_transport``
    #: was set (a picklable TransportStats snapshot); None otherwise
    transport_stats: Optional[object] = None
    ckpt_commits: int = 0
    #: the live checkpoint engine (dropped by :meth:`detached`)
    ckpt: Optional[object] = field(repr=False, default=None)

    # -- derived statistics (rank 0 unless stated; bulk synchrony makes
    # -- one process representative, section 6.1) -------------------------------

    def log(self, rank: int = 0) -> TraceLog:
        """One rank's timeslice trace."""
        return self.logs[rank]

    def ib(self, rank: int = 0) -> IBStats:
        """IB statistics excluding the initialization burst."""
        return ib_stats(self.logs[rank], skip_until=self.init_end_time)

    def ib_all_ranks(self) -> dict[int, IBStats]:
        """Per-rank IB statistics (bulk synchrony makes them agree)."""
        return {r: ib_stats(log, skip_until=self.init_end_time)
                for r, log in self.logs.items()}

    def footprint(self, rank: int = 0) -> FootprintStats:
        """Footprint statistics (Table 2's columns) for one rank."""
        return footprint_stats(self.logs[rank],
                               skip_until=self.init_end_time)

    def iws_ratio(self, rank: int = 0) -> float:
        """Average IWS/footprint ratio (the Fig 4 quantity)."""
        return iws_ratio(self.logs[rank], skip_until=self.init_end_time)

    def measured_period(self, rank: int = 0) -> float:
        """Mean observed iteration period."""
        starts = self.iteration_starts
        if len(starts) < 2:
            raise ConfigurationError("fewer than two iterations observed")
        return (starts[-1] - starts[0]) / (len(starts) - 1)

    def slowdown_vs(self, baseline: "ExperimentResult") -> float:
        """Relative runtime stretch against an uninstrumented baseline
        run of the same workload (section 6.5's intrusiveness)."""
        base = baseline.measured_period()
        return self.measured_period() / base - 1.0

    def detached(self) -> "ExperimentResult":
        """A copy without the live simulation objects.

        Detached results are picklable (pool workers ship them between
        processes) and serializable to the persistent cache; every
        derived statistic still works."""
        return ExperimentResult(
            config=self.config,
            logs=self.logs,
            init_end_time=self.init_end_time,
            iterations=self.iterations,
            iteration_starts=list(self.iteration_starts),
            final_time=self.final_time,
            transport_stats=self.transport_stats,
            ckpt_commits=self.ckpt_commits,
        )

    def measured_feasibility(self, envelope=None):
        """The *measured* feasibility verdict for this run, or None when
        the run had no measuring checkpoint transport (see
        :meth:`repro.feasibility.FeasibilityAnalyzer.assess_measured`)."""
        stats = self.transport_stats
        if stats is None or not stats.measured:
            return None
        from repro.feasibility import FeasibilityAnalyzer
        analyzer = (FeasibilityAnalyzer(envelope) if envelope is not None
                    else FeasibilityAnalyzer())
        return analyzer.assess_measured(self.config.spec.name, stats,
                                        self.config.timeslice)


def run_experiment(config: ExperimentConfig,
                   obs=None, *, shards: int = 1,
                   coalesce_timers: bool = True,
                   coalesce_events: bool = True) -> ExperimentResult:
    """Run one instrumented experiment on the simulated cluster.

    ``obs`` (a :class:`repro.obs.Observability`) threads a tracer,
    metrics registry, and progress feed through the engine and every
    component hanging off it; ``None`` (the default) is the zero-cost
    disabled path.

    ``shards`` > 1 partitions the ranks into node-aligned groups and
    simulates each group in its own worker process, merging the streams
    into one sim-identical result (see :mod:`repro.cluster.shards` for
    the protocol and its configuration gate).  ``coalesce_timers=False``
    selects the seed per-timer engine path instead of the coalesced
    :class:`~repro.sim.timers.TimerHub` (the differential suite compares
    the two).  ``coalesce_events=False`` likewise selects the seed
    one-event-per-wake/per-delivery engine path instead of the coalesced
    batches (:meth:`~repro.sim.Engine.schedule_coalesced`)."""
    if shards > 1:
        from repro.cluster.shards import run_sharded  # deferred: shards imports us
        return run_sharded(config, obs=obs, shards=shards,
                           coalesce_timers=coalesce_timers)
    return _execute(config, obs, coalesce_timers,
                    coalesce_events=coalesce_events)


def _execute(config: ExperimentConfig, obs, coalesce_timers: bool,
             phantom_ranks: frozenset = frozenset(),
             before_run=None, coalesce_events: bool = True) -> ExperimentResult:
    """Build the full simulation and run it to completion.

    The seam shared by the in-process path and the shard workers:
    ``phantom_ranks`` marks ranks whose page tables are inert
    placeholders (owned by another shard), and ``before_run(engine,
    app, job, library)`` lets the caller attach listeners after install
    but before launch."""
    engine = Engine(obs=obs, coalesce_timers=coalesce_timers,
                    coalesce_wakes=coalesce_events,
                    coalesce_deliveries=coalesce_events)
    layout = Layout(page_size=config.page_size)
    run_duration = (config.run_duration
                    if config.run_duration is not None
                    else default_run_duration(config.spec))
    # a meaningful measurement needs several timeslices after the
    # initialization burst, whatever the timeslice length
    run_duration = max(run_duration, 5.0 * config.timeslice)
    app = ScientificApplication(config.spec, run_duration=run_duration,
                                charge_overhead=config.charge_overhead,
                                layout=layout, phantom_ranks=phantom_ranks)
    job = MPIJob(engine, config.nranks, layout=layout,
                 procs_per_node=config.procs_per_node,
                 process_factory=app.process_factory(engine),
                 name=config.spec.name)
    library = InstrumentationLibrary(
        TrackerConfig(timeslice=config.timeslice,
                      fault_cost=config.fault_cost,
                      reprotect_cost_per_page=config.reprotect_cost_per_page,
                      protect_on_map=config.protect_on_map,
                      intercept_receives=config.intercept_receives),
        app_name=config.spec.name).install(job)
    if not config.intercept_receives:
        for nic in job.nics:
            nic.strict_dma = False
    ckpt = None
    if config.ckpt_transport is not None:
        from repro.checkpoint import CheckpointEngine
        ckpt = CheckpointEngine(job, library,
                                interval_slices=config.ckpt_interval_slices,
                                full_every=config.ckpt_full_every,
                                keep_payloads=False,
                                gc=(config.ckpt_transport == "diskless"),
                                transport=config.ckpt_transport,
                                mode=config.ckpt_mode,
                                dcp_block_size=config.dcp_block_size)
    if before_run is not None:
        before_run(engine, app, job, library)
    procs = job.launch(app.make_body())
    engine.run(detect_deadlock=True)
    for p in procs:
        if p.exception is not None:
            raise p.exception
    if engine.obs.enabled:
        engine.publish_metrics(engine.obs.metrics)

    rc0 = app.contexts[0]
    return ExperimentResult(
        config=config,
        logs=library.all_records(),
        init_end_time=rc0.init_end_time,
        iterations=rc0.iterations,
        iteration_starts=list(rc0.iteration_starts),
        final_time=engine.now,
        app=app,
        library=library,
        job=job,
        transport_stats=(None if ckpt is None else ckpt.transport_stats()),
        ckpt_commits=(0 if ckpt is None else len(ckpt.committed())),
        ckpt=ckpt,
    )


def run_uninstrumented(config: ExperimentConfig) -> ExperimentResult:
    """The same run without any instrumentation (intrusiveness baseline)."""
    engine = Engine()
    layout = Layout(page_size=config.page_size)
    run_duration = (config.run_duration
                    if config.run_duration is not None
                    else default_run_duration(config.spec))
    app = ScientificApplication(config.spec, run_duration=run_duration,
                                charge_overhead=False, layout=layout)
    job = MPIJob(engine, config.nranks, layout=layout,
                 procs_per_node=config.procs_per_node,
                 process_factory=app.process_factory(engine),
                 name=config.spec.name)
    procs = job.launch(app.make_body())
    engine.run(detect_deadlock=True)
    for p in procs:
        if p.exception is not None:
            raise p.exception
    rc0 = app.contexts[0]
    return ExperimentResult(
        config=config, logs={}, init_end_time=rc0.init_end_time,
        iterations=rc0.iterations,
        iteration_starts=list(rc0.iteration_starts),
        final_time=engine.now, app=app, library=None, job=job)


def sweep_timeslices(config: ExperimentConfig,
                     timeslices: list[float], *, jobs: int = 1,
                     cache=None, obs=None,
                     shards: int = 1) -> dict[float, ExperimentResult]:
    """One run per timeslice (the sweep behind Figs 2-4).  Re-running per
    timeslice matters: page reuse within longer slices cannot be derived
    from a finer-grained run, because the dirty set resets at each alarm.

    ``jobs`` fans the independent runs across a process pool; ``cache``
    (a :class:`repro.exec.ResultCache`) makes repeat sweeps near-instant.
    ``shards`` shards each run's rank groups (serial sweeps only).
    Results are identical at any job or shard count (see DESIGN.md)."""
    if not timeslices:
        raise ConfigurationError("empty timeslice sweep")
    return _run_sweep(config, "timeslice", timeslices, jobs=jobs,
                      cache=cache, obs=obs, shards=shards)


def sweep_processors(config: ExperimentConfig,
                     nranks_list: list[int], *, jobs: int = 1,
                     cache=None, obs=None,
                     shards: int = 1) -> dict[int, ExperimentResult]:
    """One run per processor count under weak scaling (Fig 5): the
    per-process footprint is fixed; only the rank count changes."""
    if not nranks_list:
        raise ConfigurationError("empty processor sweep")
    return _run_sweep(config, "nranks", nranks_list, jobs=jobs,
                      cache=cache, obs=obs, shards=shards)


def _run_sweep(config: ExperimentConfig, field_name: str, values: list,
               *, jobs: int, cache, obs=None, shards: int = 1) -> dict:
    """Fan one-field sweeps through the executor, deduplicating repeated
    values (matching the dict semantics the serial loop always had)."""
    from repro.exec import SweepExecutor  # deferred: exec imports us

    unique = list(dict.fromkeys(values))
    configs = [config.scaled(**{field_name: v}) for v in unique]
    results = SweepExecutor(jobs=jobs, cache=cache, obs=obs,
                            shards=shards).run_many(configs)
    return dict(zip(unique, results))


def run_with_failures(config: ExperimentConfig, plan, **kwargs):
    """Run one experiment under a fault plan, recovering from every
    fatal fault via the checkpoint chain; see
    :func:`repro.faults.driver.run_with_failures` for the knobs."""
    from repro.faults.driver import run_with_failures as _run  # deferred: faults imports us

    return _run(config, plan, **kwargs)


def paper_config(name: str, **overrides) -> ExperimentConfig:
    """An :class:`ExperimentConfig` for one of the paper's applications."""
    return ExperimentConfig(spec=paper_spec(name), **overrides)

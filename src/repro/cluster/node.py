"""Node and cluster hardware models.

The paper's testbed: 32 HP Server rx2600 nodes, each with two Itanium II
processors and two PCI-X I/O buses, connected by Quadrics QsNet.  The
Itanium II's high memory bandwidth makes it the *worst case* for
incremental checkpointing -- a faster writer dirties more pages per
second -- so results generalize to slower processors (section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.net.models import LinkSpec, QSNET2
from repro.storage.models import DiskSpec, SCSI_ULTRA320
from repro.units import GiB, MiB


@dataclass(frozen=True)
class NodeSpec:
    """One cluster node."""

    name: str
    cpus: int
    #: sustainable memory write bandwidth per CPU (STREAM-like), B/s --
    #: the physical ceiling on how fast an application can dirty pages
    memory_write_bandwidth: float
    io_buses: int
    memory_capacity: int

    def __post_init__(self) -> None:
        if self.cpus < 1 or self.io_buses < 1:
            raise ConfigurationError("node needs at least one CPU and bus")
        if self.memory_write_bandwidth <= 0 or self.memory_capacity <= 0:
            raise ConfigurationError("bandwidth and capacity must be positive")

    def max_dirty_rate(self) -> float:
        """Upper bound on per-process page-dirtying bandwidth (B/s): no
        application can require more incremental bandwidth than the
        memory system lets it write."""
        return self.memory_write_bandwidth


#: HP Server rx2600: 2x Itanium II (~4 GB/s STREAM triad per socket of
#: that era), 2 PCI-X buses, 2-12 GB of memory.
RX2600 = NodeSpec("HP rx2600 (2x Itanium II)", cpus=2,
                  memory_write_bandwidth=4 * GiB, io_buses=2,
                  memory_capacity=4 * GiB)


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster: nodes + interconnect + per-node storage."""

    nnodes: int
    node: NodeSpec = RX2600
    link: LinkSpec = QSNET2
    disk: DiskSpec = SCSI_ULTRA320

    def __post_init__(self) -> None:
        if self.nnodes < 1:
            raise ConfigurationError("cluster needs at least one node")

    @property
    def total_processors(self) -> int:
        return self.nnodes * self.node.cpus

    def validates_demand(self, per_process_bps: float) -> bool:
        """Sanity check used by the experiment harness: measured IB can
        never exceed the node's memory write bandwidth."""
        return per_process_bps <= self.node.max_dirty_rate()


#: the paper's full testbed
PAPER_CLUSTER = ClusterSpec(nnodes=32)

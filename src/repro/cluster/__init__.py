"""Cluster composition and the experiment harness.

:mod:`~repro.cluster.node` models the paper's testbed hardware (HP
rx2600 nodes: two Itanium II processors, two PCI-X buses, QsNet);
:mod:`~repro.cluster.experiment` is the one-call harness every benchmark
and example uses: configure an application, rank count and timeslice,
run the instrumented job, get traces and derived statistics back.
"""

from repro.cluster.node import ClusterSpec, NodeSpec, RX2600
from repro.cluster.experiment import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
    sweep_processors,
    sweep_timeslices,
)

__all__ = [
    "ClusterSpec",
    "ExperimentConfig",
    "ExperimentResult",
    "NodeSpec",
    "RX2600",
    "run_experiment",
    "sweep_processors",
    "sweep_timeslices",
]

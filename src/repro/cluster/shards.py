"""Sharded rank-group execution with deterministic merge.

Scaling the simulator to 1024 ranks in one process leaves most of the
wall time in per-rank page-table state: every rank's dirty tracking,
protection sweeps, and write-version bookkeeping run on one core.
This module partitions the ranks into node-aligned contiguous groups
and simulates each group in its own worker process (the warm fork pool
of :mod:`repro.exec.pool`), then merges the per-shard streams into one
result that is *sim-identical* to the single-process run.

The trick that makes the merge deterministic is a **replicated
skeleton**: every shard simulates the full event skeleton -- all ranks,
all MPI traffic, the complete network model -- but only its *owned*
ranks carry real page tables; every other rank gets a
:class:`~repro.mem.PhantomPageTable` whose operations are O(1) no-ops.
Because the discrete-event engine is deterministic and (under the
configuration gate below) no event's *timing* depends on page-table
state, each shard walks the exact same event sequence at the exact same
virtual times.  There is therefore nothing to exchange at shard
boundaries -- each shard already computed the traffic the others would
have sent it -- and the "barrier protocol" reduces to *verification*:
per timeslice-epoch window, every shard folds each cross-shard message
delivery ``(time, src, dst, tag, size)`` into a running digest, and the
parent asserts the digests agree across shards window by window.  A
mismatch means the determinism contract was broken and raises
:class:`~repro.errors.ShardDivergenceError` rather than silently
merging divergent simulations.

The configuration gate enforces the "timing is page-state-independent"
precondition:

- ``ckpt_transport`` must be ``None`` -- checkpoint piece sizes derive
  from dirty-page counts, which phantoms cannot answer;
- ``charge_overhead`` must be ``False`` -- fault/re-protect overhead
  folded into the app clock would depend on per-rank fault counts;
- ``intercept_receives`` must be ``True`` -- strict-DMA delivery
  bounces based on target-page protection state.

Violations raise :class:`~repro.errors.ConfigurationError` up front.

When the caller traces, each worker records the full event stream with
a wall-clock-free tracer; streams are position-aligned (identical
dispatch sequences), so the parent takes page-state-dependent
``timeslice`` events from the shard owning that rank and everything
else from shard 0, cross-checking every position across all shards.
"""

from __future__ import annotations

import struct
from hashlib import blake2b
from typing import Optional

from repro.errors import ConfigurationError, ShardDivergenceError


def rank_groups(nranks: int, procs_per_node: int, shards: int) -> list[range]:
    """Partition ranks into ``shards`` contiguous node-aligned groups.

    Groups never split a node (co-scheduled ranks share NIC contention
    and fork-pool locality), so ``shards`` may not exceed the node
    count.  Returns one ``range`` of ranks per shard, in rank order."""
    if shards < 1:
        raise ConfigurationError(f"need at least one shard, got {shards}")
    nnodes = -(-nranks // procs_per_node)
    if shards > nnodes:
        raise ConfigurationError(
            f"{shards} shards but only {nnodes} nodes "
            f"({nranks} ranks at {procs_per_node}/node); "
            f"shards must not split a node")
    groups = []
    for i in range(shards):
        lo = (i * nnodes // shards) * procs_per_node
        hi = min(((i + 1) * nnodes // shards) * procs_per_node, nranks)
        groups.append(range(lo, hi))
    return groups


def check_shardable(config, shards: int) -> None:
    """Raise :class:`ConfigurationError` unless ``config`` satisfies the
    page-state-independent-timing gate (see the module docstring) and
    the rank/node geometry admits ``shards`` groups."""
    if config.ckpt_transport is not None:
        raise ConfigurationError(
            "sharded execution requires ckpt_transport=None: checkpoint "
            "piece sizes derive from dirty-page state that phantom "
            "ranks do not carry")
    if config.charge_overhead:
        raise ConfigurationError(
            "sharded execution requires charge_overhead=False: folding "
            "fault overhead into the app clock makes event timing "
            "depend on per-rank page state")
    if not config.intercept_receives:
        raise ConfigurationError(
            "sharded execution requires intercept_receives=True: "
            "strict-DMA delivery consults target-page protection state")
    rank_groups(config.nranks, config.procs_per_node, shards)


class _CrossShardLedger:
    """Per-window digests of cross-shard message deliveries.

    One instance per shard worker; listeners on every rank's
    communicator fold each delivery whose source lies in a *different*
    shard into a per-window blake2b digest.  Windows are timeslice
    epochs (``floor(now / window)``); both the window index and the
    packed float timestamp are bit-identical across shards when the
    simulations agree."""

    def __init__(self, group_of: dict[int, int], window: float):
        self.group_of = group_of
        self.window = window
        self.hashers: dict[int, "blake2b"] = {}
        self.msgs = 0
        self.bytes = 0
        self.engine = None

    def attach(self, engine, contexts) -> None:
        """Install a receive listener on every rank's communicator."""
        self.engine = engine
        for ctx in contexts:
            ctx.comm.receive_listeners.append(self._listener(ctx.rank))

    def _listener(self, dst: int):
        dst_group = self.group_of[dst]
        group_of = self.group_of

        def on_receive(msg) -> None:
            if group_of[msg.src] == dst_group:
                return
            now = self.engine.now
            w = int(now / self.window)
            h = self.hashers.get(w)
            if h is None:
                h = self.hashers[w] = blake2b(digest_size=16)
            h.update(struct.pack("<dqqqq", now, msg.src, dst,
                                 msg.tag, msg.size))
            self.msgs += 1
            self.bytes += msg.size
        return on_receive

    def digests(self) -> dict[int, str]:
        """The finalized per-window hex digests."""
        return {w: h.hexdigest() for w, h in self.hashers.items()}


def _run_shard(config, shard_index: int, shards: int, coalesce_timers: bool,
               trace_categories: Optional[list]) -> dict:
    """Pool worker: simulate the full skeleton with one owned rank group.

    Returns a picklable outcome: the owned ranks' timeslice logs, the
    rank-0 scalars (computed identically in every shard -- control flow
    does not depend on page state), the cross-shard traffic digests,
    and, when tracing, the wall-free event stream."""
    from repro.cluster.experiment import _execute  # deferred: experiment imports us

    groups = rank_groups(config.nranks, config.procs_per_node, shards)
    group_of = {r: gi for gi, g in enumerate(groups) for r in g}
    phantoms = frozenset(r for r in range(config.nranks)
                         if group_of[r] != shard_index)
    obs = None
    if trace_categories is not None:
        from repro.obs import Observability, Tracer
        obs = Observability(tracer=Tracer(categories=trace_categories,
                                          wall_clock=None))
    ledger = _CrossShardLedger(group_of, window=config.timeslice)

    def before_run(engine, app, job, library) -> None:
        ledger.attach(engine, job.contexts)

    result = _execute(config, obs, coalesce_timers,
                      phantom_ranks=phantoms, before_run=before_run)
    owned = set(groups[shard_index])
    out = {
        "shard": shard_index,
        "owned": sorted(owned),
        "logs": {r: log for r, log in result.logs.items() if r in owned},
        "init_end_time": result.init_end_time,
        "iterations": result.iterations,
        "iteration_starts": list(result.iteration_starts),
        "final_time": result.final_time,
        "dispatched": result.job.engine.stats()["dispatched"],
        "digests": ledger.digests(),
        "cross_msgs": ledger.msgs,
        "cross_bytes": ledger.bytes,
        "events": None,
        "tracks": None,
    }
    if obs is not None:
        out["events"] = obs.tracer.events
        out["tracks"] = dict(obs.tracer._tracks)
    return out


def _verify_outcomes(outcomes: list[dict]) -> None:
    """Assert every shard walked the same simulation: identical scalars,
    identical event counts, identical per-window traffic digests."""
    o0 = outcomes[0]
    for o in outcomes[1:]:
        for key in ("final_time", "init_end_time", "iterations",
                    "iteration_starts", "dispatched", "cross_msgs",
                    "cross_bytes"):
            if o[key] != o0[key]:
                raise ShardDivergenceError(
                    f"shard {o['shard']} disagrees with shard 0 on "
                    f"{key}: {o[key]!r} != {o0[key]!r}")
        if o["digests"] != o0["digests"]:
            bad = sorted(w for w in set(o["digests"]) | set(o0["digests"])
                         if o["digests"].get(w) != o0["digests"].get(w))
            raise ShardDivergenceError(
                f"cross-shard traffic digest mismatch between shard "
                f"{o['shard']} and shard 0 in barrier window(s) "
                f"{bad[:5]} (of {len(bad)} differing)")


def _merge_events(outcomes: list[dict], parent_tracer) -> list[dict]:
    """Stamp-ordered merge of the per-shard event streams.

    Streams are position-aligned, so the merge is a per-position pick:
    ``timeslice`` events (whose args carry page-state-derived IWS and
    fault counts) come from the shard owning that rank's page tables;
    every other event comes from shard 0.  Every position is
    cross-checked across all shards -- identity fields always, args too
    outside the page-state-dependent category.  Track ids are remapped
    through the parent tracer so exported metadata stays consistent."""
    streams = [o["events"] for o in outcomes]
    n = len(streams[0])
    for o, s in zip(outcomes, streams):
        if len(s) != n:
            raise ShardDivergenceError(
                f"shard {o['shard']} recorded {len(s)} trace events, "
                f"shard 0 recorded {n}")
    tid_to_track = [{tid: track for track, tid in o["tracks"].items()}
                    for o in outcomes]
    rank_owner = {f"rank{r}": i for i, o in enumerate(outcomes)
                  for r in o["owned"]}
    merged = []
    for i in range(n):
        ev0 = streams[0][i]
        key0 = (ev0["name"], ev0.get("cat"), ev0["ts"], ev0["ph"])
        page_state_dep = ev0.get("cat") == "timeslice"
        for s in range(1, len(streams)):
            evs = streams[s][i]
            if (evs["name"], evs.get("cat"), evs["ts"], evs["ph"]) != key0:
                raise ShardDivergenceError(
                    f"shard {outcomes[s]['shard']} diverges from shard 0 "
                    f"at trace event {i}: {evs['name']!r}@{evs['ts']} != "
                    f"{ev0['name']!r}@{ev0['ts']}")
            if not page_state_dep and evs.get("args") != ev0.get("args"):
                raise ShardDivergenceError(
                    f"shard {outcomes[s]['shard']} diverges from shard 0 "
                    f"in args of trace event {i} ({ev0['name']!r})")
        track = tid_to_track[0].get(ev0["tid"], "sim")
        src = rank_owner.get(track, 0) if page_state_dep else 0
        ev = dict(streams[src][i])
        ev["tid"] = parent_tracer._tid(tid_to_track[src].get(ev["tid"],
                                                             track))
        merged.append(ev)
    return merged


def run_sharded(config, obs=None, *, shards: int,
                coalesce_timers: bool = True):
    """Run one experiment split across ``shards`` worker processes and
    merge the streams into a single sim-identical
    :class:`~repro.cluster.experiment.ExperimentResult`.

    Callers normally reach this through
    :func:`~repro.cluster.experiment.run_experiment` with ``shards>1``."""
    from concurrent.futures.process import BrokenProcessPool

    from repro.cluster.experiment import ExperimentResult
    from repro.exec.pool import _get_pool, shutdown_pool

    if shards < 2:
        raise ConfigurationError(
            f"run_sharded needs at least 2 shards, got {shards}")
    check_shardable(config, shards)
    groups = rank_groups(config.nranks, config.procs_per_node, shards)
    trace_categories = None
    if obs is not None and obs.tracer.enabled:
        trace_categories = sorted(obs.tracer.categories)
    pool = _get_pool(shards)
    try:
        futures = [pool.submit(_run_shard, config, i, shards,
                               coalesce_timers, trace_categories)
                   for i in range(shards)]
        outcomes = [f.result() for f in futures]
    except BrokenProcessPool:
        # a dead worker poisons the warm pool; drop it so the next
        # run starts from a fresh one
        shutdown_pool()
        raise
    _verify_outcomes(outcomes)
    logs: dict = {}
    for o in outcomes:
        logs.update(o["logs"])
    if len(logs) != config.nranks:
        raise ShardDivergenceError(
            f"merged logs cover {len(logs)} ranks, expected "
            f"{config.nranks}: shard ownership is not a partition")
    if trace_categories is not None:
        obs.tracer.events.extend(_merge_events(outcomes, obs.tracer))
    o0 = outcomes[0]
    if obs is not None and obs.enabled:
        m = obs.metrics
        m.gauge("shards.count").set(shards)
        m.gauge("shards.ranks_per_shard_max").set(max(len(g) for g in groups))
        m.gauge("shards.barrier_windows").set(len(o0["digests"]))
        m.counter("shards.cross_msgs").inc(o0["cross_msgs"])
        m.counter("shards.cross_bytes").inc(o0["cross_bytes"])
    return ExperimentResult(
        config=config,
        logs=logs,
        init_end_time=o0["init_end_time"],
        iterations=o0["iterations"],
        iteration_starts=list(o0["iteration_starts"]),
        final_time=o0["final_time"],
    )

"""Legacy setup shim: the offline environment lacks the `wheel` package,
so editable installs go through `pip install -e . --no-use-pep517`."""

from setuptools import setup

setup()

"""Unit tests for the coalescing TimerHub.

The hub replaces one queued engine event per timer expiry with one per
``(interval, phase)`` group per epoch; these tests pin the grouping,
the enrollment-order sweep, mid-epoch cancellation/reset semantics, and
the epoch-listener seam against the per-timer path.
"""

import pytest

from repro.sim import Engine, IntervalTimer
from repro.sim.timers import TimerHub


def _record(log, name):
    return lambda i, _n=name: log.append((_n, i))


def test_cophased_timers_share_one_engine_event_per_epoch():
    eng = Engine(coalesce_timers=True)
    log = []
    for n in range(8):
        IntervalTimer(eng, 1.0, _record(log, f"t{n}"))
    base = eng.stats()["dispatched"]
    eng.run(until=3.5)
    # 3 epochs, one dispatched event each -- not 24
    assert eng.stats()["dispatched"] - base == 3
    hub = eng.timer_hub
    assert hub.stats() == {"epochs": 3, "expiries_swept": 24, "max_group": 8}
    # sweep order is enrollment order, every epoch
    assert log == [(f"t{n}", i) for i in range(3) for n in range(8)]


def test_sweep_order_matches_per_timer_path():
    runs = {}
    for coalesce in (False, True):
        eng = Engine(coalesce_timers=coalesce)
        log = []
        for n in range(5):
            IntervalTimer(eng, 2.0, lambda i, _n=n: log.append(
                (eng.now, _n, i)))
        eng.run(until=9.0)
        runs[coalesce] = log
    assert runs[True] == runs[False]


def test_heterogeneous_intervals_and_phases_group_separately():
    eng = Engine(coalesce_timers=True)
    log = []
    IntervalTimer(eng, 1.0, _record(log, "a"))
    IntervalTimer(eng, 1.0, _record(log, "b"), start_after=0.5)
    IntervalTimer(eng, 2.0, _record(log, "c"))
    eng.run(until=2.25)
    # at t=2.0 both a and c expire; c's group event was scheduled first
    # (at construction) so it wins the same-instant seq tie-break,
    # exactly as the per-timer path would
    assert log == [("b", 0), ("a", 0), ("b", 1), ("c", 0), ("a", 1)]
    # a and c meet at t=2.0 but keep distinct (interval, phase) groups
    assert eng.timer_hub.stats()["max_group"] == 1


def test_cancel_mid_epoch_skips_co_grouped_member():
    """A handler cancelling a later member of its own group must
    suppress that member's expiry this epoch -- exactly what the
    per-timer path's armed check does."""
    for coalesce in (False, True):
        eng = Engine(coalesce_timers=coalesce)
        log = []
        timers = []
        def killer(i):
            log.append(("killer", i))
            if i == 1:
                timers[1].cancel()
        timers.append(IntervalTimer(eng, 1.0, killer))
        timers.append(IntervalTimer(eng, 1.0, _record(log, "victim")))
        eng.run(until=3.5)
        assert log == [("killer", 0), ("victim", 0),
                       ("killer", 1), ("killer", 2)], coalesce


def test_reset_mid_epoch_moves_member_to_new_group():
    for coalesce in (False, True):
        eng = Engine(coalesce_timers=coalesce)
        log = []
        timers = []
        def shifter(i):
            log.append((eng.now, "shifter", i))
            if i == 0:
                timers[1].reset(2.0)
        timers.append(IntervalTimer(eng, 1.0, shifter))
        timers.append(IntervalTimer(
            eng, 1.0, lambda i: log.append((eng.now, "shifted", i))))
        eng.run(until=3.5)
        # the shifted timer's t=3.0 event was scheduled at t=1.0, the
        # shifter's re-arm at t=2.0, so shifted wins the seq tie-break
        assert log == [(1.0, "shifter", 0), (2.0, "shifter", 1),
                       (3.0, "shifted", 0), (3.0, "shifter", 2)], coalesce


def test_empty_group_event_is_cancelled():
    eng = Engine(coalesce_timers=True)
    t = IntervalTimer(eng, 1.0, lambda i: pytest.fail("cancelled timer fired"))
    t.cancel()
    base = eng.stats()["dispatched"]
    eng.run(until=2.0)
    assert eng.stats()["dispatched"] == base
    assert not eng.timer_hub._groups


def test_epoch_listeners_fire_after_each_sweep():
    eng = Engine(coalesce_timers=True)
    log = []
    IntervalTimer(eng, 1.0, _record(log, "a"))
    IntervalTimer(eng, 1.0, _record(log, "b"))
    eng.timer_hub.epoch_listeners.append(lambda: log.append(("epoch", None)))
    eng.run(until=2.5)
    assert log == [("a", 0), ("b", 0), ("epoch", None),
                   ("a", 1), ("b", 1), ("epoch", None)]


def test_hub_created_lazily_only_when_coalescing():
    eng = Engine(coalesce_timers=False)
    IntervalTimer(eng, 1.0, lambda i: None)
    assert eng.timer_hub is None
    eng2 = Engine(coalesce_timers=True)
    assert eng2.timer_hub is None          # no timers yet
    IntervalTimer(eng2, 1.0, lambda i: None)
    assert isinstance(eng2.timer_hub, TimerHub)

"""Batched same-instant dispatch: ``Engine.schedule_coalesced``
semantics, the wake/delivery batching differential against the
per-event seed path, and hypothesis interleavings.

The contract mirrors the TimerHub's: batching same-sim-time work into
one engine event may never change the simulation -- same delivery
order, same resume order, same virtual times -- only the host event
count.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.experiment import paper_config, run_experiment
from repro.net import Message, Network
from repro.obs import Observability, Tracer
from repro.sim import Engine, Future, SimProcess, PRIORITY_LATE


# -- schedule_coalesced unit semantics ----------------------------------------

def test_same_instant_calls_share_one_event_in_join_order():
    eng = Engine()
    fired = []
    # fn is compared by identity, so callers hold one stable callable
    # (a fresh bound method like fired.append would never coalesce)
    collect = fired.append
    pending = eng.pending_events()
    ev1 = eng.schedule_coalesced(1.0, collect, "a")
    ev2 = eng.schedule_coalesced(1.0, collect, "b")
    ev3 = eng.schedule_coalesced(1.0, collect, "c")
    assert ev1 is ev2 is ev3
    assert eng.pending_events() == pending + 1
    eng.run()
    assert fired == ["a", "b", "c"]


def test_plain_event_at_same_instant_seals_the_batch():
    """An interloping ``schedule_at`` closes the open batch so later
    joins sort *after* it -- exactly where per-item events would."""
    eng = Engine()
    fired = []
    collect = fired.append
    eng.schedule_coalesced(1.0, collect, "a")
    eng.schedule_at(1.0, collect, "plain")
    eng.schedule_coalesced(1.0, collect, "b")
    assert eng.pending_events() == 3   # batch, interloper, fresh batch
    eng.run()
    assert fired == ["a", "plain", "b"]


def test_distinct_fn_time_or_priority_do_not_coalesce():
    eng = Engine()
    fired = []
    other = []
    collect, collect_other = fired.append, other.append
    eva = eng.schedule_coalesced(1.0, collect, "a")
    evb = eng.schedule_coalesced(2.0, collect, "b")             # time
    evc = eng.schedule_coalesced(2.0, collect_other, "c")       # fn
    evd = eng.schedule_coalesced(2.0, collect_other, "d",
                                 priority=PRIORITY_LATE)        # priority
    assert len({id(e) for e in (eva, evb, evc, evd)}) == 4
    eng.run()
    assert fired == ["a", "b"] and other == ["c", "d"]


def test_cancelled_batch_is_not_joined():
    """Cancelling the shared event drops every joined item; a later
    call opens a fresh batch instead of boarding the dead one."""
    eng = Engine()
    fired = []
    collect = fired.append
    ev = eng.schedule_coalesced(1.0, collect, "dropped")
    eng.schedule_coalesced(1.0, collect, "also-dropped")
    ev.cancel()
    ev2 = eng.schedule_coalesced(1.0, collect, "live")
    assert ev2 is not ev
    eng.run()
    assert fired == ["live"]


def test_batch_fired_from_inside_a_batch_opens_a_fresh_event():
    """A batch item scheduling more same-instant coalesced work must get
    a new event (the firing batch's item list is already being drained)."""
    eng = Engine()
    fired = []

    def chain(tag):
        fired.append(tag)
        if tag == "first":
            eng.schedule_coalesced(eng.now, chain, "second")
            eng.schedule_coalesced(eng.now, chain, "third")

    eng.schedule_coalesced(1.0, chain, "first")
    eng.run()
    assert fired == ["first", "second", "third"]
    assert eng.now == 1.0


# -- hypothesis: interleavings are batching-invariant -------------------------

@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=3.0,
                                    allow_nan=False),
                          st.integers(min_value=1, max_value=3),
                          st.integers(min_value=0, max_value=65536)),
                min_size=1, max_size=25))
@settings(max_examples=60, deadline=None)
def test_delivery_order_identical_with_and_without_batching(sends):
    """Random (send-time, dst, size) interleavings: the coalesced
    delivery path produces the exact delivered sequence -- virtual
    times included -- of the per-message seed path."""

    def run(coalesce):
        eng = Engine(coalesce_deliveries=coalesce)
        net = Network(eng, nnodes=4)
        log = []
        for node in range(4):
            net.attach(node, lambda m, n=node:
                       log.append((eng.now, n, m.src, m.tag, m.size)))
        for tag, (t, dst, size) in enumerate(sends):
            # tag doubles as a unique identity so the comparison does
            # not depend on the global Message mid counter
            eng.schedule_at(t, net.send, Message(src=0, dst=dst,
                                                 size=size, tag=tag))
        eng.run()
        return log

    assert run(coalesce=True) == run(coalesce=False)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_wake_order_identical_with_and_without_batching(data):
    """Random future/waiter topologies with colliding resolve times:
    batched resumes happen at the same virtual times, in the same
    order, with the same values as per-process wake events."""
    nfuts = data.draw(st.integers(min_value=1, max_value=5), label="nfuts")
    nprocs = data.draw(st.integers(min_value=1, max_value=4), label="nprocs")
    # each process waits on an arbitrary sequence of future indices
    waits = [data.draw(st.lists(st.integers(min_value=0, max_value=nfuts - 1),
                                min_size=1, max_size=4), label=f"waits{p}")
             for p in range(nprocs)]
    # few distinct times so same-instant resolution collisions are common
    times = [data.draw(st.sampled_from([0.0, 1.0, 1.0, 2.0]),
                       label=f"t{f}") for f in range(nfuts)]

    def run(coalesce):
        eng = Engine(coalesce_wakes=coalesce)
        futs = [Future(eng, label=f"f{i}") for i in range(nfuts)]
        log = []

        def body(name, seq):
            for idx in seq:
                value = yield futs[idx]
                log.append((eng.now, name, idx, value))

        for p, seq in enumerate(waits):
            SimProcess(eng, body(f"w{p}", seq), name=f"w{p}")
        for f, fut in enumerate(futs):
            eng.schedule_at(times[f], fut.resolve, f * 10)
        eng.run()
        return log

    assert run(coalesce=True) == run(coalesce=False)


# -- differential: full workloads, batched vs seed dispatch -------------------

@pytest.mark.parametrize("name", ["sage-50MB", "sweep3d"])
def test_experiment_streams_identical_across_dispatch_paths(name):
    cfg = paper_config(name, nranks=8, timeslice=1.0, run_duration=10.0)
    new = run_experiment(cfg, coalesce_events=True)
    seed = run_experiment(cfg, coalesce_events=False)
    assert new.final_time == seed.final_time
    assert new.iterations == seed.iterations
    assert new.iteration_starts == seed.iteration_starts
    for rank in range(8):
        assert new.logs[rank].records == seed.logs[rank].records


def test_traced_streams_identical_across_dispatch_paths():
    streams = []
    for coalesce in (True, False):
        cfg = paper_config("sage-50MB", nranks=8, timeslice=1.0,
                           run_duration=12.0, ckpt_transport="estimate")
        obs = Observability(tracer=Tracer(wall_clock=None))
        run_experiment(cfg, obs=obs, coalesce_events=coalesce)
        streams.append(obs.tracer.events)
    assert streams[0] == streams[1]

"""Unit tests for generator-based simulated processes."""

import pytest

from repro.errors import ProcessStateError
from repro.sim import Engine, Future, SimProcess, Timeout
from repro.sim.process import ProcessState, all_of


def test_timeout_advances_clock():
    eng = Engine()
    times = []

    def body():
        times.append(eng.now)
        yield Timeout(1.5)
        times.append(eng.now)
        yield Timeout(0.5)
        times.append(eng.now)

    SimProcess(eng, body())
    eng.run()
    assert times == [0.0, 1.5, 2.0]


def test_process_return_value_resolves_done():
    eng = Engine()

    def body():
        yield Timeout(1.0)
        return 42

    p = SimProcess(eng, body())
    eng.run()
    assert p.state is ProcessState.FINISHED
    assert p.done.resolved
    assert p.done.value == 42


def test_start_delay():
    eng = Engine()
    started = []

    def body():
        started.append(eng.now)
        yield Timeout(0.0)

    SimProcess(eng, body(), start_delay=3.0)
    eng.run()
    assert started == [3.0]


def test_future_blocks_until_resolved():
    eng = Engine()
    fut = Future(eng, label="data")
    got = []

    def consumer():
        value = yield fut
        got.append((eng.now, value))

    def producer():
        yield Timeout(2.0)
        fut.resolve("payload")

    SimProcess(eng, consumer())
    SimProcess(eng, producer())
    eng.run()
    assert got == [(2.0, "payload")]


def test_future_resolved_before_wait_wakes_immediately():
    eng = Engine()
    fut = Future(eng)
    fut.resolve("early")
    got = []

    def body():
        value = yield fut
        got.append(value)

    SimProcess(eng, body())
    eng.run()
    assert got == ["early"]


def test_future_resolve_twice_raises():
    eng = Engine()
    fut = Future(eng)
    fut.resolve(1)
    with pytest.raises(ProcessStateError):
        fut.resolve(2)


def test_future_value_before_resolution_raises():
    eng = Engine()
    fut = Future(eng)
    with pytest.raises(ProcessStateError):
        _ = fut.value


def test_multiple_waiters_on_one_future():
    eng = Engine()
    fut = Future(eng)
    got = []

    def waiter(i):
        value = yield fut
        got.append((i, value))

    for i in range(3):
        SimProcess(eng, waiter(i), name=f"w{i}")
    eng.schedule(1.0, fut.resolve, "x")
    eng.run()
    assert sorted(got) == [(0, "x"), (1, "x"), (2, "x")]


def test_yielding_garbage_fails_the_process():
    eng = Engine()

    def body():
        yield "nonsense"

    p = SimProcess(eng, body())
    eng.run()
    assert p.state is ProcessState.FAILED
    assert isinstance(p.exception, ProcessStateError)


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_body_exception_captured():
    eng = Engine()

    def body():
        yield Timeout(1.0)
        raise RuntimeError("boom")

    p = SimProcess(eng, body())
    eng.run()
    assert p.state is ProcessState.FAILED
    assert isinstance(p.exception, RuntimeError)
    assert p.done.resolved


def test_non_generator_body_rejected():
    eng = Engine()
    with pytest.raises(ProcessStateError):
        SimProcess(eng, lambda: None)  # type: ignore[arg-type]


def test_kill_stops_process_and_runs_finally():
    eng = Engine()
    cleanup = []

    def body():
        try:
            yield Timeout(100.0)
        finally:
            cleanup.append(eng.now)

    p = SimProcess(eng, body())
    eng.schedule(5.0, p.kill)
    eng.run()
    assert p.state is ProcessState.KILLED
    assert not p.alive
    assert cleanup == [5.0]
    assert eng.now == 5.0  # the 100s wakeup was cancelled


def test_kill_is_idempotent():
    eng = Engine()

    def body():
        yield Timeout(10.0)

    p = SimProcess(eng, body())
    eng.schedule(1.0, p.kill)
    eng.schedule(2.0, p.kill)
    eng.run()
    assert p.state is ProcessState.KILLED


def test_kill_while_waiting_on_future_ignores_later_resolution():
    eng = Engine()
    fut = Future(eng)
    resumed = []

    def body():
        value = yield fut
        resumed.append(value)

    p = SimProcess(eng, body())
    eng.schedule(1.0, p.kill)
    eng.schedule(2.0, fut.resolve, "late")
    eng.run()
    assert resumed == []
    assert p.state is ProcessState.KILLED


def test_all_of_waits_for_every_future():
    eng = Engine()
    futs = [Future(eng) for _ in range(3)]
    combined = all_of(eng, futs)
    got = []

    def body():
        values = yield combined
        got.append((eng.now, values))

    SimProcess(eng, body())
    eng.schedule(1.0, futs[1].resolve, "b")
    eng.schedule(2.0, futs[0].resolve, "a")
    eng.schedule(3.0, futs[2].resolve, "c")
    eng.run()
    assert got == [(3.0, ["a", "b", "c"])]


def test_all_of_empty_resolves_immediately():
    eng = Engine()
    combined = all_of(eng, [])
    assert combined.resolved
    assert combined.value == []


def test_two_processes_interleave_deterministically():
    eng = Engine()
    trace = []

    def body(name, dt):
        for _ in range(3):
            trace.append((eng.now, name))
            yield Timeout(dt)

    SimProcess(eng, body("a", 1.0), name="a")
    SimProcess(eng, body("b", 1.5), name="b")
    eng.run()
    assert trace == [
        (0.0, "a"), (0.0, "b"),
        (1.0, "a"), (1.5, "b"),
        (2.0, "a"), (3.0, "b"),
    ]

"""Property tests for the event engine's ordering guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine


@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=100.0,
                                    allow_nan=False),
                          st.integers(min_value=0, max_value=3)),
                min_size=1, max_size=60))
@settings(max_examples=150)
def test_events_fire_in_time_priority_insertion_order(events):
    eng = Engine()
    fired = []
    for seq, (t, prio) in enumerate(events):
        eng.schedule_at(t, fired.append, (t, prio, seq), priority=prio)
    eng.run()
    assert fired == sorted(fired)  # lexicographic == (time, prio, seq)
    assert len(fired) == len(events)
    assert eng.now == max(t for t, _ in events)


@given(st.lists(st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
                min_size=1, max_size=30),
       st.data())
@settings(max_examples=100)
def test_nested_scheduling_preserves_order(delays, data):
    """Events scheduled from inside handlers still fire in global time
    order."""
    eng = Engine()
    fired = []

    def handler(t):
        fired.append(t)
        extra = data.draw(st.floats(min_value=0.01, max_value=5.0,
                                    allow_nan=False),
                          label="extra-delay")
        eng.schedule(extra, fired.append, t + extra)

    for d in delays:
        eng.schedule(d, handler, d)
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == 2 * len(delays)


@given(st.lists(st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                min_size=2, max_size=40),
       st.data())
@settings(max_examples=100)
def test_cancellation_never_disturbs_survivors(times, data):
    eng = Engine()
    fired = []
    events = [eng.schedule_at(t, fired.append, i)
              for i, t in enumerate(times)]
    to_cancel = data.draw(st.sets(
        st.integers(min_value=0, max_value=len(times) - 1)),
        label="cancel-set")
    for i in to_cancel:
        events[i].cancel()
    eng.run()
    survivors = [i for i in range(len(times)) if i not in to_cancel]
    expected = sorted(survivors, key=lambda i: (times[i], i))
    assert fired == expected

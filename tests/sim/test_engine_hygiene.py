"""Engine edge cases: cancelled-event heap hygiene, same-instant
ordering, past scheduling, and deadlock detection with live processes."""

import pytest

from repro.errors import ClockError, DeadlockError
from repro.sim import (
    Engine,
    Future,
    IntervalTimer,
    PRIORITY_NORMAL,
    PRIORITY_TIMER,
    SimProcess,
    Timeout,
)


# -- cancelled-event heap hygiene ---------------------------------------------

def test_cancel_is_o1_and_counted_exactly():
    eng = Engine()
    events = [eng.schedule(1.0, int) for _ in range(10)]
    assert eng.pending_events() == 10
    for ev in events[:4]:
        ev.cancel()
    assert eng.pending_events() == 6
    # double-cancel must not double-count
    events[0].cancel()
    assert eng.pending_events() == 6


def test_cancel_after_firing_does_not_corrupt_count():
    eng = Engine()
    fired = []
    ev = eng.schedule(1.0, fired.append, "x")
    eng.schedule(2.0, fired.append, "y")
    eng.step()
    assert fired == ["x"]
    ev.cancel()  # too late: already fired, must be a no-op for the count
    assert eng.pending_events() == 1
    eng.run()
    assert fired == ["x", "y"]


def test_heap_compacts_when_cancelled_exceed_half():
    eng = Engine()
    fired = []
    for i in range(100):
        eng.schedule(float(i), fired.append, i)
    doomed = [eng.schedule(float(i) + 0.5, int) for i in range(110)]
    assert len(eng._heap) == 210
    for ev in doomed:
        ev.cancel()
    # once cancelled entries outnumbered live ones the heap was compacted
    # in place (not all 110 corpses can still be queued)
    assert len(eng._heap) < 150
    assert len(eng._heap) - eng._n_cancelled == 100
    assert eng.pending_events() == 100
    eng.run()
    assert fired == list(range(100))


def test_no_compaction_below_min_heap_size():
    """Tiny heaps are not worth compacting; counters must still be exact."""
    eng = Engine()
    events = [eng.schedule(1.0, int) for _ in range(10)]
    for ev in events:
        ev.cancel()
    assert eng.pending_events() == 0
    assert eng.peek_time() is None
    assert eng.step() is False


def test_compaction_during_run_keeps_heap_alias_valid():
    """run() holds a local alias of the heap; a callback that cancels
    enough events to trigger compaction must not strand the loop on a
    stale list object."""
    eng = Engine()
    fired = []
    doomed = [eng.schedule(2.0 + i * 1e-6, int) for i in range(200)]

    def massacre():
        fired.append("massacre")
        for ev in doomed:
            ev.cancel()

    eng.schedule(1.0, massacre)
    eng.schedule(3.0, fired.append, "survivor")
    eng.run()
    assert fired == ["massacre", "survivor"]
    assert eng.pending_events() == 0


def test_cancelled_events_do_not_advance_clock():
    eng = Engine()
    ev = eng.schedule(1.0, int)
    eng.schedule(5.0, int)
    ev.cancel()
    eng.run()
    assert eng.now == 5.0


# -- dispatch/cancel/compaction statistics ------------------------------------

def test_stats_counts_dispatch_cancel_and_compaction():
    eng = Engine()
    for i in range(100):
        eng.schedule(float(i), int)
    doomed = [eng.schedule(float(i) + 0.5, int) for i in range(110)]
    for ev in doomed:
        ev.cancel()
    eng.run()
    stats = eng.stats()
    assert stats["dispatched"] == 100
    assert stats["cancelled"] == 110
    assert stats["compactions"] >= 1
    assert stats["pending"] == 0


def test_stats_accumulate_across_stop_and_resume():
    """The fault driver stops and resumes one engine per life; counters
    must span the whole engine lifetime, not reset at stop()."""
    eng = Engine()
    eng.schedule(1.0, eng.stop)
    eng.schedule(2.0, int)
    eng.run()
    first = eng.stats()["dispatched"]
    assert first == 1
    eng.run()
    assert eng.stats()["dispatched"] == 2


def test_reset_stats_zeroes_counters_but_not_heap_bookkeeping():
    eng = Engine()
    live = eng.schedule(1.0, int)
    doomed = eng.schedule(2.0, int)
    doomed.cancel()
    eng.step()
    assert eng.stats() == {"dispatched": 1, "cancelled": 1,
                           "compactions": 0, "pending": 0}
    eng.reset_stats()
    stats = eng.stats()
    assert stats["dispatched"] == 0
    assert stats["cancelled"] == 0
    assert stats["compactions"] == 0
    # the live-heap corpse count is bookkeeping, not a statistic: the
    # cancelled entry is still queued and pending_events must stay exact
    assert eng.pending_events() == 0
    assert not live.cancelled
    assert eng.step() is False


def test_reset_stats_between_runs_gives_clean_second_run():
    eng = Engine()
    eng.schedule(1.0, int)
    eng.schedule(2.0, int)
    eng.run()
    eng.reset_stats()
    eng.schedule(1.0, int)
    eng.run()
    assert eng.stats()["dispatched"] == 1


def test_step_counts_toward_dispatched():
    eng = Engine()
    eng.schedule(1.0, int)
    eng.schedule(2.0, int)
    assert eng.step() is True
    assert eng.stats()["dispatched"] == 1
    eng.run()
    assert eng.stats()["dispatched"] == 2


def test_publish_metrics_exports_engine_gauges():
    from repro.obs import MetricsRegistry

    eng = Engine()
    eng.schedule(1.0, int)
    ev = eng.schedule(2.0, int)
    ev.cancel()
    eng.run()
    reg = MetricsRegistry()
    eng.publish_metrics(reg)
    snap = reg.snapshot()
    assert snap["sim.engine.dispatched"]["value"] == 1
    assert snap["sim.engine.cancelled"]["value"] == 1
    assert snap["sim.engine.pending"]["value"] == 0


# -- same-instant ordering -----------------------------------------------------

def test_timer_beats_wakeup_at_same_instant():
    """The paper's alarm-vs-resume race: a timeslice alarm expiring at
    the exact instant a process resumes must run first, so pages written
    before the boundary land in the finished slice."""
    eng = Engine()
    order = []

    def body():
        yield Timeout(1.0)
        order.append("process-resumed")

    SimProcess(eng, body(), name="app")
    IntervalTimer(eng, 1.0, lambda i: order.append(f"alarm-{i}"))
    eng.run(until=1.0)
    assert order == ["alarm-0", "process-resumed"]


def test_future_wakeup_ordering_with_timer_at_same_instant():
    eng = Engine()
    order = []
    fut = Future(eng, label="gate")

    def body():
        yield fut
        order.append("woken")

    SimProcess(eng, body(), name="waiter")
    eng.schedule(1.0, fut.resolve, None, priority=PRIORITY_NORMAL)
    IntervalTimer(eng, 1.0, lambda i: order.append("alarm"))
    eng.run(until=1.5)
    assert order == ["alarm", "woken"]


def test_equal_priority_same_instant_is_fifo():
    eng = Engine()
    order = []
    for i in range(20):
        eng.schedule(1.0, order.append, i,
                     priority=PRIORITY_TIMER if i % 2 else PRIORITY_TIMER)
    eng.run()
    assert order == list(range(20))


# -- past scheduling ----------------------------------------------------------

def test_schedule_at_past_raises_clock_error():
    eng = Engine(start_time=10.0)
    with pytest.raises(ClockError):
        eng.schedule_at(9.999999, int)


def test_schedule_negative_delay_raises_clock_error():
    eng = Engine()
    eng.schedule(1.0, int)
    eng.run()
    with pytest.raises(ClockError):
        eng.schedule(-0.5, int)


def test_schedule_at_exactly_now_is_allowed():
    eng = Engine(start_time=3.0)
    fired = []
    eng.schedule_at(3.0, fired.append, "now")
    eng.run()
    assert fired == ["now"]
    assert eng.now == 3.0


# -- deadlock detection --------------------------------------------------------

def test_deadlock_reports_live_process_count():
    eng = Engine()

    def stuck():
        yield Future(eng, label="never")

    SimProcess(eng, stuck(), name="a")
    SimProcess(eng, stuck(), name="b")
    with pytest.raises(DeadlockError, match="2 process"):
        eng.run(detect_deadlock=True)


def test_killed_process_is_not_a_deadlock():
    eng = Engine()

    def stuck():
        yield Future(eng, label="never")

    proc = SimProcess(eng, stuck(), name="victim")
    eng.schedule(1.0, proc.kill)
    eng.run(detect_deadlock=True)  # must not raise
    assert not proc.alive


def test_deadlock_not_raised_when_events_remain_past_until():
    """run(until=...) leaving events queued is not a drained queue."""
    eng = Engine()

    def body():
        yield Timeout(10.0)

    SimProcess(eng, body(), name="sleeper")
    eng.run(until=1.0, detect_deadlock=True)  # wakeup still queued
    eng.run(detect_deadlock=True)             # finishes cleanly

"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import ClockError, DeadlockError
from repro.sim import Engine, PRIORITY_LATE, PRIORITY_NORMAL, PRIORITY_TIMER, SimProcess, Timeout


def test_clock_starts_at_zero():
    eng = Engine()
    assert eng.now == 0.0


def test_clock_custom_start():
    eng = Engine(start_time=5.0)
    assert eng.now == 5.0


def test_schedule_and_run_order():
    eng = Engine()
    order = []
    eng.schedule(2.0, order.append, "b")
    eng.schedule(1.0, order.append, "a")
    eng.schedule(3.0, order.append, "c")
    eng.run()
    assert order == ["a", "b", "c"]
    assert eng.now == 3.0


def test_same_time_priority_ordering():
    eng = Engine()
    order = []
    eng.schedule(1.0, order.append, "normal", priority=PRIORITY_NORMAL)
    eng.schedule(1.0, order.append, "timer", priority=PRIORITY_TIMER)
    eng.schedule(1.0, order.append, "late", priority=PRIORITY_LATE)
    eng.run()
    assert order == ["timer", "normal", "late"]


def test_same_time_same_priority_fifo():
    eng = Engine()
    order = []
    for i in range(10):
        eng.schedule(1.0, order.append, i)
    eng.run()
    assert order == list(range(10))


def test_schedule_in_past_raises():
    eng = Engine()
    eng.schedule(1.0, lambda: None)
    eng.run()
    with pytest.raises(ClockError):
        eng.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    eng = Engine()
    fired = []
    ev = eng.schedule(1.0, fired.append, "x")
    ev.cancel()
    eng.run()
    assert fired == []


def test_run_until_stops_before_later_events():
    eng = Engine()
    fired = []
    eng.schedule(1.0, fired.append, "early")
    eng.schedule(10.0, fired.append, "late")
    eng.run(until=5.0)
    assert fired == ["early"]
    assert eng.now == 5.0  # clock advanced to `until`
    eng.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_with_empty_queue():
    eng = Engine()
    eng.run(until=7.5)
    assert eng.now == 7.5


def test_events_scheduled_during_run_fire():
    eng = Engine()
    order = []

    def outer():
        order.append("outer")
        eng.schedule(1.0, order.append, "inner")

    eng.schedule(1.0, outer)
    eng.run()
    assert order == ["outer", "inner"]
    assert eng.now == 2.0


def test_step_returns_false_on_empty_queue():
    eng = Engine()
    assert eng.step() is False
    eng.schedule(1.0, lambda: None)
    assert eng.step() is True
    assert eng.step() is False


def test_pending_events_counts_only_live():
    eng = Engine()
    ev1 = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    assert eng.pending_events() == 2
    ev1.cancel()
    assert eng.pending_events() == 1


def test_peek_time_skips_cancelled():
    eng = Engine()
    ev = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    ev.cancel()
    assert eng.peek_time() == 2.0


def test_deadlock_detection():
    eng = Engine()

    def body():
        from repro.sim import Future
        yield Future(eng, label="never")

    SimProcess(eng, body(), name="stuck")
    with pytest.raises(DeadlockError):
        eng.run(detect_deadlock=True)


def test_no_deadlock_when_processes_finish():
    eng = Engine()

    def body():
        yield Timeout(1.0)

    SimProcess(eng, body(), name="ok")
    eng.run(detect_deadlock=True)  # should not raise


def test_stop_returns_midrun_and_preserves_queue():
    eng = Engine()
    fired = []
    eng.schedule(1.0, lambda: fired.append(1))
    eng.schedule(2.0, lambda: (fired.append(2), eng.stop()))
    eng.schedule(3.0, lambda: fired.append(3))
    eng.run(until=10.0)
    assert fired == [1, 2]
    assert eng.stopped
    assert eng.now == 2.0           # no fast-forward to `until` on stop
    assert eng.pending_events() == 1
    eng.run()                        # resumes from the stopped instant
    assert fired == [1, 2, 3]
    assert not eng.stopped


def test_stop_flag_resets_on_next_run():
    eng = Engine()
    eng.schedule(1.0, eng.stop)
    eng.run()
    assert eng.stopped
    eng.schedule(1.0, lambda: None)
    eng.run(until=5.0)
    assert not eng.stopped
    assert eng.now == 5.0

"""Unit tests for named reproducible RNG streams."""

import numpy as np

from repro.sim import RngStreams


def test_same_seed_same_name_same_draws():
    a = RngStreams(7).stream("x")
    b = RngStreams(7).stream("x")
    assert np.array_equal(a.random(16), b.random(16))


def test_different_names_independent():
    s = RngStreams(7)
    a = s.stream("a").random(16)
    b = s.stream("b").random(16)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngStreams(1).stream("x").random(16)
    b = RngStreams(2).stream("x").random(16)
    assert not np.array_equal(a, b)


def test_stream_is_cached_and_stateful():
    s = RngStreams(0)
    g1 = s.stream("x")
    first = g1.random(4)
    g2 = s.stream("x")
    assert g1 is g2
    second = g2.random(4)
    assert not np.array_equal(first, second)  # state advanced


def test_fresh_restarts_from_initial_state():
    s = RngStreams(0)
    initial = s.fresh("x").random(4)
    s.stream("x").random(100)  # advance the cached stream
    again = s.fresh("x").random(4)
    assert np.array_equal(initial, again)


def test_spawn_children_are_independent_of_parent():
    parent = RngStreams(3)
    child = parent.spawn("child")
    a = parent.stream("x").random(8)
    b = child.stream("x").random(8)
    assert not np.array_equal(a, b)


def test_spawn_is_deterministic():
    a = RngStreams(3).spawn("c").stream("x").random(8)
    b = RngStreams(3).spawn("c").stream("x").random(8)
    assert np.array_equal(a, b)


def test_adding_new_stream_does_not_perturb_existing():
    s1 = RngStreams(5)
    draw_before = s1.stream("existing").random(8)

    s2 = RngStreams(5)
    s2.stream("newcomer").random(8)  # a new consumer appears first
    draw_after = s2.stream("existing").random(8)
    assert np.array_equal(draw_before, draw_after)

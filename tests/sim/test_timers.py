"""Unit tests for interval timers (the setitimer model)."""

import pytest

from repro.errors import SignalError
from repro.sim import Engine, IntervalTimer, SimProcess, Timeout


def test_periodic_expiry_times():
    eng = Engine()
    fired = []
    IntervalTimer(eng, 1.0, lambda i: fired.append((eng.now, i)))
    eng.run(until=3.5)
    assert fired == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_start_after_overrides_first_expiry():
    eng = Engine()
    fired = []
    IntervalTimer(eng, 2.0, lambda i: fired.append(eng.now), start_after=0.5)
    eng.run(until=5.0)
    assert fired == [0.5, 2.5, 4.5]


def test_next_expiry_query():
    eng = Engine()
    t = IntervalTimer(eng, 1.0, lambda i: None)
    assert t.next_expiry() == 1.0
    eng.run(until=1.0)
    assert t.next_expiry() == 2.0


def test_cancel_stops_expiries():
    eng = Engine()
    fired = []
    t = IntervalTimer(eng, 1.0, lambda i: fired.append(eng.now))
    eng.schedule(2.5, t.cancel)
    eng.run(until=10.0)
    assert fired == [1.0, 2.0]
    assert t.next_expiry() is None
    assert not t.armed


def test_reset_changes_interval():
    eng = Engine()
    fired = []
    t = IntervalTimer(eng, 1.0, lambda i: fired.append(eng.now))
    eng.schedule(2.0, t.reset, 5.0)
    eng.run(until=10.0)
    assert fired == [1.0, 2.0, 7.0]


def test_nonpositive_interval_rejected():
    eng = Engine()
    with pytest.raises(SignalError):
        IntervalTimer(eng, 0.0, lambda i: None)
    t = IntervalTimer(eng, 1.0, lambda i: None)
    with pytest.raises(SignalError):
        t.reset(-1.0)


def test_expiry_counter_increments():
    eng = Engine()
    t = IntervalTimer(eng, 0.5, lambda i: None)
    eng.run(until=2.0)
    assert t.expiries == 4


def test_timer_fires_before_process_wakeup_at_same_instant():
    """The alarm must observe writes made before the boundary -- the
    ordering the paper's SIGALRM sampling relies on."""
    eng = Engine()
    order = []

    IntervalTimer(eng, 1.0, lambda i: order.append("alarm"))

    def body():
        yield Timeout(1.0)
        order.append("process")

    SimProcess(eng, body())
    eng.run(until=1.0)
    assert order == ["alarm", "process"]


def test_handler_exception_propagates():
    eng = Engine()

    def bad_handler(i):
        raise ValueError("handler blew up")

    IntervalTimer(eng, 1.0, bad_handler)
    with pytest.raises(ValueError):
        eng.run(until=2.0)

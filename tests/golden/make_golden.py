"""Regenerate the golden reference files in this directory.

Run from the repository root after an *intentional* behaviour change:

    PYTHONPATH=src python tests/golden/make_golden.py

The goldens pin down two things end to end: the instrumented IWS/IB
trace of one small synthetic configuration, and the failure records +
metrics of one seeded fault-injection run on it.  Every value is exact
(the simulator is deterministic); the tests assert equality, not
tolerance.
"""

import hashlib
import json
from pathlib import Path

from repro.apps.registry import paper_spec
from repro.apps.synthetic import small_spec
from repro.cluster.experiment import ExperimentConfig, run_experiment
from repro.faults import FaultEvent, FaultKind, FaultPlan, run_with_failures
from repro.obs import Observability, Tracer, strip_wall_times

HERE = Path(__file__).parent

SPEC = small_spec(name="golden", footprint_mb=6, main_mb=3, period=1.0,
                  passes=1.5, comm_mb=0.25, sub_bursts=1)
CONFIG = ExperimentConfig(spec=SPEC, nranks=2, timeslice=0.5,
                          run_duration=8.0)
PLAN = FaultPlan.exponential(mtbf=4.0, nranks=2, horizon=25.0, seed=9)

#: the transport golden: a small 8-rank Sage run whose checkpoints are
#: real scheduled traffic (network transport).  The full event stream
#: is ~1.4 MB, so the golden pins its length and sha256 (canonical
#: JSON, wall times stripped) plus the scalar outcomes.
TRANSPORT_CONFIG = ExperimentConfig(
    spec=paper_spec("sage-50MB"), nranks=8, timeslice=0.5,
    run_duration=6.0, ckpt_transport="network",
    ckpt_interval_slices=2, ckpt_full_every=3)
TRANSPORT_CATEGORIES = frozenset(
    {"timeslice", "net", "checkpoint", "storage"})

#: the corruption golden: the same 8-rank Sage shape, full_every=5 so
#: committed seqs 1..9 share one chain; a bit-flip silently poisons
#: piece 3 of the 5 committed pieces (rank 3, seq 5) and a crash
#: follows.  Pinned: the walk-back (reject 9, 7, 5; recover at 3), the
#: restored run completing, and the sha256 of the full event stream.
CORRUPTION_CONFIG = ExperimentConfig(
    spec=paper_spec("sage-50MB"), nranks=8, timeslice=0.5,
    run_duration=6.0, ckpt_transport="network",
    ckpt_interval_slices=2, ckpt_full_every=5)
CORRUPTION_PLAN = FaultPlan([
    FaultEvent(5.2, FaultKind.FLIP, 3, seq=5),
    FaultEvent(5.6, FaultKind.CRASH, 0)])
CORRUPTION_CATEGORIES = frozenset(
    {"timeslice", "checkpoint", "fault", "recovery"})

#: the dcp golden: the corruption scenario replayed with sub-page
#: differential checkpoints -- the bit-flip lands inside a 256-byte
#: block piece, chain verification walks back over block pieces, and
#: the recovered run completes.  Pinned: the walk-back outcome, the
#: victim chain's per-piece kind and size (dcp deltas must stay no
#: larger than their committed page-mode counterparts), and the sha256
#: of the full event stream.
DCP_CONFIG = ExperimentConfig(
    spec=paper_spec("sage-50MB"), nranks=8, timeslice=0.5,
    run_duration=6.0, ckpt_transport="network",
    ckpt_interval_slices=2, ckpt_full_every=5,
    ckpt_mode="dcp", dcp_block_size=256)


def canonical_events(tracer: Tracer) -> str:
    """The comparable stream: wall times stripped, keys sorted."""
    return json.dumps(strip_wall_times(tracer.events), sort_keys=True)


def trace_payload() -> dict:
    result = run_experiment(CONFIG)
    return {
        "final_time": result.final_time,
        "init_end_time": result.init_end_time,
        "iterations": result.iterations,
        "ranks": {
            str(rank): [
                {"index": r.index, "t_start": r.t_start, "t_end": r.t_end,
                 "iws_bytes": r.iws_bytes, "footprint_bytes": r.footprint_bytes,
                 "faults": r.faults, "received_bytes": r.received_bytes}
                for r in log.records
            ]
            for rank, log in sorted(result.logs.items())
        },
    }


def faults_payload() -> dict:
    res = run_with_failures(CONFIG, PLAN, interval_slices=2, full_every=3)
    m = res.metrics
    return {
        "planned_events": [e.as_dict() for e in PLAN],
        "final_time": res.final_time,
        "n_lives": len(res.lives),
        "failures": [
            {"time": r.time, "kind": r.kind, "victims": list(r.victims),
             "recovered_seq": r.recovered_seq,
             "recovery_life": r.recovery_life, "lost_work": r.lost_work,
             "restore_time": r.restore_time, "downtime": r.downtime,
             "restarted_at": r.restarted_at}
            for r in res.failures
        ],
        "metrics": {"wall_time": m.wall_time, "n_failures": m.n_failures,
                    "total_lost_work": m.total_lost_work,
                    "total_downtime": m.total_downtime,
                    "total_restore_time": m.total_restore_time,
                    "from_scratch": m.from_scratch,
                    "availability": m.availability,
                    "efficiency": m.efficiency},
    }


def transport_payload() -> dict:
    tracer = Tracer(wall_clock=None, categories=TRANSPORT_CATEGORIES)
    result = run_experiment(TRANSPORT_CONFIG,
                            obs=Observability(tracer=tracer))
    canon = canonical_events(tracer)
    stats = result.transport_stats
    verdict = result.measured_feasibility()
    return {
        "app": TRANSPORT_CONFIG.spec.name,
        "nranks": TRANSPORT_CONFIG.nranks,
        "final_time": result.final_time,
        "ckpt_commits": result.ckpt_commits,
        "n_events": len(tracer.events),
        "events_sha256": hashlib.sha256(canon.encode()).hexdigest(),
        "transport": {
            "mode": stats.mode,
            "pieces": stats.pieces,
            "frames": stats.frames,
            "bytes_submitted": stats.bytes_submitted,
            "bytes_drained": stats.bytes_drained,
            "peak_queue_bytes": stats.peak_queue_bytes,
            "stalls": stats.stalls,
            "stall_time": stats.stall_time,
            "busy_time": stats.busy_time,
            "achieved_bandwidth": stats.achieved_bandwidth,
            "contention_delay": stats.contention_delay,
            "contended_messages": stats.contended_messages,
        },
        "measured": {
            "fraction_of_sustainable": verdict.fraction_of_sustainable,
            "keeping_up": verdict.keeping_up,
        },
    }


def corruption_payload() -> dict:
    tracer = Tracer(wall_clock=None, categories=CORRUPTION_CATEGORIES)
    res = run_with_failures(CORRUPTION_CONFIG, CORRUPTION_PLAN,
                            interval_slices=2, full_every=5,
                            ckpt_transport="network",
                            obs=Observability(tracer=tracer))
    canon = canonical_events(tracer)
    m = res.metrics
    rec = res.failures[0]
    return {
        "app": CORRUPTION_CONFIG.spec.name,
        "nranks": CORRUPTION_CONFIG.nranks,
        "planned_events": [e.as_dict() for e in CORRUPTION_PLAN],
        "final_time": res.final_time,
        "n_lives": len(res.lives),
        "committed_at_crash": [g.seq for g in res.lives[0].committed],
        "failure": {
            "time": rec.time, "kind": rec.kind,
            "victims": list(rec.victims),
            "recovered_seq": rec.recovered_seq,
            "recovery_life": rec.recovery_life,
            "lost_work": rec.lost_work,
            "restore_time": rec.restore_time,
            "downtime": rec.downtime,
            "restarted_at": rec.restarted_at,
        },
        "corruptions": [
            {"detected_at": c.detected_at, "life": c.life, "rank": c.rank,
             "seq": c.seq, "reason": c.reason,
             "rejected_seq": c.rejected_seq}
            for c in res.corruptions
        ],
        "metrics": {"wall_time": m.wall_time,
                    "availability": m.availability,
                    "corruptions_detected": m.corruptions_detected,
                    "integrity_walkbacks": m.integrity_walkbacks},
        "final_iterations": res.lives[-1].iterations,
        "n_events": len(tracer.events),
        "events_sha256": hashlib.sha256(canon.encode()).hexdigest(),
    }


def dcp_payload() -> dict:
    tracer = Tracer(wall_clock=None, categories=CORRUPTION_CATEGORIES)
    res = run_with_failures(DCP_CONFIG, CORRUPTION_PLAN,
                            interval_slices=2, full_every=5,
                            ckpt_transport="network",
                            obs=Observability(tracer=tracer))
    canon = canonical_events(tracer)
    m = res.metrics
    rec = res.failures[0]
    victim = next(e for e in CORRUPTION_PLAN if e.seq is not None).rank
    store = res.lives[0].store
    return {
        "app": DCP_CONFIG.spec.name,
        "nranks": DCP_CONFIG.nranks,
        "block_size": DCP_CONFIG.dcp_block_size,
        "planned_events": [e.as_dict() for e in CORRUPTION_PLAN],
        "final_time": res.final_time,
        "n_lives": len(res.lives),
        "committed_at_crash": [g.seq for g in res.lives[0].committed],
        "victim_chain": [
            {"seq": o.seq, "kind": o.kind, "nbytes": o.nbytes}
            for o in store.pieces(victim)
        ],
        "failure": {
            "time": rec.time, "kind": rec.kind,
            "victims": list(rec.victims),
            "recovered_seq": rec.recovered_seq,
            "recovery_life": rec.recovery_life,
            "lost_work": rec.lost_work,
            "restore_time": rec.restore_time,
            "downtime": rec.downtime,
            "restarted_at": rec.restarted_at,
        },
        "corruptions": [
            {"detected_at": c.detected_at, "life": c.life, "rank": c.rank,
             "seq": c.seq, "reason": c.reason,
             "rejected_seq": c.rejected_seq}
            for c in res.corruptions
        ],
        "metrics": {"wall_time": m.wall_time,
                    "availability": m.availability,
                    "corruptions_detected": m.corruptions_detected,
                    "integrity_walkbacks": m.integrity_walkbacks},
        "final_iterations": res.lives[-1].iterations,
        "n_events": len(tracer.events),
        "events_sha256": hashlib.sha256(canon.encode()).hexdigest(),
    }


def main() -> None:
    for name, payload in (("golden_trace.json", trace_payload()),
                          ("golden_faults.json", faults_payload()),
                          ("golden_transport.json", transport_payload()),
                          ("golden_corruption.json", corruption_payload()),
                          ("golden_dcp.json", dcp_payload())):
        path = HERE / name
        path.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()

"""Golden-trace regression: the simulator's output is pinned exactly.

The committed JSON files are bit-exact references (the simulator is
deterministic; no tolerances).  If an intentional change shifts them,
regenerate with ``PYTHONPATH=src python tests/golden/make_golden.py``
and review the diff -- an *unintentional* shift here means the physics
of the reproduction changed.
"""

import json
from pathlib import Path

from repro.obs import Observability, Tracer
from repro.cluster.experiment import run_experiment
from repro.faults import run_with_failures
from tests.golden.make_golden import (CORRUPTION_CATEGORIES,
                                      CORRUPTION_PLAN, DCP_CONFIG,
                                      TRANSPORT_CATEGORIES,
                                      TRANSPORT_CONFIG, canonical_events,
                                      corruption_payload, dcp_payload,
                                      faults_payload, trace_payload,
                                      transport_payload)

HERE = Path(__file__).parent


def load(name):
    return json.loads((HERE / name).read_text())


def test_trace_matches_golden_exactly():
    golden = load("golden_trace.json")
    current = json.loads(json.dumps(trace_payload()))  # normalize types
    assert current["final_time"] == golden["final_time"]
    assert current["iterations"] == golden["iterations"]
    assert current["init_end_time"] == golden["init_end_time"]
    assert sorted(current["ranks"]) == sorted(golden["ranks"])
    for rank, records in golden["ranks"].items():
        got = current["ranks"][rank]
        assert len(got) == len(records), f"rank {rank} slice count"
        for i, (g, w) in enumerate(zip(got, records)):
            assert g == w, f"rank {rank} slice {i}"


def test_fault_run_matches_golden_exactly():
    golden = load("golden_faults.json")
    current = json.loads(json.dumps(faults_payload()))
    assert current["planned_events"] == golden["planned_events"]
    assert current["n_lives"] == golden["n_lives"]
    assert current["final_time"] == golden["final_time"]
    assert len(current["failures"]) == len(golden["failures"])
    for i, (g, w) in enumerate(zip(current["failures"],
                                   golden["failures"])):
        assert g == w, f"failure {i}"
    assert current["metrics"] == golden["metrics"]


def test_transport_run_matches_golden_exactly():
    golden = load("golden_transport.json")
    current = json.loads(json.dumps(transport_payload()))
    assert current == golden


def test_transport_run_is_deterministic_byte_for_byte():
    # two same-seed runs, compared as exported bytes after stripping
    # wall times (wall_clock=None means there are none to begin with,
    # so the canonical stream IS the exported stream)
    streams = []
    for _ in range(2):
        tracer = Tracer(wall_clock=None, categories=TRANSPORT_CATEGORIES)
        run_experiment(TRANSPORT_CONFIG, obs=Observability(tracer=tracer))
        streams.append(canonical_events(tracer).encode())
    assert streams[0] == streams[1]


def test_golden_transport_actually_measures():
    # guard against the golden being regenerated into a trivial run
    golden = load("golden_transport.json")
    t = golden["transport"]
    assert golden["nranks"] == 8 and golden["app"].startswith("sage")
    assert golden["ckpt_commits"] > 0
    assert t["mode"] == "network"
    assert t["frames"] > t["pieces"] > 0       # real framed traffic
    assert t["bytes_drained"] == t["bytes_submitted"] > 0
    assert 0.0 < t["achieved_bandwidth"] <= 320 * 2**20  # disk-bound
    assert 0.0 < golden["measured"]["fraction_of_sustainable"] <= 1.0


def test_corruption_recovery_matches_golden_exactly():
    golden = load("golden_corruption.json")
    current = json.loads(json.dumps(corruption_payload()))
    assert current == golden


def test_golden_corruption_actually_walks_back():
    # guard against the golden being regenerated into a trivial run:
    # the crash must see five committed pieces, the silent flip must be
    # piece 3 of them, and recovery must walk back past it and finish
    golden = load("golden_corruption.json")
    assert golden["nranks"] == 8 and golden["app"].startswith("sage")
    assert golden["committed_at_crash"] == [1, 3, 5, 7, 9]
    assert golden["failure"]["recovered_seq"] == 3
    assert [c["rejected_seq"] for c in golden["corruptions"]] == [9, 7, 5]
    assert all(c["reason"] == "digest-mismatch" and c["rank"] == 3
               and c["seq"] == 5 for c in golden["corruptions"])
    assert golden["metrics"]["corruptions_detected"] == 3
    assert golden["metrics"]["integrity_walkbacks"] == 3
    assert golden["n_lives"] == 2 and golden["final_iterations"] > 0
    assert golden["n_events"] > 500
    assert len(golden["events_sha256"]) == 64


def test_dcp_recovery_matches_golden_exactly():
    golden = load("golden_dcp.json")
    current = json.loads(json.dumps(dcp_payload()))
    assert current == golden


def test_golden_dcp_actually_walks_back_block_pieces():
    # guard against the golden being regenerated into a trivial run:
    # the chain must really be block-granular, the flip must hit a dcp
    # piece, and recovery must walk back over block pieces and finish
    golden = load("golden_dcp.json")
    assert golden["nranks"] == 8 and golden["app"].startswith("sage")
    assert golden["block_size"] == 256
    assert golden["committed_at_crash"] == [1, 3, 5, 7, 9]
    chain = golden["victim_chain"]
    assert [p["kind"] for p in chain] == ["full", "dcp", "dcp", "dcp",
                                          "dcp"]
    full = chain[0]["nbytes"]
    assert all(0 < p["nbytes"] < full for p in chain[1:])
    assert golden["failure"]["recovered_seq"] == 3
    assert [c["rejected_seq"] for c in golden["corruptions"]] == [9, 7, 5]
    assert all(c["reason"] == "digest-mismatch" for c in
               golden["corruptions"])
    assert golden["n_lives"] == 2 and golden["final_iterations"] > 0
    assert len(golden["events_sha256"]) == 64


def test_dcp_corruption_run_is_deterministic_byte_for_byte():
    streams = []
    for _ in range(2):
        tracer = Tracer(wall_clock=None, categories=CORRUPTION_CATEGORIES)
        run_with_failures(DCP_CONFIG, CORRUPTION_PLAN, interval_slices=2,
                          full_every=5, ckpt_transport="network",
                          obs=Observability(tracer=tracer))
        streams.append(canonical_events(tracer).encode())
    assert streams[0] == streams[1]


def test_golden_fault_run_actually_recovers():
    # guard against the golden being regenerated into a trivial run
    golden = load("golden_faults.json")
    assert len(golden["failures"]) >= 2
    assert golden["n_lives"] == len(golden["failures"]) + 1
    assert golden["metrics"]["availability"] < 1.0

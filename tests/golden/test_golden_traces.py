"""Golden-trace regression: the simulator's output is pinned exactly.

The committed JSON files are bit-exact references (the simulator is
deterministic; no tolerances).  If an intentional change shifts them,
regenerate with ``PYTHONPATH=src python tests/golden/make_golden.py``
and review the diff -- an *unintentional* shift here means the physics
of the reproduction changed.
"""

import json
from pathlib import Path

from tests.golden.make_golden import faults_payload, trace_payload

HERE = Path(__file__).parent


def load(name):
    return json.loads((HERE / name).read_text())


def test_trace_matches_golden_exactly():
    golden = load("golden_trace.json")
    current = json.loads(json.dumps(trace_payload()))  # normalize types
    assert current["final_time"] == golden["final_time"]
    assert current["iterations"] == golden["iterations"]
    assert current["init_end_time"] == golden["init_end_time"]
    assert sorted(current["ranks"]) == sorted(golden["ranks"])
    for rank, records in golden["ranks"].items():
        got = current["ranks"][rank]
        assert len(got) == len(records), f"rank {rank} slice count"
        for i, (g, w) in enumerate(zip(got, records)):
            assert g == w, f"rank {rank} slice {i}"


def test_fault_run_matches_golden_exactly():
    golden = load("golden_faults.json")
    current = json.loads(json.dumps(faults_payload()))
    assert current["planned_events"] == golden["planned_events"]
    assert current["n_lives"] == golden["n_lives"]
    assert current["final_time"] == golden["final_time"]
    assert len(current["failures"]) == len(golden["failures"])
    for i, (g, w) in enumerate(zip(current["failures"],
                                   golden["failures"])):
        assert g == w, f"failure {i}"
    assert current["metrics"] == golden["metrics"]


def test_golden_fault_run_actually_recovers():
    # guard against the golden being regenerated into a trivial run
    golden = load("golden_faults.json")
    assert len(golden["failures"]) >= 2
    assert golden["n_lives"] == len(golden["failures"]) + 1
    assert golden["metrics"]["availability"] < 1.0

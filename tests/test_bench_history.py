"""Trajectory-aware bench gating (tools/bench_history.py): record,
median-based check, and the README table generator."""

import importlib.util
import json
from pathlib import Path

import pytest

TOOL = Path(__file__).resolve().parent.parent / "tools" / "bench_history.py"


@pytest.fixture(scope="module")
def bh():
    spec = importlib.util.spec_from_file_location("bench_history", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _bench_record(run_events=400_000, fig5=2.0, quick=True):
    return {
        "quick": quick,
        "engine": {"run_events_per_s": run_events,
                   "schedule_events_per_s": 300_000,
                   "churn_events_per_s": 200_000},
        "sweep": {"serial_cold_s": 0.2, "parallel_cold_s": 0.25,
                  "warm_cache_s": 0.1, "bit_identical_across_modes": True},
        "fig5": {"row_s": fig5},
        "scale": {"row_s": 3.0, "per_rank_throughput_gain": 0.8},
    }


def _write(tmp_path, name, data):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return path


def test_flatten_extracts_only_gated_metrics(bh):
    flat = bh.flatten(_bench_record())
    assert flat["engine.run_events_per_s"] == 400_000
    assert flat["fig5.row_s"] == 2.0
    assert "sweep.bit_identical_across_modes" not in flat


def test_record_appends_history_lines(bh, tmp_path, capsys):
    hist = tmp_path / "h.jsonl"
    current = _write(tmp_path, "bench.json", _bench_record())
    for label in ("PR A", "PR B"):
        assert bh.main(["record", str(current), "--label", label,
                        "--commit", "abc1234", "--notes", "n",
                        "--history", str(hist)]) == 0
    entries = bh.load_history(hist)
    assert [e["label"] for e in entries] == ["PR A", "PR B"]
    assert entries[0]["commit"] == "abc1234"
    assert entries[0]["quick"] is True
    capsys.readouterr()


def test_check_passes_against_median_and_fails_on_regression(
        bh, tmp_path, capsys):
    hist = tmp_path / "h.jsonl"
    # history medians: run_events = 400k (3 entries: 380k, 400k, 420k)
    for rate in (380_000, 400_000, 420_000):
        current = _write(tmp_path, "r.json", _bench_record(run_events=rate))
        bh.main(["record", str(current), "--label", "x",
                 "--history", str(hist)])
    ok = _write(tmp_path, "ok.json", _bench_record(run_events=350_000))
    assert bh.main(["check", str(ok), "--history", str(hist)]) == 0
    bad = _write(tmp_path, "bad.json", _bench_record(run_events=100_000))
    assert bh.main(["check", str(bad), "--history", str(hist)]) == 1
    err = capsys.readouterr().err
    assert "engine.run_events_per_s regressed" in err


def test_check_ignores_other_mode_entries(bh, tmp_path, capsys):
    hist = tmp_path / "h.jsonl"
    full = _write(tmp_path, "full.json",
                  _bench_record(run_events=1_000_000, quick=False))
    bh.main(["record", str(full), "--label", "full", "--history", str(hist)])
    # a quick record 10x slower than the full entry still passes: no
    # same-mode history to gate against
    quick = _write(tmp_path, "quick.json",
                   _bench_record(run_events=100_000, quick=True))
    assert bh.main(["check", str(quick), "--history", str(hist)]) == 0
    assert "no same-mode" in capsys.readouterr().out


def test_check_empty_history_warns_and_passes(bh, tmp_path, capsys):
    current = _write(tmp_path, "c.json", _bench_record())
    assert bh.main(["check", str(current),
                    "--history", str(tmp_path / "none.jsonl")]) == 0
    capsys.readouterr()


def test_check_missing_metric_fails(bh, tmp_path, capsys):
    hist = tmp_path / "h.jsonl"
    current = _write(tmp_path, "c.json", _bench_record())
    bh.main(["record", str(current), "--label", "x", "--history", str(hist)])
    partial = dict(_bench_record())
    del partial["fig5"]
    cur = _write(tmp_path, "partial.json", partial)
    assert bh.main(["check", str(cur), "--history", str(hist)]) == 1
    assert "missing from current record" in capsys.readouterr().err


def test_corrupt_history_exits_two(bh, tmp_path, capsys):
    hist = tmp_path / "h.jsonl"
    hist.write_text("{not json\n")
    current = _write(tmp_path, "c.json", _bench_record())
    assert bh.main(["check", str(current), "--history", str(hist)]) == 2
    assert "bad history line" in capsys.readouterr().err


def test_table_renders_and_rewrites_markers(bh, tmp_path, capsys):
    hist = tmp_path / "h.jsonl"
    current = _write(tmp_path, "c.json", _bench_record())
    bh.main(["record", str(current), "--label", "PR X",
             "--commit", "cafe123", "--history", str(hist)])
    assert bh.main(["table", "--history", str(hist)]) == 0
    out = capsys.readouterr().out
    assert "| `cafe123` PR X |" in out
    assert "400k" in out

    readme = tmp_path / "README.md"
    readme.write_text("before\n<!-- bench-history:begin -->\nSTALE\n"
                      "<!-- bench-history:end -->\nafter\n")
    assert bh.main(["table", "--history", str(hist),
                    "--write", str(readme)]) == 0
    text = readme.read_text()
    assert "STALE" not in text
    assert "PR X" in text
    assert text.startswith("before\n") and text.endswith("after\n")
    capsys.readouterr()

    unmarked = tmp_path / "plain.md"
    unmarked.write_text("no markers here\n")
    assert bh.main(["table", "--history", str(hist),
                    "--write", str(unmarked)]) == 2
    assert "markers" in capsys.readouterr().err


def test_table_empty_history_exits_two(bh, tmp_path, capsys):
    assert bh.main(["table", "--history", str(tmp_path / "no.jsonl")]) == 2
    capsys.readouterr()


def test_committed_history_matches_quick_reference(bh):
    """The seeded history's latest quick entry must agree with the
    committed quick reference perf_gate.py pins CI to."""
    history = bh.load_history(bh.HISTORY_DEFAULT)
    assert history, "benchmarks/perf/BENCH_history.jsonl is missing"
    quick = [e for e in history if e.get("quick")]
    assert quick, "no quick-mode entries in the seeded history"
    ref = json.loads(
        (bh.ROOT / "benchmarks" / "perf"
         / "BENCH_quick_reference.json").read_text())
    expected = bh.flatten(ref)
    assert quick[-1]["metrics"] == expected

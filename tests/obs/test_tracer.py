"""Unit tests for the Chrome-trace tracer."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    DEFAULT_CATEGORIES,
    ENGINE_DISPATCH,
    NULL_TRACER,
    NullTracer,
    Tracer,
    strip_wall_times,
)


# -- the disabled path ---------------------------------------------------------

def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.wants("engine") is False
    NULL_TRACER.instant("x", "engine", 0.0)
    NULL_TRACER.complete("x", "engine", 0.0, 1.0)
    assert isinstance(NULL_TRACER, NullTracer)


def test_null_tracer_has_no_state():
    assert not hasattr(NULL_TRACER, "__dict__")


# -- recording -----------------------------------------------------------------

def test_instant_records_microsecond_timestamps():
    tr = Tracer(wall_clock=None)
    tr.instant("alarm", "timeslice", 1.5, track="rank0", index=3)
    (ev,) = tr.events
    assert ev["ph"] == "i"
    assert ev["ts"] == 1.5e6
    assert ev["args"] == {"index": 3}
    assert ev["s"] == "t"


def test_complete_records_duration():
    tr = Tracer(wall_clock=None)
    tr.complete("disk.write", "storage", 2.0, 0.25, track="disk")
    (ev,) = tr.events
    assert ev["ph"] == "X"
    assert ev["ts"] == 2.0e6
    assert ev["dur"] == 0.25e6


def test_category_filter_drops_at_the_call():
    tr = Tracer(categories={"storage"}, wall_clock=None)
    tr.instant("fault.crash", "fault", 1.0)
    tr.complete("disk.write", "storage", 1.0, 0.1)
    assert len(tr) == 1
    assert tr.wants("storage") and not tr.wants("fault")


def test_engine_dispatch_is_opt_in():
    assert ENGINE_DISPATCH not in DEFAULT_CATEGORIES
    assert not Tracer(wall_clock=None).wants(ENGINE_DISPATCH)
    assert Tracer(categories={ENGINE_DISPATCH},
                  wall_clock=None).wants(ENGINE_DISPATCH)


def test_tracks_get_stable_distinct_tids():
    tr = Tracer(wall_clock=None)
    tr.instant("a", "engine", 0.0, track="x")
    tr.instant("b", "engine", 0.0, track="y")
    tr.instant("c", "engine", 0.0, track="x")
    tids = [ev["tid"] for ev in tr.events]
    assert tids[0] == tids[2] != tids[1]


def test_wall_clock_stamps_args_wall():
    ticks = iter([0.0, 1.0, 3.5])
    tr = Tracer(wall_clock=lambda: next(ticks))
    tr.instant("a", "engine", 0.0)
    tr.instant("b", "engine", 0.0)
    assert tr.events[0]["args"]["wall"] == 1.0
    assert tr.events[1]["args"]["wall"] == 3.5


def test_strip_wall_times_removes_only_wall():
    ticks = iter([0.0, 1.0])
    tr = Tracer(wall_clock=lambda: next(ticks))
    tr.instant("a", "engine", 0.0, index=7)
    stripped = strip_wall_times(tr.events)
    assert stripped[0]["args"] == {"index": 7}
    # the original events are untouched (strip returns copies)
    assert tr.events[0]["args"]["wall"] == 1.0


def test_strip_wall_times_drops_empty_args():
    tr = Tracer()  # real clock: every event carries args.wall
    tr.instant("a", "engine", 0.0)
    stripped = strip_wall_times(tr.events)
    assert "args" not in stripped[0]


# -- export --------------------------------------------------------------------

def test_chrome_export_loads_and_names_tracks(tmp_path):
    tr = Tracer(wall_clock=None)
    tr.complete("life0", "recovery", 0.0, 10.0, track="lives")
    path = tr.export(tmp_path / "trace.json")
    data = json.loads(path.read_text())
    assert data["displayTimeUnit"] == "ms"
    meta = [ev for ev in data["traceEvents"] if ev["ph"] == "M"]
    names = {ev["args"]["name"] for ev in meta}
    assert "repro-sim" in names and "lives" in names


def test_jsonl_export_is_one_event_per_line(tmp_path):
    tr = Tracer(wall_clock=None)
    tr.instant("a", "engine", 0.0)
    tr.instant("b", "engine", 1.0)
    path = tr.export(tmp_path / "trace.jsonl")
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    # process_name + thread_name("sim") metadata, then the two instants
    assert len(lines) == 4
    assert lines[-1]["name"] == "b"


def test_export_to_directory_rejected(tmp_path):
    tr = Tracer(wall_clock=None)
    with pytest.raises(ObservabilityError, match="directory"):
        tr.export(tmp_path)


def test_export_creates_parent_directories(tmp_path):
    tr = Tracer(wall_clock=None)
    path = tr.export(tmp_path / "deep" / "nest" / "trace.json")
    assert path.exists()


def test_deterministic_bytes_without_wall_clock(tmp_path):
    def record(tr):
        tr.instant("alarm", "timeslice", 1.0, track="rank0", index=0)
        tr.complete("disk.write", "storage", 1.5, 0.25, track="disk")

    a, b = Tracer(wall_clock=None), Tracer(wall_clock=None)
    record(a)
    record(b)
    pa = a.export(tmp_path / "a.json")
    pb = b.export(tmp_path / "b.json")
    assert pa.read_bytes() == pb.read_bytes()

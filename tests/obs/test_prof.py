"""Engine profiler: classification, section accounting, and the pinned
attribution contract (event counts are deterministic; wall times are
host measurements and are never compared)."""

import pytest

from repro.cluster.experiment import paper_config, run_experiment
from repro.errors import ObservabilityError
from repro.obs import EngineProfiler, Observability, load_profile, \
    render_profile
from repro.obs.prof import _classify_future, _rank_from_name


class FakeClock:
    """A settable clock so unit tests control every wall gap."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class FakeEngine:
    def __init__(self):
        self.hooks = []

    def add_event_hook(self, hook):
        self.hooks.append(hook)


class FakeEvent:
    def __init__(self, fn, args=()):
        self.fn = fn
        self.args = args


def _plain_event_fn():
    pass


# -- unit: attribution mechanics ----------------------------------------------

def test_setup_gap_then_event_attribution():
    clock = FakeClock()
    prof = EngineProfiler(clock=clock)
    engine = FakeEngine()
    prof.attach(engine)
    (hook,) = engine.hooks
    ev = FakeEvent(_plain_event_fn)
    clock.t = 3.0
    hook(ev)          # construction -> first event is host.setup
    clock.t = 3.5
    hook(ev)          # 0.5s -> the event's own bucket
    profile = prof.profile()
    cats = {(c["subsystem"], c["kind"]): c for c in profile["categories"]}
    assert cats[("host", "setup")]["self_s"] == pytest.approx(3.0)
    # module-fallback classification: tests.* is not a repro subsystem
    assert cats[("host", "_plain_event_fn")]["self_s"] == pytest.approx(0.5)
    assert profile["events"] == 2


def test_section_subtracts_from_enclosing_event_self_time():
    clock = FakeClock()
    prof = EngineProfiler(clock=clock)
    engine = FakeEngine()
    prof.attach(engine)
    (hook,) = engine.hooks
    ev = FakeEvent(_plain_event_fn)
    hook(ev)                      # consume the setup gap (0s)
    clock.t = 1.0
    with prof.section("app.region_alloc", rank=3):
        clock.t = 1.4             # 0.4s of section work
    clock.t = 2.0
    hook(ev)                      # event ran 0..2s, 0.4 of it sectioned
    profile = prof.profile()
    cats = {(c["subsystem"], c["kind"]): c for c in profile["categories"]}
    alloc = cats[("app", "region_alloc")]
    event = cats[("host", "_plain_event_fn")]
    assert alloc["self_s"] == pytest.approx(0.4)
    assert alloc["ranks"] == "r0-63"
    assert event["self_s"] == pytest.approx(1.6)   # 2.0 cum - 0.4 inner
    assert event["cum_s"] == pytest.approx(2.0)
    assert profile["sections"] == 1


def test_nested_sections_charge_inner_to_inner_bucket():
    clock = FakeClock()
    prof = EngineProfiler(clock=clock)
    engine = FakeEngine()
    prof.attach(engine)
    (hook,) = engine.hooks
    hook(FakeEvent(_plain_event_fn))
    with prof.section("app.outer"):
        clock.t = 1.0
        with prof.section("app.inner"):
            clock.t = 1.3
        clock.t = 2.0
    clock.t = 2.0
    hook(FakeEvent(_plain_event_fn))
    cats = {(c["subsystem"], c["kind"]): c for c in prof.profile()["categories"]}
    assert cats[("app", "inner")]["self_s"] == pytest.approx(0.3)
    outer = cats[("app", "outer")]
    assert outer["cum_s"] == pytest.approx(2.0)
    assert outer["self_s"] == pytest.approx(1.7)


def test_rank_group_labels():
    prof = EngineProfiler(rank_group_size=4)
    assert prof._group(None) == "-"
    assert prof._group(0) == "r0-3"
    assert prof._group(3) == "r0-3"
    assert prof._group(4) == "r4-7"
    assert prof._group(130) == "r128-131"
    with pytest.raises(ObservabilityError, match="rank_group_size"):
        EngineProfiler(rank_group_size=0)


def test_rank_from_name_and_future_classification():
    assert _rank_from_name("sage.rank12") == 12
    assert _rank_from_name("ckpt-disk.r7") == 7
    assert _rank_from_name("no-rank-here") is None

    class FakeFuture:
        label = "ckpt-disk.r5.write#3"

    assert _classify_future(FakeFuture()) == ("storage", "sink.write", 5)
    FakeFuture.label = "barrier#2"
    assert _classify_future(FakeFuture()) == ("sim", "future.resolve", None)


# -- artifact loading / rendering ---------------------------------------------

def test_load_profile_rejects_bad_files(tmp_path):
    with pytest.raises(ObservabilityError, match="no profile file"):
        load_profile(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{broken")
    with pytest.raises(ObservabilityError, match="bad profile"):
        load_profile(bad)
    wrong = tmp_path / "wrong.json"
    wrong.write_text('{"schema": "other/1"}')
    with pytest.raises(ObservabilityError, match="not a repro.obs.profile"):
        load_profile(wrong)


def test_render_profile_sort_keys_and_bad_key():
    prof = EngineProfiler(clock=FakeClock())
    text = render_profile(prof.profile())
    assert "no categories" in text
    with pytest.raises(ObservabilityError, match="unknown sort key"):
        render_profile(prof.profile(), by="bogus")


def test_export_round_trips(tmp_path):
    clock = FakeClock()
    prof = EngineProfiler(clock=clock)
    engine = FakeEngine()
    prof.attach(engine)
    clock.t = 1.0
    engine.hooks[0](FakeEvent(_plain_event_fn))
    out = tmp_path / "p.json"
    exported = prof.export(out)
    loaded = load_profile(out)
    assert loaded["schema"] == "repro.obs.profile/1"
    assert loaded["events"] == exported["events"] == 1
    assert "host" in render_profile(loaded)


# -- integration: real runs ---------------------------------------------------

def _profiled_run(app, nranks, **kw):
    prof = EngineProfiler()
    config = paper_config(app, nranks=nranks, **kw)
    run_experiment(config, obs=Observability(profiler=prof))
    return prof.profile()


def test_pinned_attribution_categories_are_separable():
    """The acceptance contract: timer resumes, message delivery, and
    region allocation show up as their own categories, separable from
    the checkpoint work, on a checkpoint-transport run."""
    prof = EngineProfiler()
    config = paper_config("sage-100MB", nranks=4, timeslice=1.0,
                          run_duration=40.0, ckpt_transport="network")
    run_experiment(config, obs=Observability(profiler=prof))
    profile = prof.profile()
    kinds = {(c["subsystem"], c["kind"]) for c in profile["categories"]}
    # skeleton work, each in its own bucket
    assert ("sim", "process.resume") in kinds
    assert ("sim", "timer.epoch") in kinds
    assert ("net", "message.delivery") in kinds
    assert ("app", "region_alloc") in kinds
    # ...separable from the checkpoint pipeline
    assert ("checkpoint", "transport.frame") in kinds
    assert ("storage", "sink.write") in kinds
    assert ("host", "setup") in kinds
    # ranked categories carry a rank-group label
    resume = next(c for c in profile["categories"]
                  if (c["subsystem"], c["kind"]) == ("sim", "process.resume"))
    assert resume["ranks"] == "r0-63"
    assert profile["coverage"] >= 0.95


def test_event_counts_deterministic_across_same_seed_runs():
    a = _profiled_run("lu", 2, run_duration=8.0, timeslice=0.5)
    b = _profiled_run("lu", 2, run_duration=8.0, timeslice=0.5)
    counts = lambda p: sorted(
        (c["subsystem"], c["kind"], c["ranks"], c["count"])
        for c in p["categories"])
    assert counts(a) == counts(b)
    assert a["events"] == b["events"]
    assert a["sections"] == b["sections"]


def test_fig5_64rank_profile_attributes_95_percent():
    """The issue's headline check: profiling the 64-rank fig5 workload
    attributes >= 95% of the measured wall window."""
    profile = _profiled_run("sage-1000MB", 64, timeslice=1.0,
                            run_duration=40.0)
    # thousands of engine events even with same-instant wakes/deliveries
    # coalesced into shared batch events (which roughly halved the count)
    assert profile["events"] > 5_000
    assert profile["coverage"] >= 0.95
    # the categories' self times are what the coverage is made of
    total_self = sum(c["self_s"] for c in profile["categories"])
    assert total_self == pytest.approx(profile["wall_attributed_s"])

"""Unit tests for the metrics registry."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, \
    WindowedSeries


def test_counter_increments_and_rejects_decrease():
    reg = MetricsRegistry()
    c = reg.counter("a.b")
    c.inc()
    c.inc(41)
    assert c.value == 42
    with pytest.raises(ObservabilityError, match="cannot decrease"):
        c.inc(-1)


def test_gauge_last_write_wins():
    g = MetricsRegistry().gauge("x")
    g.set(10)
    g.set(3)
    assert g.value == 3


def test_histogram_streaming_stats():
    h = Histogram("lat")
    for v in (2.0, 8.0, 5.0):
        h.observe(v)
    assert h.count == 3
    assert h.total == 15.0
    assert h.min == 2.0 and h.max == 8.0
    assert h.mean == 5.0
    assert Histogram("empty").mean == 0.0


def test_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("n") is reg.counter("n")
    assert len(reg) == 1


def test_kind_mismatch_rejected():
    reg = MetricsRegistry()
    reg.counter("n")
    with pytest.raises(ObservabilityError, match="already registered"):
        reg.gauge("n")


def test_scoped_view_prefixes_names():
    reg = MetricsRegistry()
    ckpt = reg.scoped("checkpoint")
    ckpt.counter("commits").inc()
    ckpt.scoped("r0").gauge("pending").set(2)
    assert reg.names() == ["checkpoint.commits", "checkpoint.r0.pending"]
    assert reg.counter("checkpoint.commits").value == 1


def test_snapshot_is_sorted_and_json_able():
    reg = MetricsRegistry()
    reg.gauge("z").set(1)
    reg.counter("a").inc(5)
    reg.histogram("m").observe(0.5)
    snap = reg.snapshot()
    assert list(snap) == ["a", "m", "z"]
    assert snap["a"] == {"kind": "counter", "value": 5}
    assert snap["m"]["count"] == 1
    json.dumps(snap)  # must not raise


def test_render_text_one_line_per_metric():
    reg = MetricsRegistry()
    reg.counter("a").inc(7)
    reg.histogram("h").observe(1.0)
    text = reg.render_text()
    lines = text.splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("a") and lines[0].rstrip().endswith("7")
    assert "n=1" in lines[1]


def test_dump_txt_and_json(tmp_path):
    reg = MetricsRegistry()
    reg.counter("a").inc(3)
    txt = reg.dump(tmp_path / "m.txt")
    assert "a" in txt.read_text()
    js = reg.dump(tmp_path / "m.json")
    assert json.loads(js.read_text())["a"]["value"] == 3


def test_dump_to_directory_rejected(tmp_path):
    with pytest.raises(ObservabilityError, match="directory"):
        MetricsRegistry().dump(tmp_path)


def test_contains_and_names():
    reg = MetricsRegistry()
    reg.counter("present")
    assert "present" in reg
    assert "absent" not in reg
    assert reg.names() == ["present"]


# -- histogram quantiles (bounded deterministic reservoir) ---------------------

def test_histogram_quantiles_nearest_rank():
    h = Histogram("lat")
    for v in range(1, 101):          # 1..100
        h.observe(float(v))
    assert h.quantile(0.5) == 50.0
    assert h.p50 == 50.0
    assert h.p95 == 95.0
    assert h.p99 == 99.0
    assert h.quantile(0.0) == 1.0
    assert h.quantile(1.0) == 100.0


def test_histogram_quantile_empty_and_bad_q():
    h = Histogram("empty")
    assert h.quantile(0.5) is None
    assert h.p95 is None
    h.observe(1.0)
    with pytest.raises(ObservabilityError, match="quantile"):
        h.quantile(1.5)
    with pytest.raises(ObservabilityError, match="quantile"):
        h.quantile(-0.1)


def test_histogram_reservoir_decimation_is_deterministic():
    a, b = Histogram("a"), Histogram("b")
    for v in range(5000):
        a.observe(float(v))
        b.observe(float(v))
    # decimation kept the reservoir bounded...
    assert len(a._reservoir) <= 512
    # ...and two identical streams yield identical quantiles
    for q in (0.5, 0.95, 0.99):
        assert a.quantile(q) == b.quantile(q)
    # quantiles stay representative of the full stream
    assert 2000 <= a.p50 <= 3000


def test_snapshot_includes_quantiles():
    reg = MetricsRegistry()
    reg.histogram("h").observe(2.0)
    entry = reg.snapshot()["h"]
    assert entry["p50"] == 2.0
    assert entry["p95"] == 2.0
    assert entry["p99"] == 2.0


def test_gauge_add_and_negative_delta():
    g = MetricsRegistry().gauge("q")
    g.set(10)
    g.add(5)
    g.add(-3)
    assert g.value == 12


# -- windowed series -----------------------------------------------------------

def test_series_records_into_fixed_windows():
    reg = MetricsRegistry()
    s = reg.series("drain", window=1.0)
    s.record(0.2, 10.0)
    s.record(0.9, 30.0)
    s.record(2.5, 7.0)
    assert s.count == 3 and s.total == 47.0
    w = s.windows()
    assert [x["index"] for x in w] == [0, 2]
    assert w[0] == {"index": 0, "t_start": 0.0, "t_end": 1.0,
                    "count": 2, "sum": 40.0, "min": 10.0, "max": 30.0}
    assert w[1]["count"] == 1 and w[1]["sum"] == 7.0


def test_series_capacity_evicts_oldest_windows():
    s = WindowedSeries("s", window=1.0, capacity=3)
    for t in range(6):
        s.record(float(t))
    assert [w["index"] for w in s.windows()] == [3, 4, 5]
    assert s.count == 6                   # lifetime totals survive eviction


def test_series_out_of_order_folds_or_drops():
    s = WindowedSeries("s", window=1.0, capacity=8)
    s.record(0.5, 1.0)
    s.record(2.5, 1.0)
    s.record(0.7, 5.0)                    # retained window: folds
    assert s.windows()[0]["sum"] == 6.0
    evicting = WindowedSeries("e", window=1.0, capacity=2)
    for t in (0.5, 1.5, 2.5):
        evicting.record(t)
    evicting.record(0.6)                  # window 0 evicted: dropped
    assert [w["index"] for w in evicting.windows()] == [1, 2]
    assert evicting.count == 4            # still counted in the totals


def test_series_get_or_create_and_mismatches():
    reg = MetricsRegistry()
    s = reg.series("x", window=1.0)
    assert reg.series("x", window=1.0) is s
    with pytest.raises(ObservabilityError, match="window"):
        reg.series("x", window=2.0)
    reg.counter("c")
    with pytest.raises(ObservabilityError, match="already registered"):
        reg.series("c")
    with pytest.raises(ObservabilityError):
        WindowedSeries("bad", window=0.0)
    with pytest.raises(ObservabilityError):
        WindowedSeries("bad", capacity=0)


def test_series_in_snapshot_and_render_text():
    reg = MetricsRegistry()
    reg.series("s").record(1.5, 2.0)
    snap = reg.snapshot()["s"]
    assert snap["kind"] == "series"
    assert snap["count"] == 1 and snap["sum"] == 2.0
    assert snap["windows"] == 1       # retained-window count, not the data
    assert "s" in reg.render_text()
    json.dumps(reg.snapshot())            # must stay JSON-able


def test_dump_series_jsonl(tmp_path):
    reg = MetricsRegistry()
    reg.series("a").record(0.5, 1.0)
    reg.series("a").record(3.5, 2.0)
    reg.series("b").record(1.5, 9.0)
    path = reg.dump_series(tmp_path / "series.jsonl")
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == 3
    assert lines[0]["series"] == "a" and lines[0]["index"] == 0
    assert lines[2]["series"] == "b" and lines[2]["sum"] == 9.0
    for line in lines:
        assert set(line) == {"series", "window", "index", "t_start",
                             "t_end", "count", "sum", "min", "max"}


def test_scoped_series():
    reg = MetricsRegistry()
    reg.scoped("ckpt").series("drained").record(0.5, 4.0)
    assert reg.names() == ["ckpt.drained"]
    assert reg.series("ckpt.drained").total == 4.0

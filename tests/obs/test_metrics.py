"""Unit tests for the metrics registry."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_increments_and_rejects_decrease():
    reg = MetricsRegistry()
    c = reg.counter("a.b")
    c.inc()
    c.inc(41)
    assert c.value == 42
    with pytest.raises(ObservabilityError, match="cannot decrease"):
        c.inc(-1)


def test_gauge_last_write_wins():
    g = MetricsRegistry().gauge("x")
    g.set(10)
    g.set(3)
    assert g.value == 3


def test_histogram_streaming_stats():
    h = Histogram("lat")
    for v in (2.0, 8.0, 5.0):
        h.observe(v)
    assert h.count == 3
    assert h.total == 15.0
    assert h.min == 2.0 and h.max == 8.0
    assert h.mean == 5.0
    assert Histogram("empty").mean == 0.0


def test_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("n") is reg.counter("n")
    assert len(reg) == 1


def test_kind_mismatch_rejected():
    reg = MetricsRegistry()
    reg.counter("n")
    with pytest.raises(ObservabilityError, match="already registered"):
        reg.gauge("n")


def test_scoped_view_prefixes_names():
    reg = MetricsRegistry()
    ckpt = reg.scoped("checkpoint")
    ckpt.counter("commits").inc()
    ckpt.scoped("r0").gauge("pending").set(2)
    assert reg.names() == ["checkpoint.commits", "checkpoint.r0.pending"]
    assert reg.counter("checkpoint.commits").value == 1


def test_snapshot_is_sorted_and_json_able():
    reg = MetricsRegistry()
    reg.gauge("z").set(1)
    reg.counter("a").inc(5)
    reg.histogram("m").observe(0.5)
    snap = reg.snapshot()
    assert list(snap) == ["a", "m", "z"]
    assert snap["a"] == {"kind": "counter", "value": 5}
    assert snap["m"]["count"] == 1
    json.dumps(snap)  # must not raise


def test_render_text_one_line_per_metric():
    reg = MetricsRegistry()
    reg.counter("a").inc(7)
    reg.histogram("h").observe(1.0)
    text = reg.render_text()
    lines = text.splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("a") and lines[0].rstrip().endswith("7")
    assert "n=1" in lines[1]


def test_dump_txt_and_json(tmp_path):
    reg = MetricsRegistry()
    reg.counter("a").inc(3)
    txt = reg.dump(tmp_path / "m.txt")
    assert "a" in txt.read_text()
    js = reg.dump(tmp_path / "m.json")
    assert json.loads(js.read_text())["a"]["value"] == 3


def test_dump_to_directory_rejected(tmp_path):
    with pytest.raises(ObservabilityError, match="directory"):
        MetricsRegistry().dump(tmp_path)


def test_contains_and_names():
    reg = MetricsRegistry()
    reg.counter("present")
    assert "present" in reg
    assert "absent" not in reg
    assert reg.names() == ["present"]

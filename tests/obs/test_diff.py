"""Cross-run artifact diffing: gated vs informational values, schema
detection, thresholds, and the determinism contract."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.diff import diff_artifacts, load_artifact, render_diff


def _metrics(tmp_path, name, entries):
    path = tmp_path / name
    path.write_text(json.dumps(entries))
    return path


def _snapshot(counter=5, hist_count=3, hist_sum=1.5, series_sum=10.0):
    return {
        "a.counter": {"kind": "counter", "value": counter},
        "a.gauge": {"kind": "gauge", "value": 2},
        "a.hist": {"kind": "histogram", "count": hist_count,
                   "sum": hist_sum, "min": 0.1, "max": 1.0, "mean": 0.5},
        "a.series": {"kind": "series", "window": 1.0, "count": 4,
                     "sum": series_sum, "windows": []},
    }


def _profile(events=10, cat_count=7, self_s=0.5):
    return {
        "schema": "repro.obs.profile/1",
        "wall_total_s": 1.0, "wall_attributed_s": 1.0, "coverage": 1.0,
        "events": events, "sections": 0, "rank_group_size": 64,
        "categories": [{"subsystem": "sim", "kind": "process.resume",
                        "ranks": "r0-63", "count": cat_count,
                        "self_s": self_s, "cum_s": self_s}],
        "subsystems": {},
    }


def test_load_artifact_detects_schemas(tmp_path):
    m = _metrics(tmp_path, "m.json", _snapshot())
    p = _metrics(tmp_path, "p.json", _profile())
    assert load_artifact(m)[0] == "metrics"
    assert load_artifact(p)[0] == "profile"


def test_load_artifact_rejects_bad_input(tmp_path):
    with pytest.raises(ObservabilityError, match="no artifact file"):
        load_artifact(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    with pytest.raises(ObservabilityError, match="bad artifact"):
        load_artifact(bad)
    arr = tmp_path / "arr.json"
    arr.write_text("[1, 2]")
    with pytest.raises(ObservabilityError, match="JSON object"):
        load_artifact(arr)
    other = _metrics(tmp_path, "other.json", {"free": "form"})
    with pytest.raises(ObservabilityError, match="neither"):
        load_artifact(other)


def test_identical_metrics_diff_clean(tmp_path):
    a = _metrics(tmp_path, "a.json", _snapshot())
    b = _metrics(tmp_path, "b.json", _snapshot())
    report = diff_artifacts(a, b)
    assert report["regressions"] == []
    assert report["informational"] == []
    assert "no regressions" in render_diff(report)


def test_counter_change_is_a_regression(tmp_path):
    a = _metrics(tmp_path, "a.json", _snapshot(counter=5))
    b = _metrics(tmp_path, "b.json", _snapshot(counter=6))
    report = diff_artifacts(a, b)
    (reg,) = report["regressions"]
    assert reg["key"] == "a.counter"
    assert reg["rel_change"] == pytest.approx(0.2)
    assert "a.counter: 5 -> 6" in render_diff(report)


def test_threshold_suppresses_small_changes(tmp_path):
    a = _metrics(tmp_path, "a.json", _snapshot(counter=100))
    b = _metrics(tmp_path, "b.json", _snapshot(counter=104))
    assert diff_artifacts(a, b, threshold=0.05)["regressions"] == []
    assert diff_artifacts(a, b, threshold=0.01)["regressions"]


def test_wall_values_informational_unless_strict(tmp_path):
    a = _metrics(tmp_path, "a.json", _snapshot(hist_sum=1.5))
    b = _metrics(tmp_path, "b.json", _snapshot(hist_sum=9.9))
    report = diff_artifacts(a, b)
    assert report["regressions"] == []
    assert any(c["key"] == "a.hist.sum" for c in report["informational"])
    assert "informational" in render_diff(report)
    strict = diff_artifacts(a, b, strict=True)
    assert any(c["key"] == "a.hist.sum" for c in strict["regressions"])
    assert strict["informational"] == []


def test_missing_key_always_reported(tmp_path):
    snap = _snapshot()
    extra = dict(snap)
    extra["only.b"] = {"kind": "counter", "value": 1}
    a = _metrics(tmp_path, "a.json", snap)
    b = _metrics(tmp_path, "b.json", extra)
    (reg,) = diff_artifacts(a, b, threshold=10.0)["regressions"]
    assert reg["key"] == "only.b"
    assert reg["a"] is None and reg["rel_change"] is None


def test_profile_counts_gated_wall_seconds_not(tmp_path):
    a = _metrics(tmp_path, "a.json", _profile(cat_count=7, self_s=0.5))
    b = _metrics(tmp_path, "b.json", _profile(cat_count=8, self_s=0.9))
    report = diff_artifacts(a, b)
    keys = {c["key"] for c in report["regressions"]}
    assert "sim.process.resume.r0-63.count" in keys
    assert all(not k.endswith("self_s") for k in keys)
    info_keys = {c["key"] for c in report["informational"]}
    assert "sim.process.resume.r0-63.self_s" in info_keys


def test_mixed_schemas_raise(tmp_path):
    m = _metrics(tmp_path, "m.json", _snapshot())
    p = _metrics(tmp_path, "p.json", _profile())
    with pytest.raises(ObservabilityError, match="mixed artifact schemas"):
        diff_artifacts(m, p)


def test_zero_baseline_reports_inf(tmp_path):
    a = _metrics(tmp_path, "a.json",
                 {"c": {"kind": "counter", "value": 0}})
    b = _metrics(tmp_path, "b.json",
                 {"c": {"kind": "counter", "value": 3}})
    (reg,) = diff_artifacts(a, b, threshold=100.0)["regressions"]
    assert reg["rel_change"] == float("inf")
    assert "(inf)" in render_diff({**diff_artifacts(a, b)})

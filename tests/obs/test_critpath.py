"""Sim-time critical-path extraction over synthetic traces."""

from repro.obs.critpath import (
    _overlap,
    _union,
    extract_critical_path,
    render_critpath,
)


def _meta(tid, name):
    return {"ph": "M", "name": "thread_name", "tid": tid,
            "args": {"name": name}}


def _instant(tid, t, index):
    return {"ph": "i", "name": "timeslice", "tid": tid, "ts": t * 1e6,
            "args": {"index": index}}


def _span(tid, name, start, dur):
    return {"ph": "X", "name": name, "tid": tid, "ts": start * 1e6,
            "dur": dur * 1e6}


def _base_trace():
    """Two timeslices [0,1) and [1,2) on rank0 (tid 1 is the busiest
    track), plus a sparser track that must NOT be picked as reference."""
    return [
        _meta(1, "rank0"), _meta(2, "rank1"), _meta(3, "ckpt-disk"),
        _instant(1, 0.0, 0), _instant(1, 1.0, 1), _instant(1, 2.0, 2),
        _instant(2, 2.0, 1),
    ]


def test_interval_helpers():
    assert _union([]) == 0.0
    assert _union([(0, 1), (0.5, 2), (3, 4)]) == 3.0
    assert _overlap([(0, 2)], [(1, 3)]) == 1.0
    assert _overlap([(0, 1)], [(2, 3)]) == 0.0


def test_app_compute_when_no_checkpoint_traffic():
    result = extract_critical_path(_base_trace())
    assert result["track"] == "rank0"
    # the instant at t=0 opens the window; two real slices follow
    assert [s["verdict"] for s in result["slices"]] == \
        ["app-compute", "app-compute"]
    assert result["verdicts"] == {"app-compute": 2}


def test_drain_backpressure_when_frames_fill_the_slice():
    events = _base_trace() + [
        _span(3, "ckpt.frame", 1.1, 0.7),    # 70% of slice [1,2)
    ]
    result = extract_critical_path(events)
    verdicts = [s["verdict"] for s in result["slices"]]
    assert verdicts[0] == "app-compute"      # slice [0,1) untouched
    assert verdicts[1] == "drain-backpressure"


def test_drain_spill_lowers_the_threshold():
    # 30% occupancy alone is app-compute, but the frame crosses the
    # slice boundary: the drain is still holding the slice open
    events = _base_trace() + [
        _span(3, "ckpt.frame", 1.7, 0.6),    # 1.7..2.3 spills past 2.0
    ]
    result = extract_critical_path(events)
    assert result["slices"][1]["verdict"] == "drain-backpressure"
    assert result["slices"][1]["drain_spills_boundary"]


def test_ckpt_disk_writes_count_as_drain_only_on_ckpt_tracks():
    busy = [_span(3, "disk.write", 1.0, 0.8)]          # ckpt-disk track
    inert = [_span(2, "disk.write", 1.0, 0.8)]         # rank1 track
    assert extract_critical_path(_base_trace() + busy)["slices"][1][
        "verdict"] == "drain-backpressure"
    assert extract_critical_path(_base_trace() + inert)["slices"][1][
        "verdict"] == "app-compute"


def test_network_contention_when_sends_overlap_frames():
    events = _base_trace() + [
        _span(3, "ckpt.frame", 1.0, 0.3),    # 30%: below drain threshold
        _span(2, "net.send", 1.1, 0.2),      # overlaps 0.2s = 20% > 5%
    ]
    result = extract_critical_path(events)
    s = result["slices"][1]
    assert s["verdict"] == "network-contention"
    assert abs(s["overlap_s"] - 0.2) < 1e-9


def test_empty_and_timeslice_free_traces():
    empty = extract_critical_path([])
    assert empty["slices"] == []
    assert "no timeslice instants" in empty["note"]
    assert "no timeslice" in render_critpath(empty)
    spans_only = extract_critical_path(
        [_meta(1, "rank0"), _span(1, "net.send", 0.0, 1.0)])
    assert spans_only["slices"] == []


def test_render_limits_and_summary():
    events = _base_trace() + [_span(3, "ckpt.frame", 1.0, 0.9)]
    result = extract_critical_path(events)
    text = render_critpath(result, limit=1)
    assert "1 more slice(s)" in text
    assert "verdicts:" in text
    # 1 app-compute vs 1 drain-backpressure: ties break by name
    assert "predominantly drain-backpressure-bound" in text
    full = render_critpath(result)
    assert ">|" not in full or any(
        s["drain_spills_boundary"] for s in result["slices"])

"""Unit tests for trace loading and summarization."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import Tracer, load_trace_events, summarize_trace


def make_trace():
    tr = Tracer(wall_clock=None)
    for i in range(4):
        heavy = 80 << 20 if i % 2 else 10 << 20
        tr.instant("timeslice", "timeslice", float(i), track="rank0",
                   index=i, iws_bytes=heavy)
    tr.complete("disk.write", "storage", 0.5, 0.25, track="disk")
    tr.complete("disk.write", "storage", 1.5, 0.75, track="disk")
    tr.complete("commit", "checkpoint", 0.5, 1.0, track="ckpt.global")
    return tr


# -- loading -------------------------------------------------------------------

def test_load_chrome_object(tmp_path):
    path = make_trace().export(tmp_path / "t.json")
    events = load_trace_events(path)
    assert any(ev["ph"] == "M" for ev in events)
    assert any(ev["ph"] == "X" for ev in events)


def test_load_jsonl(tmp_path):
    path = make_trace().export(tmp_path / "t.jsonl")
    events = load_trace_events(path)
    assert sum(1 for ev in events if ev["ph"] == "i") == 4


def test_load_bare_array(tmp_path):
    path = tmp_path / "bare.json"
    path.write_text(json.dumps([{"name": "a", "ph": "i", "ts": 0}]))
    assert load_trace_events(path) == [{"name": "a", "ph": "i", "ts": 0}]


def test_load_missing_file_rejected(tmp_path):
    with pytest.raises(ObservabilityError, match="no trace file"):
        load_trace_events(tmp_path / "nope.json")


def test_load_bad_json_rejected(tmp_path):
    path = tmp_path / "garbage.json"
    path.write_text("{not json")
    with pytest.raises(ObservabilityError, match="bad JSON"):
        load_trace_events(path)


def test_load_wrong_shapes_rejected(tmp_path):
    no_events = tmp_path / "noev.json"
    no_events.write_text(json.dumps({"other": 1}))
    with pytest.raises(ObservabilityError, match="traceEvents"):
        load_trace_events(no_events)
    scalar = tmp_path / "scalar.json"
    scalar.write_text("42")
    with pytest.raises(ObservabilityError, match="expected an object"):
        load_trace_events(scalar)


# -- summarizing ---------------------------------------------------------------

def test_summary_counts_and_time_range(tmp_path):
    path = make_trace().export(tmp_path / "t.json")
    text = summarize_trace(load_trace_events(path))
    assert "7 events (3 spans, 4 instants)" in text
    assert "sim time 0.000s .. 3.000s" in text


def test_summary_ranks_spans_by_total_time(tmp_path):
    path = make_trace().export(tmp_path / "t.json")
    text = summarize_trace(load_trace_events(path))
    # disk.write total 1.0s ties commit 1.0s; both must appear
    assert "disk.write" in text and "commit" in text
    assert "timeslice" in text  # instant counts section


def test_summary_burst_structure(tmp_path):
    path = make_trace().export(tmp_path / "t.json")
    text = summarize_trace(load_trace_events(path))
    assert "burst structure: 4 timeslices" in text
    assert "2 heavy slice(s)" in text
    assert "2 light" in text


def test_summary_flat_iws():
    tr = Tracer(wall_clock=None)
    for i in range(3):
        tr.instant("timeslice", "timeslice", float(i), track="r0",
                   iws_bytes=1 << 20)
    text = summarize_trace(tr.events)
    assert "flat IWS" in text


def test_summary_empty_trace():
    assert "empty trace" in summarize_trace([])
    meta_only = [{"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                  "args": {"name": "x"}}]
    assert "empty trace" in summarize_trace(meta_only)


def test_summary_top_limits_rows(tmp_path):
    tr = Tracer(wall_clock=None)
    for i in range(5):
        tr.complete(f"span{i}", "exec", 0.0, float(i + 1), track="t")
    text = summarize_trace(tr.events, top=2)
    assert "showing 2 of 5" in text
    assert "span4" in text      # longest total survives the cut
    assert "span0" not in text  # shortest does not

"""End-to-end observability: real simulations with the tracer, metrics,
and progress threads attached, plus the determinism contract."""

import io
import json

from repro.cluster.experiment import paper_config, run_experiment, \
    sweep_timeslices
from repro.exec import ResultCache, SweepExecutor
from repro.faults import FaultPlan, run_with_failures
from repro.obs import (
    ENGINE_DISPATCH,
    DEFAULT_CATEGORIES,
    MetricsRegistry,
    Observability,
    ProgressReporter,
    Tracer,
    strip_wall_times,
)
from repro.sim import Engine


def full_obs(**tracer_kwargs):
    tracer_kwargs.setdefault("wall_clock", None)
    return Observability(tracer=Tracer(**tracer_kwargs),
                         metrics=MetricsRegistry())


def small_config(**overrides):
    overrides.setdefault("nranks", 2)
    overrides.setdefault("timeslice", 1.0)
    overrides.setdefault("run_duration", 10.0)
    return paper_config("lu", **overrides)


# -- run_experiment ------------------------------------------------------------

def test_traced_run_records_all_default_subsystems():
    obs = full_obs()
    run_experiment(small_config(), obs=obs)
    cats = {ev["cat"] for ev in obs.tracer.events}
    assert {"timeslice", "net"} <= cats
    names = obs.metrics.names()
    assert "instrument.slices" in names
    assert "net.messages_sent" in names
    assert "sim.engine.dispatched" in names


def test_metrics_agree_with_trace():
    obs = full_obs()
    run_experiment(small_config(), obs=obs)
    slices = sum(1 for ev in obs.tracer.events if ev["name"] == "timeslice")
    assert obs.metrics.counter("instrument.slices").value == slices


def test_disabled_obs_records_nothing():
    obs = Observability()
    result = run_experiment(small_config(), obs=obs)
    assert result.iterations > 0
    assert obs.tracer.enabled is False
    assert obs.metrics.names() == []


def test_traced_run_result_identical_to_bare_run():
    """Tracing must never perturb the simulation itself."""
    bare = run_experiment(small_config())
    traced = run_experiment(small_config(), obs=full_obs())
    assert traced.final_time == bare.final_time
    assert traced.iterations == bare.iterations
    assert (traced.log(0).iws_bytes() == bare.log(0).iws_bytes()).all()


def test_same_seed_traces_are_bit_identical():
    a, b = full_obs(), full_obs()
    run_experiment(small_config(), obs=a)
    run_experiment(small_config(), obs=b)
    assert a.tracer.events == b.tracer.events
    assert json.dumps(a.tracer.to_chrome()) == json.dumps(b.tracer.to_chrome())


def test_wall_annotated_traces_agree_after_stripping():
    a = Observability(tracer=Tracer(), metrics=MetricsRegistry())
    b = Observability(tracer=Tracer(), metrics=MetricsRegistry())
    run_experiment(small_config(), obs=a)
    run_experiment(small_config(), obs=b)
    assert a.tracer.events != b.tracer.events  # wall clock differs...
    assert (strip_wall_times(a.tracer.events)
            == strip_wall_times(b.tracer.events))  # ...sim time does not


def test_engine_dispatch_firehose_is_opt_in():
    quiet = full_obs()
    run_experiment(small_config(), obs=quiet)
    assert not any(ev["cat"] == ENGINE_DISPATCH
                   for ev in quiet.tracer.events)
    loud = full_obs(categories=DEFAULT_CATEGORIES | {ENGINE_DISPATCH})
    run_experiment(small_config(), obs=loud)
    dispatch = [ev for ev in loud.tracer.events
                if ev["cat"] == ENGINE_DISPATCH]
    assert len(dispatch) > 100
    assert dispatch[0]["ts"] >= 0


# -- engine hooks --------------------------------------------------------------

def test_engine_event_hook_sees_every_dispatch():
    eng = Engine()
    seen = []
    eng.add_event_hook(seen.append)
    eng.schedule(1.0, int)
    eng.schedule(2.0, int)
    eng.run()
    assert len(seen) == 2
    eng.remove_event_hook(seen.append)
    eng.schedule(3.0, int)
    eng.run()
    assert len(seen) == 2


# -- fault runs ----------------------------------------------------------------

def test_traced_fault_run_records_recovery():
    plan = FaultPlan.exponential(20.0, 2, 60.0, seed=3)
    obs = full_obs()
    result = run_with_failures(small_config(run_duration=20.0), plan,
                               interval_slices=2, full_every=4, obs=obs)
    names = {ev["name"] for ev in obs.tracer.events}
    assert any(n.startswith("life") for n in names)
    if result.failures:
        assert "recovery" in names
        assert obs.metrics.counter("faults.failures").value \
            == len(result.failures)
    # per-life engine stats were published under distinct prefixes
    assert any(n.startswith("sim.engine.life0.")
               for n in obs.metrics.names())


def test_fault_run_progress_feed():
    plan = FaultPlan.exponential(15.0, 2, 60.0, seed=5)
    stream = io.StringIO()
    stream.isatty = lambda: False
    obs = Observability(metrics=MetricsRegistry(),
                        progress=ProgressReporter(stream=stream,
                                                  min_interval=0.0))
    result = run_with_failures(small_config(run_duration=15.0), plan,
                               interval_slices=2, obs=obs)
    obs.progress.close()
    assert "life 0 launched" in stream.getvalue()
    if len(result.lives) > 1:
        assert "restarted" in stream.getvalue()


# -- sweeps --------------------------------------------------------------------

def test_sweep_records_probe_and_cache_metrics(tmp_path):
    obs = Observability(metrics=MetricsRegistry())
    cache = ResultCache(tmp_path / "cache")
    config = small_config(run_duration=6.0)
    sweep_timeslices(config, [1.0, 2.0], cache=cache, obs=obs)
    assert obs.metrics.histogram("exec.run").count == 2
    assert obs.metrics.counter("exec.cache.misses").value == 2
    sweep_timeslices(config, [1.0, 2.0], cache=cache, obs=obs)
    assert obs.metrics.counter("exec.cache.hits").value == 2
    assert obs.metrics.gauge("exec.cache.hits_total").value == 2


def test_sweep_progress_feed(tmp_path):
    stream = io.StringIO()
    stream.isatty = lambda: False
    obs = Observability(metrics=MetricsRegistry(),
                        progress=ProgressReporter(stream=stream,
                                                  min_interval=0.0))
    SweepExecutor(obs=obs).run_many(
        [small_config(run_duration=6.0, timeslice=t) for t in (1.0, 2.0)])
    assert "sweep 2/2" in stream.getvalue()


def test_sweep_results_unchanged_by_obs(tmp_path):
    config = small_config(run_duration=6.0)
    bare = sweep_timeslices(config, [1.0, 2.0])
    traced = sweep_timeslices(config, [1.0, 2.0], obs=full_obs())
    for ts in (1.0, 2.0):
        assert traced[ts].ib().avg_mbps == bare[ts].ib().avg_mbps

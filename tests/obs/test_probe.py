"""Unit tests for probes and the progress reporter."""

import io

from repro.obs import MetricsRegistry, Observability, ProgressReporter, probe


# -- probe ---------------------------------------------------------------------

def test_probe_records_into_histogram():
    obs = Observability(metrics=MetricsRegistry())
    with probe(obs, "exec.run"):
        pass
    h = obs.metrics.histogram("exec.run")
    assert h.count == 1
    assert h.total >= 0.0


def test_probe_accumulates_across_uses():
    obs = Observability(metrics=MetricsRegistry())
    for _ in range(3):
        with probe(obs, "phase"):
            pass
    assert obs.metrics.histogram("phase").count == 3


def test_probe_noop_when_obs_none_or_disabled():
    with probe(None, "x"):
        pass
    disabled = Observability()
    assert disabled.enabled is False
    with probe(disabled, "x"):
        pass
    assert "x" not in disabled.metrics


def test_probe_records_even_when_block_raises():
    obs = Observability(metrics=MetricsRegistry())
    try:
        with probe(obs, "failing"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert obs.metrics.histogram("failing").count == 1


# -- progress ------------------------------------------------------------------

def make_reporter():
    stream = io.StringIO()
    stream.isatty = lambda: False
    return ProgressReporter(stream=stream, min_interval=0.0), stream


def test_on_slice_paints_per_rank_counts():
    rep, stream = make_reporter()
    rep.on_slice(0, None, 1.0)
    rep.on_slice(1, None, 1.0)
    rep.on_slice(0, None, 2.0)
    assert "r0:2" in stream.getvalue()
    assert "r1:1" in stream.getvalue()


def test_on_life_resets_slice_counts():
    rep, stream = make_reporter()
    rep.on_slice(0, None, 1.0)
    rep.on_life(1, 5.0)
    assert rep.slices == {}
    assert "life 1 restarted at t=5.00s" in stream.getvalue()
    rep.on_life(0, 0.0)
    assert "life 0 launched" in stream.getvalue()


def test_on_run_reports_progress():
    rep, stream = make_reporter()
    rep.on_run(1, 4, label="run")
    rep.on_run(4, 4)
    assert "sweep 1/4  run" in stream.getvalue()
    assert "sweep 4/4" in stream.getvalue()


def test_throttle_suppresses_then_close_flushes():
    stream = io.StringIO()
    stream.isatty = lambda: False
    rep = ProgressReporter(stream=stream, min_interval=3600.0)
    rep.on_life(0, 0.0)          # force-painted; arms the throttle window
    rep.on_slice(0, None, 1.0)   # throttled
    assert "life 0" in stream.getvalue()
    assert "r0:1" not in stream.getvalue()
    rep.close()
    assert "r0:1" in stream.getvalue()
    assert stream.getvalue().endswith("\n")


def test_close_without_paints_writes_nothing():
    rep, stream = make_reporter()
    rep.close()
    assert stream.getvalue() == ""

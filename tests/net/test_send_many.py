"""The batched injection path must be indistinguishable from per-message
sends -- same arrival times, same byte accounting, same obs events --
while coalescing equal-arrival deliveries into one engine event."""

import pytest

from repro.errors import MPIError, RankError
from repro.mpi import MPIJob
from repro.net import Message, Network
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.sim import Engine


def collect_network(nnodes=4, obs=None):
    eng = Engine(obs=obs) if obs is not None else Engine()
    net = Network(eng, nnodes)
    delivered = []
    for node in range(nnodes):
        net.attach(node, lambda m, n=node: delivered.append((n, m.mid)))
    return eng, net, delivered


def test_send_many_matches_per_message_timing():
    msgs_a = [Message(src=0, dst=d, size=4096, tag=1) for d in (1, 2, 3)]
    msgs_b = [Message(src=0, dst=d, size=4096, tag=1) for d in (1, 2, 3)]

    eng1, net1, _ = collect_network()
    singles = [net1.send(m) for m in msgs_a]
    eng2, net2, _ = collect_network()
    batched = net2.send_many(msgs_b)

    assert batched == singles
    assert [m.arrival_time for m in msgs_b] == [m.arrival_time for m in msgs_a]
    assert [m.send_time for m in msgs_b] == [m.send_time for m in msgs_a]


def test_send_many_delivers_in_submission_order():
    eng, net, delivered = collect_network()
    # zero-byte control messages to one destination coalesce: same
    # arrival time, one engine event, delivery in submission order
    msgs = [Message(src=0, dst=1, size=0, tag=t) for t in range(5)]
    pending_before = eng.pending_events()
    net.send_many(msgs)
    assert eng.pending_events() == pending_before + 1  # coalesced
    eng.run()
    assert delivered == [(1, m.mid) for m in msgs]


def test_send_many_keeps_distinct_arrival_events_distinct():
    eng, net, delivered = collect_network()
    msgs = [Message(src=0, dst=d, size=8192, tag=0) for d in (1, 2, 3)]
    net.send_many(msgs)
    # tx serialization staggers the arrivals: no two may share an event
    arrivals = [m.arrival_time for m in msgs]
    assert len(set(arrivals)) == 3
    assert eng.pending_events() == 3
    eng.run()
    assert delivered == [(d, m.mid) for d, m in zip((1, 2, 3), msgs)]


def test_send_many_counters_and_trace_match_per_message():
    def run(batch):
        obs = Observability(tracer=Tracer(wall_clock=None),
                            metrics=MetricsRegistry())
        eng, net, _ = collect_network(obs=obs)
        msgs = [Message(src=0, dst=d, size=1024, tag=2) for d in (1, 2)]
        if batch:
            net.send_many(msgs)
        else:
            for m in msgs:
                net.send(m)
        eng.run()
        return obs

    single, batched = run(batch=False), run(batch=True)
    assert batched.tracer.events == single.tracer.events
    for name in ("net.messages_sent", "net.bytes_sent"):
        assert (batched.metrics.counter(name).value
                == single.metrics.counter(name).value)


def test_send_many_empty_batch_is_noop():
    eng, net, delivered = collect_network()
    assert net.send_many([]) == []
    assert eng.pending_events() == 0


def test_send_many_single_message_short_circuits_to_send():
    """A one-element batch takes the plain ``send`` path -- no grouping
    structures -- and is indistinguishable from calling ``send``."""
    eng1, net1, d1 = collect_network()
    m1 = Message(src=0, dst=2, size=2048, tag=7)
    batched = net1.send_many([m1])

    eng2, net2, d2 = collect_network()
    m2 = Message(src=0, dst=2, size=2048, tag=7)
    single = net2.send(m2)

    assert batched == [single]
    assert (m1.send_time, m1.arrival_time) == (m2.send_time, m2.arrival_time)
    assert eng1.pending_events() == eng2.pending_events() == 1
    eng1.run()
    eng2.run()
    assert d1 == [(2, m1.mid)]
    assert d2 == [(2, m2.mid)]


def test_comm_send_many_accounting_and_validation():
    eng = Engine()
    job = MPIJob(eng, 4)
    comm = job.world.comm(0)
    msgs = comm.send_many([1, 2, 3], 500, tag=3)
    assert [m.dst for m in msgs] == [1, 2, 3]
    assert comm.bytes_sent == 1500
    with pytest.raises(MPIError):
        comm.send_many([1], 10, tag=-2)
    with pytest.raises(RankError):
        comm.send_many([1, 9], 10, tag=0)


def test_comm_send_many_matches_sequential_sends():
    def run(batch):
        eng = Engine()
        job = MPIJob(eng, 4)
        got = []

        def sender(ctx):
            if batch:
                ctx.comm.send_many([1, 2, 3], 256, tag=1)
            else:
                for d in (1, 2, 3):
                    ctx.comm.send(d, 256, tag=1)
            yield from ()

        def receiver(ctx):
            msg = yield ctx.comm.recv(source=0, tag=1)
            got.append((ctx.rank, ctx.engine.now, msg.size))

        job.launch(lambda ctx: sender(ctx) if ctx.rank == 0
                   else receiver(ctx))
        eng.run(detect_deadlock=True)
        return got

    assert run(batch=True) == run(batch=False)

"""Unit tests for link models, topology, and the network."""

import pytest

from repro.errors import ConfigurationError, NetworkError
from repro.net import ETHERNET_100M, LinkSpec, Message, Network, QSNET2, Topology
from repro.sim import Engine
from repro.units import MiB


def test_linkspec_transfer_time():
    spec = LinkSpec("test", bandwidth=100.0, latency=1.0, per_hop_latency=0.5)
    assert spec.transfer_time(200, hops=1) == pytest.approx(1.0 + 2.0)
    assert spec.transfer_time(200, hops=3) == pytest.approx(1.0 + 1.0 + 2.0)
    assert spec.transfer_time(0) == pytest.approx(1.0)


def test_linkspec_validation():
    with pytest.raises(ConfigurationError):
        LinkSpec("bad", bandwidth=0, latency=1.0)
    with pytest.raises(ConfigurationError):
        LinkSpec("bad", bandwidth=1.0, latency=-1)
    with pytest.raises(ConfigurationError):
        QSNET2.transfer_time(-5)


def test_qsnet_peak_bandwidth_matches_paper():
    assert QSNET2.bandwidth == 900 * MiB
    # a 900 MB message takes ~1 s on the wire
    assert QSNET2.transfer_time(900 * MiB) == pytest.approx(1.0, rel=1e-3)


def test_message_validation():
    with pytest.raises(NetworkError):
        Message(src=0, dst=1, size=-1)


def test_message_ids_unique():
    a = Message(src=0, dst=1, size=10)
    b = Message(src=0, dst=1, size=10)
    assert a.mid != b.mid


# -- topology ----------------------------------------------------------------

def test_topology_star_two_hops():
    topo = Topology(8, shape="star")
    assert topo.hops(0, 7) == 2
    assert topo.hops(3, 3) == 0


def test_topology_fat_tree_same_leaf():
    topo = Topology(8, shape="fat-tree", radix=4)
    assert topo.hops(0, 1) == 2          # same leaf switch
    assert topo.hops(0, 7) > 2           # crosses up-switch


def test_topology_fat_tree_single_node():
    topo = Topology(1)
    assert topo.diameter() == 0


def test_topology_ring():
    topo = Topology(6, shape="ring")
    assert topo.hops(0, 3) == 3
    assert topo.hops(0, 5) == 1


def test_topology_validation():
    with pytest.raises(ConfigurationError):
        Topology(0)
    with pytest.raises(ConfigurationError):
        Topology(4, shape="hypercube")  # type: ignore[arg-type]
    topo = Topology(4)
    with pytest.raises(ConfigurationError):
        topo.hops(0, 9)


def test_topology_32_nodes_diameter_reasonable():
    topo = Topology(32, shape="fat-tree", radix=4)
    assert 2 <= topo.diameter() <= 8


# -- network -----------------------------------------------------------------

def simple_net(nnodes=2, spec=None):
    eng = Engine()
    net = Network(eng, nnodes, spec=spec or LinkSpec("t", bandwidth=100.0,
                                                     latency=1.0))
    return eng, net


def test_delivery_time_and_callback():
    eng, net = simple_net()
    got = []
    net.attach(1, lambda m: got.append((eng.now, m)))
    arrival = net.send(Message(src=0, dst=1, size=200))
    assert arrival == pytest.approx(3.0)  # 1.0 latency + 200/100
    eng.run()
    assert len(got) == 1
    assert got[0][0] == pytest.approx(3.0)
    assert net.bytes_delivered == 200


def test_sender_serialization():
    """Back-to-back sends queue behind each other at the sender's NIC."""
    eng, net = simple_net()
    got = []
    net.attach(1, lambda m: got.append(eng.now))
    net.send(Message(src=0, dst=1, size=100))  # serializes 1s
    net.send(Message(src=0, dst=1, size=100))  # starts at t=1
    eng.run()
    assert got == [pytest.approx(2.0), pytest.approx(3.0)]


def test_incast_serializes_at_the_receiver():
    """Two senders targeting one node queue on its receive link --
    the all-to-all incast effect."""
    eng, net = simple_net(3)
    got = []
    net.attach(2, lambda m: got.append(eng.now))
    net.send(Message(src=0, dst=2, size=100))
    net.send(Message(src=1, dst=2, size=100))
    eng.run()
    assert got == [pytest.approx(2.0), pytest.approx(3.0)]


def test_distinct_senders_distinct_receivers_fully_parallel():
    eng, net = simple_net(4)
    got = []
    net.attach(2, lambda m: got.append(eng.now))
    net.attach(3, lambda m: got.append(eng.now))
    net.send(Message(src=0, dst=2, size=100))
    net.send(Message(src=1, dst=3, size=100))
    eng.run()
    assert got == [pytest.approx(2.0), pytest.approx(2.0)]


def test_loopback_has_no_latency():
    eng, net = simple_net()
    got = []
    net.attach(0, lambda m: got.append(eng.now))
    net.send(Message(src=0, dst=0, size=100))
    eng.run()
    assert got == [pytest.approx(1.0)]  # bandwidth term only


def test_send_to_unattached_destination_is_dropped():
    """Sends to a node with no NIC (failed / never attached) vanish at
    delivery time -- failure-injection semantics."""
    eng, net = simple_net()
    net.send(Message(src=0, dst=1, size=10))
    eng.run()
    assert net.messages_delivered == 0


def test_detach_drops_in_flight():
    eng, net = simple_net()
    got = []
    net.attach(1, lambda m: got.append(m))
    net.send(Message(src=0, dst=1, size=100))
    net.detach(1)
    eng.run()
    assert got == []
    assert net.messages_delivered == 0


def test_bad_node_numbers():
    eng, net = simple_net()
    with pytest.raises(NetworkError):
        net.attach(5, lambda m: None)
    with pytest.raises(NetworkError):
        net.send(Message(src=9, dst=0, size=1))
    with pytest.raises(NetworkError):
        Network(eng, 0)

"""Unit tests for the DMA-capable NIC and the bounce-buffer deposit path."""

import pytest

from repro.errors import NetworkError
from repro.mem import Layout
from repro.net import Message, Network, NIC, QSNET2
from repro.proc import Process
from repro.sim import Engine
from repro.units import KiB

PS = 16 * KiB


def make_nic(strict_dma=True):
    eng = Engine()
    net = Network(eng, 2, spec=QSNET2)
    proc = Process(eng, layout=Layout(page_size=PS), data_size=8 * PS)
    nic = NIC(1, net, proc, strict_dma=strict_dma)
    return eng, net, proc, nic


def test_receive_upcall_and_counters():
    eng, net, proc, nic = make_nic()
    got = []
    nic.on_message = got.append
    net.send(Message(src=0, dst=1, size=4096))
    eng.run()
    assert len(got) == 1
    assert nic.bytes_received == 4096
    assert nic.messages_received == 1


def test_intercepted_deposit_faults_normally():
    """Bounce-buffer path: the CPU copy takes ordinary protection faults,
    so received data shows up in the dirty set."""
    eng, net, proc, nic = make_nic()
    proc.mprotect_data()
    res = nic.deposit(proc.memory.data.base, 2 * PS, intercept=True)
    assert res.intercepted
    assert res.write.faults == 2
    assert res.copy_time > 0
    assert proc.memory.dirty_pages() == 2


def test_dma_deposit_bypasses_tracking_when_unprotected():
    eng, net, proc, nic = make_nic()
    res = nic.deposit(proc.memory.data.base, 2 * PS, intercept=False)
    assert not res.intercepted
    assert res.write.faults == 0
    assert res.copy_time == 0.0
    assert proc.memory.dirty_pages() == 0    # modification invisible...
    # ...but not *missed*: protection was never armed, so the tracker
    # would not have caught a CPU store to these pages either
    assert nic.dma_missed_pages == 0


def test_lenient_dma_missed_counts_only_armed_pages():
    """Missed pages are exactly the protected-and-clean ones the armed
    tracker would have caught had the store gone through the MMU."""
    eng, net, proc, nic = make_nic(strict_dma=False)
    proc.mprotect_data()
    res = nic.deposit(proc.memory.data.base, 3 * PS, intercept=False)
    assert res.write.missed == 3
    assert nic.dma_missed_pages == 3


def test_strict_dma_into_protected_page_raises():
    """The hardware conflict of section 4.2: the NIC cannot write into
    mprotect'ed memory."""
    eng, net, proc, nic = make_nic(strict_dma=True)
    proc.mprotect_data()
    with pytest.raises(NetworkError):
        nic.deposit(proc.memory.data.base, PS, intercept=False)


def test_lenient_dma_into_protected_page_undercounts():
    eng, net, proc, nic = make_nic(strict_dma=False)
    proc.mprotect_data()
    res = nic.deposit(proc.memory.data.base, PS, intercept=False)
    assert res.write.missed == 1
    assert proc.memory.dirty_pages() == 0


def test_deposit_size_validation():
    eng, net, proc, nic = make_nic()
    with pytest.raises(NetworkError):
        nic.deposit(proc.memory.data.base, 0, intercept=True)


def test_copy_time_scales_with_size():
    eng, net, proc, nic = make_nic()
    small = nic.deposit(proc.memory.data.base, PS, intercept=True)
    large = nic.deposit(proc.memory.data.base, 4 * PS, intercept=True)
    assert large.copy_time == pytest.approx(4 * small.copy_time)


def test_detach_stops_delivery():
    eng, net, proc, nic = make_nic()
    got = []
    nic.on_message = got.append
    nic.detach()
    net.send(Message(src=0, dst=1, size=64))
    eng.run()
    assert got == []


def test_drop_next_discards_messages_silently():
    eng, net, proc, nic = make_nic()
    got = []
    nic.on_message = got.append
    nic.drop_next(1)
    net.send(Message(src=0, dst=1, size=64))
    net.send(Message(src=0, dst=1, size=64))
    eng.run()
    assert len(got) == 1                  # first message was dropped
    assert nic.messages_dropped == 1
    assert nic.messages_received == 1
    with pytest.raises(NetworkError):
        nic.drop_next(0)


def test_fail_detaches_and_discards_everything():
    eng, net, proc, nic = make_nic()
    got = []
    nic.on_message = got.append
    net.send(Message(src=0, dst=1, size=64))   # in flight at failure time
    nic.fail()
    nic.fail()                                 # idempotent
    assert nic.failed
    net.send(Message(src=0, dst=1, size=64))   # detached: silently lost
    eng.run()
    assert got == []
    assert nic.messages_received == 0

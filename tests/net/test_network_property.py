"""Property tests for network timing invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import LinkSpec, Message, Network
from repro.sim import Engine


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                          st.integers(min_value=0, max_value=3),
                          st.integers(min_value=1, max_value=10_000)),
                min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_arrivals_respect_physics_and_fifo(sends):
    """Every message arrives no earlier than send + wire latency +
    serialization, and same-pair messages arrive in send order."""
    eng = Engine()
    spec = LinkSpec("t", bandwidth=1000.0, latency=0.5)
    net = Network(eng, 4, spec=spec)
    deliveries: dict[int, list[Message]] = {n: [] for n in range(4)}
    for n in range(4):
        net.attach(n, deliveries[n].append)

    msgs = []
    for src, dst, size in sends:
        m = Message(src=src, dst=dst, size=size)
        net.send(m)
        msgs.append(m)
    eng.run()

    for m in msgs:
        min_time = m.size / spec.bandwidth
        if m.src != m.dst:
            min_time += spec.latency
        assert m.arrival_time >= m.send_time + min_time - 1e-9
    # FIFO per (src, dst) pair
    for src in range(4):
        for dst in range(4):
            pair = [m for m in msgs if m.src == src and m.dst == dst]
            arrivals = [m.arrival_time for m in pair]
            assert arrivals == sorted(arrivals)
    # everything delivered exactly once
    assert sum(len(v) for v in deliveries.values()) == len(msgs)


@given(st.lists(st.integers(min_value=1, max_value=5000), min_size=2,
                max_size=20))
@settings(max_examples=80, deadline=None)
def test_single_pair_throughput_bounded_by_bandwidth(sizes):
    """A stream between one pair cannot beat the link bandwidth."""
    eng = Engine()
    spec = LinkSpec("t", bandwidth=1000.0, latency=0.01)
    net = Network(eng, 2, spec=spec)
    net.attach(1, lambda m: None)
    msgs = [Message(src=0, dst=1, size=s) for s in sizes]
    for m in msgs:
        net.send(m)
    eng.run()
    total = sum(sizes)
    elapsed = max(m.arrival_time for m in msgs)
    assert total / elapsed <= spec.bandwidth * (1 + 1e-9)

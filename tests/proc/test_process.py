"""Unit tests for the simulated UNIX process."""

import pytest

from repro.errors import ProtectionError, SignalError
from repro.mem import Layout, SegmentKind
from repro.proc import Process, Signal
from repro.sim import Engine
from repro.units import KiB

PS = 16 * KiB


def make_proc(engine=None, **kw):
    kw.setdefault("data_size", 4 * PS)
    kw.setdefault("bss_size", 2 * PS)
    return Process(engine or Engine(), layout=Layout(page_size=PS), **kw)


def test_segv_handler_receives_faults():
    proc = make_proc()
    hits = []
    proc.sigaction(Signal.SIGSEGV, lambda seg, lo, hi, n: hits.append((seg.kind, n)))
    proc.mprotect_data()
    proc.memory.cpu_write(proc.memory.data.base, 2 * PS)
    assert hits == [(SegmentKind.DATA, 2)]


def test_sigaction_removal():
    proc = make_proc()
    hits = []
    proc.sigaction(Signal.SIGSEGV, lambda *a: hits.append(a))
    proc.sigaction(Signal.SIGSEGV, None)
    proc.mprotect_data()
    proc.memory.cpu_write(proc.memory.data.base, PS)
    assert hits == []


def test_sigaction_bad_signal():
    proc = make_proc()
    with pytest.raises(SignalError):
        proc.sigaction(99, lambda: None)  # type: ignore[arg-type]


def test_setitimer_delivers_sigalrm():
    eng = Engine()
    proc = make_proc(eng)
    ticks = []
    proc.sigaction(Signal.SIGALRM, lambda i: ticks.append((eng.now, i)))
    proc.setitimer(1.0)
    eng.run(until=3.0)
    assert ticks == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_setitimer_rearm_cancels_previous():
    eng = Engine()
    proc = make_proc(eng)
    ticks = []
    proc.sigaction(Signal.SIGALRM, lambda i: ticks.append(eng.now))
    proc.setitimer(1.0)
    proc.setitimer(2.0)  # re-arm
    eng.run(until=4.0)
    assert ticks == [2.0, 4.0]


def test_next_timer_expiry():
    eng = Engine()
    proc = make_proc(eng)
    assert proc.next_timer_expiry() is None
    proc.setitimer(5.0)
    assert proc.next_timer_expiry() == 5.0
    proc.cancel_itimer()
    assert proc.next_timer_expiry() is None


def test_alarm_without_handler_is_silent():
    eng = Engine()
    proc = make_proc(eng)
    proc.setitimer(1.0)
    eng.run(until=2.0)  # no handler installed; nothing raises


def test_brk_sets_absolute_break():
    proc = make_proc()
    base = proc.memory.brk
    proc.brk(base + 3 * PS)
    assert proc.memory.brk == base + 3 * PS


def test_mprotect_data_protects_everything_but_stack_and_text():
    proc = make_proc()
    seg = proc.mmap(2 * PS)
    npages = proc.mprotect_data()
    assert npages == (4 + 2 + 0 + 2)  # data + bss + heap(empty) + mmap
    assert seg.pages.protected.all()
    assert not proc.memory.stack.pages.protected.any()
    assert not proc.memory.text.pages.protected.any()
    proc.mprotect_data(readonly=False)
    assert not seg.pages.protected.any()


def test_mprotect_stack_rejected():
    """Section 4.2: the stack cannot be write-protected."""
    proc = make_proc()
    with pytest.raises(ProtectionError):
        proc.mprotect(proc.memory.stack, 0, 1)


def test_mprotect_range():
    proc = make_proc()
    proc.mprotect(proc.memory.data, 1, 3)
    assert list(proc.memory.data.pages.protected) == [False, True, True, False]
    proc.mprotect(proc.memory.data, 1, 2, readonly=False)
    assert list(proc.memory.data.pages.protected) == [False, False, True, False]
